//! # lafp-ir — PandaScript and the SCIRPy-style IR
//!
//! The paper's programs are plain Python/Pandas; its static analyzer parses
//! them, converts them to **SCIRPy** (a Soot/Jimple-compatible statement IR),
//! builds a control-flow graph, analyzes it, rewrites it, reconstructs
//! structured **regions**, and emits Python back (§2.1–2.2).
//!
//! This crate is that toolchain for **PandaScript**, a Python-like language
//! covering exactly the surface the paper's benchmarks exercise:
//! imports, assignments (including `df["col"] = ...` subscript stores),
//! expression statements, `print` (plain and f-strings), `if`/`elif`/`else`
//! and `for ... in ...:` blocks, with indentation-based structure.
//!
//! Pipeline:
//!
//! ```text
//! source --lexer--> tokens --parser--> AST (arena)
//!        --lower--> CFG of statement units (the SCIRPy analog)
//!        --regions--> region tree --codegen--> source
//! ```
//!
//! The dataflow analyses (`lafp-analysis`) run on the CFG; the rewriter
//! (`lafp-rewrite`) mutates the AST arena; codegen pretty-prints either the
//! AST or the region tree (the latter closes the paper's IR->source loop
//! and doubles as a CFG-construction test).

#![warn(missing_docs)]

pub mod ast;
pub mod cfg;
pub mod codegen;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod regions;
pub mod token;

pub use ast::{Ast, Expr, FPiece, StmtId, StmtKind, StmtNode, Target};
pub use cfg::{BlockId, Cfg, Terminator};
pub use lexer::lex;
pub use parser::parse;
pub use token::{Token, TokenKind};

/// Parse error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntaxError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SyntaxError {}
