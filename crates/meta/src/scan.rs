//! Metadata computation: one streaming pass over the dataset.
//!
//! The paper computes metadata "by running a script on the file ... as a
//! background task" (§3.6). Here it is a library call; the bench harness
//! runs it ahead of the measured region, matching the paper's methodology
//! (metadata computation is not part of program execution time).

use crate::store::{ColumnMeta, DatasetMeta, MetaStore, NDISTINCT_CAP};
use lafp_columnar::csv::{CsvChunkReader, CsvOptions};
use lafp_columnar::{DataFrame, HeapSize, Result, Scalar};
use std::collections::HashSet;
use std::path::Path;

/// Per-column accumulation state for the metadata scan.
struct ColumnScan {
    name: String,
    min: Option<Scalar>,
    max: Option<Scalar>,
    distinct: HashSet<String>,
    distinct_capped: bool,
    null_count: u64,
}

impl ColumnScan {
    fn new(name: String) -> ColumnScan {
        ColumnScan {
            name,
            min: None,
            max: None,
            distinct: HashSet::new(),
            distinct_capped: false,
            null_count: 0,
        }
    }

    fn update(&mut self, value: &Scalar) {
        if value.is_null() {
            self.null_count += 1;
            return;
        }
        if self.min.as_ref().is_none_or(|m| value.cmp_values(m).is_lt()) {
            self.min = Some(value.clone());
        }
        if self.max.as_ref().is_none_or(|m| value.cmp_values(m).is_gt()) {
            self.max = Some(value.clone());
        }
        if !self.distinct_capped {
            self.distinct.insert(value.to_string());
            if self.distinct.len() as u64 > NDISTINCT_CAP {
                self.distinct_capped = true;
            }
        }
    }
}

/// Scan `path` chunk-by-chunk and compute its [`DatasetMeta`].
pub fn compute_metadata(path: &Path) -> Result<DatasetMeta> {
    let mut reader = CsvChunkReader::open(path, &CsvOptions::new(), 16_384)?;
    let schema = reader.schema();
    let mut scans: Vec<ColumnScan> = schema
        .iter()
        .map(|(name, _)| ColumnScan::new(name.clone()))
        .collect();
    let mut nrows: u64 = 0;
    let mut heap_bytes: u64 = 0;
    while let Some(chunk) = reader.next_chunk()? {
        nrows += chunk.num_rows() as u64;
        heap_bytes += chunk.heap_size() as u64;
        update_scans(&mut scans, &chunk)?;
    }
    let row_bytes = if nrows == 0 {
        0.0
    } else {
        heap_bytes as f64 / nrows as f64
    };
    let columns = schema
        .into_iter()
        .zip(scans)
        .map(|((name, dtype), scan)| ColumnMeta {
            name,
            dtype,
            min: scan.min.as_ref().map(Scalar::to_string),
            max: scan.max.as_ref().map(Scalar::to_string),
            ndistinct: if scan.distinct_capped {
                NDISTINCT_CAP + 1
            } else {
                scan.distinct.len() as u64
            },
            null_count: scan.null_count,
        })
        .collect();
    Ok(DatasetMeta {
        path: path.to_path_buf(),
        modified_unix: MetaStore::file_mtime(path)?,
        nrows,
        row_bytes,
        columns,
    })
}

fn update_scans(scans: &mut [ColumnScan], chunk: &DataFrame) -> Result<()> {
    for scan in scans.iter_mut() {
        let col = chunk.column(&scan.name)?;
        for i in 0..col.len() {
            scan.update(&col.get(i));
        }
    }
    Ok(())
}

/// Compute and persist metadata in one call (the "background task").
pub fn compute_and_store(path: &Path) -> Result<DatasetMeta> {
    let meta = compute_metadata(path)?;
    MetaStore::new().save(&meta)?;
    Ok(meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lafp_columnar::DType;
    use std::path::PathBuf;

    fn temp_csv(content: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("lafp-meta-scan-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!(
            "m{}.csv",
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::write(&path, content).unwrap();
        path
    }

    #[test]
    fn computes_types_ranges_distincts() {
        let path = temp_csv("city,fare\nNY,5.0\nSF,7.5\nNY,\nLA,2.5\n");
        let meta = compute_metadata(&path).unwrap();
        assert_eq!(meta.nrows, 4);
        let city = meta.column("city").unwrap();
        assert_eq!(city.dtype, DType::Utf8);
        assert_eq!(city.ndistinct, 3);
        assert_eq!(city.min.as_deref(), Some("LA"));
        assert_eq!(city.max.as_deref(), Some("SF"));
        let fare = meta.column("fare").unwrap();
        assert_eq!(fare.dtype, DType::Float64);
        assert_eq!(fare.null_count, 1);
        assert_eq!(fare.min.as_deref(), Some("2.5"));
        assert!(meta.row_bytes > 0.0);
    }

    #[test]
    fn compute_and_store_roundtrips_through_store() {
        let path = temp_csv("a\n1\n2\n3\n");
        let meta = compute_and_store(&path).unwrap();
        let loaded = MetaStore::new().load(&path).unwrap().unwrap();
        assert_eq!(loaded, meta);
        // Rewriting the file invalidates the sidecar once mtime changes.
        std::thread::sleep(std::time::Duration::from_millis(1100));
        std::fs::write(&path, "a\n9\n").unwrap();
        assert!(MetaStore::new().load(&path).unwrap().is_none());
    }

    #[test]
    fn empty_data_file() {
        let path = temp_csv("a,b\n");
        let meta = compute_metadata(&path).unwrap();
        assert_eq!(meta.nrows, 0);
        assert_eq!(meta.row_bytes, 0.0);
        assert_eq!(meta.column("a").unwrap().ndistinct, 0);
    }
}
