//! Multi-key sorting (pandas `sort_values`).

use crate::error::Result;
use crate::frame::DataFrame;
use crate::value::Scalar;
use std::cmp::Ordering;

/// Options for a `sort_values` call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortOptions {
    /// Key column names, highest priority first.
    pub by: Vec<String>,
    /// Per-key ascending flags; a single flag is broadcast over all keys.
    pub ascending: Vec<bool>,
}

impl SortOptions {
    /// Ascending sort on the given keys.
    pub fn ascending(by: Vec<String>) -> SortOptions {
        let n = by.len();
        SortOptions {
            by,
            ascending: vec![true; n],
        }
    }

    /// Single-key sort with a direction.
    pub fn single(key: impl Into<String>, ascending: bool) -> SortOptions {
        SortOptions {
            by: vec![key.into()],
            ascending: vec![ascending],
        }
    }

    fn dir(&self, k: usize) -> bool {
        self.ascending.get(k).copied().unwrap_or(
            self.ascending.first().copied().unwrap_or(true),
        )
    }
}

/// Stable multi-key sort; nulls sort last regardless of direction
/// (pandas `na_position='last'` default).
pub fn sort_values(frame: &DataFrame, options: &SortOptions) -> Result<DataFrame> {
    let key_cols: Vec<Vec<Scalar>> = options
        .by
        .iter()
        .map(|name| {
            frame
                .column(name)
                .map(|s| (0..frame.num_rows()).map(|i| s.get(i)).collect())
        })
        .collect::<Result<Vec<_>>>()?;
    let mut order: Vec<usize> = (0..frame.num_rows()).collect();
    order.sort_by(|&a, &b| {
        for (k, col) in key_cols.iter().enumerate() {
            let (x, y) = (&col[a], &col[b]);
            // Nulls always last:
            let ord = match (x.is_null(), y.is_null()) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Greater,
                (false, true) => Ordering::Less,
                (false, false) => {
                    let o = x.cmp_values(y);
                    if options.dir(k) {
                        o
                    } else {
                        o.reverse()
                    }
                }
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
    frame.take(&order)
}

/// `df.nlargest(n, col)` — top-n by one column, descending.
pub fn nlargest(frame: &DataFrame, n: usize, column: &str) -> Result<DataFrame> {
    let sorted = sort_values(frame, &SortOptions::single(column, false))?;
    Ok(sorted.head(n))
}

/// `df.nsmallest(n, col)` — bottom-n by one column, ascending.
pub fn nsmallest(frame: &DataFrame, n: usize, column: &str) -> Result<DataFrame> {
    let sorted = sort_values(frame, &SortOptions::single(column, true))?;
    Ok(sorted.head(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::df;

    fn sample() -> DataFrame {
        df![
            ("name", Column::from_strings(vec!["b", "a", "c", "a"])),
            ("score", Column::from_opt_f64(vec![Some(2.0), Some(3.0), None, Some(1.0)])),
        ]
    }

    #[test]
    fn single_key_ascending() {
        let out = sort_values(&sample(), &SortOptions::single("score", true)).unwrap();
        assert_eq!(out.column("score").unwrap().get(0), Scalar::Float(1.0));
        // null last
        assert!(out.column("score").unwrap().column().is_null_at(3));
    }

    #[test]
    fn single_key_descending_nulls_still_last() {
        let out = sort_values(&sample(), &SortOptions::single("score", false)).unwrap();
        assert_eq!(out.column("score").unwrap().get(0), Scalar::Float(3.0));
        assert!(out.column("score").unwrap().column().is_null_at(3));
    }

    #[test]
    fn multi_key_with_mixed_directions() {
        let out = sort_values(
            &sample(),
            &SortOptions {
                by: vec!["name".into(), "score".into()],
                ascending: vec![true, false],
            },
        )
        .unwrap();
        // names: a, a, b, c; within the 'a's score desc: 3.0 then 1.0
        assert_eq!(out.column("name").unwrap().get(0), Scalar::Str("a".into()));
        assert_eq!(out.column("score").unwrap().get(0), Scalar::Float(3.0));
        assert_eq!(out.column("score").unwrap().get(1), Scalar::Float(1.0));
    }

    #[test]
    fn sort_is_stable() {
        let df = df![
            ("k", Column::from_i64(vec![1, 1, 1])),
            ("tag", Column::from_strings(vec!["first", "second", "third"])),
        ];
        let out = sort_values(&df, &SortOptions::single("k", true)).unwrap();
        assert_eq!(out.column("tag").unwrap().get(0), Scalar::Str("first".into()));
        assert_eq!(out.column("tag").unwrap().get(2), Scalar::Str("third".into()));
    }

    #[test]
    fn nlargest_nsmallest() {
        let top = nlargest(&sample(), 2, "score").unwrap();
        assert_eq!(top.num_rows(), 2);
        assert_eq!(top.column("score").unwrap().get(0), Scalar::Float(3.0));
        let bottom = nsmallest(&sample(), 1, "score").unwrap();
        assert_eq!(bottom.column("score").unwrap().get(0), Scalar::Float(1.0));
    }

    #[test]
    fn unknown_key_errors() {
        assert!(sort_values(&sample(), &SortOptions::single("ghost", true)).is_err());
    }
}
