//! The task graph (paper Figure 6): an arena of operator nodes with value
//! edges plus order edges between prints.

use crate::op::{LogicalOp, Value};
use lafp_backends::MemoryReservation;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Identifier of a node in the LaFP task graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A materialized node result with the memory reservation charging it.
#[derive(Debug)]
pub struct Materialized {
    /// The value.
    pub value: Value,
    /// The simulated-memory charge backing it (released when dropped).
    pub reservation: MemoryReservation,
}

/// One node of the task graph.
#[derive(Debug)]
pub struct Node {
    /// The operator.
    pub op: LogicalOp,
    /// Value inputs (data flows from input to this node).
    pub inputs: Vec<NodeId>,
    /// Order-only dependencies (print sequencing, §3.3): must execute
    /// before this node but contribute no data.
    pub order_deps: Vec<NodeId>,
    /// Persist this node's result across compute calls (§3.5).
    pub persist: bool,
    /// Cached result (set while executing; kept only for persisted nodes).
    pub result: Option<Materialized>,
}

/// The LaFP task-graph arena.
#[derive(Debug, Default)]
pub struct TaskGraph {
    nodes: Vec<Node>,
}

impl TaskGraph {
    /// Empty graph.
    pub fn new() -> TaskGraph {
        TaskGraph::default()
    }

    /// Number of nodes ever created.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes exist.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Add a node.
    pub fn add(&mut self, op: LogicalOp, inputs: Vec<NodeId>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            op,
            inputs,
            order_deps: Vec::new(),
            persist: false,
            result: None,
        });
        id
    }

    /// Add an order-only edge (`before` must run before `node`).
    pub fn add_order_dep(&mut self, node: NodeId, before: NodeId) {
        self.nodes[node.0].order_deps.push(before);
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Mutably borrow a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0]
    }

    /// All ids, in creation order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Nodes reachable from `roots` through value and order edges,
    /// stopping at nodes that already hold a result (they re-execute as
    /// constants). This is the implicit dead-node cull: unreachable nodes
    /// simply never execute.
    pub fn reachable(&self, roots: &[NodeId]) -> HashSet<NodeId> {
        let mut seen = HashSet::new();
        let mut stack: Vec<NodeId> = roots.to_vec();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            let node = &self.nodes[id.0];
            if node.result.is_some() {
                continue; // materialized: upstream not needed
            }
            stack.extend(node.inputs.iter().copied());
            stack.extend(node.order_deps.iter().copied());
        }
        seen
    }

    /// Like [`reachable`](Self::reachable) but ignoring existing results
    /// (used by liveness bookkeeping for persisted nodes).
    pub fn reachable_through_results(&self, roots: &[NodeId]) -> HashSet<NodeId> {
        let mut seen = HashSet::new();
        let mut stack: Vec<NodeId> = roots.to_vec();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            let node = &self.nodes[id.0];
            stack.extend(node.inputs.iter().copied());
            stack.extend(node.order_deps.iter().copied());
        }
        seen
    }

    /// Topological order of the subgraph reachable from `roots`
    /// (inputs and order deps before consumers).
    pub fn topo_order(&self, roots: &[NodeId]) -> Vec<NodeId> {
        let include = self.reachable(roots);
        let mut order = Vec::with_capacity(include.len());
        let mut state: HashMap<NodeId, u8> = HashMap::new();
        let mut stack: Vec<(NodeId, bool)> = roots.iter().map(|&r| (r, false)).collect();
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                state.insert(id, 2);
                order.push(id);
                continue;
            }
            if state.contains_key(&id) { continue }
            state.insert(id, 1);
            stack.push((id, true));
            let node = &self.nodes[id.0];
            if node.result.is_none() {
                for &dep in node.inputs.iter().chain(node.order_deps.iter()).rev() {
                    if include.contains(&dep) && !state.contains_key(&dep) {
                        stack.push((dep, false));
                    }
                }
            }
            let _ = include;
        }
        order
    }

    /// Consumers of each node within `subset` (value edges only), used for
    /// the ref-counted result clearing of §2.6.
    pub fn consumer_counts(&self, subset: &HashSet<NodeId>) -> HashMap<NodeId, usize> {
        let mut counts: HashMap<NodeId, usize> = HashMap::new();
        for &id in subset {
            let node = &self.nodes[id.0];
            if node.result.is_some() {
                continue;
            }
            for &input in &node.inputs {
                if subset.contains(&input) {
                    *counts.entry(input).or_default() += 1;
                }
            }
        }
        counts
    }

    /// All parents (value-edge consumers) of `id` in the whole graph.
    pub fn parents_of(&self, id: NodeId) -> Vec<NodeId> {
        self.ids()
            .filter(|&p| self.nodes[p.0].inputs.contains(&id))
            .collect()
    }

    /// Replace every value/order edge to `from` with `to` (CSE merging).
    pub fn redirect(&mut self, from: NodeId, to: NodeId) {
        for node in &mut self.nodes {
            for input in &mut node.inputs {
                if *input == from {
                    *input = to;
                }
            }
            for dep in &mut node.order_deps {
                if *dep == from {
                    *dep = to;
                }
            }
        }
    }

    /// Render the subgraph reachable from `roots` in dependency order,
    /// one node per line — a textual Figure 6.
    pub fn explain(&self, roots: &[NodeId]) -> String {
        let order = self.topo_order(roots);
        let mut out = String::new();
        for id in order {
            let node = &self.nodes[id.0];
            let inputs: Vec<String> = node.inputs.iter().map(|i| i.to_string()).collect();
            let deps = if node.order_deps.is_empty() {
                String::new()
            } else {
                format!(
                    " after[{}]",
                    node.order_deps
                        .iter()
                        .map(|d| d.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                )
            };
            let persist = if node.persist { " [persist]" } else { "" };
            let cached = if node.result.is_some() { " [cached]" } else { "" };
            out.push_str(&format!(
                "{id}: {} <- [{}]{deps}{persist}{cached}\n",
                node.op.label(),
                inputs.join(",")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lafp_expr::Expr;

    fn read_node() -> LogicalOp {
        LogicalOp::ReadCsv {
            path: "data.csv".into(),
            options: lafp_columnar::csv::CsvOptions::new(),
        }
    }

    #[test]
    fn build_and_reach() {
        let mut g = TaskGraph::new();
        let r = g.add(read_node(), vec![]);
        let f = g.add(
            LogicalOp::Filter(Expr::col("x").gt(Expr::lit_int(0))),
            vec![r],
        );
        let dead = g.add(LogicalOp::Head(5), vec![r]);
        let reach = g.reachable(&[f]);
        assert!(reach.contains(&r) && reach.contains(&f));
        assert!(!reach.contains(&dead));
    }

    #[test]
    fn topo_order_inputs_first() {
        let mut g = TaskGraph::new();
        let r = g.add(read_node(), vec![]);
        let f = g.add(
            LogicalOp::Filter(Expr::col("x").gt(Expr::lit_int(0))),
            vec![r],
        );
        let h = g.add(LogicalOp::Head(3), vec![f]);
        let order = g.topo_order(&[h]);
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(r) < pos(f));
        assert!(pos(f) < pos(h));
    }

    #[test]
    fn order_deps_respected_in_topo() {
        let mut g = TaskGraph::new();
        let r = g.add(read_node(), vec![]);
        let p1 = g.add(LogicalOp::Print(vec![]), vec![r]);
        let p2 = g.add(LogicalOp::Print(vec![]), vec![r]);
        g.add_order_dep(p2, p1);
        let order = g.topo_order(&[p2]);
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(p1) < pos(p2), "print order edge must sequence prints");
    }

    #[test]
    fn consumer_counts_for_refcounting() {
        let mut g = TaskGraph::new();
        let r = g.add(read_node(), vec![]);
        let a = g.add(LogicalOp::Head(1), vec![r]);
        let b = g.add(LogicalOp::Tail(1), vec![r]);
        let c = g.add(LogicalOp::Concat, vec![a, b]);
        let subset = g.reachable(&[c]);
        let counts = g.consumer_counts(&subset);
        assert_eq!(counts[&r], 2);
        assert_eq!(counts[&a], 1);
        assert_eq!(counts.get(&c), None);
    }

    #[test]
    fn redirect_rewires_edges() {
        let mut g = TaskGraph::new();
        let r1 = g.add(read_node(), vec![]);
        let r2 = g.add(read_node(), vec![]);
        let f = g.add(
            LogicalOp::Filter(Expr::col("x").gt(Expr::lit_int(0))),
            vec![r2],
        );
        g.redirect(r2, r1);
        assert_eq!(g.node(f).inputs, vec![r1]);
    }

    #[test]
    fn parents_of_counts_all_consumers() {
        let mut g = TaskGraph::new();
        let r = g.add(read_node(), vec![]);
        let _a = g.add(LogicalOp::Head(1), vec![r]);
        let _b = g.add(LogicalOp::Tail(1), vec![r]);
        assert_eq!(g.parents_of(r).len(), 2);
    }

    #[test]
    fn explain_renders_plan() {
        let mut g = TaskGraph::new();
        let r = g.add(read_node(), vec![]);
        let f = g.add(
            LogicalOp::Filter(Expr::col("fare").gt(Expr::lit_float(0.0))),
            vec![r],
        );
        let text = g.explain(&[f]);
        assert!(text.contains("read_csv"));
        assert!(text.contains("filter"));
        assert!(text.contains("df.fare"));
    }
}
