//! # lafp-meta
//!
//! The LaFP MetaStore (paper §3.6): per-dataset metadata — column types,
//! value ranges, distinct-count estimates (selectivity), approximate row
//! size and row count — computed by scanning the file once (in practice as
//! a background task) and stored in a sidecar file next to the dataset.
//! A stored entry is invalidated when the dataset's modification time
//! changes, exactly as the paper prescribes.
//!
//! The optimizer consumes this metadata to: pass `dtype=` to `read_csv`
//! (avoiding inference cost and picking cheaper types), declare
//! low-cardinality **read-only** string columns as `category`, and estimate
//! dataframe memory footprints for backend choice.
//!
//! The sidecar format is a deliberately tiny line-oriented `key=value`
//! text format (one section per column) rather than JSON, keeping the crate
//! inside the sanctioned dependency set.

#![warn(missing_docs)]

pub mod encoding;
pub mod faults;
pub mod fusion;
pub mod scan;
pub mod spill;
pub mod store;

pub use encoding::{EncodingSnapshot, EncodingStats};
pub use faults::{FaultPlan, FaultSite, FaultSnapshot};
pub use fusion::{FusionSnapshot, FusionStats};
pub use scan::compute_metadata;
pub use spill::{SpillSnapshot, SpillStats};
pub use store::{ColumnMeta, DatasetMeta, MetaStore};
