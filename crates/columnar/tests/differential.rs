//! Differential property tests: every vectorized kernel must produce
//! results identical to a naive `Scalar`-per-row reference implementation
//! (the seed-era algorithms), including null-handling edge cases. The
//! vectorization overhaul is only allowed to change the *cost* of a
//! kernel, never its result.

use lafp_columnar::column::{ArithOp, CmpOp};
use lafp_columnar::csv::{quote_field, read_csv, CsvOptions};
use lafp_columnar::groupby::{group_by, GroupBySpec};
use lafp_columnar::join::{merge, JoinKind};
use lafp_columnar::sort::{nlargest, nsmallest, sort_values, SortOptions};
use lafp_columnar::{AggKind, Column, DType, DataFrame, Scalar, Series};
use lafp_oracle::equiv;
use lafp_oracle::reference::{
    arith_ref, cast_ref, compare_ref, fillna_ref, group_by_ref, merge_ref,
    read_csv_infer_ref as read_csv_ref, slice_ref, sort_values_ref,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Input builders (values + null mask, zipped to the shorter length)
// ---------------------------------------------------------------------------

fn col_i64(vals: &[i64], nulls: &[bool]) -> Column {
    let n = vals.len().min(nulls.len());
    Column::from_opt_i64((0..n).map(|i| (!nulls[i]).then(|| vals[i])).collect())
}

fn col_f64(vals: &[f64], nulls: &[bool]) -> Column {
    let n = vals.len().min(nulls.len());
    Column::from_opt_f64((0..n).map(|i| (!nulls[i]).then(|| vals[i])).collect())
}

fn col_str(vals: &[String], nulls: &[bool]) -> Column {
    let n = vals.len().min(nulls.len());
    Column::from_opt_strings((0..n).map(|i| (!nulls[i]).then(|| vals[i].clone())).collect())
}

/// Representation-agnostic equivalence (see `lafp_oracle::equiv`):
/// same length, dtype, and per-row scalars (nulls equal nulls; NaN is
/// null). Thin 2-arg adapters over the shared 3-arg asserts.
fn assert_col_equiv(actual: &Column, expected: &Column) {
    equiv::assert_col_equiv(actual, expected, "column");
}

fn assert_frame_equiv(actual: &DataFrame, expected: &DataFrame) {
    equiv::assert_frame_equiv(actual, expected, "frame");
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

const OPS: [ArithOp; 5] = [
    ArithOp::Add,
    ArithOp::Sub,
    ArithOp::Mul,
    ArithOp::Div,
    ArithOp::Mod,
];

const CMPS: [CmpOp; 6] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];

proptest! {
    #[test]
    fn arith_i64_matches_reference(
        a in prop::collection::vec(-40i64..40, 0..90),
        b in prop::collection::vec(-40i64..40, 0..90),
        na in prop::collection::vec(any::<bool>(), 0..90),
        nb in prop::collection::vec(any::<bool>(), 0..90),
    ) {
        let n = a.len().min(b.len()).min(na.len()).min(nb.len());
        let left = col_i64(&a[..n], &na[..n]);
        let right = col_i64(&b[..n], &nb[..n]);
        for op in OPS {
            assert_col_equiv(&left.arith(op, &right).unwrap(), &arith_ref(&left, op, &right));
        }
    }

    #[test]
    fn arith_f64_matches_reference(
        a in prop::collection::vec(-100.0f64..100.0, 0..90),
        b in prop::collection::vec(-100.0f64..100.0, 0..90),
        na in prop::collection::vec(any::<bool>(), 0..90),
        nb in prop::collection::vec(any::<bool>(), 0..90),
    ) {
        let n = a.len().min(b.len()).min(na.len()).min(nb.len());
        let left = col_f64(&a[..n], &na[..n]);
        let right = col_f64(&b[..n], &nb[..n]);
        for op in OPS {
            assert_col_equiv(&left.arith(op, &right).unwrap(), &arith_ref(&left, op, &right));
        }
    }

    #[test]
    fn arith_mixed_matches_reference(
        a in prop::collection::vec(-40i64..40, 1..90),
        b in prop::collection::vec(-100.0f64..100.0, 1..90),
        na in prop::collection::vec(any::<bool>(), 1..90),
        nb in prop::collection::vec(any::<bool>(), 1..90),
    ) {
        let n = a.len().min(b.len()).min(na.len()).min(nb.len());
        let left = col_i64(&a[..n], &na[..n]);
        let right = col_f64(&b[..n], &nb[..n]);
        for op in OPS {
            assert_col_equiv(&left.arith(op, &right).unwrap(), &arith_ref(&left, op, &right));
            assert_col_equiv(&right.arith(op, &left).unwrap(), &arith_ref(&right, op, &left));
        }
    }

    #[test]
    fn compare_matches_reference(
        a in prop::collection::vec(-20i64..20, 0..90),
        b in prop::collection::vec(-20i64..20, 0..90),
        f in prop::collection::vec(-20.0f64..20.0, 0..90),
        na in prop::collection::vec(any::<bool>(), 0..90),
        nb in prop::collection::vec(any::<bool>(), 0..90),
    ) {
        let n = a.len().min(b.len()).min(f.len()).min(na.len()).min(nb.len());
        let ints_a = col_i64(&a[..n], &na[..n]);
        let ints_b = col_i64(&b[..n], &nb[..n]);
        let floats = col_f64(&f[..n], &nb[..n]);
        for op in CMPS {
            assert_eq!(ints_a.compare(op, &ints_b).unwrap(), compare_ref(&ints_a, op, &ints_b));
            assert_eq!(ints_a.compare(op, &floats).unwrap(), compare_ref(&ints_a, op, &floats));
            assert_eq!(floats.compare(op, &ints_b).unwrap(), compare_ref(&floats, op, &ints_b));
        }
    }

    #[test]
    fn compare_strings_matches_reference(
        a in prop::collection::vec("[abc]{0,3}", 0..60),
        b in prop::collection::vec("[abc]{0,3}", 0..60),
        na in prop::collection::vec(any::<bool>(), 0..60),
        nb in prop::collection::vec(any::<bool>(), 0..60),
    ) {
        let n = a.len().min(b.len()).min(na.len()).min(nb.len());
        let left = col_str(&a[..n], &na[..n]);
        let right = col_str(&b[..n], &nb[..n]);
        for op in CMPS {
            assert_eq!(left.compare(op, &right).unwrap(), compare_ref(&left, op, &right));
        }
    }

    #[test]
    fn fillna_matches_reference(
        a in prop::collection::vec(-40i64..40, 0..90),
        f in prop::collection::vec(-40.0f64..40.0, 0..90),
        na in prop::collection::vec(any::<bool>(), 0..90),
        fill in -10i64..10,
    ) {
        let n = a.len().min(f.len()).min(na.len());
        let ints = col_i64(&a[..n], &na[..n]);
        let floats = col_f64(&f[..n], &na[..n]);
        assert_col_equiv(
            &ints.fillna(&Scalar::Int(fill)).unwrap(),
            &fillna_ref(&ints, &Scalar::Int(fill)),
        );
        assert_col_equiv(
            &floats.fillna(&Scalar::Float(fill as f64)).unwrap(),
            &fillna_ref(&floats, &Scalar::Float(fill as f64)),
        );
        // Cross-dtype fill coerces like the builder did.
        assert_col_equiv(
            &floats.fillna(&Scalar::Int(fill)).unwrap(),
            &fillna_ref(&floats, &Scalar::Int(fill)),
        );
        // Null fill keeps nulls.
        assert_col_equiv(
            &ints.fillna(&Scalar::Null).unwrap(),
            &fillna_ref(&ints, &Scalar::Null),
        );
    }

    #[test]
    fn cast_matches_reference(
        a in prop::collection::vec(-40i64..40, 0..90),
        f in prop::collection::vec(-40.0f64..40.0, 0..90),
        na in prop::collection::vec(any::<bool>(), 0..90),
    ) {
        let n = a.len().min(f.len()).min(na.len());
        let ints = col_i64(&a[..n], &na[..n]);
        let floats = col_f64(&f[..n], &na[..n]);
        for (col, target) in [
            (&ints, DType::Float64),
            (&ints, DType::Utf8),
            (&ints, DType::Datetime),
            (&floats, DType::Int64),
            (&floats, DType::Utf8),
        ] {
            let expected = cast_ref(col, target).unwrap();
            assert_col_equiv(&col.cast(target).unwrap(), &expected);
        }
        // String round-trip: Utf8 -> Int64 parse.
        let strs = ints.cast(DType::Utf8).unwrap();
        assert_col_equiv(
            &strs.cast(DType::Int64).unwrap(),
            &cast_ref(&strs, DType::Int64).unwrap(),
        );
    }

    #[test]
    fn slice_matches_reference(
        a in prop::collection::vec(-40i64..40, 0..90),
        s in prop::collection::vec("[xy]{0,2}", 0..90),
        na in prop::collection::vec(any::<bool>(), 0..90),
        offset in 0usize..100,
        len in 0usize..100,
    ) {
        let n = a.len().min(s.len()).min(na.len());
        let ints = col_i64(&a[..n], &na[..n]);
        let strs = col_str(&s[..n], &na[..n]);
        assert_col_equiv(&ints.slice(offset, len), &slice_ref(&ints, offset, len));
        assert_col_equiv(&strs.slice(offset, len), &slice_ref(&strs, offset, len));
    }

    #[test]
    fn groupby_matches_reference(
        keys in prop::collection::vec(0i64..6, 1..120),
        skeys in prop::collection::vec("[ab]{1,2}", 1..120),
        vals in prop::collection::vec(-30i64..30, 1..120),
        nk in prop::collection::vec(any::<bool>(), 1..120),
        nv in prop::collection::vec(any::<bool>(), 1..120),
    ) {
        let n = keys.len().min(skeys.len()).min(vals.len()).min(nk.len()).min(nv.len());
        let frame = DataFrame::new(vec![
            Series::new("k", col_i64(&keys[..n], &nk[..n])),
            Series::new("s", col_str(&skeys[..n], &nk[..n])),
            Series::new("v", col_i64(&vals[..n], &nv[..n])),
        ])
        .unwrap();
        for agg in [
            AggKind::Sum,
            AggKind::Mean,
            AggKind::Count,
            AggKind::Min,
            AggKind::Max,
            AggKind::NUnique,
        ] {
            for keyset in [vec!["k".to_string()], vec!["s".into(), "k".into()]] {
                let spec = GroupBySpec {
                    keys: keyset,
                    value: "v".into(),
                    agg,
                };
                assert_frame_equiv(&group_by(&frame, &spec).unwrap(), &group_by_ref(&frame, &spec));
            }
        }
    }

    #[test]
    fn join_matches_reference(
        lk in prop::collection::vec(0i64..8, 1..60),
        rk in prop::collection::vec(0i64..8, 1..40),
        // The [abN] alphabet occasionally yields a literal "NaN" string,
        // which canonical key semantics equate with a null key.
        ls in prop::collection::vec("[abN]{0,3}", 1..60),
        rs in prop::collection::vec("[abN]{0,3}", 1..40),
        nl in prop::collection::vec(any::<bool>(), 1..60),
        nr in prop::collection::vec(any::<bool>(), 1..40),
        fv in prop::collection::vec(-50.0f64..50.0, 1..40),
        left_join in any::<bool>(),
    ) {
        let n = lk.len().min(ls.len()).min(nl.len());
        let m = rk.len().min(rs.len()).min(nr.len()).min(fv.len());
        // Overlapping non-key column "v" on both sides exercises the
        // _x/_y suffix path; "w" exercises the null-aware typed gather.
        let left = DataFrame::new(vec![
            Series::new("k", col_i64(&lk[..n], &nl[..n])),
            Series::new("s", col_str(&ls[..n], &nl[..n])),
            Series::new("v", col_i64(&lk[..n], &[false].repeat(n))),
        ])
        .unwrap();
        let right = DataFrame::new(vec![
            Series::new("k", col_i64(&rk[..m], &nr[..m])),
            Series::new("s", col_str(&rs[..m], &nr[..m])),
            Series::new("v", col_i64(&rk[..m], &[false].repeat(m))),
            Series::new("w", col_f64(&fv[..m], &nr[..m])),
        ])
        .unwrap();
        let how = if left_join { JoinKind::Left } else { JoinKind::Inner };
        for keys in [
            vec!["k".to_string()],
            vec!["s".to_string()],
            vec!["k".to_string(), "s".to_string()],
        ] {
            assert_frame_equiv(
                &merge(&left, &right, &keys, how).unwrap(),
                &merge_ref(&left, &right, &keys, how),
            );
        }
    }

    #[test]
    fn sort_matches_reference(
        iv in prop::collection::vec(-20i64..20, 1..80),
        fv in prop::collection::vec(-20.0f64..20.0, 1..80),
        sv in prop::collection::vec("[abc]{0,2}", 1..80),
        ni in prop::collection::vec(any::<bool>(), 1..80),
        nf in prop::collection::vec(any::<bool>(), 1..80),
        a1 in any::<bool>(),
        a2 in any::<bool>(),
        a3 in any::<bool>(),
    ) {
        let n = iv.len().min(fv.len()).min(sv.len()).min(ni.len()).min(nf.len());
        // "tag" is a unique row id: frame equivalence after sorting by it
        // proves the permutations (including tie order) are identical.
        let tags: Vec<i64> = (0..n as i64).collect();
        let frame = DataFrame::new(vec![
            Series::new("i", col_i64(&iv[..n], &ni[..n])),
            Series::new("f", col_f64(&fv[..n], &nf[..n])),
            Series::new("s", col_str(&sv[..n], &ni[..n])),
            Series::new("tag", col_i64(&tags, &[false].repeat(n))),
        ])
        .unwrap();
        for options in [
            SortOptions::single("i", a1),
            SortOptions::single("f", a2),
            SortOptions::single("s", a3),
            SortOptions {
                by: vec!["s".into(), "i".into()],
                ascending: vec![a1, a2],
            },
            SortOptions {
                by: vec!["i".into(), "f".into(), "s".into()],
                ascending: vec![a1, a2, a3],
            },
        ] {
            assert_frame_equiv(
                &sort_values(&frame, &options).unwrap(),
                &sort_values_ref(&frame, &options),
            );
        }
    }

    #[test]
    fn top_n_matches_reference(
        fv in prop::collection::vec(-50.0f64..50.0, 1..60),
        nf in prop::collection::vec(any::<bool>(), 1..60),
        n_top in 0usize..70,
    ) {
        let n = fv.len().min(nf.len());
        let tags: Vec<i64> = (0..n as i64).collect();
        let frame = DataFrame::new(vec![
            Series::new("f", col_f64(&fv[..n], &nf[..n])),
            Series::new("tag", col_i64(&tags, &[false].repeat(n))),
        ])
        .unwrap();
        assert_frame_equiv(
            &nlargest(&frame, n_top, "f").unwrap(),
            &sort_values_ref(&frame, &SortOptions::single("f", false)).head(n_top),
        );
        assert_frame_equiv(
            &nsmallest(&frame, n_top, "f").unwrap(),
            &sort_values_ref(&frame, &SortOptions::single("f", true)).head(n_top),
        );
    }

    #[test]
    fn csv_read_matches_reference(
        strs in prop::collection::vec("[ab,\" x]{0,6}", 1..40),
        ints in prop::collection::vec(-999i64..999, 1..40),
        int_nulls in prop::collection::vec(any::<bool>(), 1..40),
        floats in prop::collection::vec(-99.0f64..99.0, 1..40),
        project in any::<bool>(),
        force_utf8 in any::<bool>(),
    ) {
        let n = strs
            .len()
            .min(ints.len())
            .min(int_nulls.len())
            .min(floats.len());
        let mut content = String::from("a,b,c\n");
        for i in 0..n {
            let b = if int_nulls[i] {
                String::new() // empty field reads back as null
            } else {
                ints[i].to_string()
            };
            content.push_str(&format!(
                "{},{},{}\n",
                quote_field(&strs[i]),
                b,
                floats[i],
            ));
        }
        let dir = std::env::temp_dir().join("lafp-differential-csv");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!(
            "d{}.csv",
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::write(&path, &content).unwrap();
        let mut options = CsvOptions::new();
        if project {
            options = options.with_usecols(vec!["a".into(), "c".into()]);
        }
        if force_utf8 {
            options = options.with_dtype("a", DType::Utf8).with_dtype("c", DType::Utf8);
        }
        let actual = read_csv(&path, &options).unwrap();
        let expected = read_csv_ref(&path, &options);
        std::fs::remove_file(&path).ok();
        assert_frame_equiv(&actual, &expected);
    }

    #[test]
    fn groupby_streaming_and_merge_match_oneshot(
        keys in prop::collection::vec(0i64..5, 1..100),
        quarters in prop::collection::vec(-120i64..120, 1..100),
        nv in prop::collection::vec(any::<bool>(), 1..100),
        split in 0usize..100,
    ) {
        use lafp_columnar::groupby::GroupByAccumulator;
        // Dyadic values (multiples of 0.25): float addition over them is
        // exact at these magnitudes, so merge order cannot perturb sums
        // (plain reals would make merge-vs-oneshot equality too strict —
        // the seed accumulator was order-sensitive the same way).
        let vals: Vec<f64> = quarters.iter().map(|&q| q as f64 / 4.0).collect();
        let n = keys.len().min(vals.len()).min(nv.len());
        let frame = DataFrame::new(vec![
            Series::new("k", col_i64(&keys[..n], &[false].repeat(n))),
            Series::new("v", col_f64(&vals[..n], &nv[..n])),
        ])
        .unwrap();
        let split = split.min(n);
        for agg in [AggKind::Sum, AggKind::Mean, AggKind::Min, AggKind::NUnique] {
            let spec = GroupBySpec { keys: vec!["k".into()], value: "v".into(), agg };
            let whole = group_by(&frame, &spec).unwrap();
            // Streaming chunks.
            let mut acc = GroupByAccumulator::new(spec.clone());
            acc.update(&frame.slice(0, split)).unwrap();
            acc.update(&frame.slice(split, n - split)).unwrap();
            assert_frame_equiv(&acc.finish().unwrap(), &whole);
            // Parallel merge.
            let mut left = GroupByAccumulator::new(spec.clone());
            left.update(&frame.slice(0, split)).unwrap();
            let mut right = GroupByAccumulator::new(spec);
            right.update(&frame.slice(split, n - split)).unwrap();
            left.merge(&right);
            assert_frame_equiv(&left.finish().unwrap(), &whole);
        }
    }
}
