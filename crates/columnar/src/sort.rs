//! Multi-key sorting (pandas `sort_values`).
//!
//! The argsort is typed end to end: each key column is matched to a
//! borrowed view once, nulls are handled via the validity mask (floats
//! additionally treat NaN as null), and the comparators run over raw
//! `i64`/`f64` slices and arena byte ranges. No [`Scalar`](crate::Scalar) is boxed per
//! row — the
//! seed implementation materialized a `Vec<Scalar>` per key column and
//! dispatched `cmp_values` per comparison, which dominated the sort's
//! cost. A single-key sort takes a fast path that sorts indices directly
//! against one slice; `nlargest`/`nsmallest` use a partial
//! `select_nth_unstable`-based top-n instead of sorting the whole frame.
//!
//! Multi-key sorts additionally pack the leading keys into a single
//! `u64` *normalized key* per row (`NormKeys`): each key gets a lane
//! (order-preserving encoding + a null slot that sorts last in either
//! direction), stats-compressed so as many keys as possible fit
//! losslessly; one final lossy prefix lane may follow. Most comparisons
//! then resolve with one integer compare instead of one virtual-ish
//! dispatch per key — the multi-key comparator was the last ~1.4× soft
//! spot. A comparison only falls back to the typed comparators for the
//! keys the normalized key does not cover losslessly.
//!
//! [`sort_values_par`] runs the same argsort morsel-parallel: workers
//! sort per-morsel index runs under the (total, index-tie-broken)
//! normalized comparator, runs merge pairwise on the pool, and output
//! columns gather in parallel — the result is bit-identical to the
//! sequential stable sort at any thread count.

use crate::bitmap::Bitmap;
use crate::column::{Categorical, Column};
use crate::error::Result;
use crate::frame::DataFrame;
use crate::pool::{kernel_morsels, WorkerPool, PAR_MIN_ROWS};
use crate::series::Series;
use crate::strings::Utf8Col;
use std::cmp::Ordering;

/// Options for a `sort_values` call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortOptions {
    /// Key column names, highest priority first.
    pub by: Vec<String>,
    /// Per-key ascending flags; a single flag is broadcast over all keys.
    pub ascending: Vec<bool>,
}

impl SortOptions {
    /// Ascending sort on the given keys.
    pub fn ascending(by: Vec<String>) -> SortOptions {
        let n = by.len();
        SortOptions {
            by,
            ascending: vec![true; n],
        }
    }

    /// Single-key sort with a direction.
    pub fn single(key: impl Into<String>, ascending: bool) -> SortOptions {
        SortOptions {
            by: vec![key.into()],
            ascending: vec![ascending],
        }
    }

    fn dir(&self, k: usize) -> bool {
        self.ascending.get(k).copied().unwrap_or(
            self.ascending.first().copied().unwrap_or(true),
        )
    }
}

/// A borrowed typed view of one sort key column plus its direction.
/// Matched once per sort so every comparison runs over raw buffers.
struct SortKey<'a> {
    view: KeyData<'a>,
    validity: Option<&'a Bitmap>,
    ascending: bool,
}

enum KeyData<'a> {
    /// Int64 and Datetime both order by the raw `i64`.
    I64(&'a [i64]),
    F64(&'a [f64]),
    Bool(&'a Bitmap),
    Str(&'a Utf8Col),
    Cat(&'a Categorical),
}

impl<'a> SortKey<'a> {
    fn new(col: &'a Column, ascending: bool) -> SortKey<'a> {
        let (view, validity) = match col {
            Column::Int64(d, v) | Column::Datetime(d, v) => (KeyData::I64(d), v.as_ref()),
            Column::Float64(d, v) => (KeyData::F64(d), v.as_ref()),
            Column::Bool(d, v) => (KeyData::Bool(d), v.as_ref()),
            Column::Utf8(d, v) => (KeyData::Str(d), v.as_ref()),
            Column::Categorical(c, v) | Column::Dict(c, v) => (KeyData::Cat(c), v.as_ref()),
            // Sort entry points expand run-length keys before building
            // views; a borrowed view cannot own the expansion.
            Column::Rle(_) => unreachable!("RLE keys are decoded before view construction"),
        };
        SortKey {
            view,
            validity,
            ascending,
        }
    }

    #[inline]
    fn is_null(&self, i: usize) -> bool {
        if self.validity.is_some_and(|m| !m.get(i)) {
            return true;
        }
        matches!(&self.view, KeyData::F64(d) if d[i].is_nan())
    }

    /// Compare two non-null rows in this key's direction.
    #[inline]
    fn cmp_valid(&self, a: usize, b: usize) -> Ordering {
        let ord = match &self.view {
            KeyData::I64(d) => d[a].cmp(&d[b]),
            KeyData::F64(d) => d[a].partial_cmp(&d[b]).unwrap_or(Ordering::Equal),
            KeyData::Bool(d) => d.get(a).cmp(&d.get(b)),
            KeyData::Str(d) => d.bytes_at(a).cmp(d.bytes_at(b)),
            KeyData::Cat(c) => c
                .dict
                .bytes_at(c.codes[a] as usize)
                .cmp(c.dict.bytes_at(c.codes[b] as usize)),
        };
        if self.ascending {
            ord
        } else {
            ord.reverse()
        }
    }

    /// Full row comparison: nulls sort last regardless of direction
    /// (pandas `na_position='last'` default).
    #[inline]
    fn cmp_rows(&self, a: usize, b: usize) -> Ordering {
        match (self.is_null(a), self.is_null(b)) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => self.cmp_valid(a, b),
        }
    }
}

/// The resolved sort keys of one frame under a [`SortOptions`],
/// reusable across many comparisons. Built once per run cursor by an
/// external (spilled) sort's k-way merge, so the per-comparison cost is
/// the same typed dispatch [`sort_values`] pays — no per-row name
/// lookups and no boxed scalars.
pub struct FrameSortKeys<'a> {
    keys: Vec<SortKey<'a>>,
}

impl<'a> FrameSortKeys<'a> {
    /// Resolve `options`' key columns against `frame`.
    pub fn resolve(frame: &'a DataFrame, options: &SortOptions) -> Result<FrameSortKeys<'a>> {
        Ok(FrameSortKeys {
            keys: sort_keys(frame, options)?,
        })
    }
}

/// Compare row `ai` under keys `a` with row `bi` under keys `b` —
/// the cross-frame comparator an external sort-merge needs. Semantics
/// match [`sort_values`] exactly: keys compare lexicographically, nulls
/// (and float `NaN`) sort last regardless of direction, strings and
/// categoricals compare raw bytes, descending keys reverse. The two
/// sides are chunks of one logical frame; panics if a key's dtypes
/// disagree across them.
pub fn cmp_rows_across(
    a: &FrameSortKeys<'_>,
    ai: usize,
    b: &FrameSortKeys<'_>,
    bi: usize,
) -> Ordering {
    for (ka, kb) in a.keys.iter().zip(&b.keys) {
        let ord = match (ka.is_null(ai), kb.is_null(bi)) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => {
                let ord = match (&ka.view, &kb.view) {
                    (KeyData::I64(x), KeyData::I64(y)) => x[ai].cmp(&y[bi]),
                    (KeyData::F64(x), KeyData::F64(y)) => {
                        x[ai].partial_cmp(&y[bi]).unwrap_or(Ordering::Equal)
                    }
                    (KeyData::Bool(x), KeyData::Bool(y)) => x.get(ai).cmp(&y.get(bi)),
                    // String-class keys all compare raw bytes, so Utf8
                    // and Categorical chunks interoperate.
                    (KeyData::Str(_) | KeyData::Cat(_), KeyData::Str(_) | KeyData::Cat(_)) => {
                        key_bytes(ka, ai).cmp(key_bytes(kb, bi))
                    }
                    _ => panic!("cmp_rows_across: key dtype mismatch between chunks"),
                };
                if ka.ascending {
                    ord
                } else {
                    ord.reverse()
                }
            }
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Raw bytes of a non-null string-class key row.
#[inline]
fn key_bytes<'a>(key: &'a SortKey<'_>, i: usize) -> &'a [u8] {
    match &key.view {
        KeyData::Str(d) => d.bytes_at(i),
        KeyData::Cat(c) => c.dict.bytes_at(c.codes[i] as usize),
        _ => unreachable!("key_bytes on non-string key"),
    }
}

// ---------------------------------------------------------------------------
// Normalized keys
// ---------------------------------------------------------------------------

/// Layout of one key's lane inside the packed `u64` normalized key.
#[derive(Debug, Clone, Copy)]
struct LanePlan {
    /// Lane width in bits (≥ 1; the null slot is part of the domain).
    bits: u32,
    /// How row values map into the lane.
    kind: LaneKind,
}

#[derive(Debug, Clone, Copy)]
enum LaneKind {
    /// Range-compressed order-preserving integer image:
    /// `enc = monotone(v) - min`, null = `range + 1` (sorts last). The
    /// lane is lossless — lane equality implies key equality.
    Monotone {
        /// Minimum monotone image over the non-null rows.
        min: u64,
        /// `max - min` over the non-null rows.
        range: u64,
    },
    /// Zero-padded big-endian string bytes (lossless: every value fits
    /// in `bytes` and contains no NUL, and 0xFF never appears in UTF-8,
    /// so null = `1 << (8 * bytes)` sorts after every value).
    StrBytes {
        /// Payload bytes per value.
        bytes: u32,
    },
    /// Final lossy lane: the top `bits - 1` bits of the full 64-bit
    /// monotone image (numeric) or 8-byte prefix (strings); the lane's
    /// top bit flags null. Lane inequality still orders correctly; lane
    /// equality defers to the typed fallback comparator.
    Lossy,
}

/// The packed normalized keys of a sort: one `u64` per row, plus the
/// index of the first key the packing does *not* cover losslessly
/// (comparisons that tie on the normalized key re-compare keys from
/// `fallback_start` on with the typed comparators).
struct NormKeys {
    values: Vec<u64>,
    fallback_start: usize,
}

const SIGN_FLIP: u64 = 1 << 63;

/// Is this key string-class (compared by string bytes)?
fn is_string_key(key: &SortKey<'_>) -> bool {
    matches!(key.view, KeyData::Str(_) | KeyData::Cat(_))
}

/// Order-preserving `u64` image of a non-null numeric-class row:
/// `a < b  ⟺  monotone(a) < monotone(b)` under the key's value order.
#[inline]
fn monotone_at(key: &SortKey<'_>, i: usize) -> u64 {
    match &key.view {
        KeyData::I64(d) => (d[i] as u64) ^ SIGN_FLIP,
        KeyData::F64(d) => {
            // Normalize -0.0: the comparator treats it equal to 0.0, so
            // the encoding must too.
            let v = if d[i] == 0.0 { 0.0 } else { d[i] };
            let b = v.to_bits();
            if b >> 63 == 1 {
                !b
            } else {
                b | SIGN_FLIP
            }
        }
        KeyData::Bool(d) => d.get(i) as u64,
        KeyData::Str(_) | KeyData::Cat(_) => unreachable!("monotone_at on string key"),
    }
}

/// The string value of a non-null string-class row.
#[inline]
fn str_at<'a>(key: &'a SortKey<'_>, i: usize) -> &'a str {
    match &key.view {
        KeyData::Str(d) => d.get(i),
        KeyData::Cat(c) => c.dict.get(c.codes[i] as usize),
        _ => unreachable!("str_at on non-string key"),
    }
}

/// First 8 bytes of `s`, big-endian, zero-padded (an order-consistent
/// prefix: prefix(a) < prefix(b) implies a < b).
#[inline]
fn str_prefix64(s: &str) -> u64 {
    let b = s.as_bytes();
    let mut v = 0u64;
    for k in 0..8 {
        v = (v << 8) | b.get(k).copied().unwrap_or(0) as u64;
    }
    v
}

/// `s` packed into `bytes` big-endian bytes (caller guarantees it fits).
#[inline]
fn str_bytes_enc(s: &str, bytes: u32) -> u64 {
    let b = s.as_bytes();
    let mut v = 0u64;
    for k in 0..bytes as usize {
        v = (v << 8) | b.get(k).copied().unwrap_or(0) as u64;
    }
    v
}

/// All-ones value of `bits` bits (`bits ≤ 64`).
#[inline]
fn ones(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Min/max of the monotone image over non-null rows (morsel-parallel);
/// `None` when every row is null.
fn numeric_stats(key: &SortKey<'_>, n: usize, pool: &WorkerPool) -> Option<(u64, u64)> {
    let morsels = kernel_morsels(n, pool.threads());
    let partials: Vec<Option<(u64, u64)>> = pool.map(morsels, |_, (start, len)| {
        let mut mn = u64::MAX;
        let mut mx = 0u64;
        let mut any = false;
        for i in start..start + len {
            if !key.is_null(i) {
                let m = monotone_at(key, i);
                mn = mn.min(m);
                mx = mx.max(m);
                any = true;
            }
        }
        any.then_some((mn, mx))
    });
    partials
        .into_iter()
        .flatten()
        .reduce(|(amn, amx), (bmn, bmx)| (amn.min(bmn), amx.max(bmx)))
}

/// Max byte length and NUL-byte presence over a string key's values.
/// Categoricals scan their (small) dictionary; Utf8 scans row values
/// morsel-parallel (null slots hold `""` and contribute nothing).
fn string_stats(key: &SortKey<'_>, n: usize, pool: &WorkerPool) -> (usize, bool) {
    match &key.view {
        KeyData::Cat(c) => (0..c.dict.len())
            .map(|d| c.dict.bytes_at(d))
            .fold((0usize, false), |(len, nul), s| {
                (len.max(s.len()), nul || s.contains(&0))
            }),
        KeyData::Str(d) => {
            let morsels = kernel_morsels(n, pool.threads());
            let partials: Vec<(usize, bool)> = pool.map(morsels, |_, (start, len)| {
                (start..start + len)
                    .map(|i| d.bytes_at(i))
                    .fold((0usize, false), |(l, nul), s| {
                        (l.max(s.len()), nul || s.contains(&0))
                    })
            });
            partials
                .into_iter()
                .fold((0, false), |(l, nul), (pl, pn)| (l.max(pl), nul || pn))
        }
        _ => unreachable!("string_stats on non-string key"),
    }
}

/// Plan the lanes: pack keys in order while they fit losslessly in the
/// remaining bits; at most one final lossy lane follows. Returns the
/// plans plus the count of losslessly covered leading keys.
fn plan_lanes(
    keys: &[SortKey<'_>],
    n: usize,
    pool: &WorkerPool,
) -> (Vec<LanePlan>, usize) {
    let mut lanes: Vec<LanePlan> = Vec::with_capacity(keys.len());
    let mut remaining = 64u32;
    let mut covered = 0usize;
    for key in keys {
        if remaining < 2 {
            break;
        }
        if is_string_key(key) {
            let (max_len, has_nul) = string_stats(key, n, pool);
            let bits = 8 * max_len as u32 + 1;
            if !has_nul && max_len <= 7 && bits <= remaining {
                lanes.push(LanePlan {
                    bits,
                    kind: LaneKind::StrBytes {
                        bytes: max_len as u32,
                    },
                });
                remaining -= bits;
                covered += 1;
                continue;
            }
        } else {
            match numeric_stats(key, n, pool) {
                None => {
                    // Every row null: one bit holds the null flag.
                    lanes.push(LanePlan {
                        bits: 1,
                        kind: LaneKind::Monotone { min: 0, range: 0 },
                    });
                    remaining -= 1;
                    covered += 1;
                    continue;
                }
                Some((min, max)) => {
                    let range = max - min;
                    if range < u64::MAX {
                        // Max lane value is `range + 1` (the null slot).
                        let bits = 64 - (range + 1).leading_zeros();
                        if bits <= remaining {
                            lanes.push(LanePlan {
                                bits,
                                kind: LaneKind::Monotone { min, range },
                            });
                            remaining -= bits;
                            covered += 1;
                            continue;
                        }
                    }
                }
            }
        }
        // Lossless packing didn't fit: spend what's left on a lossy
        // prefix of this key, then stop — later lanes would be unsound
        // (a lossy tie must defer to the fallback comparator).
        lanes.push(LanePlan {
            bits: remaining,
            kind: LaneKind::Lossy,
        });
        break;
    }
    (lanes, covered)
}

/// Pack row `i`'s lanes into one `u64`.
#[inline]
fn norm_at(keys: &[SortKey<'_>], lanes: &[LanePlan], i: usize) -> u64 {
    let mut out = 0u64;
    for (key, lane) in keys.iter().zip(lanes) {
        let v = if key.is_null(i) {
            // Nulls sort last regardless of direction.
            match lane.kind {
                LaneKind::Monotone { range, .. } => range.wrapping_add(1),
                LaneKind::StrBytes { bytes } => 1u64 << (8 * bytes),
                LaneKind::Lossy => 1u64 << (lane.bits - 1),
            }
        } else {
            match lane.kind {
                LaneKind::Monotone { min, range } => {
                    let e = monotone_at(key, i) - min;
                    if key.ascending {
                        e
                    } else {
                        range - e
                    }
                }
                LaneKind::StrBytes { bytes } => {
                    let e = str_bytes_enc(str_at(key, i), bytes);
                    if key.ascending {
                        e
                    } else {
                        ones(8 * bytes) - e
                    }
                }
                LaneKind::Lossy => {
                    let full = if is_string_key(key) {
                        str_prefix64(str_at(key, i))
                    } else {
                        monotone_at(key, i)
                    };
                    let adjusted = if key.ascending { full } else { !full };
                    adjusted >> (64 - (lane.bits - 1))
                }
            }
        };
        out = if lane.bits >= 64 { v } else { (out << lane.bits) | v };
    }
    out
}

impl NormKeys {
    /// Build the normalized keys for `n` rows (lane stats and the fill
    /// pass both run morsel-parallel on `pool`).
    fn build(keys: &[SortKey<'_>], n: usize, pool: &WorkerPool) -> NormKeys {
        let (lanes, covered) = plan_lanes(keys, n, pool);
        let mut values = vec![0u64; n];
        if !lanes.is_empty() {
            let morsels = kernel_morsels(n, pool.threads());
            let chunks = crate::pool::split_mut_chunks(&mut values, &morsels);
            pool.map(chunks, |_, (start, chunk)| {
                for (j, slot) in chunk.iter_mut().enumerate() {
                    *slot = norm_at(keys, &lanes, start + j);
                }
            });
        }
        NormKeys {
            values,
            fallback_start: covered,
        }
    }
}

/// Typed lexicographic comparison over `keys` (the fallback tail).
#[inline]
fn cmp_keys(keys: &[SortKey<'_>], a: usize, b: usize) -> Ordering {
    for key in keys {
        let ord = key.cmp_rows(a, b);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Stable argsort of `0..n` under the composed key comparators.
fn argsort(keys: &[SortKey<'_>], n: usize) -> Vec<usize> {
    if let [key] = keys {
        return argsort_single(key, n);
    }
    let mut order: Vec<usize> = (0..n).collect();
    if keys.is_empty() {
        return order;
    }
    // Normalized-key comparator: one u64 compare resolves the covered
    // keys; only normalized ties re-compare the uncovered tail.
    let norm = NormKeys::build(keys, n, &WorkerPool::sequential());
    let tail = &keys[norm.fallback_start..];
    let values = &norm.values;
    if tail.is_empty() {
        order.sort_by(|&a, &b| values[a].cmp(&values[b]));
    } else {
        order.sort_by(|&a, &b| values[a].cmp(&values[b]).then_with(|| cmp_keys(tail, a, b)));
    }
    order
}

/// Parallel argsort: per-morsel index runs sorted under the total
/// (index-tie-broken) normalized comparator, merged pairwise on the
/// pool. The total order makes the merged result exactly the stable
/// sequential argsort.
fn argsort_par(keys: &[SortKey<'_>], n: usize, pool: &WorkerPool) -> Vec<usize> {
    let norm = NormKeys::build(keys, n, pool);
    let tail = &keys[norm.fallback_start..];
    let values = &norm.values;
    let cmp_total = |a: usize, b: usize| {
        values[a]
            .cmp(&values[b])
            .then_with(|| cmp_keys(tail, a, b))
            .then_with(|| a.cmp(&b))
    };
    let morsels = kernel_morsels(n, pool.threads());
    let mut runs: Vec<Vec<usize>> = pool.map(morsels, |_, (start, len)| {
        let mut idx: Vec<usize> = (start..start + len).collect();
        idx.sort_unstable_by(|&a, &b| cmp_total(a, b));
        idx
    });
    while runs.len() > 1 {
        let mut pairs: Vec<(Vec<usize>, Option<Vec<usize>>)> =
            Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            pairs.push((a, it.next()));
        }
        runs = pool.map(pairs, |_, (a, b)| match b {
            Some(b) => merge_runs(&a, &b, &cmp_total),
            None => a,
        });
    }
    runs.pop().unwrap_or_default()
}

/// Merge two runs sorted under the total comparator.
fn merge_runs(
    a: &[usize],
    b: &[usize],
    cmp: &impl Fn(usize, usize) -> Ordering,
) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if cmp(a[i], b[j]) != Ordering::Greater {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Single-key fast path: partition null rows off (stable, nulls last),
/// then sort the valid indices directly against the one raw slice.
fn argsort_single(key: &SortKey<'_>, n: usize) -> Vec<usize> {
    let mut valid: Vec<usize> = Vec::with_capacity(n);
    let mut nulls: Vec<usize> = Vec::new();
    if key.validity.is_none() && !matches!(key.view, KeyData::F64(_)) {
        valid.extend(0..n);
    } else {
        for i in 0..n {
            if key.is_null(i) {
                nulls.push(i);
            } else {
                valid.push(i);
            }
        }
    }
    // Stable sorts keep ties in row order in both directions, exactly as
    // the seed's `sort_by` with a reversed comparator did.
    match &key.view {
        KeyData::I64(d) => {
            if key.ascending {
                valid.sort_by_key(|&i| d[i]);
            } else {
                valid.sort_by_key(|&i| std::cmp::Reverse(d[i]));
            }
        }
        KeyData::F64(d) => {
            // Valid rows exclude NaN, so partial_cmp is total here.
            if key.ascending {
                valid.sort_by(|&a, &b| d[a].partial_cmp(&d[b]).unwrap_or(Ordering::Equal));
            } else {
                valid.sort_by(|&a, &b| d[b].partial_cmp(&d[a]).unwrap_or(Ordering::Equal));
            }
        }
        KeyData::Bool(d) => {
            if key.ascending {
                valid.sort_by_key(|&i| d.get(i));
            } else {
                valid.sort_by_key(|&i| std::cmp::Reverse(d.get(i)));
            }
        }
        KeyData::Str(d) => {
            if key.ascending {
                valid.sort_by(|&a, &b| d.bytes_at(a).cmp(d.bytes_at(b)));
            } else {
                valid.sort_by(|&a, &b| d.bytes_at(b).cmp(d.bytes_at(a)));
            }
        }
        KeyData::Cat(c) => {
            // Order codes through a per-entry rank table: one (small)
            // dictionary sort, then each row compares by u32 rank instead
            // of byte-comparing arena strings at every sort step.
            // Byte-equal entries share a rank, so ties keep row order
            // exactly as the direct byte comparison did.
            let mut entry_order: Vec<u32> = (0..c.dict.len() as u32).collect();
            entry_order.sort_by(|&a, &b| {
                c.dict.bytes_at(a as usize).cmp(c.dict.bytes_at(b as usize))
            });
            let mut rank = vec![0u32; c.dict.len()];
            let mut r = 0u32;
            for (k, &e) in entry_order.iter().enumerate() {
                if k > 0
                    && c.dict.bytes_at(e as usize)
                        != c.dict.bytes_at(entry_order[k - 1] as usize)
                {
                    r += 1;
                }
                rank[e as usize] = r;
            }
            if key.ascending {
                valid.sort_by_key(|&i| rank[c.codes[i] as usize]);
            } else {
                valid.sort_by_key(|&i| std::cmp::Reverse(rank[c.codes[i] as usize]));
            }
        }
    }
    valid.extend(nulls);
    valid
}

/// Resolve the key columns and directions of `options` against `frame`.
fn sort_keys<'a>(frame: &'a DataFrame, options: &SortOptions) -> Result<Vec<SortKey<'a>>> {
    options
        .by
        .iter()
        .enumerate()
        .map(|(k, name)| {
            frame
                .column(name)
                .map(|s| SortKey::new(s.column(), options.dir(k)))
        })
        .collect()
}

/// Run-length key columns expanded to plain rows (dictionary keys pass
/// through; the sort machinery orders their codes natively). The
/// returned storage outlives the borrowed [`SortKey`] views built on it.
fn plain_key_storage<'a>(
    frame: &'a DataFrame,
    options: &SortOptions,
) -> Result<Vec<std::borrow::Cow<'a, Column>>> {
    options
        .by
        .iter()
        .map(|name| frame.column(name).map(|s| s.column().rle_decoded()))
        .collect()
}

/// Build the per-key views over pre-resolved key storage.
fn keys_from_storage<'a>(
    storage: &'a [std::borrow::Cow<'a, Column>],
    options: &SortOptions,
) -> Vec<SortKey<'a>> {
    storage
        .iter()
        .enumerate()
        .map(|(k, c)| SortKey::new(c.as_ref(), options.dir(k)))
        .collect()
}

/// Stable multi-key sort; nulls sort last regardless of direction
/// (pandas `na_position='last'` default).
pub fn sort_values(frame: &DataFrame, options: &SortOptions) -> Result<DataFrame> {
    let storage = plain_key_storage(frame, options)?;
    let keys = keys_from_storage(&storage, options);
    let order = argsort(&keys, frame.num_rows());
    frame.take(&order)
}

/// [`sort_values`] driven through a worker pool: normalized keys fill
/// morsel-parallel, per-morsel index runs sort concurrently and merge
/// pairwise, and the output permutation gathers each column on the
/// pool. Bit-identical to the sequential stable sort at any thread
/// count (the merge comparator is total, tie-broken by row index).
pub fn sort_values_par(
    frame: &DataFrame,
    options: &SortOptions,
    pool: &WorkerPool,
) -> Result<DataFrame> {
    let rows = frame.num_rows();
    if !pool.is_parallel() || rows < PAR_MIN_ROWS || options.by.is_empty() {
        return sort_values(frame, options);
    }
    let storage = plain_key_storage(frame, options)?;
    let keys = keys_from_storage(&storage, options);
    let order = argsort_par(&keys, rows, pool);
    drop(keys);
    drop(storage);
    // Gather the sorted frame column-parallel; the permutation indexes
    // are in bounds by construction.
    let series: Vec<&Series> = frame.series().iter().collect();
    let cols = pool.map(series, |_, s| {
        Series::new(s.name(), s.column().take_unchecked(&order))
    });
    DataFrame::new(cols)
}

/// Partial top-n: the `n` rows that would head the full stable sort in
/// `options`' (single-key) direction, in sorted order. Uses
/// `select_nth_unstable` with an index tie-break — the tie-break makes
/// the comparator total, so the unstable selection reproduces the stable
/// sort's prefix exactly.
fn top_n(frame: &DataFrame, n: usize, column: &str, ascending: bool) -> Result<DataFrame> {
    let options = SortOptions::single(column, ascending);
    let rows = frame.num_rows();
    if n >= rows {
        return sort_values(frame, &options);
    }
    let storage = plain_key_storage(frame, &options)?;
    let keys = keys_from_storage(&storage, &options);
    let key = &keys[0];
    if n == 0 {
        return frame.take(&[]);
    }
    let cmp = |a: &usize, b: &usize| key.cmp_rows(*a, *b).then(a.cmp(b));
    let mut idx: Vec<usize> = (0..rows).collect();
    idx.select_nth_unstable_by(n - 1, cmp);
    let mut top = idx[..n].to_vec();
    top.sort_unstable_by(cmp);
    frame.take(&top)
}

/// `df.nlargest(n, col)` — top-n by one column, descending.
pub fn nlargest(frame: &DataFrame, n: usize, column: &str) -> Result<DataFrame> {
    top_n(frame, n, column, false)
}

/// `df.nsmallest(n, col)` — bottom-n by one column, ascending.
pub fn nsmallest(frame: &DataFrame, n: usize, column: &str) -> Result<DataFrame> {
    top_n(frame, n, column, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::df;
    use crate::value::Scalar;

    fn sample() -> DataFrame {
        df![
            ("name", Column::from_strings(vec!["b", "a", "c", "a"])),
            ("score", Column::from_opt_f64(vec![Some(2.0), Some(3.0), None, Some(1.0)])),
        ]
    }

    #[test]
    fn single_key_ascending() {
        let out = sort_values(&sample(), &SortOptions::single("score", true)).unwrap();
        assert_eq!(out.column("score").unwrap().get(0), Scalar::Float(1.0));
        // null last
        assert!(out.column("score").unwrap().column().is_null_at(3));
    }

    #[test]
    fn single_key_descending_nulls_still_last() {
        let out = sort_values(&sample(), &SortOptions::single("score", false)).unwrap();
        assert_eq!(out.column("score").unwrap().get(0), Scalar::Float(3.0));
        assert!(out.column("score").unwrap().column().is_null_at(3));
    }

    #[test]
    fn multi_key_with_mixed_directions() {
        let out = sort_values(
            &sample(),
            &SortOptions {
                by: vec!["name".into(), "score".into()],
                ascending: vec![true, false],
            },
        )
        .unwrap();
        // names: a, a, b, c; within the 'a's score desc: 3.0 then 1.0
        assert_eq!(out.column("name").unwrap().get(0), Scalar::Str("a".into()));
        assert_eq!(out.column("score").unwrap().get(0), Scalar::Float(3.0));
        assert_eq!(out.column("score").unwrap().get(1), Scalar::Float(1.0));
    }

    #[test]
    fn sort_is_stable() {
        let df = df![
            ("k", Column::from_i64(vec![1, 1, 1])),
            ("tag", Column::from_strings(vec!["first", "second", "third"])),
        ];
        let out = sort_values(&df, &SortOptions::single("k", true)).unwrap();
        assert_eq!(out.column("tag").unwrap().get(0), Scalar::Str("first".into()));
        assert_eq!(out.column("tag").unwrap().get(2), Scalar::Str("third".into()));
    }

    #[test]
    fn descending_ties_keep_row_order() {
        let df = df![
            ("k", Column::from_i64(vec![2, 1, 2, 1])),
            ("tag", Column::from_strings(vec!["a", "b", "c", "d"])),
        ];
        let out = sort_values(&df, &SortOptions::single("k", false)).unwrap();
        // ties within k=2 and k=1 keep original row order
        assert_eq!(out.column("tag").unwrap().get(0), Scalar::Str("a".into()));
        assert_eq!(out.column("tag").unwrap().get(1), Scalar::Str("c".into()));
        assert_eq!(out.column("tag").unwrap().get(2), Scalar::Str("b".into()));
        assert_eq!(out.column("tag").unwrap().get(3), Scalar::Str("d".into()));
    }

    #[test]
    fn nlargest_nsmallest() {
        let top = nlargest(&sample(), 2, "score").unwrap();
        assert_eq!(top.num_rows(), 2);
        assert_eq!(top.column("score").unwrap().get(0), Scalar::Float(3.0));
        let bottom = nsmallest(&sample(), 1, "score").unwrap();
        assert_eq!(bottom.column("score").unwrap().get(0), Scalar::Float(1.0));
    }

    #[test]
    fn top_n_matches_full_sort_with_duplicates() {
        let df = df![
            ("k", Column::from_i64(vec![3, 1, 3, 2, 3, 1, 2])),
            ("tag", Column::from_strings(vec!["a", "b", "c", "d", "e", "f", "g"])),
        ];
        for n in 0..=7 {
            let top = nlargest(&df, n, "k").unwrap();
            let full = sort_values(&df, &SortOptions::single("k", false)).unwrap().head(n);
            assert_eq!(top, full, "nlargest({n})");
            let bottom = nsmallest(&df, n, "k").unwrap();
            let full = sort_values(&df, &SortOptions::single("k", true)).unwrap().head(n);
            assert_eq!(bottom, full, "nsmallest({n})");
        }
    }

    #[test]
    fn top_n_with_nulls_matches_full_sort() {
        let df = df![
            ("k", Column::from_opt_f64(vec![Some(2.0), None, Some(5.0), None, Some(1.0)])),
        ];
        for n in 0..=5 {
            let top = nlargest(&df, n, "k").unwrap();
            let full = sort_values(&df, &SortOptions::single("k", false)).unwrap().head(n);
            // NaN payloads defeat derived equality; compare row scalars.
            assert_eq!(top.shape(), full.shape(), "nlargest({n}) with nulls");
            for i in 0..top.num_rows() {
                let (a, b) = (top.column("k").unwrap().get(i), full.column("k").unwrap().get(i));
                assert!(
                    (a.is_null() && b.is_null()) || a == b,
                    "nlargest({n}) row {i}: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn sort_all_dtypes() {
        let cat = Column::from_strings(vec!["b", "a", "c"]).to_categorical().unwrap();
        let df = df![
            ("i", Column::from_i64(vec![3, 1, 2])),
            ("d", Column::from_datetimes(vec![30, 10, 20])),
            ("b", Column::from_bool(vec![true, false, true])),
            ("s", Column::from_strings(vec!["z", "x", "y"])),
            ("c", cat),
        ];
        for key in ["i", "d", "b", "s", "c"] {
            let out = sort_values(&df, &SortOptions::single(key, true)).unwrap();
            assert_eq!(out.num_rows(), 3, "{key}");
            let first = out.column(key).unwrap().get(0);
            let last = out.column(key).unwrap().get(2);
            assert!(first.cmp_values(&last).is_le(), "{key}: {first:?} <= {last:?}");
        }
    }

    #[test]
    fn unknown_key_errors() {
        assert!(sort_values(&sample(), &SortOptions::single("ghost", true)).is_err());
    }

    /// The cross-frame comparator must order any pair of rows exactly as
    /// the in-frame comparator orders them after concatenation.
    #[test]
    fn cmp_rows_across_matches_in_frame_sort() {
        let a = df![
            ("k", Column::from_opt_f64(vec![Some(2.0), None, Some(1.0)])),
            ("s", Column::from_strings(vec!["x", "y", "x"])),
        ];
        let b = df![
            ("k", Column::from_opt_f64(vec![Some(2.0), Some(f64::NAN), Some(0.5)])),
            ("s", Column::from_strings(vec!["w", "z", "x"])),
        ];
        for ascending in [true, false] {
            let options = SortOptions {
                by: vec!["k".into(), "s".into()],
                ascending: vec![ascending, true],
            };
            let ka = FrameSortKeys::resolve(&a, &options).unwrap();
            let kb = FrameSortKeys::resolve(&b, &options).unwrap();
            let keys_a = sort_keys(&a, &options).unwrap();
            let keys_b = sort_keys(&b, &options).unwrap();
            for i in 0..3 {
                for j in 0..3 {
                    // Reference: compare via each frame's own typed keys
                    // against itself (rows i of a vs j of b must order the
                    // same as the concatenated frame would order rows i
                    // and 3 + j).
                    let concat = a.concat(&b).unwrap();
                    let kc = sort_keys(&concat, &options).unwrap();
                    let expect = cmp_keys(&kc, i, 3 + j);
                    assert_eq!(
                        cmp_rows_across(&ka, i, &kb, j),
                        expect,
                        "asc={ascending} i={i} j={j}"
                    );
                    // Same-frame comparisons agree with cmp_keys too.
                    assert_eq!(cmp_rows_across(&ka, i, &ka, j), cmp_keys(&keys_a, i, j));
                    assert_eq!(cmp_rows_across(&kb, i, &kb, j), cmp_keys(&keys_b, i, j));
                }
            }
        }
    }
}
