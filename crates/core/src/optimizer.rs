//! The LaFP runtime optimizer (§2.6, §3): rewrites the task graph just
//! before execution.
//!
//! Passes, in order:
//! 1. **Common-subexpression merging** — structurally identical nodes are
//!    unified so sharing is visible to the later passes.
//! 2. **Predicate pushdown** (§3.2) — filters move toward sources past
//!    safe points, including the two multi-parent rules.
//! 3. **Persist marking** (§3.5) — nodes shared between the computed roots
//!    and still-live dataframes are marked `persist` so forced computation
//!    doesn't recompute them later.
//!
//! Dead-node culling (§2.6 "redundant operations elimination") is implicit:
//! execution only ever touches nodes reachable from the roots.

use crate::graph::{NodeId, TaskGraph};
use crate::op::LogicalOp;
use lafp_expr::Expr;
use std::collections::{HashMap, HashSet};

/// Which optimizer passes run; the ablation benches toggle these.
#[derive(Debug, Clone, Copy)]
pub struct OptimizerFlags {
    /// Merge structurally identical subgraphs.
    pub common_subexpression: bool,
    /// Push filters below safe operators (§3.2).
    pub predicate_pushdown: bool,
    /// Persist shared live subexpressions (§3.5).
    pub common_reuse: bool,
}

impl Default for OptimizerFlags {
    fn default() -> Self {
        OptimizerFlags {
            common_subexpression: true,
            predicate_pushdown: true,
            common_reuse: true,
        }
    }
}

/// Run all enabled passes. `roots` are the nodes about to be computed
/// (pending prints + the forced node); `live` are the nodes of dataframes
/// that static analysis (or the API caller) reports as live afterwards —
/// the `live_df` argument of §3.5. Returns possibly-updated root ids
/// (CSE can merge a root into its representative).
pub fn optimize(
    graph: &mut TaskGraph,
    roots: &[NodeId],
    live: &[NodeId],
    flags: OptimizerFlags,
) -> Vec<NodeId> {
    let mut roots: Vec<NodeId> = roots.to_vec();
    if flags.common_subexpression {
        let remap = merge_common_subexpressions(graph);
        for r in &mut roots {
            *r = resolve(&remap, *r);
        }
    }
    if flags.predicate_pushdown {
        pushdown_predicates(graph, &roots);
    }
    if flags.common_reuse {
        mark_persists(graph, &roots, live);
    }
    roots
}

fn resolve(remap: &HashMap<NodeId, NodeId>, mut id: NodeId) -> NodeId {
    while let Some(&next) = remap.get(&id) {
        id = next;
    }
    id
}

/// Pass 1: hash-cons the graph bottom-up. Returns the merge map.
pub fn merge_common_subexpressions(graph: &mut TaskGraph) -> HashMap<NodeId, NodeId> {
    let mut canonical: HashMap<(u64, Vec<NodeId>), NodeId> = HashMap::new();
    let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
    for id in graph.ids().collect::<Vec<_>>() {
        let node = graph.node(id);
        // Side effects and already-materialized nodes are never merged.
        if matches!(node.op, LogicalOp::Print(_)) || node.result.is_some() {
            continue;
        }
        let inputs: Vec<NodeId> = node
            .inputs
            .iter()
            .map(|&i| resolve(&remap, i))
            .collect();
        let key = (node.op.fingerprint(), inputs);
        match canonical.get(&key) {
            Some(&rep) if rep != id => {
                // Persist flags migrate to the representative.
                if graph.node(id).persist {
                    graph.node_mut(rep).persist = true;
                }
                graph.redirect(id, rep);
                remap.insert(id, rep);
            }
            Some(_) => {}
            None => {
                canonical.insert(key, id);
            }
        }
    }
    remap
}

/// Pass 2: predicate pushdown over the task graph (§3.2).
///
/// Repeatedly looks for `Filter` nodes whose input operator admits the swap
/// (safe-point conditions encoded in [`LogicalOp::filter_can_push_below`])
/// and rewrites `filter(u(x))` into `u(filter(x))`. Rewrites are performed
/// *in place on the filter node's identity* — the filter node becomes the
/// `u`-op node and a fresh filter is inserted below — so external handles
/// (LazyFrames, roots) that point at the old top node keep observing a
/// value-equivalent result. Condition (3) — `f` is the only parent of `u`
/// — is checked on the graph, with the paper's two multi-parent
/// refinements:
///
/// * if **all** parents of `u` are filters with the *same* predicate, one
///   copy is pushed below `u` and in-graph consumers of the parent filters
///   are redirected to `u` (the retained filter nodes stay value-correct:
///   filters are idempotent);
/// * if all parents of `u` are filters with distinct predicates, their
///   **disjunction** is pushed below `u` while the originals stay in place.
///   (The paper's §3.2 text says conjunction; only the disjunction keeps
///   every parent's row set intact, so we implement that — see DESIGN.md.)
pub fn pushdown_predicates(graph: &mut TaskGraph, roots: &[NodeId]) {
    // Each successful push moves a filter strictly closer to a source along
    // a finite path, so a generous iteration cap is only a safety net.
    let cap = graph.len() * 4 + 16;
    for _ in 0..cap {
        if !pushdown_step(graph, roots) {
            break;
        }
    }
}

fn pushdown_step(graph: &mut TaskGraph, roots: &[NodeId]) -> bool {
    let reachable: Vec<NodeId> = {
        let set = graph.reachable(roots);
        let mut v: Vec<NodeId> = set.into_iter().collect();
        v.sort();
        v
    };
    // Case A: single-parent swap.
    for &f in &reachable {
        let (pred, u) = match &graph.node(f).op {
            LogicalOp::Filter(p) => (p.clone(), graph.node(f).inputs[0]),
            _ => continue,
        };
        if graph.node(u).result.is_some() || graph.node(u).persist {
            continue; // materialized boundary: nothing to gain, and moving
                      // a filter below a persisted node changes its value
        }
        let u_op = graph.node(u).op.clone();
        let used = pred.used_columns();
        if !u_op.filter_can_push_below(&used) {
            continue;
        }
        if graph.parents_of(u).len() != 1 {
            continue; // handled by the multi-parent cases below
        }
        // Substitute through rename.
        let new_pred = if matches!(u_op, LogicalOp::Rename(_)) {
            pred.substitute(&|c| u_op.rename_substitution(c))
        } else {
            pred.clone()
        };
        // Node f keeps its identity but becomes the u-op applied to a fresh
        // filter over u's input; node u itself is untouched (it may still
        // be referenced by live dataframe handles).
        let x = graph.node(u).inputs[0];
        let new_f = graph.add(LogicalOp::Filter(new_pred), vec![x]);
        let node_f = graph.node_mut(f);
        node_f.op = u_op;
        node_f.inputs = vec![new_f];
        return true;
    }
    // Case B/C: multi-parent rules.
    for &u in &reachable {
        if graph.node(u).result.is_some() || graph.node(u).persist {
            continue;
        }
        let u_op = graph.node(u).op.clone();
        if matches!(u_op, LogicalOp::Filter(_) | LogicalOp::Print(_)) {
            continue;
        }
        if graph.node(u).inputs.len() != 1 {
            continue;
        }
        let parents = graph.parents_of(u);
        if parents.len() < 2 {
            continue;
        }
        let preds: Option<Vec<Expr>> = parents
            .iter()
            .map(|&p| match &graph.node(p).op {
                LogicalOp::Filter(e) => Some(e.clone()),
                _ => None,
            })
            .collect();
        let Some(preds) = preds else {
            continue; // some parent is not a filter
        };
        let all_used: std::collections::BTreeSet<String> = preds
            .iter()
            .flat_map(|p| p.used_columns())
            .collect();
        if !u_op.filter_can_push_below(&all_used) {
            continue;
        }
        // Guard against re-applying to an already-pushed shape: if u's
        // input is already a filter with the same combined predicate we
        // are done with this u.
        let x = graph.node(u).inputs[0];
        let same = preds
            .windows(2)
            .all(|w| w[0].fingerprint() == w[1].fingerprint());
        let subst = |e: &Expr| {
            if matches!(u_op, LogicalOp::Rename(_)) {
                e.substitute(&|c| u_op.rename_substitution(c))
            } else {
                e.clone()
            }
        };
        let combined = if same {
            subst(&preds[0])
        } else {
            preds
                .iter()
                .skip(1)
                .fold(subst(&preds[0]), |acc, p| acc.or(subst(p)))
        };
        if let LogicalOp::Filter(existing) = &graph.node(x).op {
            if existing.fingerprint() == combined.fingerprint() {
                continue;
            }
        }
        let new_f = graph.add(LogicalOp::Filter(combined), vec![x]);
        graph.node_mut(u).inputs = vec![new_f];
        if same {
            // Collapse: in-graph consumers of the parent filters read u
            // directly (the filter nodes stay, for external handles).
            for &p in &parents {
                graph.redirect(p, u);
            }
        }
        return true;
    }
    false
}

/// Pass 3: mark for persistence the *maximal* nodes shared between the
/// computed roots and the live dataframes (§3.5): a shared node none of
/// whose consumers (within the computed subgraph) is itself shared.
pub fn mark_persists(graph: &mut TaskGraph, roots: &[NodeId], live: &[NodeId]) {
    if live.is_empty() {
        return;
    }
    let computed = graph.reachable(roots);
    let live_reach = graph.reachable_through_results(live);
    let shared: HashSet<NodeId> = computed
        .intersection(&live_reach)
        .copied()
        .filter(|&id| {
            graph.node(id).op.is_frame_valued() && graph.node(id).result.is_none()
        })
        .collect();
    for &id in &shared {
        let has_shared_consumer = graph
            .parents_of(id)
            .into_iter()
            .any(|p| shared.contains(&p));
        if !has_shared_consumer {
            graph.node_mut(id).persist = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lafp_columnar::csv::CsvOptions;
    use lafp_columnar::groupby::GroupBySpec;
    use lafp_columnar::AggKind;
    use lafp_expr::Expr;

    fn read() -> LogicalOp {
        LogicalOp::ReadCsv {
            path: "data.csv".into(),
            options: CsvOptions::new(),
        }
    }

    fn filt(col: &str) -> LogicalOp {
        LogicalOp::Filter(Expr::col(col).gt(Expr::lit_int(0)))
    }

    #[test]
    fn pushdown_below_with_column() {
        let mut g = TaskGraph::new();
        let r = g.add(read(), vec![]);
        let wc = g.add(
            LogicalOp::WithColumn("day".into(), Expr::col("ts").dt(lafp_columnar::column::DtField::DayOfWeek)),
            vec![r],
        );
        let f = g.add(filt("fare"), vec![wc]);
        let h = g.add(LogicalOp::Head(5), vec![f]);
        pushdown_predicates(&mut g, &[h]);
        // Now: read <- filter <- with_column <- head
        assert!(matches!(g.node(h).op, LogicalOp::Head(5)));
        let wc_in = g.node(h).inputs[0];
        assert!(matches!(g.node(wc_in).op, LogicalOp::WithColumn(..)));
        let f_in = g.node(wc_in).inputs[0];
        assert!(matches!(g.node(f_in).op, LogicalOp::Filter(_)));
        assert_eq!(g.node(f_in).inputs, vec![r]);
    }

    #[test]
    fn pushdown_blocked_when_filter_reads_computed_column() {
        let mut g = TaskGraph::new();
        let r = g.add(read(), vec![]);
        let wc = g.add(
            LogicalOp::WithColumn("day".into(), Expr::col("ts").dt(lafp_columnar::column::DtField::DayOfWeek)),
            vec![r],
        );
        let f = g.add(filt("day"), vec![wc]);
        pushdown_predicates(&mut g, &[f]);
        assert_eq!(g.node(f).inputs, vec![wc], "must not move");
    }

    #[test]
    fn pushdown_blocked_below_merge_and_groupby() {
        let mut g = TaskGraph::new();
        let a = g.add(read(), vec![]);
        let b = g.add(read(), vec![]);
        let m = g.add(
            LogicalOp::Merge {
                on: vec!["k".into()],
                how: lafp_columnar::JoinKind::Inner,
            },
            vec![a, b],
        );
        let f = g.add(filt("v"), vec![m]);
        pushdown_predicates(&mut g, &[f]);
        assert_eq!(g.node(f).inputs, vec![m]);

        let gb = g.add(
            LogicalOp::GroupByAgg(GroupBySpec {
                keys: vec!["k".into()],
                value: "v".into(),
                agg: AggKind::Sum,
            }),
            vec![a],
        );
        let f2 = g.add(filt("v"), vec![gb]);
        pushdown_predicates(&mut g, &[f2]);
        assert_eq!(g.node(f2).inputs, vec![gb]);
    }

    #[test]
    fn pushdown_through_rename_substitutes() {
        let mut g = TaskGraph::new();
        let r = g.add(read(), vec![]);
        let rn = g.add(
            LogicalOp::Rename(vec![("fare_amount".into(), "fare".into())]),
            vec![r],
        );
        let f = g.add(filt("fare"), vec![rn]);
        pushdown_predicates(&mut g, &[f]);
        // The top node (f) kept its identity but became the rename; the
        // filter below it reads the pre-rename column name.
        assert!(matches!(g.node(f).op, LogicalOp::Rename(_)));
        let below = g.node(f).inputs[0];
        match &g.node(below).op {
            LogicalOp::Filter(p) => {
                assert!(p.used_columns().contains("fare_amount"));
                assert_eq!(g.node(below).inputs, vec![r]);
            }
            other => panic!("expected filter, got {other:?}"),
        }
    }

    #[test]
    fn multi_parent_same_filter_collapses() {
        let mut g = TaskGraph::new();
        let r = g.add(read(), vec![]);
        let wc = g.add(
            LogicalOp::WithColumn("d".into(), Expr::col("x")),
            vec![r],
        );
        let f1 = g.add(filt("fare"), vec![wc]);
        let f2 = g.add(filt("fare"), vec![wc]);
        let h1 = g.add(LogicalOp::Head(1), vec![f1]);
        let h2 = g.add(LogicalOp::Head(2), vec![f2]);
        pushdown_predicates(&mut g, &[h1, h2]);
        // Both heads should now consume wc directly, with a single filter
        // below wc.
        assert_eq!(g.node(h1).inputs, vec![wc]);
        assert_eq!(g.node(h2).inputs, vec![wc]);
        let below = g.node(wc).inputs[0];
        assert!(matches!(g.node(below).op, LogicalOp::Filter(_)));
        assert_eq!(g.node(below).inputs, vec![r]);
    }

    #[test]
    fn multi_parent_distinct_filters_push_conjunction() {
        let mut g = TaskGraph::new();
        let r = g.add(read(), vec![]);
        let wc = g.add(
            LogicalOp::WithColumn("d".into(), Expr::col("x")),
            vec![r],
        );
        let f1 = g.add(filt("fare"), vec![wc]);
        let f2 = g.add(filt("tip"), vec![wc]);
        pushdown_predicates(&mut g, &[f1, f2]);
        // Parents retained, conjunction below wc.
        assert_eq!(g.node(f1).inputs, vec![wc]);
        assert_eq!(g.node(f2).inputs, vec![wc]);
        let below = g.node(wc).inputs[0];
        match &g.node(below).op {
            LogicalOp::Filter(p) => {
                let used = p.used_columns();
                assert!(used.contains("fare") && used.contains("tip"));
            }
            other => panic!("expected conjunction filter, got {other:?}"),
        }
    }

    #[test]
    fn cse_merges_identical_chains() {
        let mut g = TaskGraph::new();
        let r1 = g.add(read(), vec![]);
        let r2 = g.add(read(), vec![]);
        let f1 = g.add(filt("x"), vec![r1]);
        let f2 = g.add(filt("x"), vec![r2]);
        let remap = merge_common_subexpressions(&mut g);
        assert_eq!(resolve(&remap, r2), r1);
        assert_eq!(resolve(&remap, f2), f1);
        assert_eq!(g.node(f1).inputs, vec![r1]);
    }

    #[test]
    fn cse_does_not_merge_prints() {
        let mut g = TaskGraph::new();
        let r = g.add(read(), vec![]);
        let p1 = g.add(LogicalOp::Print(vec![]), vec![r]);
        let p2 = g.add(LogicalOp::Print(vec![]), vec![r]);
        let remap = merge_common_subexpressions(&mut g);
        assert_eq!(resolve(&remap, p1), p1);
        assert_eq!(resolve(&remap, p2), p2);
    }

    #[test]
    fn persist_marks_maximal_shared_node() {
        let mut g = TaskGraph::new();
        let r = g.add(read(), vec![]);
        let wc = g.add(
            LogicalOp::WithColumn("d".into(), Expr::col("x")),
            vec![r],
        );
        let agg = g.add(
            LogicalOp::GroupByAgg(GroupBySpec {
                keys: vec!["d".into()],
                value: "x".into(),
                agg: AggKind::Sum,
            }),
            vec![wc],
        );
        // live: wc used again later for a mean.
        mark_persists(&mut g, &[agg], &[wc]);
        assert!(g.node(wc).persist, "shared frame should persist");
        assert!(!g.node(r).persist, "only the maximal shared node persists");
        assert!(!g.node(agg).persist);
    }

    #[test]
    fn persist_skips_scalar_nodes_and_no_live() {
        let mut g = TaskGraph::new();
        let r = g.add(read(), vec![]);
        let red = g.add(
            LogicalOp::Reduce {
                column: "x".into(),
                agg: AggKind::Mean,
            },
            vec![r],
        );
        mark_persists(&mut g, &[red], &[]);
        assert!(!g.node(r).persist);
        mark_persists(&mut g, &[red], &[red]);
        assert!(!g.node(red).persist, "scalar node not persisted");
        assert!(g.node(r).persist, "its frame input is the shared frame");
    }

    #[test]
    fn optimize_composes_and_remaps_roots() {
        let mut g = TaskGraph::new();
        let r1 = g.add(read(), vec![]);
        let r2 = g.add(read(), vec![]);
        let f1 = g.add(filt("x"), vec![r1]);
        let f2 = g.add(filt("x"), vec![r2]);
        let roots = optimize(&mut g, &[f2], &[f1], OptimizerFlags::default());
        assert_eq!(roots, vec![f1], "root remapped onto CSE representative");
    }
}
