//! Live Attribute Analysis (paper §3.1): column-level liveness.
//!
//! Facts are per-dataframe column sets. The transfer function implements
//! the paper's Gen/Kill equations (Eq. 1–2):
//!
//! * using `df.c` (or `df["c"]`, keys of group-bys, sort keys, predicate
//!   columns, ...) makes `(df, c)` live;
//! * using all of `df` (bare `df` in a print/call/merge) makes all of its
//!   columns live;
//! * `df = ...` kills all columns of `df`;
//! * a frame **derived** from another maps its live columns back onto the
//!   source (rule 3 of §3.1), through renames and projections;
//! * aggregates kill everything except group keys and aggregated columns;
//! * `head` / `info` / `describe` usage is ignored (the §3.1 heuristic),
//!   so `print(df.head())` alone does not make all columns live.

use crate::dataflow::{solve_backward, Lattice, Point};
use crate::dfvars::{DfVarInfo, INFORMATIVE_METHODS, SCALAR_METHODS};
use lafp_ir::ast::{Ast, Expr, StmtId, StmtKind, Target};
use lafp_ir::cfg::{Cfg, Terminator};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Live columns of one dataframe: either *all* of them or a named set.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ColSet {
    /// All columns are live (whole-frame use reached this point).
    pub all: bool,
    /// Named live columns (ignored when `all`).
    pub cols: BTreeSet<String>,
}

impl ColSet {
    /// The "all columns" element.
    pub fn all() -> ColSet {
        ColSet {
            all: true,
            cols: BTreeSet::new(),
        }
    }

    /// A named set.
    pub fn of<I: IntoIterator<Item = String>>(cols: I) -> ColSet {
        ColSet {
            all: false,
            cols: cols.into_iter().collect(),
        }
    }

    /// Is nothing live?
    pub fn is_empty(&self) -> bool {
        !self.all && self.cols.is_empty()
    }

    fn join(&mut self, other: &ColSet) {
        self.all |= other.all;
        if !self.all {
            self.cols.extend(other.cols.iter().cloned());
        } else {
            self.cols.clear();
        }
    }
}

/// Map from dataframe variable to its live columns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AttrFact(pub BTreeMap<String, ColSet>);

impl Lattice for AttrFact {
    fn join(&mut self, other: &Self) {
        for (var, cols) in &other.0 {
            self.0.entry(var.clone()).or_default().join(cols);
        }
    }
}

impl AttrFact {
    fn add(&mut self, var: &str, col: &str) {
        let slot = self.0.entry(var.to_string()).or_default();
        if !slot.all {
            slot.cols.insert(col.to_string());
        }
    }

    fn add_all(&mut self, var: &str) {
        *self.0.entry(var.to_string()).or_default() = ColSet::all();
    }

    fn kill(&mut self, var: &str) {
        self.0.remove(var);
    }

    /// Live columns of `var` (empty set if none).
    pub fn columns(&self, var: &str) -> ColSet {
        self.0.get(var).cloned().unwrap_or_default()
    }
}

/// Result of live attribute analysis.
#[derive(Debug, Clone)]
pub struct LaaResult {
    facts: HashMap<Point, AttrFact>,
}

impl LaaResult {
    /// Fact immediately before the program point.
    pub fn live_in(&self, point: Point) -> AttrFact {
        self.facts.get(&point).cloned().unwrap_or_default()
    }

    /// Live columns of `var` immediately **after** statement `stmt` — what
    /// the column-selection rewrite asks at each `read_csv` site (§3.1:
    /// "columns that are live in Out_n of the program point n where the
    /// dataframe is created").
    pub fn live_columns_after(
        &self,
        cfg: &Cfg,
        stmt: StmtId,
        var: &str,
    ) -> ColSet {
        for (b, block) in cfg.blocks.iter().enumerate() {
            if let Some(i) = block.stmts.iter().position(|&s| s == stmt) {
                let fact = if i + 1 < block.stmts.len() {
                    self.live_in(Point::Stmt(b, i + 1))
                } else {
                    self.live_in(Point::Term(b))
                };
                return fact.columns(var);
            }
            match &block.terminator {
                Terminator::Branch { stmt: s, .. } | Terminator::LoopBranch { stmt: s, .. }
                    if *s == stmt =>
                {
                    let mut out = ColSet::default();
                    for succ in cfg.successors(b) {
                        let top = if cfg.blocks[succ].stmts.is_empty() {
                            Point::Term(succ)
                        } else {
                            Point::Stmt(succ, 0)
                        };
                        out.join(&self.live_in(top).columns(var));
                    }
                    return out;
                }
                _ => {}
            }
        }
        ColSet::default()
    }
}

/// Run LAA.
pub fn analyze(ast: &Ast, cfg: &Cfg, info: &DfVarInfo) -> LaaResult {
    let facts = solve_backward::<AttrFact>(cfg, &mut |stmt, _point, out| {
        let mut fact = out.clone();
        if let Some(id) = stmt {
            transfer(ast, info, id, &mut fact, out);
        }
        fact
    });
    LaaResult { facts }
}

/// In-place transfer: `fact` starts as a copy of `out`; apply Kill then Gen.
fn transfer(ast: &Ast, info: &DfVarInfo, id: StmtId, fact: &mut AttrFact, out: &AttrFact) {
    match &ast.stmt(id).kind {
        StmtKind::Assign { target, value } => match target {
            Target::Name(x) => {
                // Liveness of x's columns just after this statement.
                let x_live = out.columns(x);
                // Kill: all columns of x (Eq. 2).
                fact.kill(x);
                // Gen: direct uses + derived mapping of x_live onto sources.
                apply_derivation(info, value, &x_live, fact);
            }
            Target::Subscript { obj, key } => {
                // df["c"] = expr: kills column c of df, uses expr's columns.
                if let Some(col) = key.as_str_lit() {
                    if let Some(slot) = fact.0.get_mut(obj) {
                        slot.cols.remove(col);
                    }
                }
                collect_uses(info, value, fact);
            }
        },
        StmtKind::Expr(e) => collect_uses(info, e, fact),
        StmtKind::If { cond, .. } => collect_uses(info, cond, fact),
        StmtKind::For { iter, .. } => collect_uses(info, iter, fact),
        _ => {}
    }
}

/// Gen for `x = value` given the liveness `x_live` of x after the
/// statement: map derived liveness onto source frames (§3.1 rule 3) and
/// collect the expression's direct column uses.
fn apply_derivation(info: &DfVarInfo, value: &Expr, x_live: &ColSet, fact: &mut AttrFact) {
    match value {
        // x = v  (alias): identity map.
        Expr::Name(v) if info.is_frame(v) => {
            let slot = fact.0.entry(v.clone()).or_default();
            slot.join(x_live);
        }
        // x = v[<mask>] — filter: identity map + mask uses.
        // x = v[["a","b"]] — projection: live∩select, All ↦ the selection.
        // x = v["c"] / x = v.c — series read.
        Expr::Subscript { value: recv, index } => {
            if let Expr::Name(v) = recv.as_ref() {
                if info.is_frame(v) {
                    match index.as_ref() {
                        Expr::Str(c) => {
                            // Reading a column makes it live whenever the
                            // statement executes (conservative).
                            fact.add(v, c);
                            return;
                        }
                        Expr::List(_) => {
                            if let Some(cols) = index.as_str_list() {
                                // The projection itself requires its listed
                                // columns to exist (pandas raises on missing
                                // keys), so they are live regardless of the
                                // projection result's downstream liveness.
                                let slot = fact.0.entry(v.clone()).or_default();
                                if !slot.all {
                                    slot.cols.extend(cols);
                                }
                                return;
                            }
                        }
                        mask => {
                            let slot = fact.0.entry(v.clone()).or_default();
                            slot.join(x_live);
                            collect_uses(info, mask, fact);
                            return;
                        }
                    }
                }
            }
            collect_uses(info, value, fact);
        }
        // x = v.attr — series read via attribute.
        Expr::Attribute { value: recv, attr } => {
            if let Expr::Name(v) = recv.as_ref() {
                if info.is_frame(v) {
                    fact.add(v, attr);
                    return;
                }
            }
            collect_uses(info, value, fact);
        }
        Expr::Call { func, args, kwargs } => {
            // groupby chain?
            if let Some((v, mut used)) = match_groupby_chain(info, value) {
                // Aggregates: only keys + aggregated column stay live.
                let slot = fact.0.entry(v).or_default();
                if !slot.all {
                    slot.cols.append(&mut used);
                }
                return;
            }
            if let Expr::Attribute { value: recv, attr } = func.as_ref() {
                if let Expr::Name(v) = recv.as_ref() {
                    if info.is_frame(v) {
                        match attr.as_str() {
                            // Identity-mapped frame methods.
                            "fillna" | "dropna" | "sort_values" | "drop_duplicates"
                            | "astype" | "round" | "abs" | "copy" | "reset_index" | "tail" => {
                                let slot = fact.0.entry(v.clone()).or_default();
                                slot.join(x_live);
                                add_method_key_uses(info, v, attr, args, kwargs, fact);
                                for a in args.iter() {
                                    collect_uses(info, a, fact);
                                }
                                return;
                            }
                            // head: named columns map through, but the
                            // whole-frame usage heuristic drops `all`.
                            "head" => {
                                let slot = fact.0.entry(v.clone()).or_default();
                                if !slot.all {
                                    slot.cols.extend(x_live.cols.iter().cloned());
                                }
                                return;
                            }
                            // describe/info: ignored entirely (§3.1).
                            "describe" | "info" => return,
                            // rename: map new names back to old.
                            "rename" => {
                                let mapping = rename_mapping(kwargs);
                                let slot = fact.0.entry(v.clone()).or_default();
                                if x_live.all {
                                    slot.join(&ColSet::all());
                                } else if !slot.all {
                                    for c in &x_live.cols {
                                        let original = mapping
                                            .iter()
                                            .find(|(_, new)| new == c)
                                            .map(|(old, _)| old.clone())
                                            .unwrap_or_else(|| c.clone());
                                        slot.cols.insert(original);
                                    }
                                }
                                return;
                            }
                            // drop(columns=[...]): identity for survivors.
                            "drop" => {
                                let slot = fact.0.entry(v.clone()).or_default();
                                slot.join(x_live);
                                return;
                            }
                            // merge: live columns may come from either side.
                            "merge" => {
                                let slot = fact.0.entry(v.clone()).or_default();
                                slot.join(x_live);
                                if let Some(Expr::Name(w)) = args.first() {
                                    if info.is_frame(w) {
                                        let wslot = fact.0.entry(w.clone()).or_default();
                                        wslot.join(x_live);
                                    }
                                }
                                add_method_key_uses(info, v, attr, args, kwargs, fact);
                                if let (Some(Expr::Name(w)), Some(on)) =
                                    (args.first(), kwarg(kwargs, "on"))
                                {
                                    if let Some(keys) = on.as_str_list() {
                                        for k in keys {
                                            fact.add(w, &k);
                                        }
                                    }
                                }
                                return;
                            }
                            _ => {}
                        }
                    }
                    // Scalar aggregate over a series var or chained column.
                    if SCALAR_METHODS.contains(&attr.as_str()) {
                        collect_uses(info, recv, fact);
                        return;
                    }
                }
            }
            // Unknown call: conservative direct uses.
            collect_uses(info, value, fact);
        }
        _ => collect_uses(info, value, fact),
    }
}

fn kwarg<'a>(kwargs: &'a [(String, Expr)], name: &str) -> Option<&'a Expr> {
    kwargs.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Column-name-bearing arguments of known methods (`by=`, `on=`,
/// `subset=`, or the positional first arg of sort_values).
fn add_method_key_uses(
    info: &DfVarInfo,
    frame: &str,
    method: &str,
    args: &[Expr],
    kwargs: &[(String, Expr)],
    fact: &mut AttrFact,
) {
    let _ = info;
    let mut key_exprs: Vec<&Expr> = Vec::new();
    for key in ["by", "on", "subset", "columns"] {
        if let Some(e) = kwarg(kwargs, key) {
            key_exprs.push(e);
        }
    }
    if method == "sort_values" {
        if let Some(first) = args.first() {
            key_exprs.push(first);
        }
    }
    for e in key_exprs {
        if let Some(cols) = e.as_str_list() {
            for c in cols {
                fact.add(frame, &c);
            }
        } else if let Some(c) = e.as_str_lit() {
            fact.add(frame, c);
        }
    }
}

/// `df.groupby([keys...])["col"].agg()` — returns (frame var, used cols).
pub fn match_groupby_chain(info: &DfVarInfo, e: &Expr) -> Option<(String, BTreeSet<String>)> {
    // Call(Attribute(Subscript(Call(Attribute(Name(v), "groupby"), [keys]), "col"), agg))
    let Expr::Call { func, .. } = e else {
        return None;
    };
    let Expr::Attribute { value: sub, attr } = func.as_ref() else {
        return None;
    };
    if !SCALAR_METHODS.contains(&attr.as_str()) {
        return None;
    }
    let (gb_call, value_col) = match sub.as_ref() {
        Expr::Subscript { value, index } => (value.as_ref(), index.as_str_lit()?),
        _ => return None,
    };
    let Expr::Call {
        func: gb_func,
        args: gb_args,
        ..
    } = gb_call
    else {
        return None;
    };
    let Expr::Attribute {
        value: frame,
        attr: gb_name,
    } = gb_func.as_ref()
    else {
        return None;
    };
    if gb_name != "groupby" {
        return None;
    }
    let Expr::Name(v) = frame.as_ref() else {
        return None;
    };
    if !info.is_frame(v) {
        return None;
    }
    let mut used: BTreeSet<String> = BTreeSet::new();
    match gb_args.first() {
        Some(keys) => {
            if let Some(list) = keys.as_str_list() {
                used.extend(list);
            } else if let Some(k) = keys.as_str_lit() {
                used.insert(k.to_string());
            } else {
                return None;
            }
        }
        None => return None,
    }
    used.insert(value_col.to_string());
    Some((v.clone(), used))
}

/// Direct column uses of an expression in a *value position* (prints,
/// conditions, call arguments): bare frame names are whole-frame uses.
pub fn collect_uses(info: &DfVarInfo, e: &Expr, fact: &mut AttrFact) {
    match e {
        Expr::Name(v) => {
            if info.is_frame(v) {
                fact.add_all(v);
            } else if let Some((f, c)) = info.series_source(v) {
                let (f, c) = (f.to_string(), c.to_string());
                fact.add(&f, &c);
            }
        }
        Expr::Attribute { value, attr } => {
            if let Expr::Name(v) = value.as_ref() {
                if info.is_frame(v) {
                    fact.add(v, attr);
                    return;
                }
            }
            // dt/str namespaces and deeper chains.
            collect_uses(info, value, fact);
        }
        Expr::Subscript { value, index } => {
            if let Expr::Name(v) = value.as_ref() {
                if info.is_frame(v) {
                    match index.as_ref() {
                        Expr::Str(c) => {
                            fact.add(v, c);
                            return;
                        }
                        Expr::List(_) => {
                            if let Some(cols) = index.as_str_list() {
                                for c in cols {
                                    fact.add(v, &c);
                                }
                                return;
                            }
                        }
                        mask => {
                            // df[mask] used directly in a value position:
                            // the filtered frame flows onward whole.
                            fact.add_all(v);
                            collect_uses(info, mask, fact);
                            return;
                        }
                    }
                }
            }
            collect_uses(info, value, fact);
            collect_uses(info, index, fact);
        }
        Expr::Call { func, args, kwargs } => {
            if let Some((v, used)) = match_groupby_chain(info, e) {
                for c in used {
                    fact.add(&v, &c);
                }
                return;
            }
            // len(df) needs a row count, not any particular column — the
            // lazy len of lazyfatpandas.func (§3.3). Whatever columns other
            // uses make live suffice for counting rows.
            if matches!(func.as_ref(), Expr::Name(n) if n == "len") {
                for a in args {
                    if !matches!(a, Expr::Name(v) if info.is_frame(v)) {
                        collect_uses(info, a, fact);
                    }
                }
                return;
            }
            if let Expr::Attribute { value, attr } = func.as_ref() {
                if let Expr::Name(v) = value.as_ref() {
                    if info.is_frame(v) && INFORMATIVE_METHODS.contains(&attr.as_str()) {
                        // §3.1 heuristic: df.head()/df.info()/df.describe()
                        // in a value position uses nothing.
                        return;
                    }
                    if info.is_frame(v) {
                        // A method on the frame in value position: the
                        // result flows onward; conservatively whole use,
                        // except scalar aggregates of a single column which
                        // are handled by the Attribute arm via recursion.
                        add_method_key_uses(info, v, attr, args, kwargs, fact);
                        fact.add_all(v);
                        for a in args {
                            collect_uses(info, a, fact);
                        }
                        return;
                    }
                }
                // e.g. df.fare.mean(): recurse into the receiver chain.
                collect_uses(info, value, fact);
                for a in args {
                    collect_uses(info, a, fact);
                }
                for (_, v) in kwargs {
                    collect_uses(info, v, fact);
                }
                return;
            }
            collect_uses(info, func, fact);
            for a in args {
                collect_uses(info, a, fact);
            }
            for (_, v) in kwargs {
                collect_uses(info, v, fact);
            }
        }
        Expr::FString(pieces) => {
            for p in pieces {
                if let lafp_ir::ast::FPiece::Expr(inner) = p {
                    collect_uses(info, inner, fact);
                }
            }
        }
        Expr::BinOp { left, right, .. } | Expr::Compare { left, right, .. } => {
            collect_uses(info, left, fact);
            collect_uses(info, right, fact);
        }
        Expr::Unary { operand, .. } => collect_uses(info, operand, fact),
        Expr::List(items) => {
            for i in items {
                collect_uses(info, i, fact);
            }
        }
        Expr::Dict(items) => {
            for (k, v) in items {
                collect_uses(info, k, fact);
                collect_uses(info, v, fact);
            }
        }
        _ => {}
    }
}

fn rename_mapping(kwargs: &[(String, Expr)]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    if let Some(Expr::Dict(items)) = kwarg(kwargs, "columns") {
        for (k, v) in items {
            if let (Some(old), Some(new)) = (k.as_str_lit(), v.as_str_lit()) {
                out.push((old.to_string(), new.to_string()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfvars;
    use lafp_ir::lower::lower;
    use lafp_ir::parser::parse;

    fn laa_for(src: &str) -> (Ast, Cfg, DfVarInfo, LaaResult) {
        let ast = parse(src).unwrap();
        let cfg = lower(&ast);
        let info = dfvars::infer(&ast);
        let laa = analyze(&ast, &cfg, &info);
        (ast, cfg, info, laa)
    }

    /// The paper's running example (Figure 3): only three of the columns
    /// are live at the read_csv site.
    #[test]
    fn figure3_live_columns() {
        let src = "\
import lazyfatpandas.pandas as pd
df = pd.read_csv('data.csv', parse_dates=['tpep_pickup_datetime'])
df = df[df.fare_amount > 0]
df['day'] = df.tpep_pickup_datetime.dt.dayofweek
df = df.groupby(['day'])['passenger_count'].sum()
print(df)
";
        let (ast, cfg, _info, laa) = laa_for(src);
        let read_stmt = ast.module[1];
        let live = laa.live_columns_after(&cfg, read_stmt, "df");
        assert!(!live.all, "whole frame must not be live");
        let expected: BTreeSet<String> = [
            "fare_amount",
            "passenger_count",
            "tpep_pickup_datetime",
        ]
        .into_iter()
        .map(String::from)
        .collect();
        assert_eq!(live.cols, expected);
    }

    #[test]
    fn whole_frame_print_makes_all_live() {
        let src = "\
import pandas as pd
df = pd.read_csv('d.csv')
print(df)
";
        let (ast, cfg, _info, laa) = laa_for(src);
        let live = laa.live_columns_after(&cfg, ast.module[1], "df");
        assert!(live.all);
    }

    #[test]
    fn head_heuristic_keeps_columns_dead() {
        let src = "\
import pandas as pd
df = pd.read_csv('d.csv')
print(df.head())
s = df.fare.mean()
print(f'{s}')
";
        let (ast, cfg, _info, laa) = laa_for(src);
        let live = laa.live_columns_after(&cfg, ast.module[1], "df");
        assert!(!live.all, "head/describe usage is ignored (§3.1)");
        assert_eq!(
            live.cols,
            ["fare".to_string()].into_iter().collect::<BTreeSet<_>>()
        );
    }

    #[test]
    fn projection_restricts_liveness() {
        let src = "\
import pandas as pd
df = pd.read_csv('d.csv')
p = df[['a', 'b']]
print(p)
";
        let (ast, cfg, _info, laa) = laa_for(src);
        let live = laa.live_columns_after(&cfg, ast.module[1], "df");
        assert!(!live.all, "All-of-p maps to just the selected columns");
        assert_eq!(
            live.cols,
            ["a".to_string(), "b".to_string()].into_iter().collect::<BTreeSet<_>>()
        );
    }

    #[test]
    fn derived_filter_propagates_to_source() {
        let src = "\
import pandas as pd
df = pd.read_csv('d.csv')
f = df[df.fare > 0]
g = f.groupby(['day'])['count'].sum()
print(g)
";
        let (ast, cfg, _info, laa) = laa_for(src);
        let live = laa.live_columns_after(&cfg, ast.module[1], "df");
        assert!(!live.all);
        let expected: BTreeSet<String> = ["fare", "day", "count"]
            .into_iter()
            .map(String::from)
            .collect();
        assert_eq!(live.cols, expected);
    }

    #[test]
    fn rename_maps_new_names_to_old() {
        let src = "\
import pandas as pd
df = pd.read_csv('d.csv')
r = df.rename(columns={'old': 'new'})
s = r['new']
print(f'{s.sum()}')
";
        let (ast, cfg, _info, laa) = laa_for(src);
        let live = laa.live_columns_after(&cfg, ast.module[1], "df");
        assert!(live.cols.contains("old"), "got {live:?}");
        assert!(!live.cols.contains("new"));
    }

    #[test]
    fn branches_join_column_liveness() {
        let src = "\
import pandas as pd
df = pd.read_csv('d.csv')
if mode > 0:
    x = df['a']
else:
    x = df['b']
print(f'{x.sum()}')
";
        let (ast, cfg, _info, laa) = laa_for(src);
        let live = laa.live_columns_after(&cfg, ast.module[1], "df");
        assert!(live.cols.contains("a") && live.cols.contains("b"));
        assert!(!live.cols.contains("c"));
    }

    #[test]
    fn reassignment_kills_columns() {
        let src = "\
import pandas as pd
df = pd.read_csv('a.csv')
x = df['used_early']
df = pd.read_csv('b.csv')
print(df['later'])
print(f'{x.sum()}')
";
        let (ast, cfg, _info, laa) = laa_for(src);
        let live_first = laa.live_columns_after(&cfg, ast.module[1], "df");
        assert!(live_first.cols.contains("used_early"));
        assert!(
            !live_first.cols.contains("later"),
            "second read's columns must not leak across the kill: {live_first:?}"
        );
    }

    #[test]
    fn merge_keys_live_on_both_sides() {
        let src = "\
import pandas as pd
a = pd.read_csv('a.csv')
b = pd.read_csv('b.csv')
m = a.merge(b, on=['k'])
v = m['v']
print(f'{v.sum()}')
";
        let (ast, cfg, _info, laa) = laa_for(src);
        let live_a = laa.live_columns_after(&cfg, ast.module[1], "a");
        let live_b = laa.live_columns_after(&cfg, ast.module[2], "b");
        assert!(live_a.cols.contains("k"));
        assert!(live_b.cols.contains("k"));
        // v could come from either side
        assert!(live_a.cols.contains("v"));
        assert!(live_b.cols.contains("v"));
    }
}
