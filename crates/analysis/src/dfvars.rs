//! Dataframe-variable and import classification (paper §3.4, §3.6).
//!
//! "To invoke compute on a dataframe, we need to figure out which variables
//! are dataframe variables. This information is inferred from the types of
//! the Pandas API calls." — §3.4.

use lafp_ir::ast::{Ast, Expr, StmtId, StmtKind, Target};
use std::collections::{BTreeMap, BTreeSet};

/// What kind of value a variable holds (flow-insensitive join).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VarKind {
    /// A dataframe.
    Frame,
    /// A series projected from a frame column: (frame var, column).
    Series(String, String),
    /// A scalar (aggregate result, lazy len, ...).
    Scalar,
    /// Anything else (paths, lists, modules...).
    Other,
}

/// Result of the inference pass.
#[derive(Debug, Clone, Default)]
pub struct DfVarInfo {
    /// Variable kinds.
    pub kinds: BTreeMap<String, VarKind>,
    /// Alias under which `lazyfatpandas.pandas` / `pandas` was imported
    /// (usually `pd`).
    pub pandas_alias: Option<String>,
    /// Aliases of *external* modules (e.g. `plt` → `matplotlib.pyplot`).
    pub external_modules: BTreeMap<String, String>,
    /// Columns assigned per dataframe variable (`df["c"] = ...`); the
    /// complement is the §3.6 read-only set.
    pub assigned_columns: BTreeMap<String, BTreeSet<String>>,
}

/// Dataframe methods that return a dataframe (or series treated as frame).
pub const FRAME_METHODS: &[&str] = &[
    "head",
    "tail",
    "fillna",
    "dropna",
    "drop",
    "rename",
    "sort_values",
    "drop_duplicates",
    "describe",
    "merge",
    "astype",
    "round",
    "abs",
    "copy",
    "reset_index",
];

/// Series/column aggregate methods that return scalars.
pub const SCALAR_METHODS: &[&str] = &["mean", "sum", "count", "min", "max", "nunique", "std"];

/// Informative methods whose attribute usage LAA ignores (§3.1 heuristic).
pub const INFORMATIVE_METHODS: &[&str] = &["head", "info", "describe"];

impl DfVarInfo {
    /// Is this variable a dataframe?
    pub fn is_frame(&self, name: &str) -> bool {
        matches!(self.kinds.get(name), Some(VarKind::Frame))
    }

    /// Is this variable a series (projected column)?
    pub fn series_source(&self, name: &str) -> Option<(&str, &str)> {
        match self.kinds.get(name) {
            Some(VarKind::Series(f, c)) => Some((f.as_str(), c.as_str())),
            _ => None,
        }
    }

    /// Columns of `frame` that are *never* assigned — safe for the
    /// `category` dtype under §3.6 (modulo being present in the file).
    pub fn is_read_only_column(&self, frame: &str, column: &str) -> bool {
        !self
            .assigned_columns
            .get(frame)
            .is_some_and(|s| s.contains(column))
    }

    /// Is `name` the alias of an external (non-pandas) module?
    pub fn is_external_module(&self, name: &str) -> bool {
        self.external_modules.contains_key(name)
    }
}

/// Run the inference over the whole module (flow-insensitive, iterated to
/// fixpoint so chains like `a = df.head()` then `b = a.fillna(0)` resolve).
pub fn infer(ast: &Ast) -> DfVarInfo {
    let mut info = DfVarInfo::default();
    // Imports first.
    for id in ast.all_ids() {
        match &ast.stmt(id).kind {
            StmtKind::Import { module, alias } => {
                let name = alias.clone().unwrap_or_else(|| module.clone());
                if module == "lazyfatpandas.pandas" || module == "pandas" {
                    info.pandas_alias = Some(name);
                } else if module != "lazyfatpandas" {
                    info.external_modules.insert(name, module.clone());
                }
            }
            StmtKind::FromImport { .. } => {}
            _ => {}
        }
    }
    // Iterate assignments to fixpoint.
    let ids: Vec<StmtId> = ast.all_ids().collect();
    loop {
        let mut changed = false;
        for &id in &ids {
            if let StmtKind::Assign { target, value } = &ast.stmt(id).kind {
                match target {
                    Target::Name(name) => {
                        let kind = classify_expr(value, &info);
                        let prev = info.kinds.get(name);
                        let joined = join_kinds(prev, kind);
                        if info.kinds.get(name) != Some(&joined) {
                            info.kinds.insert(name.clone(), joined);
                            changed = true;
                        }
                    }
                    Target::Subscript { obj, key } => {
                        if let Some(col) = key.as_str_lit() {
                            let set = info.assigned_columns.entry(obj.clone()).or_default();
                            if set.insert(col.to_string()) {
                                changed = true;
                            }
                        }
                        // Writing a column implies the object is a frame.
                        if info.kinds.get(obj) != Some(&VarKind::Frame) {
                            info.kinds.insert(obj.clone(), VarKind::Frame);
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    info
}

fn join_kinds(prev: Option<&VarKind>, new: VarKind) -> VarKind {
    match prev {
        None => new,
        Some(p) if *p == new => new,
        // A variable holding a frame on any path is conservatively a frame
        // (forced computes stay safe).
        Some(VarKind::Frame) => VarKind::Frame,
        Some(_) if new == VarKind::Frame => VarKind::Frame,
        Some(_) => VarKind::Other,
    }
}

/// Classify the value kind an expression produces.
pub fn classify_expr(e: &Expr, info: &DfVarInfo) -> VarKind {
    match e {
        Expr::Name(n) => info.kinds.get(n).cloned().unwrap_or(VarKind::Other),
        // pd.read_csv(...) / pd.DataFrame(...) / pd.concat(...)
        Expr::Call { func, .. } => match func.as_ref() {
            Expr::Attribute { value, attr } => {
                if let Expr::Name(recv) = value.as_ref() {
                    if Some(recv) == info.pandas_alias.as_ref()
                        && matches!(attr.as_str(), "read_csv" | "DataFrame" | "concat" | "merge")
                    {
                        return VarKind::Frame;
                    }
                }
                // method on a frame/series
                let recv_kind = classify_expr(value, info);
                match recv_kind {
                    VarKind::Frame => {
                        if SCALAR_METHODS.contains(&attr.as_str()) {
                            // pandas df.sum() / grouped['c'].sum() return a
                            // Series — frame-valued for materialization
                            // purposes (it can be plotted/printed whole).
                            VarKind::Frame
                        } else if FRAME_METHODS.contains(&attr.as_str())
                            || attr == "groupby"
                        {
                            VarKind::Frame
                        } else {
                            VarKind::Other
                        }
                    }
                    VarKind::Series(..) => {
                        if SCALAR_METHODS.contains(&attr.as_str()) {
                            VarKind::Scalar
                        } else {
                            // .fillna/.astype/... on a series stays one
                            recv_kind
                        }
                    }
                    _ => VarKind::Other,
                }
            }
            Expr::Name(name) if name == "len" => VarKind::Scalar,
            _ => VarKind::Other,
        },
        // df[...] — filter (frame) or column projection (series)
        Expr::Subscript { value, index } => {
            let base = classify_expr(value, info);
            if base != VarKind::Frame {
                return VarKind::Other;
            }
            match index.as_ref() {
                Expr::Str(col) => {
                    if let Expr::Name(f) = value.as_ref() {
                        VarKind::Series(f.clone(), col.clone())
                    } else {
                        // e.g. df.groupby(...)['c'] — an anonymous
                        // column-of-frame; frame-like for our purposes.
                        VarKind::Frame
                    }
                }
                Expr::List(_) => VarKind::Frame, // df[['a','b']]
                _ => VarKind::Frame,             // boolean mask filter
            }
        }
        // df.colname — series; df.colname.dt.x — still series-ish
        Expr::Attribute { value, attr } => {
            match classify_expr(value, info) {
                VarKind::Frame => {
                    if let Expr::Name(f) = value.as_ref() {
                        VarKind::Series(f.clone(), attr.clone())
                    } else {
                        VarKind::Other
                    }
                }
                VarKind::Series(f, c) => {
                    // dt/str accessor namespaces keep the series source.
                    VarKind::Series(f, c.clone())
                }
                _ => VarKind::Other,
            }
        }
        Expr::BinOp { left, right, .. } => {
            // Arithmetic over series stays series-like; over frames: frame.
            match (classify_expr(left, info), classify_expr(right, info)) {
                (VarKind::Series(f, c), _) | (_, VarKind::Series(f, c)) => {
                    VarKind::Series(f, c)
                }
                (VarKind::Frame, _) | (_, VarKind::Frame) => VarKind::Frame,
                _ => VarKind::Other,
            }
        }
        _ => VarKind::Other,
    }
}

/// Does this statement call into an external module with a frame-ish
/// argument (the §3.4 forced-computation trigger)? Returns the argument
/// variable names that need materialization.
pub fn external_call_frame_args(ast: &Ast, id: StmtId, info: &DfVarInfo) -> Vec<String> {
    let mut out = Vec::new();
    let mut scan = |e: &Expr| {
        e.walk(&mut |node| {
            if let Expr::Call { func, args, .. } = node {
                if let Expr::Attribute { value, .. } = func.as_ref() {
                    if let Expr::Name(module) = value.as_ref() {
                        if info.is_external_module(module) {
                            for a in args {
                                if let Expr::Name(v) = a {
                                    match info.kinds.get(v) {
                                        Some(VarKind::Frame) | Some(VarKind::Series(..)) => {
                                            out.push(v.clone())
                                        }
                                        _ => {}
                                    }
                                }
                            }
                        }
                    }
                }
            }
        });
    };
    match &ast.stmt(id).kind {
        StmtKind::Expr(e) => scan(e),
        StmtKind::Assign { value, .. } => scan(value),
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lafp_ir::parser::parse;

    fn info_of(src: &str) -> (Ast, DfVarInfo) {
        let ast = parse(src).unwrap();
        let info = infer(&ast);
        (ast, info)
    }

    #[test]
    fn read_csv_makes_frames() {
        let (_, info) = info_of(
            "import lazyfatpandas.pandas as pd\ndf = pd.read_csv('x.csv')\n",
        );
        assert_eq!(info.pandas_alias.as_deref(), Some("pd"));
        assert!(info.is_frame("df"));
    }

    #[test]
    fn propagation_through_operations() {
        let (_, info) = info_of(
            "\
import pandas as pd
df = pd.read_csv('x.csv')
f = df[df.fare > 0]
p = df[['a', 'b']]
h = f.head(5)
s = df['fare']
a = df.fare
m = df.fare.mean()
n = len(df)
g = df.groupby(['day'])['count'].sum()
",
        );
        assert!(info.is_frame("df"));
        assert!(info.is_frame("f"));
        assert!(info.is_frame("p"));
        assert!(info.is_frame("h"));
        assert_eq!(info.series_source("s"), Some(("df", "fare")));
        assert_eq!(info.series_source("a"), Some(("df", "fare")));
        assert_eq!(info.kinds.get("m"), Some(&VarKind::Scalar));
        assert_eq!(info.kinds.get("n"), Some(&VarKind::Scalar));
    }

    #[test]
    fn groupby_chain_is_frame() {
        let (_, info) = info_of(
            "import pandas as pd\ndf = pd.read_csv('x')\ng = df.groupby(['d'])['c'].sum()\n",
        );
        // groupby(...)['c'].sum() — sum over grouped column aggregates to a
        // frame/series we treat as frame-valued for printing purposes.
        assert!(matches!(
            info.kinds.get("g"),
            Some(VarKind::Scalar) | Some(VarKind::Frame) | Some(VarKind::Other)
        ));
    }

    #[test]
    fn external_modules_and_forced_args() {
        let (ast, info) = info_of(
            "\
import lazyfatpandas.pandas as pd
import matplotlib.pyplot as plt
df = pd.read_csv('x.csv')
plt.plot(df)
",
        );
        assert!(info.is_external_module("plt"));
        assert!(!info.is_external_module("pd"));
        let call_stmt = ast.module[3];
        assert_eq!(
            external_call_frame_args(&ast, call_stmt, &info),
            vec!["df".to_string()]
        );
    }

    #[test]
    fn assigned_columns_and_read_only() {
        let (_, info) = info_of(
            "\
import pandas as pd
df = pd.read_csv('x.csv')
df['day'] = df.ts.dt.dayofweek
",
        );
        assert!(!info.is_read_only_column("df", "day"));
        assert!(info.is_read_only_column("df", "ts"));
        assert!(info.assigned_columns["df"].contains("day"));
    }

    #[test]
    fn conditional_assignment_joins_to_frame() {
        let (_, info) = info_of(
            "\
import pandas as pd
if big:
    df = pd.read_csv('a.csv')
else:
    df = pd.read_csv('b.csv')
x = df.head(1)
",
        );
        assert!(info.is_frame("df"));
        assert!(info.is_frame("x"));
    }
}
