//! Offline shim for the subset of the `proptest` API this workspace uses.
//! The build environment has no crates.io access, so the real crate cannot
//! be fetched; property tests compile unmodified against this shim.
//!
//! Differences from real proptest: inputs are drawn from a deterministic
//! per-test RNG (seeded from the test name, so failures reproduce), there
//! is no shrinking, and the strategy language covers only what the
//! workspace tests use — integer/float ranges, `any::<bool>()`,
//! `prop::collection::vec`, and string-literal strategies restricted to
//! the `[class]{m,n}` regex subset.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// `prop::option` analog: strategies for `Option<T>`.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Some(inner)` three times out of four and
    /// `None` otherwise (matching real proptest's `Some`-biased default).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.usize_in(0, 4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// `prop::collection` analog: strategies for containers.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy};
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.lo, self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Number of random cases each property runs. Kept moderate because some
/// workspace properties do file I/O per case.
pub const NUM_CASES: u32 = 64;

/// Per-run configuration (`#![proptest_config(...)]`). The shim honors
/// only the case count.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// The glob import real proptest tests start with.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// `prop_assert!` analog. The shim has no shrinking phase, so this simply
/// panics with the failing condition (and the per-test seed printed by the
/// harness makes the case reproducible).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// `prop_assert_eq!` analog (panics instead of returning a rejection).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// `prop_assert_ne!` analog (panics instead of returning a rejection).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// Uniform choice between strategies producing one value type
/// (`prop_oneof![a, b, c]`). Weights are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $({
                let __s = $strat;
                Box::new(move |__rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::generate(&__s, __rng)
                }) as Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            }),+
        ])
    };
}

/// `proptest! { ... }` analog: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that draws inputs from the strategies and runs the
/// body on each. An optional leading `#![proptest_config(...)]` sets the
/// case count; the default is [`NUM_CASES`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases: u32 = ($cfg).cases;
                let mut __rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..__cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::with_cases($crate::NUM_CASES))]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}
