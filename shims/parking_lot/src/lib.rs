//! Offline shim for the subset of the `parking_lot` API this workspace
//! uses. The build environment has no crates.io access, so the real crate
//! cannot be fetched; this wraps `std::sync` and presents parking_lot's
//! panic-free locking signatures (`lock()` returns the guard directly).

#![warn(missing_docs)]

use std::sync::PoisonError;

/// A mutex whose `lock` never returns a poison error, matching
/// `parking_lot::Mutex`.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type alias; parking_lot's guard derefs the same way std's does.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock with parking_lot's panic-free signatures.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard alias.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard alias.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock guarding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
