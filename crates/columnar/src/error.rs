//! Error type shared by all columnar kernels.

use std::fmt;

/// Result alias for columnar operations.
pub type Result<T> = std::result::Result<T, ColumnarError>;

/// Errors raised by the columnar substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnarError {
    /// A referenced column does not exist in the frame.
    ColumnNotFound(String),
    /// A column with this name already exists where uniqueness is required.
    DuplicateColumn(String),
    /// Operation applied to a column of an unsupported dtype.
    TypeMismatch {
        /// Operation that was attempted.
        op: String,
        /// The dtype it was attempted on.
        dtype: String,
    },
    /// Two columns participating in one kernel have different lengths.
    LengthMismatch {
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
    /// A value could not be parsed as the requested dtype.
    ParseError {
        /// The offending raw text.
        value: String,
        /// The dtype we tried to parse it as.
        dtype: String,
        /// Line number (1-based, including header) if known.
        line: Option<usize>,
    },
    /// CSV structural problem (ragged row, missing header column, ...).
    Csv(String),
    /// Underlying I/O failure (message-only so the error stays `Clone`).
    Io(String),
    /// The simulated memory budget was exhausted.
    OutOfMemory {
        /// Bytes the operation attempted to reserve.
        requested: usize,
        /// Bytes available under the budget at that moment.
        available: usize,
    },
    /// Catch-all for invalid arguments.
    InvalidArgument(String),
}

impl fmt::Display for ColumnarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnarError::ColumnNotFound(name) => write!(f, "column not found: {name:?}"),
            ColumnarError::DuplicateColumn(name) => write!(f, "duplicate column: {name:?}"),
            ColumnarError::TypeMismatch { op, dtype } => {
                write!(f, "operation {op:?} not supported on dtype {dtype}")
            }
            ColumnarError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            ColumnarError::ParseError { value, dtype, line } => match line {
                Some(line) => write!(f, "cannot parse {value:?} as {dtype} (line {line})"),
                None => write!(f, "cannot parse {value:?} as {dtype}"),
            },
            ColumnarError::Csv(msg) => write!(f, "csv error: {msg}"),
            ColumnarError::Io(msg) => write!(f, "io error: {msg}"),
            ColumnarError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "simulated out of memory: requested {requested} bytes, {available} available"
            ),
            ColumnarError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for ColumnarError {}

impl From<std::io::Error> for ColumnarError {
    fn from(err: std::io::Error) -> Self {
        ColumnarError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = ColumnarError::ColumnNotFound("fare".into());
        assert!(err.to_string().contains("fare"));
        let err = ColumnarError::OutOfMemory {
            requested: 10,
            available: 4,
        };
        assert!(err.to_string().contains("10"));
        assert!(err.to_string().contains("4"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let err: ColumnarError = io.into();
        assert!(matches!(err, ColumnarError::Io(_)));
    }
}
