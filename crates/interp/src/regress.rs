//! The regression framework of §5.2: "we built a regression test framework
//! to ensure that the datasets computed with our optimizations were
//! identical to the results on Pandas without any optimization, by
//! computing and comparing hashes of the dataset results."
//!
//! Our hash is **order-insensitive within each printed table** (the Dask
//! backend legitimately loses row order) and **float-normalized** (parallel
//! and streaming execution reassociate sums, producing last-ulp
//! differences): every numeric token is rounded to 9 significant digits
//! before hashing.

use lafp_columnar::column::fnv1a;

/// Hash a program's captured output. Each output entry's lines are sorted
/// before hashing (order-insensitive rows), and numbers are normalized.
pub fn result_hash(output: &[String]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for entry in output {
        let mut lines: Vec<String> = entry.lines().map(normalize_line).collect();
        lines.sort();
        for line in lines {
            h ^= fnv1a(line.as_bytes());
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Normalize numeric tokens in a line so float noise doesn't change the
/// hash: every token parseable as f64 is reformatted with 9 significant
/// digits.
pub fn normalize_line(line: &str) -> String {
    line.split('\t')
        .map(normalize_token)
        .collect::<Vec<_>>()
        .join("\t")
        .split(' ')
        .map(normalize_token)
        .collect::<Vec<_>>()
        .join(" ")
}

fn normalize_token(token: &str) -> String {
    match token.parse::<f64>() {
        Ok(v) if v.is_finite() => format!("{v:.9e}"),
        _ => token.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_order_does_not_matter() {
        let a = vec!["h\n1\t2\n3\t4".to_string()];
        let b = vec!["h\n3\t4\n1\t2".to_string()];
        assert_eq!(result_hash(&a), result_hash(&b));
    }

    #[test]
    fn float_noise_does_not_matter() {
        let a = vec!["x\t1.0000000000000002".to_string()];
        let b = vec!["x\t1.0".to_string()];
        assert_eq!(result_hash(&a), result_hash(&b));
    }

    #[test]
    fn real_differences_matter() {
        let a = vec!["x\t1.0".to_string()];
        let b = vec!["x\t2.0".to_string()];
        assert_ne!(result_hash(&a), result_hash(&b));
        let c = vec!["x\t1.0".to_string(), "extra".to_string()];
        assert_ne!(result_hash(&a), result_hash(&c));
    }

    #[test]
    fn print_boundaries_matter() {
        // Two prints vs one print with both lines are different results.
        let a = vec!["l1".to_string(), "l2".to_string()];
        let b = vec!["l1\nl2".to_string()];
        // Same content, different structure: sorting is per entry, so these
        // happen to hash the same lines; the entry count guard is the
        // output length check in the harness. Hash equality here is OK.
        let _ = (a, b);
    }
}
