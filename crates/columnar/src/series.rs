//! A named column.

use crate::column::Column;
use crate::dtype::DType;
use crate::error::Result;
use crate::value::Scalar;
use crate::HeapSize;

/// A named [`Column`] — the 1-D object of the dataframe API.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    name: String,
    column: Column,
}

impl Series {
    /// Create a series from a name and column.
    pub fn new(name: impl Into<String>, column: Column) -> Series {
        Series {
            name: name.into(),
            column,
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename, consuming self.
    pub fn renamed(mut self, name: impl Into<String>) -> Series {
        self.name = name.into();
        self
    }

    /// Borrow the underlying column.
    pub fn column(&self) -> &Column {
        &self.column
    }

    /// Take the underlying column.
    pub fn into_column(self) -> Column {
        self.column
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.column.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.column.is_empty()
    }

    /// Dtype of the underlying column.
    pub fn dtype(&self) -> DType {
        self.column.dtype()
    }

    /// Value at row `i`.
    pub fn get(&self, i: usize) -> Scalar {
        self.column.get(i)
    }

    /// Map the underlying column through a kernel, keeping the name.
    pub fn map_column(&self, f: impl FnOnce(&Column) -> Result<Column>) -> Result<Series> {
        Ok(Series {
            name: self.name.clone(),
            column: f(&self.column)?,
        })
    }

    /// Render the series the way our `print` does: positional index,
    /// value per line, then a `Name:` trailer — a compact nod to pandas.
    pub fn to_display_string(&self) -> String {
        let mut out = String::new();
        for i in 0..self.len() {
            out.push_str(&format!("{i}\t{}\n", self.get(i)));
        }
        out.push_str(&format!("Name: {}, dtype: {}", self.name, self.dtype()));
        out
    }
}

impl HeapSize for Series {
    fn heap_size(&self) -> usize {
        self.name.capacity() + self.column.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let s = Series::new("fare", Column::from_f64(vec![1.0, 2.0]));
        assert_eq!(s.name(), "fare");
        assert_eq!(s.len(), 2);
        assert_eq!(s.dtype(), DType::Float64);
        assert_eq!(s.get(1), Scalar::Float(2.0));
    }

    #[test]
    fn renamed_keeps_data() {
        let s = Series::new("a", Column::from_i64(vec![7]));
        let r = s.clone().renamed("b");
        assert_eq!(r.name(), "b");
        assert_eq!(r.column(), s.column());
    }

    #[test]
    fn map_column_applies_kernel() {
        let s = Series::new("x", Column::from_i64(vec![-1, 2]));
        let abs = s.map_column(|c| c.abs()).unwrap();
        assert_eq!(abs.name(), "x");
        assert_eq!(abs.get(0), Scalar::Int(1));
    }

    #[test]
    fn display_contains_name_and_values() {
        let s = Series::new("n", Column::from_i64(vec![10, 20]));
        let text = s.to_display_string();
        assert!(text.contains("10"));
        assert!(text.contains("Name: n"));
        assert!(text.contains("int64"));
    }
}
