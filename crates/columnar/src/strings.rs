//! Arena-backed UTF-8 string storage: one contiguous byte buffer
//! ([`StrArena`]) plus per-row offsets ([`Utf8Col`]).
//!
//! This is the Arrow-style string layout: all row values live
//! concatenated in a single byte arena, and row `i` is the half-open
//! byte range `offsets[i] .. offsets[i + 1]`. Compared to the previous
//! `Vec<Arc<str>>` representation it changes the cost model of every
//! string kernel:
//!
//! * **Gathers are memcpys.** `take`/`filter` copy each selected row's
//!   byte range into a fresh compact arena — no atomic refcount
//!   increment per output row, and contiguous ascending index runs
//!   (the dominant shape of join-assembly index vectors) collapse into
//!   a single `extend_from_slice` of the whole run's bytes.
//! * **Slicing is zero-copy.** [`Utf8Col::slice`] shares the arena
//!   (one `Arc` clone for the entire column) and copies only the small
//!   offset window, so `head(n)` on a string column never touches the
//!   string bytes.
//! * **Comparisons, hashing and sorting read raw bytes.** A row access
//!   is two offset loads and a slice — no pointer chase to a separately
//!   allocated string, and values that are scanned in row order walk
//!   the arena sequentially.
//!
//! Offsets are `u32` ([`Offsets::Small`]) until the arena crosses
//! `u32::MAX` bytes, then upgrade to `u64` ([`Offsets::Large`]) — the
//! 4 GiB-per-column fallback Arrow handles with its `LargeString`
//! type.
//!
//! Invariant (relied on by the `unsafe` in [`Utf8Col::get`]): the
//! arena is a concatenation of whole `&str` values and every stored
//! offset is a boundary between two of them, so any
//! `offsets[i] .. offsets[i + 1]` range is valid UTF-8. All
//! construction paths ([`Utf8Builder::push`], gathers, slices) only
//! ever append whole strings and record their end positions, which
//! preserves the invariant by construction.

use crate::bitmap::Bitmap;
use crate::column::IndexLike;
use crate::HeapSize;
use std::sync::Arc;

/// A contiguous UTF-8 byte buffer shared (via `Arc`) by the string
/// columns sliced from it.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct StrArena {
    bytes: Vec<u8>,
}

impl StrArena {
    /// Wrap an already-validated byte buffer (crate construction paths
    /// only append whole `&str` values, keeping it valid UTF-8).
    fn from_bytes(bytes: Vec<u8>) -> StrArena {
        debug_assert!(std::str::from_utf8(&bytes).is_ok());
        StrArena { bytes }
    }

    /// The raw arena bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Total arena size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the arena holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// Row offsets into a [`StrArena`]: `rows + 1` monotone byte positions,
/// `u32` until the arena outgrows 4 GiB.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Offsets {
    /// 32-bit offsets — arenas up to `u32::MAX` bytes (the common case;
    /// half the offset memory traffic of `u64`).
    Small(Vec<u32>),
    /// 64-bit fallback for arenas past `u32::MAX` bytes.
    Large(Vec<u64>),
}

impl Offsets {
    /// Offsets for an empty column (position 0 only), with room for
    /// `rows` more entries.
    fn with_capacity(rows: usize) -> Offsets {
        let mut v = Vec::with_capacity(rows + 1);
        v.push(0u32);
        Offsets::Small(v)
    }

    /// Number of rows described (`entries - 1`).
    #[inline]
    fn rows(&self) -> usize {
        match self {
            Offsets::Small(v) => v.len() - 1,
            Offsets::Large(v) => v.len() - 1,
        }
    }

    /// Byte position `i` (`0 ..= rows`).
    #[inline]
    fn get(&self, i: usize) -> usize {
        match self {
            Offsets::Small(v) => v[i] as usize,
            Offsets::Large(v) => v[i] as usize,
        }
    }

    /// Append the end position of a newly written row, upgrading to
    /// `u64` offsets when the arena crosses the `u32` range.
    #[inline]
    fn push(&mut self, end: usize) {
        match self {
            Offsets::Small(v) => {
                if end <= u32::MAX as usize {
                    v.push(end as u32);
                } else {
                    let mut wide: Vec<u64> = v.iter().map(|&o| o as u64).collect();
                    wide.push(end as u64);
                    *self = Offsets::Large(wide);
                }
            }
            Offsets::Large(v) => v.push(end as u64),
        }
    }

    /// Reserve room for `additional` more rows.
    fn reserve(&mut self, additional: usize) {
        match self {
            Offsets::Small(v) => v.reserve(additional),
            Offsets::Large(v) => v.reserve(additional),
        }
    }

    /// The offset window of rows `start .. start + rows` (entries
    /// `start ..= start + rows`), preserving absolute positions.
    fn slice(&self, start: usize, rows: usize) -> Offsets {
        match self {
            Offsets::Small(v) => Offsets::Small(v[start..=start + rows].to_vec()),
            Offsets::Large(v) => Offsets::Large(v[start..=start + rows].to_vec()),
        }
    }

    /// Heap bytes held by the offset vector.
    fn heap_bytes(&self) -> usize {
        match self {
            Offsets::Small(v) => v.capacity() * 4,
            Offsets::Large(v) => v.capacity() * 8,
        }
    }
}

/// The payload of a `Column::Utf8`: a shared byte arena plus per-row
/// offsets.
///
/// Cloning is cheap (one `Arc` bump plus the offset vector);
/// [`slice`](Utf8Col::slice) shares the arena outright. Equality is
/// *logical* — two columns are equal when their row strings are equal,
/// regardless of how the bytes are laid out or how much surrounding
/// arena they share.
///
/// ```
/// use lafp_columnar::strings::Utf8Col;
/// let col = Utf8Col::from_values(["tokyo", "osaka", "kyoto"]);
/// assert_eq!(col.len(), 3);
/// assert_eq!(col.get(1), "osaka");
/// let tail = col.slice(1, 2); // zero-copy: shares the arena
/// assert_eq!(tail.get(0), "osaka");
/// ```
#[derive(Debug, Clone)]
pub struct Utf8Col {
    arena: Arc<StrArena>,
    offsets: Offsets,
}

impl Default for Utf8Col {
    fn default() -> Utf8Col {
        Utf8Builder::new().finish()
    }
}

impl Utf8Col {
    /// An empty string column.
    pub fn new() -> Utf8Col {
        Utf8Col::default()
    }

    /// Build from any iterator of string-likes (one arena write per
    /// value, no intermediate allocations).
    pub fn from_values<S: AsRef<str>, I: IntoIterator<Item = S>>(values: I) -> Utf8Col {
        let mut b = Utf8Builder::new();
        for v in values {
            b.push(v.as_ref());
        }
        b.finish()
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.rows()
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row `i`'s byte range within the arena.
    #[inline]
    fn range(&self, i: usize) -> (usize, usize) {
        (self.offsets.get(i), self.offsets.get(i + 1))
    }

    /// Row `i` as raw bytes (hashing and equality read these directly).
    #[inline]
    pub fn bytes_at(&self, i: usize) -> &[u8] {
        let (start, end) = self.range(i);
        &self.arena.bytes[start..end]
    }

    /// Row `i` as a string slice.
    #[inline]
    pub fn get(&self, i: usize) -> &str {
        let bytes = self.bytes_at(i);
        debug_assert!(std::str::from_utf8(bytes).is_ok());
        // SAFETY: the arena is a concatenation of whole `&str` values
        // and offsets only ever mark boundaries between them (module
        // invariant), so every row range is valid UTF-8.
        unsafe { std::str::from_utf8_unchecked(bytes) }
    }

    /// Iterate rows as string slices.
    pub fn iter(&self) -> impl Iterator<Item = &str> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Gather rows at `indices` into a fresh compact arena. Contiguous
    /// ascending runs — FK-shaped join output emits `i, i+1, i+2, …`
    /// for every stretch of matched probe rows — collapse into a single
    /// byte-range `extend_from_slice`; every other row is one memcpy of
    /// its bytes. No per-row refcount traffic (the cost the ROADMAP
    /// flagged on the `Arc<str>` representation).
    pub(crate) fn gather<I: IndexLike>(&self, indices: &[I]) -> Utf8Col {
        let n = indices.len();
        let mut out = Utf8Builder::with_capacity(n, n * self.avg_row_bytes());
        let mut k = 0;
        while k < n {
            let start = indices[k].idx();
            let mut run = 1;
            while k + run < n && indices[k + run].idx() == start + run {
                run += 1;
            }
            let (lo, _) = self.range(start);
            let (_, hi) = self.range(start + run - 1);
            out.bytes.extend_from_slice(&self.arena.bytes[lo..hi]);
            // Offsets still advance per row (rebased into the new arena).
            let base = out.bytes.len() - (hi - lo);
            for r in 0..run {
                let end = base + (self.offsets.get(start + r + 1) - lo);
                out.offsets.push(end);
            }
            k += run;
        }
        out.finish()
    }

    /// Rows where `mask` is set, compacted into a fresh arena
    /// (contiguous kept runs copy their bytes in one go).
    pub fn filter(&self, mask: &Bitmap) -> Utf8Col {
        let n = mask.count_set();
        let mut out = Utf8Builder::with_capacity(n, n * self.avg_row_bytes());
        // Coalesce consecutive kept rows into one byte-range copy.
        let mut run_start = usize::MAX;
        let mut run_len = 0usize;
        let flush = |start: usize, len: usize, out: &mut Utf8Builder| {
            if len == 0 {
                return;
            }
            let lo = self.offsets.get(start);
            let hi = self.offsets.get(start + len);
            out.bytes.extend_from_slice(&self.arena.bytes[lo..hi]);
            let base = out.bytes.len() - (hi - lo);
            for r in 0..len {
                out.offsets.push(base + (self.offsets.get(start + r + 1) - lo));
            }
        };
        mask.for_each_set(|i| {
            if run_start != usize::MAX && i == run_start + run_len {
                run_len += 1;
            } else {
                flush(run_start.min(self.len()), run_len, &mut out);
                run_start = i;
                run_len = 1;
            }
        });
        flush(run_start.min(self.len()), run_len, &mut out);
        out.finish()
    }

    /// Mean bytes per row (capacity hint for gather-shaped outputs,
    /// which roughly preserve the source's row-width distribution).
    pub fn avg_row_bytes(&self) -> usize {
        if self.is_empty() {
            0
        } else {
            self.value_bytes() / self.len()
        }
    }

    /// Rows `offset .. offset + len` (caller clamps), **zero-copy**:
    /// the arena is shared (`Arc` clone) and only the offset window is
    /// copied.
    pub fn slice(&self, offset: usize, len: usize) -> Utf8Col {
        Utf8Col {
            arena: Arc::clone(&self.arena),
            offsets: self.offsets.slice(offset, len),
        }
    }

    /// Bytes occupied by this column's rows (the used arena range).
    pub fn value_bytes(&self) -> usize {
        let n = self.len();
        self.offsets.get(n) - self.offsets.get(0)
    }

    /// The contiguous arena range actually used by this column's rows
    /// (a slice sees only its own window). Row `i` spans
    /// `used_bytes()[a..b]` where `a`/`b` are its rebased offsets —
    /// serializers write this range once instead of copying per row.
    pub fn used_bytes(&self) -> &[u8] {
        let lo = self.offsets.get(0);
        let hi = self.offsets.get(self.len());
        &self.arena.bytes[lo..hi]
    }

    /// Byte length of row `i` (serialization writes per-row lengths and
    /// reconstructs offsets on read).
    #[inline]
    pub fn len_at(&self, i: usize) -> usize {
        let (start, end) = self.range(i);
        end - start
    }

    /// Heap bytes charged to this column: its own rows' bytes (the used
    /// arena range) plus its offsets. Shared-arena slices charge only
    /// their window — per-holder accounting, matching what the
    /// `Arc<str>` representation charged and keeping the simulated
    /// memory budget independent of how a frame is partitioned.
    pub fn heap_bytes(&self) -> usize {
        self.value_bytes() + self.offsets.heap_bytes()
    }
}

/// Logical row-wise equality (layout- and sharing-agnostic).
impl PartialEq for Utf8Col {
    fn eq(&self, other: &Utf8Col) -> bool {
        self.len() == other.len()
            && (0..self.len()).all(|i| self.bytes_at(i) == other.bytes_at(i))
    }
}

impl HeapSize for Utf8Col {
    fn heap_size(&self) -> usize {
        self.heap_bytes()
    }
}

/// Incremental builder for a [`Utf8Col`]: appends value bytes to a
/// private arena and records each row's end offset. The CSV readers,
/// casts and null-aware gathers all push through this.
#[derive(Debug)]
pub struct Utf8Builder {
    bytes: Vec<u8>,
    offsets: Offsets,
}

impl Default for Utf8Builder {
    fn default() -> Utf8Builder {
        Utf8Builder::new()
    }
}

impl Utf8Builder {
    /// An empty builder.
    pub fn new() -> Utf8Builder {
        Utf8Builder {
            bytes: Vec::new(),
            offsets: Offsets::with_capacity(0),
        }
    }

    /// A builder with room for `rows` rows totalling ~`bytes` bytes.
    pub fn with_capacity(rows: usize, bytes: usize) -> Utf8Builder {
        Utf8Builder {
            bytes: Vec::with_capacity(bytes),
            offsets: Offsets::with_capacity(rows),
        }
    }

    /// Rows pushed so far.
    pub fn len(&self) -> usize {
        self.offsets.rows()
    }

    /// True if no rows were pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserve room for `additional` more rows.
    pub fn reserve(&mut self, additional: usize) {
        self.offsets.reserve(additional);
    }

    /// Append one row (one byte-copy of `v`, no other allocation).
    #[inline]
    pub fn push(&mut self, v: &str) {
        self.bytes.extend_from_slice(v.as_bytes());
        self.offsets.push(self.bytes.len());
    }

    /// Append every row of `other` after this builder's rows — a bulk
    /// arena concatenation (this is how the parallel CSV reader stitches
    /// per-chunk builders in file order without a per-row pass).
    pub fn append(&mut self, other: Utf8Builder) {
        let base = self.bytes.len();
        self.bytes.extend_from_slice(&other.bytes);
        self.offsets.reserve(other.len());
        for i in 1..=other.len() {
            self.offsets.push(base + other.offsets.get(i));
        }
    }

    /// Append every row of a finished column — one copy of its used
    /// byte range plus rebased offsets (the concat fast path).
    pub fn append_col(&mut self, col: &Utf8Col) {
        let n = col.len();
        let lo = col.offsets.get(0);
        let hi = col.offsets.get(n);
        let base = self.bytes.len();
        self.bytes.extend_from_slice(&col.arena.bytes[lo..hi]);
        self.offsets.reserve(n);
        for i in 1..=n {
            self.offsets.push(base + (col.offsets.get(i) - lo));
        }
    }

    /// Finish into a column (the arena is frozen behind an `Arc`).
    pub fn finish(self) -> Utf8Col {
        Utf8Col {
            arena: Arc::new(StrArena::from_bytes(self.bytes)),
            offsets: self.offsets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_get_iter() {
        let c = Utf8Col::from_values(["a", "", "längere", "x\0y"]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.get(0), "a");
        assert_eq!(c.get(1), "");
        assert_eq!(c.get(2), "längere");
        assert_eq!(c.get(3), "x\0y"); // embedded NUL is just a byte
        assert_eq!(c.iter().collect::<Vec<_>>(), vec!["a", "", "längere", "x\0y"]);
        assert_eq!(c.value_bytes(), 1 + "längere".len() + 3);
    }

    #[test]
    fn logical_equality_ignores_layout() {
        let a = Utf8Col::from_values(["x", "yy"]);
        let whole = Utf8Col::from_values(["pad", "x", "yy"]);
        let b = whole.slice(1, 2);
        assert_eq!(a, b);
        assert_ne!(a, Utf8Col::from_values(["x", "zz"]));
        assert_ne!(a, Utf8Col::from_values(["x"]));
    }

    #[test]
    fn gather_runs_and_random() {
        let c = Utf8Col::from_values(["r0", "r1", "r2", "r3", "r4", "r5"]);
        // A contiguous ascending run (join-assembly shape)...
        let run = c.gather(&[1usize, 2, 3, 4]);
        assert_eq!(run, Utf8Col::from_values(["r1", "r2", "r3", "r4"]));
        // ...and scattered indices with repeats.
        let scattered = c.gather(&[5usize, 0, 0, 3]);
        assert_eq!(scattered, Utf8Col::from_values(["r5", "r0", "r0", "r3"]));
        assert_eq!(c.gather(&[] as &[usize]).len(), 0);
    }

    #[test]
    fn gather_output_is_compact() {
        let c = Utf8Col::from_values(["aaaa", "bb", "cccccc"]);
        let g = c.gather(&[1usize]);
        // The fresh arena holds only the selected row's bytes.
        assert_eq!(g.value_bytes(), 2);
        assert_eq!(g.arena.len(), 2);
    }

    #[test]
    fn filter_coalesces_runs() {
        let c = Utf8Col::from_values(["a", "b", "c", "d", "e"]);
        let mask = Bitmap::from_bools(&[true, true, false, true, true]);
        assert_eq!(c.filter(&mask), Utf8Col::from_values(["a", "b", "d", "e"]));
        let none = Bitmap::from_bools(&[false; 5]);
        assert_eq!(c.filter(&none).len(), 0);
    }

    #[test]
    fn slice_shares_arena() {
        let c = Utf8Col::from_values(["aa", "bb", "cc", "dd"]);
        let s = c.slice(1, 2);
        assert_eq!(s, Utf8Col::from_values(["bb", "cc"]));
        assert!(Arc::ptr_eq(&c.arena, &s.arena), "slice must not copy the arena");
        // Slicing a slice still works and still shares.
        let s2 = s.slice(1, 1);
        assert_eq!(s2.get(0), "cc");
        assert!(Arc::ptr_eq(&c.arena, &s2.arena));
        assert_eq!(c.slice(4, 0).len(), 0);
    }

    #[test]
    fn builder_append_rebases_offsets() {
        let mut a = Utf8Builder::new();
        a.push("one");
        let mut b = Utf8Builder::new();
        b.push("two");
        b.push("three");
        a.append(b);
        assert_eq!(a.finish(), Utf8Col::from_values(["one", "two", "three"]));
    }

    #[test]
    fn append_col_handles_slices() {
        let whole = Utf8Col::from_values(["skip", "keep1", "keep2"]);
        let part = whole.slice(1, 2);
        let mut b = Utf8Builder::new();
        b.push("head");
        b.append_col(&part);
        assert_eq!(b.finish(), Utf8Col::from_values(["head", "keep1", "keep2"]));
    }

    #[test]
    fn offsets_upgrade_to_large() {
        let mut o = Offsets::with_capacity(2);
        o.push(10);
        o.push(u32::MAX as usize + 5);
        assert!(matches!(o, Offsets::Large(_)));
        assert_eq!(o.get(1), 10);
        assert_eq!(o.get(2), u32::MAX as usize + 5);
        assert_eq!(o.rows(), 2);
    }
}
