//! Runtime values of the PandaScript interpreter.

use lafp_backends::{DaskNodeId, MemoryReservation};
use lafp_columnar::{DataFrame, Scalar};
use lafp_core::LazyFrame;
use lafp_expr::Expr as ColExpr;
use std::rc::Rc;
use std::sync::Arc;

/// A dataframe handle, whose representation depends on the execution mode.
#[derive(Clone)]
pub enum FrameVal {
    /// Materialized frame (eager modes); the reservation charges it
    /// against the simulated budget for as long as any variable holds it.
    Eager(Arc<DataFrame>, Rc<MemoryReservation>),
    /// A node in the plain-Dask engine graph.
    DaskNode(DaskNodeId),
    /// A LaFP lazy frame.
    Lafp(LazyFrame),
}

impl std::fmt::Debug for FrameVal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameVal::Eager(df, _) => write!(f, "Eager({:?})", df.shape()),
            FrameVal::DaskNode(id) => write!(f, "DaskNode({id})"),
            FrameVal::Lafp(lf) => write!(f, "Lafp({})", lf.node()),
        }
    }
}

/// A series: a column expression over a frame (`df.fare * 2`, a boolean
/// mask, ...). Kept symbolic so filters and computed columns translate to
/// operator expressions in every mode.
#[derive(Debug, Clone)]
pub struct SeriesVal {
    /// The frame the expression reads.
    pub frame: FrameVal,
    /// The column-level expression.
    pub expr: ColExpr,
}

/// Accessor namespaces (`series.dt`, `series.str`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Namespace {
    /// Datetime accessors.
    Dt,
    /// String accessors.
    Str,
}

/// Any value a PandaScript variable can hold.
#[derive(Debug, Clone)]
pub enum PyValue {
    /// A dataframe.
    Frame(FrameVal),
    /// A column expression over a frame.
    Series(SeriesVal),
    /// `series.dt` / `series.str` awaiting the accessor field.
    Accessor(SeriesVal, Namespace),
    /// A concrete scalar (numbers, strings, bools, aggregates in eager
    /// modes).
    Scalar(Scalar),
    /// A lazily-computed scalar (LaFP mode aggregates / lazy len).
    LazyScalar(lafp_core::LazyScalar),
    /// A pending `df.groupby([keys])` awaiting column selection.
    GroupBy(FrameVal, Vec<String>),
    /// A pending `df.groupby([keys])["col"]` awaiting the aggregate.
    GroupByCol(FrameVal, Vec<String>, String),
    /// A list (paths, column lists, live_df lists...).
    List(Vec<PyValue>),
    /// A dict literal (kwargs payloads like dtype maps).
    Dict(Vec<(PyValue, PyValue)>),
    /// Python's None.
    None,
    /// A module handle (pd, plt, ...).
    Module(String),
}

impl PyValue {
    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            PyValue::Scalar(Scalar::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Truthiness for `if` conditions.
    pub fn truthy(&self) -> bool {
        match self {
            PyValue::Scalar(Scalar::Bool(b)) => *b,
            PyValue::Scalar(Scalar::Int(v)) => *v != 0,
            PyValue::Scalar(Scalar::Float(v)) => *v != 0.0,
            PyValue::Scalar(Scalar::Str(s)) => !s.is_empty(),
            PyValue::Scalar(Scalar::Null) => false,
            PyValue::List(items) => !items.is_empty(),
            PyValue::None => false,
            _ => true,
        }
    }

    /// Extract a string list (e.g. `usecols=[...]`, `by=[...]`).
    pub fn as_string_list(&self) -> Option<Vec<String>> {
        match self {
            PyValue::List(items) => items
                .iter()
                .map(|v| v.as_str().map(str::to_string))
                .collect(),
            PyValue::Scalar(Scalar::Str(s)) => Some(vec![s.clone()]),
            _ => None,
        }
    }
}
