//! The LaFP context: configuration (backend selection, §2.6), the shared
//! task graph, the engines, pending lazy prints and captured output.

use crate::graph::{NodeId, TaskGraph};
use crate::op::{LogicalOp, Value};
use crate::optimizer::OptimizerFlags;
use lafp_backends::{BackendKind, EagerEngine, MemoryTracker};
use lafp_columnar::csv::CsvOptions;
use lafp_columnar::{DataFrame, Result, Scalar};
use lafp_meta::MetaStore;
use parking_lot::Mutex;
use std::path::Path;
use std::sync::Arc;

/// Configuration of a LaFP session, the programmatic equivalent of the
/// paper's two-line program change plus the backend-selection line.
#[derive(Debug, Clone)]
pub struct LafpConfig {
    /// Which backend executes task graphs (paper default: Dask).
    pub backend: BackendKind,
    /// Simulated memory budget in bytes (`usize::MAX` = unlimited).
    pub memory_budget: usize,
    /// Worker threads for the Modin backend. `0` = default, resolved by
    /// the one shared resolver (`LAFP_THREADS` env var, else available
    /// parallelism — see `lafp_columnar::pool::resolve_threads`); the
    /// Pandas backend is single-threaded regardless, by definition.
    pub threads: usize,
    /// Partition size (rows) for the Dask backend (0 = default).
    pub chunk_rows: usize,
    /// Runtime optimizer toggles (ablations).
    pub optimizer: OptimizerFlags,
    /// Consult the metastore for `read_csv` dtype overrides (§3.6).
    pub use_metadata: bool,
    /// Rows shown when printing a frame.
    pub print_rows: usize,
}

impl Default for LafpConfig {
    fn default() -> Self {
        LafpConfig {
            backend: BackendKind::default(),
            memory_budget: usize::MAX,
            threads: 0,
            chunk_rows: 0,
            optimizer: OptimizerFlags::default(),
            use_metadata: false,
            print_rows: 10,
        }
    }
}

/// Shared mutable state of a session.
pub(crate) struct ContextInner {
    pub graph: TaskGraph,
    /// Print nodes recorded but not yet flushed, in program order (§3.3).
    pub pending_prints: Vec<NodeId>,
    /// The most recent print node (target of the next order edge).
    pub last_print: Option<NodeId>,
    /// Nodes currently holding persisted results (§3.5).
    pub persisted: Vec<NodeId>,
    /// Captured print output, one entry per executed print.
    pub output: Vec<String>,
    /// Mirror print output to stdout as well.
    pub echo: bool,
}

/// The LaFP session object — the `pd` module stand-in
/// (`import lazyfatpandas.pandas as pd`).
#[derive(Clone)]
pub struct LaFP {
    pub(crate) config: LafpConfig,
    pub(crate) tracker: Arc<MemoryTracker>,
    pub(crate) eager: EagerEngine,
    pub(crate) inner: Arc<Mutex<ContextInner>>,
}

impl LaFP {
    /// Create a session with the given configuration.
    pub fn with_config(config: LafpConfig) -> LaFP {
        let tracker = MemoryTracker::with_budget(config.memory_budget);
        let eager_kind = if config.backend == BackendKind::Dask {
            // Dask fallback path ("convert to Pandas, apply, convert back")
            // uses a single-threaded eager engine.
            BackendKind::Pandas
        } else {
            config.backend
        };
        LaFP {
            eager: EagerEngine::new(eager_kind, Arc::clone(&tracker), config.threads),
            tracker,
            config,
            inner: Arc::new(Mutex::new(ContextInner {
                graph: TaskGraph::new(),
                pending_prints: Vec::new(),
                last_print: None,
                persisted: Vec::new(),
                output: Vec::new(),
                echo: false,
            })),
        }
    }

    /// Default session (Dask backend, unlimited budget).
    pub fn new() -> LaFP {
        Self::with_config(LafpConfig::default())
    }

    /// The session configuration.
    pub fn config(&self) -> &LafpConfig {
        &self.config
    }

    /// The simulated-memory tracker (peak/current readings drive Fig. 15).
    pub fn tracker(&self) -> &Arc<MemoryTracker> {
        &self.tracker
    }

    /// Echo lazy-print output to stdout in addition to capturing it.
    pub fn set_echo(&self, echo: bool) {
        self.inner.lock().echo = echo;
    }

    /// Drain and return everything printed so far.
    pub fn take_output(&self) -> Vec<String> {
        std::mem::take(&mut self.inner.lock().output)
    }

    /// Add a node to the session graph.
    pub(crate) fn add_node(&self, op: LogicalOp, inputs: Vec<NodeId>) -> NodeId {
        self.inner.lock().graph.add(op, inputs)
    }

    /// `pd.read_csv(path)` — lazy scan with explicit options.
    ///
    /// When [`LafpConfig::use_metadata`] is set and a valid metastore entry
    /// exists, column dtypes are passed to the scan (the §3.6 runtime
    /// metadata utilization); `read_only_cols` additionally allows the
    /// category optimization for those columns (safety per §3.6 requires
    /// the read-only fact, which static analysis provides).
    pub fn read_csv_opts(
        &self,
        path: &Path,
        mut options: CsvOptions,
        read_only_cols: &[String],
    ) -> crate::frame::LazyFrame {
        if self.config.use_metadata {
            if let Ok(Some(meta)) = MetaStore::new().load(path) {
                for (col, dtype) in meta.dtype_overrides(read_only_cols) {
                    options.dtypes.entry(col).or_insert(dtype);
                }
            }
        }
        let node = self.add_node(
            LogicalOp::ReadCsv {
                path: path.to_path_buf(),
                options,
            },
            vec![],
        );
        crate::frame::LazyFrame::from_node(self.clone(), node)
    }

    /// `pd.read_csv(path)` with default options.
    pub fn read_csv(&self, path: &Path) -> crate::frame::LazyFrame {
        self.read_csv_opts(path, CsvOptions::new(), &[])
    }

    /// Wrap an existing materialized frame (`pd.DataFrame(data)`).
    pub fn from_frame(&self, frame: DataFrame) -> crate::frame::LazyFrame {
        let node = self.add_node(LogicalOp::FromFrame(Arc::new(frame)), vec![]);
        crate::frame::LazyFrame::from_node(self.clone(), node)
    }

    /// `pd.flush()` — force all pending lazy prints (end of program, §3.3).
    pub fn flush(&self) -> Result<()> {
        crate::exec::flush(self)
    }

    /// Lazy `print(...)` over a mix of text, frames and scalars (§3.3).
    pub fn print(&self, args: Vec<crate::frame::PrintArg>) {
        crate::frame::print_args(self, args)
    }

    /// Render the current task graph rooted at the pending prints (and any
    /// extra roots) — a textual Figure 6.
    pub fn explain(&self, extra_roots: &[NodeId]) -> String {
        let inner = self.inner.lock();
        let mut roots = inner.pending_prints.clone();
        roots.extend_from_slice(extra_roots);
        inner.graph.explain(&roots)
    }

    /// Peak simulated memory since session start (bytes).
    pub fn peak_memory(&self) -> usize {
        self.tracker.peak()
    }

    /// Internal: read the value cached on a node, if any.
    #[allow(dead_code)] // consumed by the interpreter crate via exec
    pub(crate) fn cached_value(&self, node: NodeId) -> Option<Value> {
        self.inner
            .lock()
            .graph
            .node(node)
            .result
            .as_ref()
            .map(|m| m.value.clone())
    }
}

impl Default for LaFP {
    fn default() -> Self {
        Self::new()
    }
}

/// A scalar or frame value printed by the lazy print machinery.
pub(crate) fn render_value(value: &Value, print_rows: usize) -> String {
    match value {
        Value::Frame(f) => f.to_display_string(print_rows),
        Value::Scalar(Scalar::Float(x)) => format!("{}", Scalar::Float(*x)),
        Value::Scalar(s) => s.to_string(),
        Value::None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_defaults() {
        let cfg = LafpConfig::default();
        assert_eq!(cfg.backend, BackendKind::Dask, "paper: default is Dask");
        assert!(cfg.optimizer.predicate_pushdown);
        assert!(cfg.optimizer.common_reuse);
    }

    #[test]
    fn session_construction_and_output_capture() {
        let pd = LaFP::new();
        assert_eq!(pd.take_output(), Vec::<String>::new());
        assert_eq!(pd.peak_memory(), 0);
    }

    #[test]
    fn eager_engine_kind_follows_backend() {
        let pd = LaFP::with_config(LafpConfig {
            backend: BackendKind::Modin,
            ..Default::default()
        });
        assert_eq!(pd.eager.kind(), BackendKind::Modin);
        let pd = LaFP::with_config(LafpConfig {
            backend: BackendKind::Dask,
            ..Default::default()
        });
        // Dask's pandas-fallback engine is single threaded.
        assert_eq!(pd.eager.kind(), BackendKind::Pandas);
    }
}
