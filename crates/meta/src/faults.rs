//! Process-wide fault-injection and recovery telemetry.
//!
//! The registry itself lives in `lafp-columnar` (`lafp_columnar::faults`)
//! because the spill, CSV and pool layers that host the injection points
//! sit below this crate in the dependency graph. This module re-exports
//! it alongside the other MetaStore telemetry surfaces ([`crate::spill`],
//! [`crate::fusion`]) so instrumentation consumers — benchmarks, the
//! chaos suite, a future query service — have one crate to import.
//!
//! See the columnar module docs for the `LAFP_FAULTS` spec grammar, the
//! deterministic seeded draw scheme, and the per-site counters
//! (`injected`, `draws`, `retries_recovered`, `dir_fallbacks`,
//! `panics_isolated`).

pub use lafp_columnar::faults::{
    fire, inject, inject_io, install, record_dir_fallback, record_panic_isolated,
    record_retry_recovered, stats, FaultGuard, FaultKind, FaultPlan, FaultSite, FaultSnapshot,
    FaultStats,
};
