//! A shared, scoped worker pool for morsel-driven parallel kernels.
//!
//! The heavy kernels (group-by, join, sort, CSV ingestion) split their
//! input into *morsels* — contiguous row ranges of a few tens of
//! thousands of rows — and let a small set of workers claim morsels off a
//! shared atomic counter (morsel-driven scheduling, after Leis et al.).
//! Workers are spawned inside [`std::thread::scope`] per parallel call:
//! crates.io is unreachable from this build environment, so there is no
//! rayon; scoped threads keep the pool dependency-free and let kernels
//! borrow their inputs without `'static` bounds. Spawning a handful of
//! OS threads costs tens of microseconds, which is noise against the
//! multi-millisecond kernels the pool is reserved for — every entry
//! point falls back to the sequential path below [`PAR_MIN_ROWS`].
//!
//! Thread-count resolution is shared by every consumer (the engines, the
//! bench harness, the global pool): an explicit request wins, then the
//! `LAFP_THREADS` environment variable, then
//! [`std::thread::available_parallelism`]. See [`resolve_threads`].
//!
//! Determinism: every parallel kernel stitches its per-morsel outputs
//! back together in morsel order (or merges with a total, index-broken
//! comparator), so results are identical to the sequential path at any
//! thread count.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Default morsel size in rows for the parallel kernels. Large enough
/// that per-morsel overheads (an accumulator merge, a run header)
/// amortize, small enough that a handful of morsels per worker keeps the
/// claim queue busy when morsel costs are skewed.
pub const MORSEL_ROWS: usize = 64 * 1024;

/// Inputs below this row count take the sequential path: the work is
/// too small to amortize spawning scoped workers.
pub const PAR_MIN_ROWS: usize = 16 * 1024;

/// Resolve a requested worker count to an effective one.
///
/// `0` means "default": the `LAFP_THREADS` environment variable if set
/// to a positive integer, else the machine's available parallelism.
/// Non-zero requests are honored as-is. The result is always ≥ 1.
///
/// Every thread-count decision in the workspace routes through this one
/// function — the Modin-like eager engine, the Dask-like engine, the
/// global pool and the bench harness — so "default" cannot silently mean
/// different things in different layers.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var("LAFP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A scoped worker pool: a resolved thread count plus the morsel-claiming
/// machinery. Cheap to construct (no threads live between calls).
///
/// ```
/// use lafp_columnar::WorkerPool;
/// let pool = WorkerPool::new(2);
/// // Items are claimed dynamically; outputs come back in item order.
/// let doubled = pool.map(vec![1, 2, 3], |_, v| v * 2);
/// assert_eq!(doubled, vec![2, 4, 6]);
/// ```
#[derive(Debug)]
pub struct WorkerPool {
    threads: usize,
}

/// A shared queue of task indexes `0..tasks`, claimed atomically by the
/// pool's workers (the morsel dispenser).
pub struct TaskQueue {
    next: AtomicUsize,
    tasks: usize,
}

impl TaskQueue {
    /// Claim the next unclaimed task index, or `None` when exhausted.
    #[inline]
    pub fn claim(&self) -> Option<usize> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.tasks).then_some(i)
    }
}

/// One output slot, written exactly once by the worker that claimed its
/// index (disjoint writes — see the safety comments in [`WorkerPool::map`]).
struct Slot<T>(UnsafeCell<Option<T>>);

// SAFETY: slots are only written through disjoint, uniquely-claimed
// indexes while the scope is live, and only read after every worker has
// joined.
unsafe impl<T: Send> Sync for Slot<T> {}

impl WorkerPool {
    /// A pool with `threads` workers (`0` = default; see
    /// [`resolve_threads`]).
    pub fn new(threads: usize) -> WorkerPool {
        WorkerPool {
            threads: resolve_threads(threads),
        }
    }

    /// A single-threaded pool: every parallel entry point degenerates to
    /// its sequential path.
    pub const fn sequential() -> WorkerPool {
        WorkerPool { threads: 1 }
    }

    /// The process-wide default pool, sized once from `LAFP_THREADS` /
    /// available parallelism.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| WorkerPool::new(0))
    }

    /// Worker count this pool runs with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Does this pool actually run work concurrently?
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Apply `f` to every item, in parallel, returning outputs in item
    /// order. Items are claimed dynamically (morsel-driven): a worker
    /// that finishes a cheap item immediately claims the next, so skewed
    /// per-item costs balance without static partitioning.
    pub fn map<T: Send, R: Send>(
        &self,
        items: Vec<T>,
        f: impl Fn(usize, T) -> R + Sync,
    ) -> Vec<R> {
        let n = items.len();
        if self.threads <= 1 || n <= 1 {
            return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let slots: Vec<Slot<T>> = items
            .into_iter()
            .map(|t| Slot(UnsafeCell::new(Some(t))))
            .collect();
        let out: Vec<Slot<R>> = (0..n).map(|_| Slot(UnsafeCell::new(None))).collect();
        let queue = TaskQueue {
            next: AtomicUsize::new(0),
            tasks: n,
        };
        let workers = self.threads.min(n);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    while let Some(i) = queue.claim() {
                        // SAFETY: `claim` hands out each index exactly
                        // once, so this worker is the only one touching
                        // slot `i`; the vectors are never resized.
                        let item = unsafe { (*slots[i].0.get()).take() }
                            .expect("task claimed exactly once");
                        let r = f(i, item);
                        unsafe { *out[i].0.get() = Some(r) };
                    }
                });
            }
        });
        out.into_iter()
            .map(|s| s.0.into_inner().expect("worker filled its slot"))
            .collect()
    }

    /// Spawn up to `threads` workers, each running `worker` with the
    /// shared task queue over `0..tasks`, and return one result per
    /// worker (in worker order). This is the shape the group-by kernel
    /// needs: worker-local accumulators fed by dynamically claimed
    /// morsels, merged by the caller afterwards.
    pub fn run_workers<R: Send>(
        &self,
        tasks: usize,
        worker: impl Fn(&TaskQueue) -> R + Sync,
    ) -> Vec<R> {
        let queue = TaskQueue {
            next: AtomicUsize::new(0),
            tasks,
        };
        let workers = self.threads.min(tasks.max(1));
        if workers <= 1 {
            return vec![worker(&queue)];
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers).map(|_| scope.spawn(|| worker(&queue))).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pool worker panicked"))
                .collect()
        })
    }
}

// ---------------------------------------------------------------------------
// Pipeline stages
// ---------------------------------------------------------------------------

/// A bounded single-producer/single-consumer channel between two
/// pipeline stages. The bound is the pipeline's *backpressure rule*: a
/// producer that gets more than `cap` items ahead of its consumer blocks
/// in [`send`](StageChannel::send), so at most `cap` in-flight items
/// (plus the two being worked on) are ever materialized — the property
/// that keeps a streaming scan's footprint independent of file size.
///
/// Built on `Mutex` + `Condvar` (no crossbeam in the sanctioned
/// dependency set); the morsels flowing through are thousands of rows
/// each, so lock traffic is noise.
pub struct StageChannel<T> {
    inner: Mutex<StageState<T>>,
    /// Signaled when an item is pushed or the producer closes.
    ready: Condvar,
    /// Signaled when an item is popped or the consumer hangs up.
    space: Condvar,
    cap: usize,
}

struct StageState<T> {
    queue: VecDeque<T>,
    /// Producer finished: drain the queue, then `recv` returns `None`.
    closed: bool,
    /// Consumer gone: `send` returns `false` so the producer can stop
    /// early (e.g. a `LIMIT` was satisfied downstream).
    hung_up: bool,
}

impl<T> StageChannel<T> {
    /// A channel admitting at most `cap` queued items (min 1).
    pub fn new(cap: usize) -> StageChannel<T> {
        StageChannel {
            inner: Mutex::new(StageState {
                queue: VecDeque::new(),
                closed: false,
                hung_up: false,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Push an item, blocking while the queue is full. Returns `false`
    /// (dropping the item) if the consumer has hung up — the producer
    /// should stop generating.
    pub fn send(&self, item: T) -> bool {
        let mut st = self.inner.lock().unwrap();
        while st.queue.len() >= self.cap && !st.hung_up {
            st = self.space.wait(st).unwrap();
        }
        if st.hung_up {
            return false;
        }
        st.queue.push_back(item);
        drop(st);
        self.ready.notify_one();
        true
    }

    /// Pop the next item, blocking while the queue is empty and the
    /// producer is still running. Returns `None` once the producer has
    /// [`close`](StageChannel::close)d and the queue is drained.
    pub fn recv(&self) -> Option<T> {
        let mut st = self.inner.lock().unwrap();
        loop {
            if let Some(item) = st.queue.pop_front() {
                drop(st);
                self.space.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap();
        }
    }

    /// Producer side: no more items will be sent.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    /// Consumer side: stop accepting items (subsequent and blocked
    /// `send`s return `false`). Queued items are dropped.
    pub fn hang_up(&self) {
        let mut st = self.inner.lock().unwrap();
        st.hung_up = true;
        st.queue.clear();
        drop(st);
        self.space.notify_all();
    }
}

/// Run a two-stage pipeline: `producer` on a scoped worker thread,
/// `consumer` on the calling thread, connected by a bounded
/// [`StageChannel`] of `cap` items. Returns both stages' results once
/// both finish.
///
/// The consumer runs on the caller's thread so it can hold `&mut`
/// state (an engine driving operators downstream of a scan) without
/// `Send` gymnastics. The producer must close the channel when done —
/// typical producers wrap their loop and call
/// [`close`](StageChannel::close) at the end; a consumer that stops
/// early (limit reached, error) should call
/// [`hang_up`](StageChannel::hang_up) so the producer's next `send`
/// returns `false` and it can exit instead of blocking forever.
///
/// ```
/// use lafp_columnar::pool::{pipeline, StageChannel};
/// let ((), sum) = pipeline(
///     2,
///     |tx: &StageChannel<i64>| {
///         for v in 1..=100 {
///             if !tx.send(v) {
///                 break;
///             }
///         }
///         tx.close();
///     },
///     |rx| {
///         let mut total = 0;
///         while let Some(v) = rx.recv() {
///             total += v;
///         }
///         total
///     },
/// );
/// assert_eq!(sum, 5050);
/// ```
pub fn pipeline<T, A, B>(
    cap: usize,
    producer: impl FnOnce(&StageChannel<T>) -> A + Send,
    consumer: impl FnOnce(&StageChannel<T>) -> B,
) -> (A, B)
where
    T: Send,
    A: Send,
{
    let channel = StageChannel::new(cap);
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| producer(&channel));
        let b = consumer(&channel);
        // A consumer that returned early without draining must not
        // strand the producer on a full queue.
        channel.hang_up();
        let a = handle.join().expect("pipeline producer panicked");
        (a, b)
    })
}

/// Run a three-stage pipeline: `producer` and `middle` each on their own
/// scoped worker thread, `consumer` on the calling thread, connected by
/// two bounded [`StageChannel`]s of `cap` items each. This is the
/// multi-stage shape the streaming executor uses for
/// scan → fused-chain transform → accumulate: the parse thread, the
/// operator-chain thread, and the driver all run concurrently, and the
/// two bounds keep the total in-flight footprint at `2 · cap` morsels
/// regardless of file size.
///
/// Shutdown protocol (the part that must not deadlock): after the
/// consumer returns, the caller hangs up the downstream channel, joins
/// the middle stage (whose next `send` returns `false`), then hangs up
/// the upstream channel and joins the producer. A middle stage should
/// mirror a well-behaved producer: forward until `recv` returns `None`
/// or `send` returns `false`, then [`close`](StageChannel::close) its
/// output.
///
/// ```
/// use lafp_columnar::pool::{pipeline3, StageChannel};
/// let ((), (), sum) = pipeline3(
///     2,
///     |tx: &StageChannel<i64>| {
///         for v in 1..=100 {
///             if !tx.send(v) {
///                 break;
///             }
///         }
///         tx.close();
///     },
///     |rx, tx: &StageChannel<i64>| {
///         while let Some(v) = rx.recv() {
///             if !tx.send(v * 2) {
///                 break;
///             }
///         }
///         tx.close();
///     },
///     |rx| {
///         let mut total = 0;
///         while let Some(v) = rx.recv() {
///             total += v;
///         }
///         total
///     },
/// );
/// assert_eq!(sum, 10100);
/// ```
pub fn pipeline3<T, U, A, B, C>(
    cap: usize,
    producer: impl FnOnce(&StageChannel<T>) -> A + Send,
    middle: impl FnOnce(&StageChannel<T>, &StageChannel<U>) -> B + Send,
    consumer: impl FnOnce(&StageChannel<U>) -> C,
) -> (A, B, C)
where
    T: Send,
    U: Send,
    A: Send,
    B: Send,
{
    let upstream = StageChannel::new(cap);
    let downstream = StageChannel::new(cap);
    std::thread::scope(|scope| {
        let h1 = scope.spawn(|| producer(&upstream));
        let h2 = scope.spawn(|| middle(&upstream, &downstream));
        let c = consumer(&downstream);
        // Unwind in dependency order: a consumer that returned early must
        // not strand the middle stage on a full downstream queue, and a
        // stopped middle stage must not strand the producer upstream.
        downstream.hang_up();
        let b = h2.join().expect("pipeline middle stage panicked");
        upstream.hang_up();
        let a = h1.join().expect("pipeline producer panicked");
        (a, b, c)
    })
}

/// Split `rows` into contiguous `(start, len)` morsels of at most
/// `morsel` rows, evenly sized (lengths differ by at most one). Empty
/// input yields no morsels.
pub fn morsel_ranges(rows: usize, morsel: usize) -> Vec<(usize, usize)> {
    if rows == 0 {
        return Vec::new();
    }
    let morsel = morsel.max(1);
    let count = rows.div_ceil(morsel);
    let base = rows / count;
    let extra = rows % count;
    let mut out = Vec::with_capacity(count);
    let mut start = 0;
    for i in 0..count {
        let len = base + usize::from(i < extra);
        out.push((start, len));
        start += len;
    }
    out
}

/// Morsels for a kernel run: at most [`MORSEL_ROWS`] rows each, but at
/// least two per worker when the input is big enough to split at all, so
/// the claim queue can balance skew.
pub fn kernel_morsels(rows: usize, threads: usize) -> Vec<(usize, usize)> {
    let target = MORSEL_ROWS.min(rows.div_ceil(2 * threads.max(1)).max(1));
    morsel_ranges(rows, target)
}

/// Split `data` into disjoint mutable chunks aligned to `morsels` (as
/// produced by [`morsel_ranges`] / [`kernel_morsels`]), each paired with
/// its starting row — the item shape parallel fill-in-place kernels
/// [`WorkerPool::map`] over. `morsels` must cover `data` exactly.
pub fn split_mut_chunks<'a, T>(
    data: &'a mut [T],
    morsels: &[(usize, usize)],
) -> Vec<(usize, &'a mut [T])> {
    let mut chunks = Vec::with_capacity(morsels.len());
    let mut rest = data;
    for &(start, len) in morsels {
        let (head, tail) = rest.split_at_mut(len);
        chunks.push((start, head));
        rest = tail;
    }
    debug_assert!(rest.is_empty(), "morsels must cover the slice exactly");
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_honors_explicit_request() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn map_preserves_order_and_runs_everything() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..1000).collect();
        let out = pool.map(items, |i, v| {
            assert_eq!(i, v);
            v * 2
        });
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn map_sequential_fallback() {
        let pool = WorkerPool::sequential();
        assert!(!pool.is_parallel());
        let out = pool.map(vec![10, 20], |_, v| v + 1);
        assert_eq!(out, vec![11, 21]);
    }

    #[test]
    fn run_workers_claims_each_task_once() {
        use std::sync::Mutex;
        let pool = WorkerPool::new(4);
        let seen = Mutex::new(vec![0u32; 100]);
        let counts = pool.run_workers(100, |q| {
            let mut local = 0usize;
            while let Some(t) = q.claim() {
                seen.lock().unwrap()[t] += 1;
                local += 1;
            }
            local
        });
        assert_eq!(counts.iter().sum::<usize>(), 100);
        assert!(seen.lock().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn run_workers_zero_tasks_still_returns_one_result() {
        let pool = WorkerPool::new(4);
        let out = pool.run_workers(0, |q| {
            assert!(q.claim().is_none());
            7
        });
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn morsel_ranges_cover_exactly() {
        for rows in [0usize, 1, 7, 100, 64 * 1024 + 3] {
            for morsel in [1usize, 10, 64 * 1024] {
                let ranges = morsel_ranges(rows, morsel);
                let mut next = 0;
                for (start, len) in &ranges {
                    assert_eq!(*start, next);
                    assert!(*len >= 1 && *len <= morsel);
                    next += len;
                }
                assert_eq!(next, rows);
            }
        }
    }

    #[test]
    fn kernel_morsels_split_for_workers() {
        let m = kernel_morsels(100_000, 4);
        assert!(m.len() >= 8, "at least two morsels per worker: {}", m.len());
        assert_eq!(m.iter().map(|(_, l)| l).sum::<usize>(), 100_000);
    }

    #[test]
    fn pipeline_streams_in_order() {
        let ((), got) = pipeline(
            4,
            |tx: &StageChannel<usize>| {
                for v in 0..1000 {
                    assert!(tx.send(v), "consumer drains everything");
                }
                tx.close();
            },
            |rx| {
                let mut out = Vec::new();
                while let Some(v) = rx.recv() {
                    out.push(v);
                }
                out
            },
        );
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
    }

    /// The bound is the backpressure rule: the producer can never get
    /// more than `cap` items ahead of the consumer.
    #[test]
    fn pipeline_bounds_in_flight_items() {
        let in_flight = AtomicUsize::new(0);
        let max_seen = AtomicUsize::new(0);
        let cap = 3;
        pipeline(
            cap,
            |tx: &StageChannel<()>| {
                for _ in 0..200 {
                    let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                    max_seen.fetch_max(now, Ordering::SeqCst);
                    assert!(tx.send(()));
                }
                tx.close();
            },
            |rx| {
                while rx.recv().is_some() {
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                }
            },
        );
        // `cap` queued, plus one item in the producer's pre-send window
        // and one in the consumer's popped-but-not-yet-counted window.
        assert!(
            max_seen.load(Ordering::SeqCst) <= cap + 2,
            "producer ran {} items ahead of a cap-{} channel",
            max_seen.load(Ordering::SeqCst),
            cap
        );
    }

    /// A consumer that stops early (a satisfied LIMIT) must unblock the
    /// producer instead of deadlocking it on a full queue.
    #[test]
    fn pipeline_consumer_hangup_stops_producer() {
        let (sent, got) = pipeline(
            1,
            |tx: &StageChannel<usize>| {
                let mut sent = 0usize;
                for v in 0..1_000_000 {
                    if !tx.send(v) {
                        break;
                    }
                    sent += 1;
                }
                tx.close();
                sent
            },
            |rx| {
                let mut out = Vec::new();
                for _ in 0..5 {
                    match rx.recv() {
                        Some(v) => out.push(v),
                        None => break,
                    }
                }
                rx.hang_up();
                out
            },
        );
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert!(sent < 1_000_000, "producer stopped early (sent {sent})");
    }

    #[test]
    fn pipeline3_streams_in_order_through_both_channels() {
        let ((), (), got) = pipeline3(
            4,
            |tx: &StageChannel<usize>| {
                for v in 0..1000 {
                    assert!(tx.send(v));
                }
                tx.close();
            },
            |rx, tx: &StageChannel<usize>| {
                while let Some(v) = rx.recv() {
                    if !tx.send(v + 1) {
                        break;
                    }
                }
                tx.close();
            },
            |rx| {
                let mut out = Vec::new();
                while let Some(v) = rx.recv() {
                    out.push(v);
                }
                out
            },
        );
        assert_eq!(got, (1..=1000).collect::<Vec<_>>());
    }

    /// A middle stage may drop items (a fused filter chain): the stages
    /// around it must still terminate cleanly.
    #[test]
    fn pipeline3_middle_stage_filters() {
        let ((), kept, sum) = pipeline3(
            2,
            |tx: &StageChannel<usize>| {
                for v in 0..100 {
                    assert!(tx.send(v));
                }
                tx.close();
            },
            |rx, tx: &StageChannel<usize>| {
                let mut kept = 0usize;
                while let Some(v) = rx.recv() {
                    if v % 2 == 0 {
                        kept += 1;
                        if !tx.send(v) {
                            break;
                        }
                    }
                }
                tx.close();
                kept
            },
            |rx| {
                let mut total = 0usize;
                while let Some(v) = rx.recv() {
                    total += v;
                }
                total
            },
        );
        assert_eq!(kept, 50);
        assert_eq!(sum, (0..100).filter(|v| v % 2 == 0).sum::<usize>());
    }

    /// A consumer that stops early must unwind both upstream stages
    /// (downstream hang-up stops the middle, upstream hang-up stops the
    /// producer) instead of deadlocking on full queues.
    #[test]
    fn pipeline3_consumer_hangup_unwinds_both_stages() {
        let (sent, forwarded, got) = pipeline3(
            1,
            |tx: &StageChannel<usize>| {
                let mut sent = 0usize;
                for v in 0..1_000_000 {
                    if !tx.send(v) {
                        break;
                    }
                    sent += 1;
                }
                tx.close();
                sent
            },
            |rx, tx: &StageChannel<usize>| {
                let mut forwarded = 0usize;
                while let Some(v) = rx.recv() {
                    if !tx.send(v) {
                        break;
                    }
                    forwarded += 1;
                }
                tx.close();
                forwarded
            },
            |rx| {
                let mut out = Vec::new();
                for _ in 0..5 {
                    match rx.recv() {
                        Some(v) => out.push(v),
                        None => break,
                    }
                }
                rx.hang_up();
                out
            },
        );
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert!(sent < 1_000_000, "producer stopped early (sent {sent})");
        assert!(forwarded < 1_000_000, "middle stopped early ({forwarded})");
    }

    /// Both channel bounds hold at once: neither stage outruns its
    /// consumer by more than the cap (+ the two in-hand windows).
    #[test]
    fn pipeline3_bounds_in_flight_items() {
        let in_flight = AtomicUsize::new(0);
        let max_seen = AtomicUsize::new(0);
        let cap = 3;
        pipeline3(
            cap,
            |tx: &StageChannel<()>| {
                for _ in 0..200 {
                    let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                    max_seen.fetch_max(now, Ordering::SeqCst);
                    assert!(tx.send(()));
                }
                tx.close();
            },
            |rx, tx: &StageChannel<()>| {
                while let Some(v) = rx.recv() {
                    if !tx.send(v) {
                        break;
                    }
                }
                tx.close();
            },
            |rx| {
                while rx.recv().is_some() {
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                }
            },
        );
        // Two cap-bounded queues plus one in-hand item per stage.
        assert!(
            max_seen.load(Ordering::SeqCst) <= 2 * cap + 3,
            "stages ran {} items ahead of two cap-{} channels",
            max_seen.load(Ordering::SeqCst),
            cap
        );
    }

    #[test]
    fn pipeline_empty_producer() {
        let ((), n) = pipeline(
            2,
            |tx: &StageChannel<u8>| tx.close(),
            |rx| {
                let mut n = 0;
                while rx.recv().is_some() {
                    n += 1;
                }
                n
            },
        );
        assert_eq!(n, 0);
    }
}
