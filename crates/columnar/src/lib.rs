//! # lafp-columnar
//!
//! The columnar dataframe substrate underneath Lazy Fat Pandas (LaFP).
//!
//! The paper ("Efficient Dataframe Systems: Lazy Fat Pandas on a Diet",
//! EDBT 2026) runs on top of Pandas/Modin/Dask; this crate provides the
//! equivalent storage and kernel layer, built from scratch:
//!
//! * [`DType`] / [`Scalar`] — the type system (int64, float64, bool, utf8,
//!   datetime, categorical) and scalar values with nulls.
//! * [`Bitmap`] — bit-packed validity masks.
//! * [`Column`] — a typed column vector plus vectorized kernels
//!   (comparisons, arithmetic, casts, date accessors, string ops, take /
//!   filter / concat, reductions).
//! * [`strings`] — arena-backed UTF-8 storage ([`Utf8Col`]): one
//!   contiguous byte buffer plus row offsets, so string gathers are
//!   memcpys and slices are zero-copy.
//! * [`Series`] — a named column.
//! * [`DataFrame`] — an ordered collection of equal-length series with
//!   relational kernels: filter, projection, group-by aggregation, hash
//!   joins, sorts, dedup, describe, concat.
//! * [`csv`] — a quoted-CSV reader (with projection, dtype overrides, date
//!   parsing and chunked/streaming access used by the out-of-core backend)
//!   and writer.
//! * [`faults`] / [`cancel`] — the robustness layer: a deterministic,
//!   seeded fault-injection registry (`LAFP_FAULTS`) firing synthetic
//!   I/O errors, ENOSPC, corruption, allocation denials and worker
//!   panics at the executor's recovery boundaries, and a cooperative
//!   [`CancelToken`] checked at morsel claims and spill operations.
//!
//! Every structure reports its heap footprint via [`HeapSize`], which the
//! backend layer uses to charge the simulated memory budget that reproduces
//! the paper's out-of-memory matrix (Figure 12).

#![warn(missing_docs)]

pub mod bitmap;
pub mod cancel;
pub mod column;
pub mod csv;
pub mod describe;
pub mod dtype;
pub mod encoding;
pub mod error;
pub mod faults;
pub mod frame;
pub mod groupby;
pub mod join;
pub mod pool;
pub mod series;
pub mod sort;
pub mod spill;
pub mod strings;
pub mod value;

pub use bitmap::Bitmap;
pub use cancel::CancelToken;
pub use column::Column;
pub use dtype::DType;
pub use error::{ColumnarError, Result};
pub use frame::DataFrame;
pub use groupby::{AggKind, GroupBySpec};
pub use join::JoinKind;
pub use pool::WorkerPool;
pub use series::Series;
pub use sort::SortOptions;
pub use strings::{StrArena, Utf8Builder, Utf8Col};
pub use value::Scalar;

/// Heap footprint reporting used by the simulated memory budget.
pub trait HeapSize {
    /// Bytes of heap memory retained by `self` (excluding `size_of::<Self>()`).
    fn heap_size(&self) -> usize;
}

impl HeapSize for String {
    fn heap_size(&self) -> usize {
        self.capacity()
    }
}

impl<T: HeapSize> HeapSize for Vec<T> {
    fn heap_size(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
            + self.iter().map(HeapSize::heap_size).sum::<usize>()
    }
}
