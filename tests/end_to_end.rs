//! Workspace-level end-to-end tests: the full pipeline from PandaScript
//! source through JIT rewriting to execution on every backend, on the
//! real benchmark programs and datasets.

use lafp_bench::datagen::{compute_all_metadata, ensure_datasets, Size};
use lafp_bench::programs::{all, program};
use lafp_bench::runner::{run_cell, Config, RunKnobs};
use std::path::PathBuf;

fn data() -> PathBuf {
    let dir = ensure_datasets(std::path::Path::new("target/lafp-data"), Size::Small).unwrap();
    compute_all_metadata(&dir).unwrap();
    dir
}

fn unlimited() -> RunKnobs {
    RunKnobs {
        budget: Some(usize::MAX),
        ..Default::default()
    }
}

#[test]
fn every_program_runs_and_matches_pandas_on_every_config() {
    let dir = data();
    for p in all() {
        let baseline = run_cell(&p, Config::Pandas, &dir, &unlimited());
        assert!(baseline.ok, "{} pandas: {:?}", p.name, baseline.error);
        assert!(baseline.outputs > 0, "{} must print something", p.name);
        for config in [Config::LPandas, Config::Modin, Config::LModin, Config::Dask, Config::LDask] {
            let r = run_cell(&p, config, &dir, &unlimited());
            assert!(r.ok, "{} {}: {:?}", p.name, config.label(), r.error);
            assert_eq!(
                (r.output_hash, r.outputs),
                (baseline.output_hash, baseline.outputs),
                "{} {} diverges from Pandas (§5.2 regression)",
                p.name,
                config.label()
            );
        }
    }
}

#[test]
fn lafp_saves_memory_on_column_selection_programs() {
    let dir = data();
    for name in ["nyt", "ais"] {
        let p = program(name).unwrap();
        let plain = run_cell(&p, Config::Pandas, &dir, &unlimited());
        let lafp = run_cell(&p, Config::LPandas, &dir, &unlimited());
        assert!(plain.ok && lafp.ok);
        assert!(
            (lafp.peak_memory as f64) < 0.7 * plain.peak_memory as f64,
            "{name}: {} vs {}",
            lafp.peak_memory,
            plain.peak_memory
        );
    }
}

#[test]
fn lazy_print_batches_dask_passes() {
    // env has six prints; LDask with lazy print should beat LDask without.
    let dir = data();
    let p = program("env").unwrap();
    let with = run_cell(&p, Config::LDask, &dir, &unlimited());
    let without = run_cell(
        &p,
        Config::LDask,
        &dir,
        &RunKnobs {
            disable_lazy_print: true,
            budget: Some(usize::MAX),
            ..Default::default()
        },
    );
    assert!(with.ok && without.ok);
    assert!(
        with.wall < without.wall,
        "lazy print should win: {:?} vs {:?}",
        with.wall,
        without.wall
    );
}

#[test]
fn caching_accelerates_stu_on_dask() {
    let dir = data();
    let p = program("stu").unwrap();
    let cached = run_cell(&p, Config::LDask, &dir, &unlimited());
    let uncached = run_cell(
        &p,
        Config::LDask,
        &dir,
        &RunKnobs {
            disable_caching: true,
            budget: Some(usize::MAX),
            ..Default::default()
        },
    );
    assert!(cached.ok && uncached.ok);
    assert_eq!(cached.output_hash, uncached.output_hash, "same results");
    assert!(
        cached.wall.as_secs_f64() < 0.8 * uncached.wall.as_secs_f64(),
        "persist should pay off: {:?} vs {:?}",
        cached.wall,
        uncached.wall
    );
    assert!(
        cached.peak_memory > uncached.peak_memory,
        "persist trades memory for time (§5.4)"
    );
}

#[test]
fn emp_ooms_under_budget_on_every_config_at_large_ratio() {
    // emp plots the whole frame: at the scaled budget with the Large
    // dataset, every configuration fails (the paper's one universal OOM).
    let root = std::path::Path::new("target/lafp-data");
    let dir = ensure_datasets(root, Size::Large).unwrap();
    let p = program("emp").unwrap();
    for config in Config::ALL {
        let r = run_cell(&p, config, &dir, &RunKnobs::default());
        assert!(
            !r.ok,
            "{} should OOM on emp at 12.6GB (got ok)",
            config.label()
        );
    }
}
