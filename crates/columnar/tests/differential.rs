//! Differential property tests: every vectorized kernel must produce
//! results identical to a naive `Scalar`-per-row reference implementation
//! (the seed-era algorithms), including null-handling edge cases. The
//! vectorization overhaul is only allowed to change the *cost* of a
//! kernel, never its result.

use lafp_columnar::column::{ArithOp, CmpOp, ColumnBuilder};
use lafp_columnar::csv::{quote_field, read_csv, split_record, CsvOptions};
use lafp_columnar::groupby::{group_by, GroupBySpec};
use lafp_columnar::join::{merge, JoinKind};
use lafp_columnar::sort::{nlargest, nsmallest, sort_values, SortOptions};
use lafp_columnar::{AggKind, Bitmap, Column, DType, DataFrame, Scalar, Series};
use proptest::prelude::*;
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Input builders (values + null mask, zipped to the shorter length)
// ---------------------------------------------------------------------------

fn col_i64(vals: &[i64], nulls: &[bool]) -> Column {
    let n = vals.len().min(nulls.len());
    Column::from_opt_i64((0..n).map(|i| (!nulls[i]).then(|| vals[i])).collect())
}

fn col_f64(vals: &[f64], nulls: &[bool]) -> Column {
    let n = vals.len().min(nulls.len());
    Column::from_opt_f64((0..n).map(|i| (!nulls[i]).then(|| vals[i])).collect())
}

fn col_str(vals: &[String], nulls: &[bool]) -> Column {
    let n = vals.len().min(nulls.len());
    Column::from_opt_strings((0..n).map(|i| (!nulls[i]).then(|| vals[i].clone())).collect())
}

/// Representation-agnostic equivalence: same length, dtype, and per-row
/// scalars (nulls equal nulls; NaN is null).
fn assert_col_equiv(actual: &Column, expected: &Column) {
    assert_eq!(actual.len(), expected.len(), "length");
    assert_eq!(actual.dtype(), expected.dtype(), "dtype");
    for i in 0..actual.len() {
        let (a, e) = (actual.get(i), expected.get(i));
        match (a.is_null(), e.is_null()) {
            (true, true) => {}
            (false, false) => assert_eq!(a, e, "row {i}"),
            _ => panic!("row {i}: null mismatch: {a:?} vs {e:?}"),
        }
    }
}

fn assert_frame_equiv(actual: &DataFrame, expected: &DataFrame) {
    assert_eq!(actual.num_columns(), expected.num_columns());
    for (a, e) in actual.series().iter().zip(expected.series()) {
        assert_eq!(a.name(), e.name());
        assert_col_equiv(a.column(), e.column());
    }
}

// ---------------------------------------------------------------------------
// Naive Scalar-per-row references (the seed-era algorithms)
// ---------------------------------------------------------------------------

fn arith_ref(left: &Column, op: ArithOp, right: &Column) -> Column {
    let len = left.len();
    let both_int = left.dtype() == DType::Int64 && right.dtype() == DType::Int64;
    if both_int && op != ArithOp::Div {
        let mut out = Vec::new();
        let mut validity = Bitmap::new(len, true);
        let mut has_null = false;
        for i in 0..len {
            let (a, b) = (left.get(i), right.get(i));
            match (a.as_i64(), b.as_i64()) {
                (Some(x), Some(y)) if !(op == ArithOp::Mod && y == 0) => out.push(match op {
                    ArithOp::Add => x.wrapping_add(y),
                    ArithOp::Sub => x.wrapping_sub(y),
                    ArithOp::Mul => x.wrapping_mul(y),
                    ArithOp::Mod => x.rem_euclid(y),
                    ArithOp::Div => unreachable!(),
                }),
                _ => {
                    out.push(0);
                    validity.set(i, false);
                    has_null = true;
                }
            }
        }
        return Column::Int64(out, has_null.then_some(validity));
    }
    let mut out = Vec::new();
    for i in 0..len {
        let (a, b) = (left.get(i), right.get(i));
        out.push(match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => match op {
                ArithOp::Add => x + y,
                ArithOp::Sub => x - y,
                ArithOp::Mul => x * y,
                ArithOp::Div => x / y,
                ArithOp::Mod => x.rem_euclid(y),
            },
            _ => f64::NAN,
        });
    }
    Column::Float64(out, None)
}

fn compare_ref(left: &Column, op: CmpOp, right: &Column) -> Bitmap {
    Bitmap::from_iter((0..left.len()).map(|i| {
        let (a, b) = (left.get(i), right.get(i));
        if a.is_null() || b.is_null() {
            op == CmpOp::Ne
        } else {
            let ord = a.cmp_values(&b);
            match op {
                CmpOp::Eq => ord.is_eq(),
                CmpOp::Ne => !ord.is_eq(),
                CmpOp::Lt => ord.is_lt(),
                CmpOp::Le => !ord.is_gt(),
                CmpOp::Gt => ord.is_gt(),
                CmpOp::Ge => !ord.is_lt(),
            }
        }
    }))
}

fn fillna_ref(col: &Column, fill: &Scalar) -> Column {
    let mut b = ColumnBuilder::new(col.dtype());
    for i in 0..col.len() {
        if col.is_null_at(i) {
            b.push_scalar(fill).unwrap();
        } else {
            b.push_scalar(&col.get(i)).unwrap();
        }
    }
    b.finish()
}

fn cast_ref(col: &Column, target: DType) -> Option<Column> {
    let mut b = ColumnBuilder::new(target);
    for i in 0..col.len() {
        match col.get(i) {
            Scalar::Null => b.push_null(),
            s => b.push_scalar(&s).ok()?,
        }
    }
    Some(b.finish())
}

fn slice_ref(col: &Column, offset: usize, len: usize) -> Column {
    let end = (offset + len).min(col.len());
    let idx: Vec<usize> = (offset.min(col.len())..end).collect();
    col.take(&idx).unwrap()
}

fn group_by_ref(frame: &DataFrame, spec: &GroupBySpec) -> DataFrame {
    use std::collections::HashMap;
    #[derive(Clone, Default)]
    struct State {
        sum: f64,
        int_sum: i64,
        count: u64,
        min: Option<Scalar>,
        max: Option<Scalar>,
        distinct: std::collections::HashSet<String>,
    }
    let canon = |key: &[Scalar]| {
        key.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("\u{1}")
    };
    let key_cols: Vec<&Series> = spec.keys.iter().map(|k| frame.column(k).unwrap()).collect();
    let value_col = frame.column(&spec.value).unwrap();
    let value_is_int =
        matches!(value_col.column().dtype(), DType::Int64 | DType::Bool);
    let mut groups: HashMap<String, State> = HashMap::new();
    let mut key_order: Vec<Vec<Scalar>> = Vec::new();
    for i in 0..frame.num_rows() {
        let key: Vec<Scalar> = key_cols.iter().map(|s| s.get(i)).collect();
        let state = match groups.entry(canon(&key)) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                key_order.push(key);
                e.insert(State::default())
            }
        };
        let v = value_col.get(i);
        if v.is_null() {
            continue;
        }
        state.count += 1;
        if let Some(x) = v.as_f64() {
            state.sum += x;
        }
        if let Some(x) = v.as_i64() {
            state.int_sum = state.int_sum.wrapping_add(x);
        }
        if state.min.as_ref().is_none_or(|m| v.cmp_values(m).is_lt()) {
            state.min = Some(v.clone());
        }
        if state.max.as_ref().is_none_or(|m| v.cmp_values(m).is_gt()) {
            state.max = Some(v.clone());
        }
        state.distinct.insert(v.to_string());
    }
    key_order.sort_by_cached_key(|k| canon(k));
    let mut key_builders: Vec<ColumnBuilder> = (0..spec.keys.len())
        .map(|k| {
            ColumnBuilder::new(
                key_order
                    .iter()
                    .find_map(|key| key[k].dtype())
                    .unwrap_or(DType::Utf8),
            )
        })
        .collect();
    let mut values = Vec::new();
    for key in &key_order {
        for (k, b) in key_builders.iter_mut().enumerate() {
            b.push_scalar(&key[k]).unwrap();
        }
        let s = &groups[&canon(key)];
        values.push(match spec.agg {
            AggKind::Sum if s.count == 0 => Scalar::Null,
            AggKind::Sum if value_is_int => Scalar::Int(s.int_sum),
            AggKind::Sum => Scalar::Float(s.sum),
            AggKind::Mean if s.count == 0 => Scalar::Null,
            AggKind::Mean => Scalar::Float(s.sum / s.count as f64),
            AggKind::Count => Scalar::Int(s.count as i64),
            AggKind::Min => s.min.clone().unwrap_or(Scalar::Null),
            AggKind::Max => s.max.clone().unwrap_or(Scalar::Null),
            AggKind::NUnique => Scalar::Int(s.distinct.len() as i64),
        });
    }
    let out_dtype = values
        .iter()
        .find_map(Scalar::dtype)
        .unwrap_or(DType::Float64);
    let mut vb = ColumnBuilder::new(out_dtype);
    for v in &values {
        vb.push_scalar(v).unwrap();
    }
    let mut series = Vec::new();
    for (k, b) in key_builders.into_iter().enumerate() {
        series.push(Series::new(spec.keys[k].clone(), b.finish()));
    }
    series.push(Series::new(spec.value.clone(), vb.finish()));
    DataFrame::new(series).unwrap()
}

/// The seed hash join: canonical key `String`s per row on both sides,
/// `Scalar`-per-row gather of the right columns (the PR-2-era `merge`).
fn merge_ref(
    left: &DataFrame,
    right: &DataFrame,
    on: &[String],
    how: JoinKind,
) -> DataFrame {
    let key_strings = |frame: &DataFrame| -> Vec<String> {
        let cols: Vec<&Series> = on.iter().map(|k| frame.column(k).unwrap()).collect();
        (0..frame.num_rows())
            .map(|i| {
                cols.iter()
                    .map(|s| s.get(i).to_string())
                    .collect::<Vec<_>>()
                    .join("\u{1}")
            })
            .collect()
    };
    let right_keys = key_strings(right);
    let mut build: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, k) in right_keys.iter().enumerate() {
        build.entry(k.as_str()).or_default().push(i);
    }
    let left_keys = key_strings(left);
    let mut left_idx: Vec<usize> = Vec::new();
    let mut right_idx: Vec<Option<usize>> = Vec::new();
    for (i, k) in left_keys.iter().enumerate() {
        match build.get(k.as_str()) {
            Some(matches) => {
                for &j in matches {
                    left_idx.push(i);
                    right_idx.push(Some(j));
                }
            }
            None => {
                if how == JoinKind::Left {
                    left_idx.push(i);
                    right_idx.push(None);
                }
            }
        }
    }
    let gather_optional = |col: &Column| -> Column {
        let mut b = ColumnBuilder::new(col.dtype());
        for ix in &right_idx {
            match ix {
                Some(i) => b.push_scalar(&col.get(*i)).unwrap(),
                None => b.push_null(),
            }
        }
        b.finish()
    };
    let key_set: std::collections::HashSet<&str> = on.iter().map(String::as_str).collect();
    let overlap: std::collections::HashSet<&str> = left
        .column_names()
        .into_iter()
        .filter(|n| !key_set.contains(n) && right.has_column(n))
        .collect();
    let mut out: Vec<Series> = Vec::new();
    for s in left.series() {
        let name = if overlap.contains(s.name()) {
            format!("{}_x", s.name())
        } else {
            s.name().to_string()
        };
        out.push(Series::new(name, s.column().take(&left_idx).unwrap()));
    }
    for s in right.series() {
        if key_set.contains(s.name()) {
            continue;
        }
        let name = if overlap.contains(s.name()) {
            format!("{}_y", s.name())
        } else {
            s.name().to_string()
        };
        out.push(Series::new(name, gather_optional(s.column())));
    }
    DataFrame::new(out).unwrap()
}

/// The seed sort: `Vec<Scalar>` key columns and boxed `cmp_values` per
/// comparison, nulls last regardless of direction.
fn sort_values_ref(frame: &DataFrame, options: &SortOptions) -> DataFrame {
    use std::cmp::Ordering;
    let dir = |k: usize| -> bool {
        options.ascending.get(k).copied().unwrap_or(
            options.ascending.first().copied().unwrap_or(true),
        )
    };
    let key_cols: Vec<Vec<Scalar>> = options
        .by
        .iter()
        .map(|name| {
            let s = frame.column(name).unwrap();
            (0..frame.num_rows()).map(|i| s.get(i)).collect()
        })
        .collect();
    let mut order: Vec<usize> = (0..frame.num_rows()).collect();
    order.sort_by(|&a, &b| {
        for (k, col) in key_cols.iter().enumerate() {
            let (x, y) = (&col[a], &col[b]);
            let ord = match (x.is_null(), y.is_null()) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Greater,
                (false, true) => Ordering::Less,
                (false, false) => {
                    let o = x.cmp_values(y);
                    if dir(k) {
                        o
                    } else {
                        o.reverse()
                    }
                }
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
    frame.take(&order).unwrap()
}

/// The seed CSV reader: one `Vec<String>` per record via `split_record`,
/// one boxed `Scalar` per cell through `push_scalar`.
fn read_csv_ref(path: &std::path::Path, options: &CsvOptions) -> DataFrame {
    use std::io::BufRead;
    let file = std::fs::File::open(path).unwrap();
    let reader = std::io::BufReader::new(file);
    let mut lines = reader.lines();
    let header = split_record(&lines.next().unwrap().unwrap());
    let keep: Vec<usize> = match &options.usecols {
        Some(cols) => (0..header.len())
            .filter(|&i| cols.iter().any(|c| *c == header[i]))
            .collect(),
        None => (0..header.len()).collect(),
    };
    let records: Vec<Vec<String>> = lines
        .map(|l| l.unwrap())
        .filter(|l| !l.trim_end_matches(['\n', '\r']).is_empty())
        .map(|l| split_record(l.trim_end_matches(['\n', '\r'])))
        .collect();
    let infer = |col_idx: usize| -> DType {
        let sample = records.iter().take(1000).map(|r| r[col_idx].as_str());
        let mut any = false;
        let (mut all_int, mut all_float, mut all_bool) = (true, true, true);
        let mut all_dt = true;
        for v in sample {
            if v.is_empty() {
                continue;
            }
            any = true;
            let t = v.trim();
            all_int &= t.parse::<i64>().is_ok();
            all_float &= t.parse::<f64>().is_ok();
            all_bool &= matches!(t, "True" | "true" | "False" | "false");
            all_dt &= lafp_columnar::value::parse_datetime(t).is_some();
        }
        if !any {
            DType::Utf8
        } else if all_bool {
            DType::Bool
        } else if all_int {
            DType::Int64
        } else if all_float {
            DType::Float64
        } else if all_dt {
            DType::Datetime
        } else {
            DType::Utf8
        }
    };
    let mut series = Vec::new();
    for &col_idx in &keep {
        let name = &header[col_idx];
        let dtype = if let Some(&dt) = options.dtypes.get(name) {
            dt
        } else if options.parse_dates.iter().any(|c| c == name) {
            DType::Datetime
        } else {
            infer(col_idx)
        };
        let mut b = ColumnBuilder::new(dtype);
        for r in &records {
            let raw = &r[col_idx];
            if raw.is_empty() {
                b.push_null();
                continue;
            }
            let scalar = match dtype {
                DType::Int64 => Scalar::Int(raw.trim().parse().unwrap()),
                DType::Float64 => Scalar::Float(raw.trim().parse().unwrap()),
                DType::Bool => Scalar::Bool(matches!(raw.trim(), "True" | "true" | "1")),
                DType::Datetime => {
                    Scalar::Datetime(lafp_columnar::value::parse_datetime(raw).unwrap())
                }
                DType::Utf8 | DType::Categorical => Scalar::Str(raw.clone()),
            };
            b.push_scalar(&scalar).unwrap();
        }
        series.push(Series::new(name.clone(), b.finish()));
    }
    DataFrame::new(series).unwrap()
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

const OPS: [ArithOp; 5] = [
    ArithOp::Add,
    ArithOp::Sub,
    ArithOp::Mul,
    ArithOp::Div,
    ArithOp::Mod,
];

const CMPS: [CmpOp; 6] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];

proptest! {
    #[test]
    fn arith_i64_matches_reference(
        a in prop::collection::vec(-40i64..40, 0..90),
        b in prop::collection::vec(-40i64..40, 0..90),
        na in prop::collection::vec(any::<bool>(), 0..90),
        nb in prop::collection::vec(any::<bool>(), 0..90),
    ) {
        let n = a.len().min(b.len()).min(na.len()).min(nb.len());
        let left = col_i64(&a[..n], &na[..n]);
        let right = col_i64(&b[..n], &nb[..n]);
        for op in OPS {
            assert_col_equiv(&left.arith(op, &right).unwrap(), &arith_ref(&left, op, &right));
        }
    }

    #[test]
    fn arith_f64_matches_reference(
        a in prop::collection::vec(-100.0f64..100.0, 0..90),
        b in prop::collection::vec(-100.0f64..100.0, 0..90),
        na in prop::collection::vec(any::<bool>(), 0..90),
        nb in prop::collection::vec(any::<bool>(), 0..90),
    ) {
        let n = a.len().min(b.len()).min(na.len()).min(nb.len());
        let left = col_f64(&a[..n], &na[..n]);
        let right = col_f64(&b[..n], &nb[..n]);
        for op in OPS {
            assert_col_equiv(&left.arith(op, &right).unwrap(), &arith_ref(&left, op, &right));
        }
    }

    #[test]
    fn arith_mixed_matches_reference(
        a in prop::collection::vec(-40i64..40, 1..90),
        b in prop::collection::vec(-100.0f64..100.0, 1..90),
        na in prop::collection::vec(any::<bool>(), 1..90),
        nb in prop::collection::vec(any::<bool>(), 1..90),
    ) {
        let n = a.len().min(b.len()).min(na.len()).min(nb.len());
        let left = col_i64(&a[..n], &na[..n]);
        let right = col_f64(&b[..n], &nb[..n]);
        for op in OPS {
            assert_col_equiv(&left.arith(op, &right).unwrap(), &arith_ref(&left, op, &right));
            assert_col_equiv(&right.arith(op, &left).unwrap(), &arith_ref(&right, op, &left));
        }
    }

    #[test]
    fn compare_matches_reference(
        a in prop::collection::vec(-20i64..20, 0..90),
        b in prop::collection::vec(-20i64..20, 0..90),
        f in prop::collection::vec(-20.0f64..20.0, 0..90),
        na in prop::collection::vec(any::<bool>(), 0..90),
        nb in prop::collection::vec(any::<bool>(), 0..90),
    ) {
        let n = a.len().min(b.len()).min(f.len()).min(na.len()).min(nb.len());
        let ints_a = col_i64(&a[..n], &na[..n]);
        let ints_b = col_i64(&b[..n], &nb[..n]);
        let floats = col_f64(&f[..n], &nb[..n]);
        for op in CMPS {
            assert_eq!(ints_a.compare(op, &ints_b).unwrap(), compare_ref(&ints_a, op, &ints_b));
            assert_eq!(ints_a.compare(op, &floats).unwrap(), compare_ref(&ints_a, op, &floats));
            assert_eq!(floats.compare(op, &ints_b).unwrap(), compare_ref(&floats, op, &ints_b));
        }
    }

    #[test]
    fn compare_strings_matches_reference(
        a in prop::collection::vec("[abc]{0,3}", 0..60),
        b in prop::collection::vec("[abc]{0,3}", 0..60),
        na in prop::collection::vec(any::<bool>(), 0..60),
        nb in prop::collection::vec(any::<bool>(), 0..60),
    ) {
        let n = a.len().min(b.len()).min(na.len()).min(nb.len());
        let left = col_str(&a[..n], &na[..n]);
        let right = col_str(&b[..n], &nb[..n]);
        for op in CMPS {
            assert_eq!(left.compare(op, &right).unwrap(), compare_ref(&left, op, &right));
        }
    }

    #[test]
    fn fillna_matches_reference(
        a in prop::collection::vec(-40i64..40, 0..90),
        f in prop::collection::vec(-40.0f64..40.0, 0..90),
        na in prop::collection::vec(any::<bool>(), 0..90),
        fill in -10i64..10,
    ) {
        let n = a.len().min(f.len()).min(na.len());
        let ints = col_i64(&a[..n], &na[..n]);
        let floats = col_f64(&f[..n], &na[..n]);
        assert_col_equiv(
            &ints.fillna(&Scalar::Int(fill)).unwrap(),
            &fillna_ref(&ints, &Scalar::Int(fill)),
        );
        assert_col_equiv(
            &floats.fillna(&Scalar::Float(fill as f64)).unwrap(),
            &fillna_ref(&floats, &Scalar::Float(fill as f64)),
        );
        // Cross-dtype fill coerces like the builder did.
        assert_col_equiv(
            &floats.fillna(&Scalar::Int(fill)).unwrap(),
            &fillna_ref(&floats, &Scalar::Int(fill)),
        );
        // Null fill keeps nulls.
        assert_col_equiv(
            &ints.fillna(&Scalar::Null).unwrap(),
            &fillna_ref(&ints, &Scalar::Null),
        );
    }

    #[test]
    fn cast_matches_reference(
        a in prop::collection::vec(-40i64..40, 0..90),
        f in prop::collection::vec(-40.0f64..40.0, 0..90),
        na in prop::collection::vec(any::<bool>(), 0..90),
    ) {
        let n = a.len().min(f.len()).min(na.len());
        let ints = col_i64(&a[..n], &na[..n]);
        let floats = col_f64(&f[..n], &na[..n]);
        for (col, target) in [
            (&ints, DType::Float64),
            (&ints, DType::Utf8),
            (&ints, DType::Datetime),
            (&floats, DType::Int64),
            (&floats, DType::Utf8),
        ] {
            let expected = cast_ref(col, target).unwrap();
            assert_col_equiv(&col.cast(target).unwrap(), &expected);
        }
        // String round-trip: Utf8 -> Int64 parse.
        let strs = ints.cast(DType::Utf8).unwrap();
        assert_col_equiv(
            &strs.cast(DType::Int64).unwrap(),
            &cast_ref(&strs, DType::Int64).unwrap(),
        );
    }

    #[test]
    fn slice_matches_reference(
        a in prop::collection::vec(-40i64..40, 0..90),
        s in prop::collection::vec("[xy]{0,2}", 0..90),
        na in prop::collection::vec(any::<bool>(), 0..90),
        offset in 0usize..100,
        len in 0usize..100,
    ) {
        let n = a.len().min(s.len()).min(na.len());
        let ints = col_i64(&a[..n], &na[..n]);
        let strs = col_str(&s[..n], &na[..n]);
        assert_col_equiv(&ints.slice(offset, len), &slice_ref(&ints, offset, len));
        assert_col_equiv(&strs.slice(offset, len), &slice_ref(&strs, offset, len));
    }

    #[test]
    fn groupby_matches_reference(
        keys in prop::collection::vec(0i64..6, 1..120),
        skeys in prop::collection::vec("[ab]{1,2}", 1..120),
        vals in prop::collection::vec(-30i64..30, 1..120),
        nk in prop::collection::vec(any::<bool>(), 1..120),
        nv in prop::collection::vec(any::<bool>(), 1..120),
    ) {
        let n = keys.len().min(skeys.len()).min(vals.len()).min(nk.len()).min(nv.len());
        let frame = DataFrame::new(vec![
            Series::new("k", col_i64(&keys[..n], &nk[..n])),
            Series::new("s", col_str(&skeys[..n], &nk[..n])),
            Series::new("v", col_i64(&vals[..n], &nv[..n])),
        ])
        .unwrap();
        for agg in [
            AggKind::Sum,
            AggKind::Mean,
            AggKind::Count,
            AggKind::Min,
            AggKind::Max,
            AggKind::NUnique,
        ] {
            for keyset in [vec!["k".to_string()], vec!["s".into(), "k".into()]] {
                let spec = GroupBySpec {
                    keys: keyset,
                    value: "v".into(),
                    agg,
                };
                assert_frame_equiv(&group_by(&frame, &spec).unwrap(), &group_by_ref(&frame, &spec));
            }
        }
    }

    #[test]
    fn join_matches_reference(
        lk in prop::collection::vec(0i64..8, 1..60),
        rk in prop::collection::vec(0i64..8, 1..40),
        // The [abN] alphabet occasionally yields a literal "NaN" string,
        // which canonical key semantics equate with a null key.
        ls in prop::collection::vec("[abN]{0,3}", 1..60),
        rs in prop::collection::vec("[abN]{0,3}", 1..40),
        nl in prop::collection::vec(any::<bool>(), 1..60),
        nr in prop::collection::vec(any::<bool>(), 1..40),
        fv in prop::collection::vec(-50.0f64..50.0, 1..40),
        left_join in any::<bool>(),
    ) {
        let n = lk.len().min(ls.len()).min(nl.len());
        let m = rk.len().min(rs.len()).min(nr.len()).min(fv.len());
        // Overlapping non-key column "v" on both sides exercises the
        // _x/_y suffix path; "w" exercises the null-aware typed gather.
        let left = DataFrame::new(vec![
            Series::new("k", col_i64(&lk[..n], &nl[..n])),
            Series::new("s", col_str(&ls[..n], &nl[..n])),
            Series::new("v", col_i64(&lk[..n], &[false].repeat(n))),
        ])
        .unwrap();
        let right = DataFrame::new(vec![
            Series::new("k", col_i64(&rk[..m], &nr[..m])),
            Series::new("s", col_str(&rs[..m], &nr[..m])),
            Series::new("v", col_i64(&rk[..m], &[false].repeat(m))),
            Series::new("w", col_f64(&fv[..m], &nr[..m])),
        ])
        .unwrap();
        let how = if left_join { JoinKind::Left } else { JoinKind::Inner };
        for keys in [
            vec!["k".to_string()],
            vec!["s".to_string()],
            vec!["k".to_string(), "s".to_string()],
        ] {
            assert_frame_equiv(
                &merge(&left, &right, &keys, how).unwrap(),
                &merge_ref(&left, &right, &keys, how),
            );
        }
    }

    #[test]
    fn sort_matches_reference(
        iv in prop::collection::vec(-20i64..20, 1..80),
        fv in prop::collection::vec(-20.0f64..20.0, 1..80),
        sv in prop::collection::vec("[abc]{0,2}", 1..80),
        ni in prop::collection::vec(any::<bool>(), 1..80),
        nf in prop::collection::vec(any::<bool>(), 1..80),
        a1 in any::<bool>(),
        a2 in any::<bool>(),
        a3 in any::<bool>(),
    ) {
        let n = iv.len().min(fv.len()).min(sv.len()).min(ni.len()).min(nf.len());
        // "tag" is a unique row id: frame equivalence after sorting by it
        // proves the permutations (including tie order) are identical.
        let tags: Vec<i64> = (0..n as i64).collect();
        let frame = DataFrame::new(vec![
            Series::new("i", col_i64(&iv[..n], &ni[..n])),
            Series::new("f", col_f64(&fv[..n], &nf[..n])),
            Series::new("s", col_str(&sv[..n], &ni[..n])),
            Series::new("tag", col_i64(&tags, &[false].repeat(n))),
        ])
        .unwrap();
        for options in [
            SortOptions::single("i", a1),
            SortOptions::single("f", a2),
            SortOptions::single("s", a3),
            SortOptions {
                by: vec!["s".into(), "i".into()],
                ascending: vec![a1, a2],
            },
            SortOptions {
                by: vec!["i".into(), "f".into(), "s".into()],
                ascending: vec![a1, a2, a3],
            },
        ] {
            assert_frame_equiv(
                &sort_values(&frame, &options).unwrap(),
                &sort_values_ref(&frame, &options),
            );
        }
    }

    #[test]
    fn top_n_matches_reference(
        fv in prop::collection::vec(-50.0f64..50.0, 1..60),
        nf in prop::collection::vec(any::<bool>(), 1..60),
        n_top in 0usize..70,
    ) {
        let n = fv.len().min(nf.len());
        let tags: Vec<i64> = (0..n as i64).collect();
        let frame = DataFrame::new(vec![
            Series::new("f", col_f64(&fv[..n], &nf[..n])),
            Series::new("tag", col_i64(&tags, &[false].repeat(n))),
        ])
        .unwrap();
        assert_frame_equiv(
            &nlargest(&frame, n_top, "f").unwrap(),
            &sort_values_ref(&frame, &SortOptions::single("f", false)).head(n_top),
        );
        assert_frame_equiv(
            &nsmallest(&frame, n_top, "f").unwrap(),
            &sort_values_ref(&frame, &SortOptions::single("f", true)).head(n_top),
        );
    }

    #[test]
    fn csv_read_matches_reference(
        strs in prop::collection::vec("[ab,\" x]{0,6}", 1..40),
        ints in prop::collection::vec(-999i64..999, 1..40),
        int_nulls in prop::collection::vec(any::<bool>(), 1..40),
        floats in prop::collection::vec(-99.0f64..99.0, 1..40),
        project in any::<bool>(),
        force_utf8 in any::<bool>(),
    ) {
        let n = strs
            .len()
            .min(ints.len())
            .min(int_nulls.len())
            .min(floats.len());
        let mut content = String::from("a,b,c\n");
        for i in 0..n {
            let b = if int_nulls[i] {
                String::new() // empty field reads back as null
            } else {
                ints[i].to_string()
            };
            content.push_str(&format!(
                "{},{},{}\n",
                quote_field(&strs[i]),
                b,
                floats[i],
            ));
        }
        let dir = std::env::temp_dir().join("lafp-differential-csv");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!(
            "d{}.csv",
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::write(&path, &content).unwrap();
        let mut options = CsvOptions::new();
        if project {
            options = options.with_usecols(vec!["a".into(), "c".into()]);
        }
        if force_utf8 {
            options = options.with_dtype("a", DType::Utf8).with_dtype("c", DType::Utf8);
        }
        let actual = read_csv(&path, &options).unwrap();
        let expected = read_csv_ref(&path, &options);
        std::fs::remove_file(&path).ok();
        assert_frame_equiv(&actual, &expected);
    }

    #[test]
    fn groupby_streaming_and_merge_match_oneshot(
        keys in prop::collection::vec(0i64..5, 1..100),
        quarters in prop::collection::vec(-120i64..120, 1..100),
        nv in prop::collection::vec(any::<bool>(), 1..100),
        split in 0usize..100,
    ) {
        use lafp_columnar::groupby::GroupByAccumulator;
        // Dyadic values (multiples of 0.25): float addition over them is
        // exact at these magnitudes, so merge order cannot perturb sums
        // (plain reals would make merge-vs-oneshot equality too strict —
        // the seed accumulator was order-sensitive the same way).
        let vals: Vec<f64> = quarters.iter().map(|&q| q as f64 / 4.0).collect();
        let n = keys.len().min(vals.len()).min(nv.len());
        let frame = DataFrame::new(vec![
            Series::new("k", col_i64(&keys[..n], &[false].repeat(n))),
            Series::new("v", col_f64(&vals[..n], &nv[..n])),
        ])
        .unwrap();
        let split = split.min(n);
        for agg in [AggKind::Sum, AggKind::Mean, AggKind::Min, AggKind::NUnique] {
            let spec = GroupBySpec { keys: vec!["k".into()], value: "v".into(), agg };
            let whole = group_by(&frame, &spec).unwrap();
            // Streaming chunks.
            let mut acc = GroupByAccumulator::new(spec.clone());
            acc.update(&frame.slice(0, split)).unwrap();
            acc.update(&frame.slice(split, n - split)).unwrap();
            assert_frame_equiv(&acc.finish().unwrap(), &whole);
            // Parallel merge.
            let mut left = GroupByAccumulator::new(spec.clone());
            left.update(&frame.slice(0, split)).unwrap();
            let mut right = GroupByAccumulator::new(spec);
            right.update(&frame.slice(split, n - split)).unwrap();
            left.merge(&right);
            assert_frame_equiv(&left.finish().unwrap(), &whole);
        }
    }
}
