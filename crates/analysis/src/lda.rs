//! Live DataFrame Analysis (paper §3.5): which dataframe variables are
//! live *after* a given statement — the `live_df=[...]` argument injected
//! at forced-computation sites so shared subexpressions get persisted.

use crate::dataflow::Point;
use crate::dfvars::DfVarInfo;
use crate::lva::{self, LvaResult};
use lafp_ir::ast::{Ast, StmtId};
use lafp_ir::cfg::{Cfg, Terminator};
use std::collections::BTreeSet;

/// Result of live dataframe analysis.
#[derive(Debug, Clone)]
pub struct LdaResult {
    lva: LvaResult,
}

/// Run LDA (it is LVA restricted to dataframe-kinded variables).
pub fn analyze(ast: &Ast, cfg: &Cfg) -> LdaResult {
    LdaResult {
        lva: lva::analyze(ast, cfg),
    }
}

impl LdaResult {
    /// Dataframe variables live immediately **after** statement `stmt`
    /// (i.e. at the In of the next program point). This is exactly the
    /// `live_df` list of §3.5.
    pub fn live_frames_after(
        &self,
        ast: &Ast,
        cfg: &Cfg,
        info: &DfVarInfo,
        stmt: StmtId,
    ) -> BTreeSet<String> {
        // Locate the statement's position, then take the In of the point
        // that follows it (next stmt in block, the terminator, or the
        // join of successor block tops).
        for (b, block) in cfg.blocks.iter().enumerate() {
            if let Some(i) = block.stmts.iter().position(|&s| s == stmt) {
                let after = if i + 1 < block.stmts.len() {
                    self.lva.live_in(Point::Stmt(b, i + 1)).clone()
                } else {
                    self.lva.live_in(Point::Term(b)).clone()
                };
                return after
                    .into_iter()
                    .filter(|v| info.is_frame(v))
                    .collect();
            }
            // Compound statements live on terminators.
            match &block.terminator {
                Terminator::Branch { stmt: s, .. } | Terminator::LoopBranch { stmt: s, .. }
                    if *s == stmt =>
                {
                    let mut out = BTreeSet::new();
                    for succ in cfg.successors(b) {
                        let top = if cfg.blocks[succ].stmts.is_empty() {
                            Point::Term(succ)
                        } else {
                            Point::Stmt(succ, 0)
                        };
                        out.extend(self.lva.live_in(top).iter().cloned());
                    }
                    return out.into_iter().filter(|v| info.is_frame(v)).collect();
                }
                _ => {}
            }
        }
        let _ = ast;
        BTreeSet::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfvars;
    use lafp_ir::lower::lower;
    use lafp_ir::parser::parse;

    #[test]
    fn live_df_matches_paper_example() {
        // Figure 10/11: after plt.plot(p_per_day), df is live (used for
        // avg_fare later) but p_per_day is not.
        let src = "\
import lazyfatpandas.pandas as pd
import matplotlib.pyplot as plt
df = pd.read_csv('data.csv')
p_per_day = df.groupby(['day'])['passenger_count'].sum()
plt.plot(p_per_day)
avg_fare = df['fare_amount'].mean()
print(f'Average fare: {avg_fare}')
";
        let ast = parse(src).unwrap();
        let cfg = lower(&ast);
        let info = dfvars::infer(&ast);
        let lda = analyze(&ast, &cfg);
        let plot_stmt = ast.module[4];
        let live = lda.live_frames_after(&ast, &cfg, &info, plot_stmt);
        assert!(live.contains("df"), "df used later via fare_amount");
        assert!(!live.contains("p_per_day"), "p_per_day dead after plot");
    }

    #[test]
    fn nothing_live_at_end() {
        let src = "\
import pandas as pd
df = pd.read_csv('d.csv')
print(df)
";
        let ast = parse(src).unwrap();
        let cfg = lower(&ast);
        let info = dfvars::infer(&ast);
        let lda = analyze(&ast, &cfg);
        let print_stmt = *ast.module.last().unwrap();
        let live = lda.live_frames_after(&ast, &cfg, &info, print_stmt);
        assert!(live.is_empty());
    }
}
