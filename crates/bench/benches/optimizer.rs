//! Microbenchmarks of the LaFP runtime optimizer passes and the JIT
//! static-analysis pipeline (the §5.3 overhead).

use criterion::{criterion_group, criterion_main, Criterion};
use lafp_bench::programs;
use lafp_core::graph::TaskGraph;
use lafp_core::op::LogicalOp;
use lafp_core::optimizer;
use lafp_expr::Expr;
use std::hint::black_box;

fn chain_graph(depth: usize) -> (TaskGraph, lafp_core::NodeId) {
    let mut g = TaskGraph::new();
    let mut node = g.add(
        LogicalOp::ReadCsv {
            path: "data.csv".into(),
            options: lafp_columnar::csv::CsvOptions::new(),
        },
        vec![],
    );
    for i in 0..depth {
        node = g.add(
            LogicalOp::WithColumn(format!("c{i}"), Expr::col("x")),
            vec![node],
        );
    }
    let f = g.add(
        LogicalOp::Filter(Expr::col("x").gt(Expr::lit_int(0))),
        vec![node],
    );
    (g, f)
}

fn bench_passes(c: &mut Criterion) {
    let mut g = c.benchmark_group("optimizer");
    g.bench_function("predicate_pushdown_depth16", |b| {
        b.iter(|| {
            let (mut graph, root) = chain_graph(16);
            optimizer::pushdown_predicates(&mut graph, &[root]);
            black_box(graph.len())
        })
    });
    g.bench_function("cse_merge", |b| {
        b.iter(|| {
            let (mut graph, _) = chain_graph(16);
            black_box(optimizer::merge_common_subexpressions(&mut graph).len())
        })
    });
    g.bench_function("graph_construction_overhead", |b| {
        b.iter(|| black_box(chain_graph(64).0.len()))
    });
    g.finish();
}

fn bench_jit(c: &mut Criterion) {
    let mut g = c.benchmark_group("jit_static_analysis");
    for p in programs::all() {
        g.bench_function(p.name, |b| {
            b.iter(|| {
                black_box(
                    lafp_rewrite::analyze(p.source, &lafp_rewrite::RewriteOptions::default())
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_passes, bench_jit);
criterion_main!(benches);
