//! # lafp-expr
//!
//! Row-level expression trees shared by the LaFP task graph and all
//! backends. A filter node in the paper's task graph (Figure 6) carries a
//! predicate like `df.fare_amount > 0`; this crate is that predicate:
//! construction, the `used_attrs` computation that predicate pushdown's
//! safe-point conditions need (§3.2), structural fingerprints for common
//! subexpression detection (§3.5), and vectorized evaluation against a
//! `DataFrame`.

#![warn(missing_docs)]

pub mod expr;

pub use expr::Expr;
