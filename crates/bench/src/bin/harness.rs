//! The experiment harness: regenerates every table and figure of §5.
//!
//! ```text
//! cargo run -p lafp-bench --release --bin harness -- all
//! cargo run -p lafp-bench --release --bin harness -- fig12 fig13
//! ```
//!
//! Artifacts: `fig12` `fig13` `fig14` `fig15` `ablation` `overhead`
//! `regress`, or `all`. Data lives under `target/lafp-data/` (override
//! with `LAFP_DATA_DIR`).
//!
//! Kernel microbenchmarks (the per-PR perf trajectory):
//!
//! ```text
//! cargo run -p lafp-bench --release --bin harness -- bench \
//!     --rows 1000000 --iters 3 --json BENCH_PR2.json
//! ```
//!
//! `--rows` defaults to 1,000,000 (use a small value for smoke runs),
//! `--iters` to 3 (best-of), `--json` writes the machine-readable artifact
//! (a human-readable table always goes to stdout). The artifact's PR label
//! comes from `--pr N`, or is parsed from a `BENCH_PR<N>.json` file name.
//!
//! Differential fuzzing against the frozen oracle:
//!
//! ```text
//! cargo run -p lafp-bench --release --bin harness -- fuzz \
//!     --cases 500 --seed 42 [--config dask] [--replay <hex>]
//! ```
//!
//! Divergences are shrunk to a minimal trace and printed as a
//! `LAFP_FUZZ_REPLAY=<hex>` one-liner; setting that variable (or
//! passing `--replay <hex>`) re-executes the trace across the config
//! matrix instead of fuzzing.

use lafp_bench::datagen::Size;
use lafp_bench::{experiments, kernel_bench};
use std::path::PathBuf;

/// Run the kernel microbench suite (the `bench` artifact).
fn run_kernel_bench(args: &[String]) {
    let mut rows = 1_000_000usize;
    let mut iters = 3usize;
    let mut json: Option<PathBuf> = None;
    let mut pr: Option<u32> = None;
    let mut threads = 0usize; // 0 = default (LAFP_THREADS / host parallelism)
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--rows" => {
                rows = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--rows needs a number");
            }
            "--iters" => {
                iters = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--iters needs a number");
            }
            "--json" => {
                json = Some(PathBuf::from(it.next().expect("--json needs a path")));
            }
            "--pr" => {
                pr = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--pr needs a number"),
                );
            }
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a number");
            }
            other => panic!(
                "unknown bench flag {other:?} (use --rows, --iters, --json, --pr, --threads)"
            ),
        }
    }
    let threads = lafp_columnar::pool::resolve_threads(threads);
    // PR number for the artifact metadata: --pr wins, else it is parsed
    // from a BENCH_PR<N>.json file name, else 0 (unlabeled run).
    let pr = pr.unwrap_or_else(|| {
        json.as_ref()
            .and_then(|p| p.file_name()?.to_str()?.strip_prefix("BENCH_PR")?.strip_suffix(".json")?.parse().ok())
            .unwrap_or(0)
    });
    eprintln!("kernel microbench: {rows} rows, best of {iters} ...");
    let results = kernel_bench::run_suite(rows, iters);
    println!("{:<28} {:>12} {:>14} {:>9}", "kernel", "seed_ms", "vectorized_ms", "speedup");
    for r in &results {
        println!(
            "{:<28} {:>12.3} {:>14.3} {:>8.2}x",
            r.name, r.seed_ms, r.vectorized_ms, r.speedup
        );
    }
    eprintln!("string kernels: arena vs Arc<str> baseline ...");
    let strings = kernel_bench::run_string_suite(rows, iters);
    println!();
    println!("{:<28} {:>12} {:>14} {:>9}", "string kernel", "arc_ms", "arena_ms", "speedup");
    for r in &strings {
        println!(
            "{:<28} {:>12.3} {:>14.3} {:>8.2}x",
            r.name, r.arc_ms, r.arena_ms, r.speedup
        );
    }
    eprintln!("parallel kernels: 1 worker vs {threads} ...");
    let parallel = kernel_bench::run_parallel_suite(rows, iters, threads);
    println!();
    println!(
        "{:<28} {:>12} {:>14} {:>9}",
        "parallel kernel",
        "t1_ms",
        format!("t{threads}_ms"),
        "speedup"
    );
    for r in &parallel {
        println!(
            "{:<28} {:>12.3} {:>14.3} {:>8.2}x",
            r.name, r.t1_ms, r.tn_ms, r.speedup
        );
    }
    eprintln!("pipelined executor: scan overlap vs blocking drain, {threads} workers ...");
    let pipeline = kernel_bench::run_pipeline_suite(rows, iters, threads);
    println!();
    println!(
        "{:<28} {:>12} {:>14} {:>9}",
        "pipeline query", "blocking_ms", "pipelined_ms", "speedup"
    );
    for r in &pipeline {
        println!(
            "{:<28} {:>12.3} {:>14.3} {:>8.2}x",
            r.name, r.blocking_ms, r.pipelined_ms, r.speedup
        );
    }
    eprintln!("chain fusion: fused per-morsel runs vs one frame per op, {threads} workers ...");
    let fusion = kernel_bench::run_fusion_suite(rows, iters, threads);
    println!();
    println!(
        "{:<36} {:>12} {:>12} {:>9}",
        "fused query", "unfused_ms", "fused_ms", "speedup"
    );
    for r in &fusion {
        println!(
            "{:<36} {:>12.3} {:>12.3} {:>8.2}x",
            r.name, r.unfused_ms, r.fused_ms, r.speedup
        );
    }
    eprintln!("encoded execution: Dict/Rle kernels vs decode-then-compute ...");
    let encoding = kernel_bench::run_encoding_suite(rows, iters);
    println!();
    println!(
        "{:<28} {:>12} {:>14} {:>9}",
        "encoded kernel", "decoded_ms", "encoded_ms", "speedup"
    );
    for r in &encoding {
        println!(
            "{:<28} {:>12.3} {:>14.3} {:>8.2}x",
            r.name, r.decoded_ms, r.encoded_ms, r.speedup
        );
    }
    if let Some(path) = json {
        let body = kernel_bench::render_json(
            pr,
            rows,
            iters,
            &kernel_bench::BenchSections {
                benches: &results,
                strings: &strings,
                parallel: &parallel,
                pipeline: &pipeline,
                fusion: &fusion,
                encoding: &encoding,
            },
        );
        std::fs::write(&path, body).expect("write bench json");
        eprintln!("wrote {}", path.display());
    }
}

/// Run the differential fuzzer (the `fuzz` artifact): seeded batches
/// against the frozen oracle across the execution-config matrix, with
/// automatic shrinking and hex replay.
fn run_fuzz(args: &[String]) {
    use lafp_oracle::fuzz;

    let mut cases = 500u64;
    let mut seed = 42u64;
    let mut config: Option<String> = None;
    let mut replay: Option<String> = std::env::var(fuzz::REPLAY_ENV).ok();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cases" => {
                cases = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--cases needs a number");
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number");
            }
            "--config" => {
                config = Some(it.next().expect("--config needs a name").clone());
            }
            "--replay" => {
                replay = Some(it.next().expect("--replay needs a hex trace").clone());
            }
            other => panic!(
                "unknown fuzz flag {other:?} (use --cases, --seed, --config, --replay)"
            ),
        }
    }
    let configs = match &config {
        Some(name) => vec![fuzz::config_by_name(name).unwrap_or_else(|| {
            let names: Vec<&str> =
                fuzz::default_configs().iter().map(|c| c.name).collect();
            panic!("unknown config {name:?} (one of {names:?})")
        })],
        None => fuzz::default_configs(),
    };

    if let Some(hex) = replay {
        eprintln!("replaying trace across {} config(s) ...", configs.len());
        let divergences = fuzz::replay_hex(&hex, &configs, fuzz::Mutation::None)
            .expect("replay trace must be a hex string");
        if divergences.is_empty() {
            println!("replay ok: trace matches the oracle under every config");
            return;
        }
        for (name, message) in &divergences {
            println!("[{name}] DIVERGENCE: {message}");
        }
        std::process::exit(1);
    }

    eprintln!(
        "fuzz: {cases} cases, seed {seed}, {} config(s) rotating ...",
        configs.len()
    );
    let report = fuzz::run_batch(seed, cases, &configs, fuzz::Mutation::None);
    println!(
        "fuzz: {} cases, {} accepted structured engine error(s), {} divergence(s)",
        report.cases,
        report.engine_errors,
        report.failures.len()
    );
    for f in &report.failures {
        println!();
        println!("case {} [{}]: {}", f.case, f.config, f.message);
        println!("  minimized to {} op(s); replay with:", f.shrunk_ops);
        println!("  {}={}", fuzz::REPLAY_ENV, f.hex_shrunk);
        println!("  (original trace: {})", f.hex_original);
    }
    if !report.failures.is_empty() {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "bench") {
        run_kernel_bench(&args[1..]);
        return;
    }
    if args.first().is_some_and(|a| a == "fuzz") {
        run_fuzz(&args[1..]);
        return;
    }
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec!["fig12", "fig13", "fig14", "fig15", "ablation", "overhead", "regress"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    let root = std::env::var("LAFP_DATA_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/lafp-data"));

    eprintln!("preparing datasets under {} ...", root.display());
    let dirs = experiments::prepare_data(&root).expect("dataset generation");

    let needs_sweep = wanted
        .iter()
        .any(|w| matches!(*w, "fig12" | "fig13" | "fig14" | "fig15" | "regress"));
    let sizes = Size::ALL;
    let sweep = if needs_sweep {
        eprintln!("running the 10 programs x 6 configurations x 3 sizes sweep ...");
        Some(experiments::run_sweep(&dirs, &sizes))
    } else {
        None
    };

    for artifact in wanted {
        match artifact {
            "fig12" => println!("{}", experiments::figure12(sweep.as_ref().unwrap(), &sizes)),
            "fig13" => println!("{}", experiments::figure13(sweep.as_ref().unwrap())),
            "fig14" => println!("{}", experiments::figure14(sweep.as_ref().unwrap(), &sizes)),
            "fig15" => println!("{}", experiments::figure15(sweep.as_ref().unwrap(), &sizes)),
            "ablation" => println!("{}", experiments::stu_caching_ablation(&dirs)),
            "overhead" => println!("{}", experiments::analysis_overhead(&dirs)),
            "regress" => {
                let (report, ok) = experiments::regression(sweep.as_ref().unwrap(), &sizes);
                println!("{report}");
                if !ok {
                    std::process::exit(1);
                }
            }
            other => eprintln!("unknown artifact {other:?} (use fig12..fig15, ablation, overhead, regress, all)"),
        }
    }
}
