//! # lafp-core — the Lazy Fat Pandas runtime
//!
//! This crate is the paper's primary contribution ("Efficient Dataframe
//! Systems: Lazy Fat Pandas on a Diet", EDBT 2026): a lazy dataframe
//! wrapper that records plain Pandas-style API calls into a task-graph DAG
//! (Figure 6), optimizes the DAG with database-style transformations at the
//! moment computation is forced, and executes it on a pluggable backend
//! (Pandas-like, Modin-like or Dask-like — §2.5–2.6).
//!
//! Implemented run-time optimizations (§3):
//!
//! * **Predicate pushdown with safe points** (§3.2) — filters move toward
//!   the data source past operators whose `mod_attrs` don't intersect the
//!   predicate's `used_attrs`, including the multi-parent rules (common
//!   filter hoisting and conjunction pushing).
//! * **Lazy print** (§3.3) — `print` becomes a graph node with order edges
//!   to earlier prints; f-string slots defer to node results at flush time.
//! * **Forced computation for external APIs** (§3.4) — `compute(live_df)`
//!   flushes pending prints first and materializes a frame for callees
//!   that cannot accept lazy frames.
//! * **Common computation reuse** (§3.5) — subexpressions shared between
//!   the computed root and still-live dataframes are persisted; persisted
//!   results are dropped after their last use.
//! * **Dead-node culling and common-subexpression merging**, and
//!   ref-counted result clearing during eager execution (§2.6).

#![warn(missing_docs)]

pub mod autoselect;
pub mod context;
pub mod exec;
pub mod frame;
pub mod graph;
pub mod op;
pub mod optimizer;

pub use autoselect::{choose_backend, DatasetUse};
pub use context::{LaFP, LafpConfig};
pub use frame::{LazyFrame, LazyScalar, PrintArg};
pub use graph::{NodeId, TaskGraph};
pub use op::{LogicalOp, PrintPiece, Value};
