//! The strategy trait and the concrete strategies the workspace tests use.

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.i128_in(self.start as i128, self.end as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                rng.i128_in(lo as i128, hi as i128 + 1) as $t
            }
        }
    )*};
}
int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// Strategy producing one fixed value (`Just(v)` in real proptest).
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// One boxed branch generator of a [`Union`] (heterogeneous strategy
/// types erase to this).
pub type UnionBranch<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// A uniform choice between same-valued strategies — what the
/// [`prop_oneof!`](crate::prop_oneof) macro builds. Branches are boxed
/// generator closures so heterogeneous strategy types can mix.
pub struct Union<T> {
    options: Vec<UnionBranch<T>>,
}

impl<T> Union<T> {
    /// Build from the branch generators (used by `prop_oneof!`).
    pub fn new(options: Vec<UnionBranch<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one branch");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.usize_in(0, self.options.len());
        (self.options[k])(rng)
    }
}

/// Strategy for any value of a type with a canonical distribution.
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — the canonical whole-type strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

/// A vec length range (`0..200` in `prop::collection::vec` calls).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    pub(crate) lo: usize,
    pub(crate) hi_exclusive: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end.max(r.start + 1),
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

// --- string-literal strategies -------------------------------------------
//
// Real proptest treats `&str` as a regex strategy. The shim supports the
// subset the workspace tests use: a sequence of atoms, each a literal
// character or a character class `[a-z0-9_]`, optionally repeated
// `{m}` / `{m,n}`.

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let (alphabet, next) = match chars[i] {
            '[' => parse_class(&chars, i + 1),
            c => (vec![c], i + 1),
        };
        i = next;
        let (min, max, next) = parse_repeat(&chars, i);
        i = next;
        let n = if max > min {
            rng.usize_in(min, max + 1)
        } else {
            min
        };
        for _ in 0..n {
            let k = rng.usize_in(0, alphabet.len());
            out.push(alphabet[k]);
        }
    }
    out
}

/// Parse a `[...]` class body starting at `i` (past the `[`); returns the
/// alphabet and the index past the closing `]`.
fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    let mut alphabet = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            assert!(lo <= hi, "bad class range in string strategy");
            for c in lo..=hi {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    assert!(i < chars.len(), "unterminated [class] in string strategy");
    assert!(!alphabet.is_empty(), "empty [class] in string strategy");
    (alphabet, i + 1)
}

/// Parse an optional `{m}` / `{m,n}` repetition at `i`; returns
/// (min, max, next index). Without braces the repetition is exactly 1.
fn parse_repeat(chars: &[char], i: usize) -> (usize, usize, usize) {
    if i >= chars.len() || chars[i] != '{' {
        return (1, 1, i);
    }
    let close = chars[i..]
        .iter()
        .position(|&c| c == '}')
        .expect("unterminated {m,n} in string strategy")
        + i;
    let body: String = chars[i + 1..close].iter().collect();
    let (min, max) = match body.split_once(',') {
        Some((m, n)) => (
            m.trim().parse().expect("bad {m,n}"),
            n.trim().parse().expect("bad {m,n}"),
        ),
        None => {
            let m: usize = body.trim().parse().expect("bad {m}");
            (m, m)
        }
    };
    assert!(min <= max, "bad {{m,n}} in string strategy");
    (min, max, close + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn int_ranges_in_bounds() {
        let mut rng = TestRng::from_name("ints");
        for _ in 0..1000 {
            let v = (-5i64..7).generate(&mut rng);
            assert!((-5..7).contains(&v));
            let v = (0usize..=3).generate(&mut rng);
            assert!(v <= 3);
        }
    }

    #[test]
    fn float_range_in_bounds() {
        let mut rng = TestRng::from_name("floats");
        for _ in 0..1000 {
            let v = (-1e3f64..1e3).generate(&mut rng);
            assert!((-1e3..1e3).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::from_name("vecs");
        let s = crate::collection::vec(0i64..10, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (0..10).contains(x)));
        }
    }

    #[test]
    fn string_pattern_subset() {
        let mut rng = TestRng::from_name("strings");
        for _ in 0..200 {
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "ab[0-9]{2}".generate(&mut rng);
            assert_eq!(t.len(), 4);
            assert!(t.starts_with("ab"));
            assert!(t[2..].chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn any_bool_produces_both() {
        let mut rng = TestRng::from_name("bools");
        let s = any::<bool>();
        let mut seen = [false, false];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
