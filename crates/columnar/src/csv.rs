//! CSV reading and writing.
//!
//! The reader supports the `read_csv` options the paper's optimizations
//! inject: `usecols` (column-selection rewrite, §3.1), `dtype` overrides
//! including `category` (metadata optimization, §3.6), and `parse_dates`.
//! A chunked reader provides the partition stream for the out-of-core
//! (Dask-like) backend.

use crate::column::ColumnBuilder;
use crate::dtype::DType;
use crate::error::{ColumnarError, Result};
use crate::frame::DataFrame;
use crate::series::Series;
use crate::value::parse_datetime;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// Options accepted by [`read_csv`] (a subset of pandas `read_csv`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CsvOptions {
    /// Read only these columns (pandas `usecols`). Order in the output
    /// follows the file header order, like pandas.
    pub usecols: Option<Vec<String>>,
    /// Per-column dtype overrides (pandas `dtype=`).
    pub dtypes: HashMap<String, DType>,
    /// Columns to parse as datetimes (pandas `parse_dates=`).
    pub parse_dates: Vec<String>,
    /// Rows to sample for dtype inference (default 1000).
    pub infer_rows: usize,
}

impl CsvOptions {
    /// Default options.
    pub fn new() -> CsvOptions {
        CsvOptions {
            infer_rows: 1000,
            ..Default::default()
        }
    }

    /// Set `usecols`.
    pub fn with_usecols(mut self, cols: Vec<String>) -> CsvOptions {
        self.usecols = Some(cols);
        self
    }

    /// Add one dtype override.
    pub fn with_dtype(mut self, col: impl Into<String>, dtype: DType) -> CsvOptions {
        self.dtypes.insert(col.into(), dtype);
        self
    }

    /// Add a parse-dates column.
    pub fn with_parse_dates(mut self, cols: Vec<String>) -> CsvOptions {
        self.parse_dates = cols;
        self
    }
}

/// One field's location after [`split_spans`]: a byte range into either
/// the raw line (zero-copy fast path) or the normalized scratch buffer
/// (quoted lines, after unescaping).
#[derive(Debug, Clone, Copy)]
struct FieldSpan {
    start: usize,
    end: usize,
    /// True when the range indexes the scratch buffer instead of the line.
    in_scratch: bool,
}

/// Split one record into borrowed field spans, quote-aware.
///
/// Lines without a double quote take the zero-copy fast path: every field
/// is a direct slice of `line` and nothing is written to `scratch`.
/// Quoted lines are normalized (quotes stripped, `""` unescaped) into
/// `scratch` with one byte-run copy per unquoted stretch — still no
/// per-field allocation. This is the inner loop that replaces the seed's
/// `Vec<String>`-per-record `split_record`.
fn split_spans(line: &str, spans: &mut Vec<FieldSpan>, scratch: &mut String) {
    spans.clear();
    scratch.clear();
    let bytes = line.as_bytes();
    if !bytes.contains(&b'"') {
        let mut start = 0;
        for (i, &b) in bytes.iter().enumerate() {
            if b == b',' {
                spans.push(FieldSpan { start, end: i, in_scratch: false });
                start = i + 1;
            }
        }
        spans.push(FieldSpan {
            start,
            end: bytes.len(),
            in_scratch: false,
        });
        return;
    }
    // Quote-aware path. '"' and ',' are ASCII, so the runs between them
    // are whole UTF-8 sequences and can be copied as &str slices.
    let len = bytes.len();
    let mut i = 0;
    let mut field_start = 0;
    let mut in_quotes = false;
    while i < len {
        if in_quotes {
            let j = bytes[i..]
                .iter()
                .position(|&b| b == b'"')
                .map_or(len, |p| i + p);
            scratch.push_str(&line[i..j]);
            i = j;
            if i < len {
                if bytes.get(i + 1) == Some(&b'"') {
                    scratch.push('"');
                    i += 2;
                } else {
                    in_quotes = false;
                    i += 1;
                }
            }
        } else {
            match bytes[i] {
                b'"' => {
                    in_quotes = true;
                    i += 1;
                }
                b',' => {
                    spans.push(FieldSpan {
                        start: field_start,
                        end: scratch.len(),
                        in_scratch: true,
                    });
                    field_start = scratch.len();
                    i += 1;
                }
                _ => {
                    let j = bytes[i..]
                        .iter()
                        .position(|&b| b == b'"' || b == b',')
                        .map_or(len, |p| i + p);
                    scratch.push_str(&line[i..j]);
                    i = j;
                }
            }
        }
    }
    spans.push(FieldSpan {
        start: field_start,
        end: scratch.len(),
        in_scratch: true,
    });
}

/// Split one CSV record honoring double-quote escaping (RFC-4180 style).
pub fn split_record(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut field));
            }
            _ => field.push(c),
        }
    }
    fields.push(field);
    fields
}

/// Quote a field if it contains separators, quotes or line terminators.
pub fn quote_field(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r')
    {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Number of double-quote bytes in `s` — the quote-parity counter the
/// multiline-record rule rests on: a record continues onto the next
/// physical line exactly while its accumulated quote count is odd
/// (an open quoted field), and `""` escapes add two, preserving parity.
#[inline]
fn count_quotes(s: &str) -> usize {
    s.as_bytes().iter().filter(|&&b| b == b'"').count()
}

/// Iterator over the records of an in-memory CSV body, quote-aware: a
/// newline inside an open quoted field is content, not a terminator.
///
/// Yields `(raw_record, physical_lines)` where `raw_record` excludes
/// the terminating newline (interior newlines stay verbatim) and
/// `physical_lines` is how many physical lines the record advances the
/// file position by: its interior newlines plus its terminator (or plus
/// one when the final record is unterminated). Shared by the parallel
/// reader's dtype-inference sample and per-chunk parse loops so both
/// agree with the streaming reader's record segmentation exactly.
struct Records<'a> {
    body: &'a str,
    pos: usize,
}

impl<'a> Records<'a> {
    fn over(body: &'a str) -> Records<'a> {
        Records { body, pos: 0 }
    }
}

impl<'a> Iterator for Records<'a> {
    type Item = (&'a str, usize);

    fn next(&mut self) -> Option<(&'a str, usize)> {
        if self.pos >= self.body.len() {
            return None;
        }
        let bytes = self.body.as_bytes();
        let start = self.pos;
        let mut lines = 0usize;
        let mut in_quotes = false;
        for (i, &b) in bytes.iter().enumerate().skip(start) {
            match b {
                b'"' => in_quotes = !in_quotes,
                b'\n' => {
                    lines += 1;
                    if !in_quotes {
                        self.pos = i + 1;
                        return Some((&self.body[start..i], lines));
                    }
                }
                _ => {}
            }
        }
        // Unterminated final record (possibly with an unbalanced quote):
        // it still occupies one more physical line than its interior
        // newlines.
        self.pos = self.body.len();
        Some((&self.body[start..], lines + 1))
    }
}

/// Fire the `csv_read` injection point, attaching the file path to the
/// synthetic error (see [`faults`](crate::faults)).
fn inject_csv(path: &Path) -> Result<()> {
    crate::faults::inject_io(crate::faults::FaultSite::CsvRead).map_err(|e| {
        ColumnarError::Io {
            kind: e.kind(),
            message: format!("{path:?}: {e}"),
        }
    })
}

/// Read just the header row of a CSV file.
pub fn read_header(path: &Path) -> Result<Vec<String>> {
    let file = File::open(path).map_err(|e| ColumnarError::Io { kind: e.kind(), message: format!("{path:?}: {e}") })?;
    let mut reader = BufReader::new(file);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let line = line.trim_end_matches(['\n', '\r']);
    if line.is_empty() {
        return Err(ColumnarError::Csv(format!("{path:?}: empty header")));
    }
    Ok(split_record(line))
}

/// Read a whole CSV file into a [`DataFrame`].
pub fn read_csv(path: &Path, options: &CsvOptions) -> Result<DataFrame> {
    let mut reader = CsvChunkReader::open(path, options, usize::MAX)?;
    match reader.next_chunk()? {
        Some(chunk) => Ok(chunk),
        None => {
            // Header-only file: build an empty frame with the right schema.
            reader.empty_frame()
        }
    }
}

/// Resolve `usecols` against the header: kept record indices in file
/// order (pandas semantics), error on unknown names.
fn resolve_usecols(header: &[String], options: &CsvOptions, path: &Path) -> Result<Vec<usize>> {
    match &options.usecols {
        Some(cols) => {
            for c in cols {
                if !header.iter().any(|h| h == c) {
                    return Err(ColumnarError::ColumnNotFound(format!(
                        "{c} (usecols, file {path:?})"
                    )));
                }
            }
            Ok((0..header.len())
                .filter(|&i| cols.iter().any(|c| *c == header[i]))
                .collect())
        }
        None => Ok((0..header.len()).collect()),
    }
}

/// Bodies below this size parse sequentially — chunking and worker
/// spawn don't amortize.
const PAR_MIN_BYTES: usize = 256 * 1024;

/// [`read_csv`] driven through a worker pool.
///
/// The file is read into one buffer; a **quote-aware** newline pre-scan
/// splits the body into worker chunks at record boundaries — a newline
/// inside an open quoted field (tracked by quote parity, exactly the
/// rule the streaming reader's record iterator uses) is field content and
/// never a chunk boundary, so records with embedded `\n`/`\r\n` stay
/// whole. A first parallel pass counts physical lines per chunk so error
/// messages carry the exact sequential line numbers (a multiline record
/// reports its *first* physical line, like the streaming reader), and a
/// second parallel pass parses each chunk into its own typed
/// [`ColumnBuilder`]s. The per-chunk builders are concatenated in file
/// order ([`ColumnBuilder::append`]), so the result is bit-identical to
/// the streaming reader at any thread count: same dtype inference
/// (shared `DtypeGuess` over the same leading sample), same values, same
/// validity, and the same first error.
pub fn read_csv_par(
    path: &Path,
    options: &CsvOptions,
    pool: &crate::pool::WorkerPool,
) -> Result<DataFrame> {
    if !pool.is_parallel() {
        return read_csv(path, options);
    }
    inject_csv(path)?;
    // Size-gate on metadata before buffering the file, so small files
    // are read once (by the streaming reader), not twice.
    let file_bytes = std::fs::metadata(path)
        .map(|m| m.len() as usize)
        .map_err(|e| ColumnarError::Io { kind: e.kind(), message: format!("{path:?}: {e}") })?;
    if file_bytes < PAR_MIN_BYTES {
        return read_csv(path, options);
    }
    let text =
        std::fs::read_to_string(path).map_err(|e| ColumnarError::Io { kind: e.kind(), message: format!("{path:?}: {e}") })?;
    let (header_line, body_start) = match text.find('\n') {
        Some(p) => (&text[..p], p + 1),
        None => (text.as_str(), text.len()),
    };
    let header_line = header_line.trim_end_matches('\r');
    if header_line.is_empty() {
        return Err(ColumnarError::Csv(format!("{path:?}: empty header")));
    }
    let header = split_record(header_line);
    let keep = resolve_usecols(&header, options, path)?;
    let body = &text[body_start..];
    if body.is_empty() {
        // Header-only file: same empty frame as the streaming reader.
        return read_csv(path, options);
    }

    // Dtype inference over the same leading sample the streaming reader
    // uses (record order is file order; ragged sample rows error with
    // their line number exactly as the streaming reader would).
    let sample_rows = if options.infer_rows == 0 {
        1000
    } else {
        options.infer_rows
    };
    let mut guesses: Vec<DtypeGuess> = keep.iter().map(|_| DtypeGuess::new()).collect();
    {
        let mut spans: Vec<FieldSpan> = Vec::new();
        let mut scratch = String::new();
        let mut cursor = 1usize; // physical lines consumed; header was line 1
        let mut sampled = 0usize;
        for (raw, nlines) in Records::over(body) {
            if sampled >= sample_rows {
                break;
            }
            let line_no = cursor + 1;
            cursor += nlines;
            let line = raw.trim_end_matches(['\n', '\r']);
            if line.is_empty() {
                continue;
            }
            split_spans(line, &mut spans, &mut scratch);
            if spans.len() != header.len() {
                return Err(ColumnarError::Csv(format!(
                    "{path:?}: line {line_no} has {} fields, expected {}",
                    spans.len(),
                    header.len()
                )));
            }
            for (slot, &col_idx) in keep.iter().enumerate() {
                let span = spans[col_idx];
                let field = if span.in_scratch {
                    &scratch[span.start..span.end]
                } else {
                    &line[span.start..span.end]
                };
                guesses[slot].update(field);
            }
            sampled += 1;
        }
    }
    let dtypes: Vec<DType> = keep
        .iter()
        .zip(&guesses)
        .map(|(&col_idx, guess)| {
            let name = &header[col_idx];
            if let Some(&dt) = options.dtypes.get(name) {
                dt
            } else if options.parse_dates.iter().any(|c| c == name) {
                DType::Datetime
            } else {
                guess.finish()
            }
        })
        .collect();

    // Quote-aware newline pre-scan: carve the body into ~4 chunks per
    // worker at *record* boundaries. Quote parity is tracked across the
    // whole body, so a newline inside an open quoted field never splits
    // a record across chunks (the bug this pass replaces: the old
    // pre-scan cut at physical newlines and parsed an embedded-newline
    // record as two corrupt records). On quote-free bodies the
    // boundaries are identical to the old pre-scan's: each chunk ends
    // just past the first newline at or after `approx` bytes.
    let target_chunks = (pool.threads() * 4).max(1);
    let approx = body.len().div_ceil(target_chunks).max(1);
    let bytes = body.as_bytes();
    let mut chunks: Vec<(usize, usize)> = Vec::with_capacity(target_chunks);
    let mut chunk_start = 0usize;
    let mut in_quotes = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_quotes = !in_quotes,
            b'\n' if !in_quotes && i + 1 - chunk_start >= approx => {
                chunks.push((chunk_start, i + 1));
                chunk_start = i + 1;
            }
            _ => {}
        }
    }
    if chunk_start < bytes.len() {
        chunks.push((chunk_start, bytes.len()));
    }

    // Pass 1: raw line counts per chunk -> each chunk's starting line
    // number (error messages must match the streaming reader exactly).
    let line_counts: Vec<usize> = pool.map(chunks.clone(), |_, (s, e)| {
        bytes[s..e].iter().filter(|&&b| b == b'\n').count()
    });
    let mut first_line: Vec<usize> = Vec::with_capacity(chunks.len());
    let mut lines_before = 0usize;
    for count in &line_counts {
        // Data line r (0-based raw index) is file line r + 2.
        first_line.push(lines_before + 2);
        lines_before += count;
    }

    // Pass 2: parse each chunk into its own typed builders.
    let header_len = header.len();
    let results: Vec<Result<Vec<ColumnBuilder>>> = pool.map(chunks, |ci, (s, e)| {
        let mut builders: Vec<ColumnBuilder> =
            dtypes.iter().map(|&dt| ColumnBuilder::new(dt)).collect();
        let mut spans: Vec<FieldSpan> = Vec::new();
        let mut scratch = String::new();
        // Physical lines consumed before the current record; a record
        // reports its first physical line, like the streaming reader.
        let mut cursor = first_line[ci] - 1;
        for (raw, nlines) in Records::over(&body[s..e]) {
            let line_no = cursor + 1;
            cursor += nlines;
            let line = raw.trim_end_matches(['\n', '\r']);
            if line.is_empty() {
                continue;
            }
            split_spans(line, &mut spans, &mut scratch);
            if spans.len() != header_len {
                return Err(ColumnarError::Csv(format!(
                    "{path:?}: line {line_no} has {} fields, expected {}",
                    spans.len(),
                    header_len
                )));
            }
            for (slot, &col_idx) in keep.iter().enumerate() {
                let span = spans[col_idx];
                let field = if span.in_scratch {
                    &scratch[span.start..span.end]
                } else {
                    &line[span.start..span.end]
                };
                parse_field(&mut builders[slot], field, dtypes[slot], line_no)?;
            }
        }
        Ok(builders)
    });

    // Concatenate per-chunk builders in file order; the first error (in
    // file order) wins, matching the streaming reader's stop-at-error.
    let mut it = results.into_iter();
    let mut acc = it.next().expect("at least one chunk")?;
    for r in it {
        for (a, b) in acc.iter_mut().zip(r?) {
            a.append(b);
        }
    }
    let series = keep
        .iter()
        .zip(acc)
        .map(|(&i, b)| Series::new(header[i].clone(), finish_encoded(b)))
        .collect();
    DataFrame::new(series)
}

/// Streaming CSV reader yielding row-chunks of at most `chunk_rows` rows.
///
/// Dtypes are inferred once from the first `infer_rows` records and then held
/// fixed for all chunks so partitions agree on a schema (this is also how
/// Dask behaves; a later value that fails the inferred dtype is a parse
/// error, not a silent re-infer).
///
/// The inner loop is allocation-free per record: lines are read into a
/// reused buffer, fields are borrowed `&str` spans (`split_spans`), and
/// values parse straight into typed [`ColumnBuilder`]s — the seed path
/// allocated a `Vec<String>` per record and boxed a [`Scalar`](crate::Scalar) per cell.
/// Only the bounded inference sample is buffered as owned records.
pub struct CsvChunkReader {
    reader: BufReader<File>,
    path: PathBuf,
    chunk_rows: usize,
    /// All header names, in file order.
    header: Vec<String>,
    /// Indices (into the record) of the columns we keep, in header order.
    keep: Vec<usize>,
    /// dtype per kept column.
    dtypes: Vec<DType>,
    /// Records consumed during dtype inference but not yet emitted in a
    /// chunk (the only owned records the reader ever holds), with the
    /// file line each was read from so late parse errors report the
    /// right line.
    pending: std::collections::VecDeque<(usize, Vec<String>)>,
    /// Reused line buffer for the current record.
    line: String,
    /// Reused normalization buffer for quoted fields.
    scratch: String,
    /// Field spans of the current record (into `line` or `scratch`).
    spans: Vec<FieldSpan>,
    /// Physical lines consumed so far (the header is line 1).
    line_no: usize,
    /// First physical line of the current record — what errors report.
    /// Differs from `line_no` when a quoted field embeds newlines and
    /// the record spans several physical lines.
    record_line: usize,
    done: bool,
}

impl CsvChunkReader {
    /// Open `path` and prepare to stream chunks of `chunk_rows` rows.
    pub fn open(path: &Path, options: &CsvOptions, chunk_rows: usize) -> Result<CsvChunkReader> {
        inject_csv(path)?;
        let file = File::open(path).map_err(|e| ColumnarError::Io { kind: e.kind(), message: format!("{path:?}: {e}") })?;
        let mut reader = BufReader::new(file);
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let header_line = line.trim_end_matches(['\n', '\r']);
        if header_line.is_empty() {
            return Err(ColumnarError::Csv(format!("{path:?}: empty header")));
        }
        let header = split_record(header_line);

        // Resolve usecols -> kept indices (file order, like pandas).
        let keep = resolve_usecols(&header, options, path)?;

        let mut rdr = CsvChunkReader {
            reader,
            path: path.to_path_buf(),
            chunk_rows: chunk_rows.max(1),
            header,
            keep,
            dtypes: Vec::new(),
            pending: std::collections::VecDeque::new(),
            line: String::new(),
            scratch: String::new(),
            spans: Vec::new(),
            line_no: 1,
            record_line: 1,
            done: false,
        };
        rdr.infer_dtypes(options)?;
        Ok(rdr)
    }

    /// The schema `(name, dtype)` of emitted chunks.
    pub fn schema(&self) -> Vec<(String, DType)> {
        self.keep
            .iter()
            .zip(&self.dtypes)
            .map(|(&i, &dt)| (self.header[i].clone(), dt))
            .collect()
    }

    /// All column names present in the file header.
    pub fn file_columns(&self) -> &[String] {
        &self.header
    }

    /// An empty frame with the reader's schema.
    pub fn empty_frame(&self) -> Result<DataFrame> {
        let series = self
            .schema()
            .into_iter()
            .map(|(name, dt)| Series::new(name, ColumnBuilder::new(dt).finish()))
            .collect();
        DataFrame::new(series)
    }

    /// Advance to the next record, filling the borrowed field spans.
    /// Returns false at end of file. Empty lines are skipped.
    ///
    /// A record whose quoted field embeds a newline spans physical
    /// lines: while the accumulated double-quote count is odd, the
    /// terminator just read is field content, so the next physical line
    /// is appended verbatim and parsing continues — the quote-parity
    /// rule (`""` escapes contribute two quotes and preserve parity).
    fn next_record(&mut self) -> Result<bool> {
        if self.done {
            return Ok(false);
        }
        loop {
            self.line.clear();
            let n = self.reader.read_line(&mut self.line)?;
            if n == 0 {
                self.done = true;
                return Ok(false);
            }
            self.line_no += 1;
            self.record_line = self.line_no;
            let mut quotes = count_quotes(&self.line);
            while quotes % 2 == 1 {
                let before = self.line.len();
                if self.reader.read_line(&mut self.line)? == 0 {
                    // EOF inside an open quote: parse what accumulated.
                    break;
                }
                self.line_no += 1;
                quotes += count_quotes(&self.line[before..]);
            }
            while self.line.ends_with(['\n', '\r']) {
                self.line.pop();
            }
            if self.line.is_empty() {
                continue;
            }
            split_spans(&self.line, &mut self.spans, &mut self.scratch);
            if self.spans.len() != self.header.len() {
                return Err(ColumnarError::Csv(format!(
                    "{:?}: line {} has {} fields, expected {}",
                    self.path,
                    self.record_line,
                    self.spans.len(),
                    self.header.len()
                )));
            }
            return Ok(true);
        }
    }

    /// Field `idx` of the current record as a borrowed slice.
    #[inline]
    fn field(&self, idx: usize) -> &str {
        let span = self.spans[idx];
        if span.in_scratch {
            &self.scratch[span.start..span.end]
        } else {
            &self.line[span.start..span.end]
        }
    }

    fn infer_dtypes(&mut self, options: &CsvOptions) -> Result<()> {
        let sample_rows = if options.infer_rows == 0 {
            1000
        } else {
            options.infer_rows
        };
        // Pull up to `sample_rows` records into the pending buffer (the
        // sample is the one place the reader materializes owned records).
        let mut sample: Vec<(usize, Vec<String>)> = Vec::new();
        while sample.len() < sample_rows {
            if !self.next_record()? {
                break;
            }
            sample.push((
                self.record_line,
                (0..self.spans.len())
                    .map(|f| self.field(f).to_string())
                    .collect(),
            ));
        }
        for (slot, &col_idx) in self.keep.iter().enumerate() {
            let name = &self.header[col_idx];
            let dt = if let Some(&dt) = options.dtypes.get(name) {
                dt
            } else if options.parse_dates.iter().any(|c| c == name) {
                DType::Datetime
            } else {
                infer_dtype(sample.iter().map(|(_, r)| r[col_idx].as_str()))
            };
            debug_assert_eq!(slot, self.dtypes.len());
            self.dtypes.push(dt);
        }
        self.pending = sample.into();
        Ok(())
    }

    /// Read the next chunk; `None` when the file is exhausted.
    pub fn next_chunk(&mut self) -> Result<Option<DataFrame>> {
        inject_csv(&self.path)?;
        let mut builders: Vec<ColumnBuilder> =
            self.dtypes.iter().map(|&dt| ColumnBuilder::new(dt)).collect();
        for b in &mut builders {
            // Cap the up-front reservation: chunk_rows is usize::MAX for
            // whole-file reads, and growth doubling takes over past 16k.
            b.reserve(self.chunk_rows.min(16 * 1024));
        }
        let mut rows = 0usize;
        // Drain the inference sample first (each record remembers its
        // own file line for error reporting), then stream borrowed
        // records.
        while rows < self.chunk_rows {
            let Some((line_no, record)) = self.pending.pop_front() else { break };
            for (slot, &col_idx) in self.keep.iter().enumerate() {
                parse_field(
                    &mut builders[slot],
                    &record[col_idx],
                    self.dtypes[slot],
                    line_no,
                )?;
            }
            rows += 1;
        }
        while rows < self.chunk_rows {
            if !self.next_record()? {
                break;
            }
            for (slot, &col_idx) in self.keep.iter().enumerate() {
                parse_field(
                    &mut builders[slot],
                    self.field(col_idx),
                    self.dtypes[slot],
                    self.record_line,
                )?;
            }
            rows += 1;
        }
        if rows == 0 {
            return Ok(None);
        }
        let series = self
            .keep
            .iter()
            .zip(builders)
            .map(|(&i, b)| Series::new(self.header[i].clone(), finish_encoded(b)))
            .collect();
        Ok(Some(DataFrame::new(series)?))
    }
}

/// Finish a builder, dictionary-encoding low-cardinality string columns
/// at ingest (the decision layer in [`crate::encoding`] gates on row
/// count, cardinality, and actual byte shrink; `LAFP_NO_ENCODE=1`
/// disables it).
fn finish_encoded(b: ColumnBuilder) -> crate::Column {
    let col = b.finish();
    crate::encoding::dict_encode_auto(&col).unwrap_or(col)
}

/// Parse one raw field into `builder` as `dtype` (empty string = null).
/// Dispatches on dtype and pushes through the builder's typed methods —
/// no `Scalar` is constructed and no coercion re-runs per cell.
fn parse_field(
    builder: &mut ColumnBuilder,
    raw: &str,
    dtype: DType,
    line: usize,
) -> Result<()> {
    if raw.is_empty() {
        builder.push_null();
        return Ok(());
    }
    let parse_err = || ColumnarError::ParseError {
        value: raw.to_string(),
        dtype: dtype.to_string(),
        line: Some(line),
    };
    match dtype {
        DType::Int64 => builder.push_i64(raw.trim().parse().map_err(|_| parse_err())?),
        DType::Float64 => builder.push_f64(raw.trim().parse().map_err(|_| parse_err())?),
        DType::Bool => match raw.trim() {
            "True" | "true" | "1" => builder.push_bool(true),
            "False" | "false" | "0" => builder.push_bool(false),
            _ => return Err(parse_err()),
        },
        DType::Datetime => builder.push_datetime(parse_datetime(raw).ok_or_else(parse_err)?),
        DType::Utf8 | DType::Categorical => builder.push_str(raw),
    }
    Ok(())
}

/// Incremental dtype inference state: Int64 ⊂ Float64 ⊂ Utf8, with Bool
/// and Datetime recognized exactly. One instance per column, fed sample
/// values in file order — shared by the streaming reader (column-wise
/// over the buffered sample) and the parallel reader (row-wise over the
/// in-memory buffer) so their inference cannot drift.
#[derive(Debug, Clone)]
struct DtypeGuess {
    any: bool,
    all_int: bool,
    all_float: bool,
    all_bool: bool,
    all_datetime: bool,
}

impl DtypeGuess {
    fn new() -> DtypeGuess {
        DtypeGuess {
            any: false,
            all_int: true,
            all_float: true,
            all_bool: true,
            all_datetime: true,
        }
    }

    fn update(&mut self, v: &str) {
        if v.is_empty() {
            return;
        }
        self.any = true;
        if !self.all_int && !self.all_float && !self.all_bool && !self.all_datetime {
            return; // already resolved to Utf8
        }
        let t = v.trim();
        if self.all_int && t.parse::<i64>().is_err() {
            self.all_int = false;
        }
        if self.all_float && t.parse::<f64>().is_err() {
            self.all_float = false;
        }
        if self.all_bool && !matches!(t, "True" | "true" | "False" | "false") {
            self.all_bool = false;
        }
        if self.all_datetime && parse_datetime(t).is_none() {
            self.all_datetime = false;
        }
    }

    fn finish(&self) -> DType {
        if !self.any {
            DType::Utf8 // empty sample infers Utf8 (pandas: object)
        } else if self.all_bool {
            DType::Bool
        } else if self.all_int {
            DType::Int64
        } else if self.all_float {
            DType::Float64
        } else if self.all_datetime {
            DType::Datetime
        } else {
            DType::Utf8
        }
    }
}

/// Infer a dtype from sample values (see [`DtypeGuess`]).
fn infer_dtype<'a>(values: impl Iterator<Item = &'a str>) -> DType {
    let mut guess = DtypeGuess::new();
    for v in values {
        guess.update(v);
    }
    guess.finish()
}

/// Write a frame to CSV (header + rows; datetimes in `YYYY-MM-DD HH:MM:SS`).
pub fn write_csv(frame: &DataFrame, path: &Path) -> Result<()> {
    let file = File::create(path).map_err(|e| ColumnarError::Io { kind: e.kind(), message: format!("{path:?}: {e}") })?;
    let mut w = std::io::BufWriter::new(file);
    writeln!(
        w,
        "{}",
        frame
            .column_names()
            .iter()
            .map(|n| quote_field(n))
            .collect::<Vec<_>>()
            .join(",")
    )?;
    for i in 0..frame.num_rows() {
        let row: Vec<String> = frame
            .series()
            .iter()
            .map(|s| {
                let v = s.get(i);
                if v.is_null() {
                    String::new()
                } else {
                    quote_field(&v.to_string())
                }
            })
            .collect();
        writeln!(w, "{}", row.join(","))?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Scalar;

    fn write_temp(content: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("lafp-csv-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!(
            "t{}.csv",
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let mut f = File::create(&path).unwrap();
        f.write_all(content.as_bytes()).unwrap();
        path
    }

    const SAMPLE: &str = "\
id,fare,city,when,ok
1,5.5,NY,2024-01-01 10:00:00,true
2,6.25,SF,2024-01-02 11:30:00,false
3,,\"LA, CA\",2024-01-03 12:00:00,true
";

    #[test]
    fn split_record_handles_quotes() {
        assert_eq!(split_record("a,b,c"), vec!["a", "b", "c"]);
        assert_eq!(split_record("a,\"b,c\",d"), vec!["a", "b,c", "d"]);
        assert_eq!(split_record("\"he said \"\"hi\"\"\",x"), vec![
            "he said \"hi\"",
            "x"
        ]);
        assert_eq!(split_record(""), vec![""]);
        assert_eq!(split_record("a,,c"), vec!["a", "", "c"]);
    }

    #[test]
    fn quote_field_roundtrip() {
        for s in ["plain", "with,comma", "with\"quote", "multi\nline"] {
            let quoted = quote_field(s);
            let rec = split_record(&quoted);
            assert_eq!(rec, vec![s.to_string()]);
        }
    }

    #[test]
    fn read_infers_types() {
        let path = write_temp(SAMPLE);
        let df = read_csv(&path, &CsvOptions::new()).unwrap();
        assert_eq!(df.shape(), (3, 5));
        assert_eq!(df.column("id").unwrap().dtype(), DType::Int64);
        assert_eq!(df.column("fare").unwrap().dtype(), DType::Float64);
        assert_eq!(df.column("city").unwrap().dtype(), DType::Utf8);
        assert_eq!(df.column("when").unwrap().dtype(), DType::Datetime);
        assert_eq!(df.column("ok").unwrap().dtype(), DType::Bool);
        // null cell
        assert!(df.column("fare").unwrap().column().is_null_at(2));
        // quoted comma preserved
        assert_eq!(
            df.column("city").unwrap().get(2),
            Scalar::Str("LA, CA".into())
        );
    }

    #[test]
    fn usecols_projects_in_file_order() {
        let path = write_temp(SAMPLE);
        let opts = CsvOptions::new().with_usecols(vec!["city".into(), "id".into()]);
        let df = read_csv(&path, &opts).unwrap();
        assert_eq!(df.column_names(), vec!["id", "city"]);
        let missing = CsvOptions::new().with_usecols(vec!["ghost".into()]);
        assert!(read_csv(&path, &missing).is_err());
    }

    #[test]
    fn dtype_overrides_respected() {
        let path = write_temp(SAMPLE);
        let opts = CsvOptions::new()
            .with_dtype("id", DType::Float64)
            .with_dtype("city", DType::Categorical);
        let df = read_csv(&path, &opts).unwrap();
        assert_eq!(df.column("id").unwrap().dtype(), DType::Float64);
        assert_eq!(df.column("city").unwrap().dtype(), DType::Categorical);
    }

    #[test]
    fn chunked_reading_covers_all_rows() {
        let mut content = String::from("a,b\n");
        for i in 0..25 {
            content.push_str(&format!("{i},{}\n", i * 2));
        }
        let path = write_temp(&content);
        let mut rdr = CsvChunkReader::open(&path, &CsvOptions::new(), 10).unwrap();
        let mut total = 0;
        let mut chunks = 0;
        while let Some(chunk) = rdr.next_chunk().unwrap() {
            assert!(chunk.num_rows() <= 10);
            total += chunk.num_rows();
            chunks += 1;
        }
        assert_eq!(total, 25);
        assert_eq!(chunks, 3);
    }

    #[test]
    fn chunked_inference_spans_chunks_consistently() {
        // First 1000-row sample sees only ints in 'v'; inference fixes dtype.
        let mut content = String::from("v\n");
        for i in 0..30 {
            content.push_str(&format!("{i}\n"));
        }
        let path = write_temp(&content);
        let mut rdr = CsvChunkReader::open(&path, &CsvOptions::new(), 7).unwrap();
        let mut dtypes = Vec::new();
        while let Some(chunk) = rdr.next_chunk().unwrap() {
            dtypes.push(chunk.column("v").unwrap().dtype());
        }
        assert!(dtypes.iter().all(|&d| d == DType::Int64));
    }

    #[test]
    fn parse_error_includes_line() {
        let path = write_temp("n\n1\nnot-a-number\n");
        let opts = CsvOptions::new().with_dtype("n", DType::Int64);
        let err = read_csv(&path, &opts).unwrap_err();
        match err {
            ColumnarError::ParseError { line, .. } => assert_eq!(line, Some(3)),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn ragged_row_rejected() {
        let path = write_temp("a,b\n1\n");
        assert!(read_csv(&path, &CsvOptions::new()).is_err());
    }

    #[test]
    fn header_only_file_gives_empty_frame() {
        let path = write_temp("a,b\n");
        let df = read_csv(&path, &CsvOptions::new()).unwrap();
        assert_eq!(df.shape(), (0, 2));
    }

    #[test]
    fn write_then_read_roundtrip() {
        use crate::column::Column;
        use crate::df;
        let df = df![
            ("id", Column::from_i64(vec![1, 2])),
            ("city", Column::from_strings(vec!["NY", "LA, CA"])),
            ("fare", Column::from_opt_f64(vec![Some(5.5), None])),
        ];
        let path = write_temp("");
        write_csv(&df, &path).unwrap();
        let back = read_csv(&path, &CsvOptions::new()).unwrap();
        assert_eq!(back.shape(), (2, 3));
        assert_eq!(back.column("city").unwrap().get(1), Scalar::Str("LA, CA".into()));
        assert!(back.column("fare").unwrap().column().is_null_at(1));
    }

    #[test]
    fn read_header_lists_columns() {
        let path = write_temp(SAMPLE);
        assert_eq!(
            read_header(&path).unwrap(),
            vec!["id", "fare", "city", "when", "ok"]
        );
    }

    #[test]
    fn write_read_roundtrip_with_quoted_fields() {
        use crate::column::Column;
        let df = DataFrame::new(vec![
            Series::new("n", Column::from_opt_i64(vec![Some(-3), None, Some(7)])),
            Series::new("f", Column::from_f64(vec![0.5, -2.25, 100.0])),
            Series::new(
                "s",
                Column::from_strings(vec!["plain", "with,comma", "say \"hi\""]),
            ),
            Series::new("b", Column::from_bool(vec![true, false, true])),
        ])
        .unwrap();
        let path = write_temp("");
        write_csv(&df, &path).unwrap();
        let back = read_csv(&path, &CsvOptions::new()).unwrap();
        assert_eq!(back, df, "write → read must reproduce the frame");
        // The quoted fields specifically survive verbatim.
        assert_eq!(
            back.column("s").unwrap().get(1),
            Scalar::Str("with,comma".into())
        );
        assert_eq!(
            back.column("s").unwrap().get(2),
            Scalar::Str("say \"hi\"".into())
        );
    }

    #[test]
    fn roundtrip_with_dtype_overrides() {
        use crate::column::Column;
        let df = DataFrame::new(vec![
            Series::new("code", Column::from_i64(vec![1, 2, 1])),
            Series::new("state", Column::from_strings(vec!["NY", "CA", "NY"])),
        ])
        .unwrap();
        let path = write_temp("");
        write_csv(&df, &path).unwrap();
        let opts = CsvOptions::new()
            .with_dtype("code", DType::Float64)
            .with_dtype("state", DType::Categorical);
        let back = read_csv(&path, &opts).unwrap();
        assert_eq!(back.column("code").unwrap().dtype(), DType::Float64);
        assert_eq!(back.column("code").unwrap().get(0), Scalar::Float(1.0));
        let state = back.column("state").unwrap();
        assert_eq!(state.dtype(), DType::Categorical);
        // Values read back identically despite the categorical encoding.
        for (i, want) in ["NY", "CA", "NY"].iter().enumerate() {
            assert_eq!(state.get(i), Scalar::Str((*want).into()), "row {i}");
        }
        assert_eq!(state.column().nunique(), Scalar::Int(2));
    }

    #[test]
    fn quoted_newline_records_parse_sequentially() {
        // quote_field output with embedded \n and \r\n round-trips
        // through write_csv + read_csv.
        use crate::column::Column;
        let df = DataFrame::new(vec![
            Series::new("id", Column::from_i64(vec![1, 2, 3, 4])),
            Series::new(
                "note",
                Column::from_strings(vec![
                    "one\nline two",
                    "crlf\r\nend",
                    "both,\"\nquoted\"",
                    "plain",
                ]),
            ),
        ])
        .unwrap();
        let path = write_temp("");
        write_csv(&df, &path).unwrap();
        let back = read_csv(&path, &CsvOptions::new()).unwrap();
        assert_eq!(back, df);
        // Chunked reads cut at record — not physical-line — boundaries.
        let mut rdr = CsvChunkReader::open(&path, &CsvOptions::new(), 1).unwrap();
        let mut rows = 0;
        while let Some(chunk) = rdr.next_chunk().unwrap() {
            assert_eq!(chunk.num_rows(), 1);
            rows += 1;
        }
        assert_eq!(rows, 4);
    }

    /// The headline differential test: quote_field output with embedded
    /// `\n`/`\r\n` parses identically through the sequential and
    /// parallel readers at 1, 2 and 8 threads.
    #[test]
    fn quoted_newline_differential_sequential_vs_parallel() {
        use crate::pool::WorkerPool;
        let mut content = String::from("id,note,fare\n");
        for i in 0..20_000u32 {
            let note = match i % 5 {
                0 => format!("line one\nline two of {i}"),
                1 => format!("crlf\r\nterminated {i}"),
                2 => format!("with,comma {i}"),
                3 => format!("say \"hi\" {i}"),
                _ => format!("plain-{i}"),
            };
            content.push_str(&format!("{i},{},{}.5\n", quote_field(&note), i % 97));
        }
        assert!(
            content.len() >= PAR_MIN_BYTES,
            "body must exceed the parallel gate ({} bytes)",
            content.len()
        );
        let path = write_temp(&content);
        let seq = read_csv(&path, &CsvOptions::new()).unwrap();
        assert_eq!(seq.num_rows(), 20_000);
        assert_eq!(
            seq.column("note").unwrap().get(0),
            Scalar::Str("line one\nline two of 0".into())
        );
        assert_eq!(
            seq.column("note").unwrap().get(1),
            Scalar::Str("crlf\r\nterminated 1".into())
        );
        for threads in [1usize, 2, 8] {
            let pool = WorkerPool::new(threads);
            let par = read_csv_par(&path, &CsvOptions::new(), &pool).unwrap();
            assert_eq!(par, seq, "parallel read diverged at {threads} threads");
        }
    }

    /// CRLF-terminated bodies whose final record has no terminator parse
    /// identically in both readers (chunk boundaries and values).
    #[test]
    fn crlf_and_unterminated_tail_parity() {
        use crate::pool::WorkerPool;
        let mut content = String::from("id,s\r\n");
        for i in 0..25_000u32 {
            content.push_str(&format!("{i},\"v\r\n{i}\"\r\n"));
        }
        content.push_str("25000,tail"); // no trailing newline
        assert!(content.len() >= PAR_MIN_BYTES);
        let path = write_temp(&content);
        let seq = read_csv(&path, &CsvOptions::new()).unwrap();
        assert_eq!(seq.num_rows(), 25_001);
        assert_eq!(seq.column("s").unwrap().get(0), Scalar::Str("v\r\n0".into()));
        assert_eq!(
            seq.column("s").unwrap().get(25_000),
            Scalar::Str("tail".into())
        );
        for threads in [2usize, 8] {
            let pool = WorkerPool::new(threads);
            let par = read_csv_par(&path, &CsvOptions::new(), &pool).unwrap();
            assert_eq!(par, seq, "CRLF parity diverged at {threads} threads");
        }
    }

    /// Error line numbers count *physical* lines and report a multiline
    /// record's first line — identically in both readers.
    #[test]
    fn error_line_numbers_match_across_readers_with_multiline_records() {
        use crate::pool::WorkerPool;
        let mut content = String::from("n,s\n");
        let records = 25_000usize;
        for i in 0..records {
            // Every record spans two physical lines.
            content.push_str(&format!("{i},\"x\ny{i}\"\n"));
        }
        content.push_str("oops,\"z\nw\"\n");
        assert!(content.len() >= PAR_MIN_BYTES);
        let path = write_temp(&content);
        let opts = CsvOptions::new()
            .with_dtype("n", DType::Int64)
            .with_dtype("s", DType::Utf8);
        let expect_line = 1 + 2 * records + 1; // header + records + bad row start
        let seq_err = read_csv(&path, &opts).unwrap_err();
        match &seq_err {
            ColumnarError::ParseError { line, .. } => assert_eq!(*line, Some(expect_line)),
            other => panic!("expected parse error, got {other:?}"),
        }
        let pool = WorkerPool::new(4);
        let par_err = read_csv_par(&path, &opts, &pool).unwrap_err();
        match &par_err {
            ColumnarError::ParseError { line, .. } => assert_eq!(*line, Some(expect_line)),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn roundtrip_quoted_fields_with_usecols_and_override() {
        // Quoting, projection and overrides compose.
        let content = "a,b,c\n\"1,5\",2,x\n\"\",4,y\n";
        let path = write_temp(content);
        let opts = CsvOptions::new()
            .with_usecols(vec!["a".into(), "c".into()])
            .with_dtype("c", DType::Categorical);
        let df = read_csv(&path, &opts).unwrap();
        assert_eq!(df.column_names(), vec!["a", "c"]);
        assert_eq!(df.column("a").unwrap().get(0), Scalar::Str("1,5".into()));
        assert!(df.column("a").unwrap().column().is_null_at(1));
        assert_eq!(df.column("c").unwrap().dtype(), DType::Categorical);
    }
}
