//! Seeded synthetic datasets for the ten benchmark programs.
//!
//! The paper replicates/prunes real datasets to 1.4, 4.2 and 12.6 GB and
//! runs on a 32 GB machine; we scale both by 1:1000 (see DESIGN.md). Rows
//! counts are chosen so each dataset's CSV is roughly the target size.

use lafp_columnar::csv::quote_field;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The three dataset sizes of §5.1, scaled 1:1000.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Size {
    /// ~1.4 MB (stands in for 1.4 GB).
    Small,
    /// ~4.2 MB (4.2 GB).
    Medium,
    /// ~12.6 MB (12.6 GB).
    Large,
}

impl Size {
    /// All sizes in paper order.
    pub const ALL: [Size; 3] = [Size::Small, Size::Medium, Size::Large];

    /// Row-count multiplier relative to Small.
    pub fn factor(self) -> usize {
        match self {
            Size::Small => 1,
            Size::Medium => 3,
            Size::Large => 9,
        }
    }

    /// The label used in reports (the paper's sizes).
    pub fn label(self) -> &'static str {
        match self {
            Size::Small => "1.4GB",
            Size::Medium => "4.2GB",
            Size::Large => "12.6GB",
        }
    }

    /// The simulated machine memory (32 GB scaled 1:1000).
    pub const MEMORY_BUDGET: usize = 32 * 1024 * 1024;

    /// Directory name for this size under the data root.
    pub fn dir_name(self) -> &'static str {
        match self {
            Size::Small => "s1",
            Size::Medium => "s2",
            Size::Large => "s3",
        }
    }
}

/// Base row counts at `Size::Small` per dataset (calibrated so the Small
/// CSVs total ~1.4 MB across the file set a program reads).
const BASE_ROWS: usize = 6_000;

/// Generate (or reuse) all datasets for `size` under `root/sN/`; returns
/// the data directory. Generation is deterministic (fixed seed).
pub fn ensure_datasets(root: &Path, size: Size) -> std::io::Result<PathBuf> {
    let dir = root.join(size.dir_name());
    const DATA_VERSION: &str = "v7";
    let marker = dir.join(".complete");
    if marker.exists()
        && fs::read_to_string(&marker).is_ok_and(|m| m.contains(DATA_VERSION))
    {
        return Ok(dir);
    }
    fs::create_dir_all(&dir)?;
    let rows = BASE_ROWS * size.factor();
    write_nyt(&dir, rows)?;
    write_ais(&dir, rows)?;
    write_cty(&dir, rows)?;
    write_dso(&dir, rows)?;
    write_emp(&dir, rows)?;
    write_env(&dir, rows)?;
    write_fdb(&dir, rows)?;
    write_mov(&dir, rows)?;
    write_stu(&dir, rows)?;
    write_zip(&dir, rows)?;
    fs::write(&marker, format!("{DATA_VERSION} rows={rows}\n"))?;
    Ok(dir)
}

/// In-memory frame for the kernel microbenchmarks: a taxi-like mix of an
/// int key (100 distinct), int and float value columns (the floats with a
/// few nulls), a low-cardinality string column and a unique string column.
/// Seeded, so every run benches identical data; no CSV round-trip.
pub fn kernel_frame(rows: usize) -> lafp_columnar::DataFrame {
    use lafp_columnar::{Column, DataFrame, Series};
    let mut rng = StdRng::seed_from_u64(4242);
    let key: Vec<i64> = (0..rows).map(|_| rng.gen_range(0..100)).collect();
    let passenger: Vec<i64> = (0..rows).map(|_| rng.gen_range(1..=6)).collect();
    let fare: Vec<Option<f64>> = (0..rows)
        .map(|_| {
            if rng.gen_bool(0.02) {
                None
            } else {
                Some(rng.gen_range(-5.0..95.0))
            }
        })
        .collect();
    let tip: Vec<f64> = (0..rows).map(|_| rng.gen_range(0.0..20.0)).collect();
    let vendors = ["CMT", "VTS", "DDS", "NYC", "JUNO", "LYFT"];
    let vendor: Vec<&str> = (0..rows)
        .map(|_| vendors[rng.gen_range(0..vendors.len())])
        .collect();
    let note: Vec<String> = (0..rows).map(|i| format!("trip-note-{i}")).collect();
    DataFrame::new(vec![
        Series::new("key", Column::from_i64(key)),
        Series::new("passenger_count", Column::from_i64(passenger)),
        Series::new("fare", Column::from_opt_f64(fare)),
        Series::new("tip", Column::from_f64(tip)),
        Series::new("vendor", Column::from_strings(vendor)),
        Series::new("note", Column::from_strings(note)),
    ])
    .expect("kernel frame")
}

/// Compute metastore sidecars for every dataset in `dir` (the paper's
/// background metadata task, run outside the measured region).
pub fn compute_all_metadata(dir: &Path) -> lafp_columnar::Result<()> {
    for entry in fs::read_dir(dir).map_err(lafp_columnar::ColumnarError::from)? {
        let entry = entry.map_err(lafp_columnar::ColumnarError::from)?;
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "csv") {
            lafp_meta::scan::compute_and_store(&path)?;
        }
    }
    Ok(())
}

struct Csv {
    out: std::io::BufWriter<fs::File>,
    buf: String,
}

impl Csv {
    fn create(dir: &Path, name: &str, header: &str) -> std::io::Result<Csv> {
        let file = fs::File::create(dir.join(name))?;
        let mut out = std::io::BufWriter::new(file);
        writeln!(out, "{header}")?;
        Ok(Csv {
            out,
            buf: String::new(),
        })
    }

    fn row(&mut self, fields: &[String]) -> std::io::Result<()> {
        self.buf.clear();
        for (i, f) in fields.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(&quote_field(f));
        }
        writeln!(self.out, "{}", self.buf)
    }
}

fn dt(rng: &mut StdRng) -> String {
    // Dates through 2024, always valid.
    let day: i64 = rng.gen_range(0..365);
    let secs = 1_704_067_200i64 + day * 86_400 + rng.gen_range(0i64..86_400);
    lafp_columnar::value::format_datetime(secs)
}

fn s(v: impl ToString) -> String {
    v.to_string()
}

fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// NYC-taxi-like trips, 22 columns (the Figure-3 workload).
fn write_nyt(dir: &Path, rows: usize) -> std::io::Result<()> {
    let rows = rows * 72 / 100; // wide rows: 22 columns
    let mut rng = StdRng::seed_from_u64(101);
    let mut csv = Csv::create(
        dir,
        "nyt.csv",
        "vendor_id,tpep_pickup_datetime,tpep_dropoff_datetime,passenger_count,trip_distance,\
         rate_code,store_and_fwd_flag,pu_location,do_location,payment_type,fare_amount,extra,\
         mta_tax,tip_amount,tolls_amount,improvement_surcharge,total_amount,congestion_surcharge,\
         airport_fee,trip_type,ehail_fee,note",
    )?;
    for i in 0..rows {
        let fare = rng.gen_range(-5.0..95.0);
        csv.row(&[
            s(rng.gen_range(1..=2)),
            dt(&mut rng),
            dt(&mut rng),
            s(rng.gen_range(1..=6)),
            f2(rng.gen_range(0.1..40.0)),
            s(rng.gen_range(1..=6)),
            if rng.gen_bool(0.5) { "Y" } else { "N" }.into(),
            s(rng.gen_range(1..=265)),
            s(rng.gen_range(1..=265)),
            s(rng.gen_range(1..=4)),
            f2(fare),
            f2(rng.gen_range(0.0..3.0)),
            f2(0.5),
            f2(rng.gen_range(0.0..20.0)),
            f2(rng.gen_range(0.0..10.0)),
            f2(0.3),
            f2(fare + rng.gen_range(0.0..30.0)),
            f2(rng.gen_range(0.0..2.75)),
            f2(rng.gen_range(0.0..5.0)),
            s(rng.gen_range(1..=2)),
            f2(rng.gen_range(0.0..1.0)),
            format!("trip-note-{i}"),
        ])?;
    }
    Ok(())
}

/// AIS vessel positions, 18 columns, few of which any query touches.
fn write_ais(dir: &Path, rows: usize) -> std::io::Result<()> {
    let mut rng = StdRng::seed_from_u64(202);
    let mut csv = Csv::create(
        dir,
        "ais.csv",
        "mmsi,base_datetime,lat,lon,sog,cog,heading,vessel_name,imo,call_sign,vessel_type,\
         status,length,width,draft,cargo,transceiver,remark",
    )?;
    let types = ["cargo", "tanker", "fishing", "tug", "passenger", "pleasure"];
    for i in 0..rows {
        csv.row(&[
            s(200_000_000 + rng.gen_range(0..99_999_999u64)),
            dt(&mut rng),
            f2(rng.gen_range(-60.0..60.0)),
            f2(rng.gen_range(-180.0..180.0)),
            f2(rng.gen_range(0.0..25.0)),
            f2(rng.gen_range(0.0..360.0)),
            s(rng.gen_range(0..360)),
            format!("VESSEL {i}"),
            s(rng.gen_range(1_000_000..9_999_999)),
            format!("C{i}"),
            types[rng.gen_range(0..types.len())].into(),
            s(rng.gen_range(0..15)),
            f2(rng.gen_range(10.0..300.0)),
            f2(rng.gen_range(3.0..50.0)),
            f2(rng.gen_range(1.0..20.0)),
            s(rng.gen_range(0..9)),
            if rng.gen_bool(0.8) { "A" } else { "B" }.into(),
            format!("remark-{i}"),
        ])?;
    }
    Ok(())
}

/// City stats + a country lookup (merge workload).
fn write_cty(dir: &Path, rows: usize) -> std::io::Result<()> {
    let mut rng = StdRng::seed_from_u64(303);
    let mut csv = Csv::create(
        dir,
        "cty.csv",
        "city_id,name,country_code,population,area,elevation,timezone,founded,mayor,motto",
    )?;
    let codes: Vec<String> = (0..40).map(|i| format!("C{i:02}")).collect();
    for i in 0..rows {
        csv.row(&[
            s(i),
            format!("City {i}"),
            codes[rng.gen_range(0..codes.len())].clone(),
            s(rng.gen_range(1_000..10_000_000u64)),
            f2(rng.gen_range(5.0..2000.0)),
            s(rng.gen_range(-100..3500)),
            format!("UTC{:+}", rng.gen_range(-11..13)),
            s(rng.gen_range(900..2000)),
            format!("Mayor {i}"),
            format!("motto of city {i}"),
        ])?;
    }
    let mut lookup = Csv::create(dir, "cty_countries.csv", "country_code,country_name,continent")?;
    let continents = ["Africa", "Americas", "Asia", "Europe", "Oceania"];
    for (i, code) in codes.iter().enumerate() {
        lookup.row(&[
            code.clone(),
            format!("Country {i}"),
            continents[i % continents.len()].into(),
        ])?;
    }
    Ok(())
}

/// Generic data-science table (describe/sort workload).
fn write_dso(dir: &Path, rows: usize) -> std::io::Result<()> {
    let mut rng = StdRng::seed_from_u64(404);
    let mut csv = Csv::create(
        dir,
        "dso.csv",
        "id,v1,v2,v3,v4,v5,v6,category,flag,comment",
    )?;
    let cats = ["alpha", "beta", "gamma", "delta"];
    for i in 0..rows {
        csv.row(&[
            s(i),
            f2(rng.gen_range(-100.0..100.0)),
            f2(rng.gen_range(0.0..1.0)),
            s(rng.gen_range(0..1000)),
            f2(rng.gen_range(-1.0..1.0)),
            f2(rng.gen_range(0.0..1e6)),
            s(rng.gen_range(0..10)),
            cats[rng.gen_range(0..cats.len())].into(),
            if rng.gen_bool(0.5) { "true" } else { "false" }.into(),
            format!("comment text {i}"),
        ])?;
    }
    Ok(())
}

/// Employees (the program that plots a huge frame and OOMs everywhere).
fn write_emp(dir: &Path, rows: usize) -> std::io::Result<()> {
    let rows = rows + rows / 2; // widest dataset: the universal-OOM workload
    let mut rng = StdRng::seed_from_u64(505);
    let mut csv = Csv::create(
        dir,
        "emp.csv",
        "emp_id,full_name,dept,title,salary,bonus,age,city,hire_date,manager,review,bio",
    )?;
    let depts = ["eng", "sales", "hr", "finance", "ops", "legal"];
    for i in 0..rows {
        csv.row(&[
            s(i),
            format!("Employee Number {i}"),
            depts[rng.gen_range(0..depts.len())].into(),
            format!("Title-{}", rng.gen_range(0..30)),
            f2(rng.gen_range(30_000.0..250_000.0)),
            f2(rng.gen_range(0.0..50_000.0)),
            s(rng.gen_range(21..68)),
            format!("City{}", rng.gen_range(0..80)),
            dt(&mut rng),
            format!("Manager {}", rng.gen_range(0..200)),
            format!(
                "review text for employee {i}: consistently meets expectations across \
                 quarters; peer feedback positive; growth plan on track ({i})"
            ),
            format!(
                "biography paragraph for employee {i}: joined from a previous role in a \
                 related industry, relocated, mentors juniors, leads the working group {i}"
            ),
        ])?;
    }
    Ok(())
}

/// Environmental sensor readings (multi-print workload).
fn write_env(dir: &Path, rows: usize) -> std::io::Result<()> {
    let rows = rows + rows * 15 / 100; // dense sensor feed
    let mut rng = StdRng::seed_from_u64(606);
    let mut csv = Csv::create(
        dir,
        "env.csv",
        "station,ts,temp,humidity,pm25,pm10,no2,o3,wind,pressure,operator,notes",
    )?;
    for i in 0..rows {
        csv.row(&[
            format!("ST{:03}", rng.gen_range(0..50)),
            dt(&mut rng),
            f2(rng.gen_range(-20.0..45.0)),
            f2(rng.gen_range(10.0..100.0)),
            f2(rng.gen_range(0.0..250.0)),
            f2(rng.gen_range(0.0..400.0)),
            f2(rng.gen_range(0.0..200.0)),
            f2(rng.gen_range(0.0..180.0)),
            f2(rng.gen_range(0.0..30.0)),
            f2(rng.gen_range(950.0..1050.0)),
            format!("op-{}", rng.gen_range(0..8)),
            format!("maintenance note {i}"),
        ])?;
    }
    Ok(())
}

/// Startup funding (fillna/astype + metadata category workload).
fn write_fdb(dir: &Path, rows: usize) -> std::io::Result<()> {
    let mut rng = StdRng::seed_from_u64(707);
    let mut csv = Csv::create(
        dir,
        "fdb.csv",
        "company,category,city,state,funding_total,rounds,founded_year,status,investors,pitch",
    )?;
    let cats = [
        "fintech", "biotech", "saas", "ecommerce", "ai", "hardware", "media", "energy",
    ];
    let states = ["CA", "NY", "TX", "WA", "MA", "IL", "CO", "GA"];
    let statuses = ["operating", "acquired", "closed"];
    for i in 0..rows {
        let funding = if rng.gen_bool(0.15) {
            String::new() // nulls for fillna
        } else {
            f2(rng.gen_range(50_000.0..5e8))
        };
        csv.row(&[
            format!("Startup {i}"),
            cats[rng.gen_range(0..cats.len())].into(),
            format!("City{}", rng.gen_range(0..60)),
            states[rng.gen_range(0..states.len())].into(),
            funding,
            s(rng.gen_range(1..8)),
            s(rng.gen_range(1995..2024)),
            statuses[rng.gen_range(0..statuses.len())].into(),
            format!("Investor A{i}; Investor B{i}"),
            format!("pitch deck text for startup {i}"),
        ])?;
    }
    Ok(())
}

/// Movie ratings + a title lookup (merge + shared-subframe workload).
fn write_mov(dir: &Path, rows: usize) -> std::io::Result<()> {
    let rows = rows * 2; // ratings are narrow rows; double for realistic bulk
    let mut rng = StdRng::seed_from_u64(808);
    let n_movies = 500;
    let mut csv = Csv::create(dir, "mov.csv", "user_id,movie_id,rating,rated_at,device,session")?;
    for i in 0..rows {
        csv.row(&[
            s(rng.gen_range(0..rows / 4 + 1)),
            s(rng.gen_range(0..n_movies)),
            f2(rng.gen_range(1..=10) as f64 / 2.0),
            dt(&mut rng),
            if rng.gen_bool(0.6) { "mobile" } else { "web" }.into(),
            format!("session-{i}"),
        ])?;
    }
    let genres = ["drama", "comedy", "action", "scifi", "docu", "horror"];
    let mut movies = Csv::create(dir, "mov_titles.csv", "movie_id,title,genre,year")?;
    for m in 0..n_movies {
        movies.row(&[
            s(m),
            format!("Movie #{m}"),
            genres[rng.gen_range(0..genres.len())].into(),
            s(rng.gen_range(1960..2025)),
        ])?;
    }
    Ok(())
}

/// Student records (metadata + caching ablation workload).
fn write_stu(dir: &Path, rows: usize) -> std::io::Result<()> {
    let mut rng = StdRng::seed_from_u64(909);
    let mut csv = Csv::create(
        dir,
        "stu.csv",
        "student_id,name,grade_level,school,math,reading,science,history,attendance,city,counselor,remark",
    )?;
    let schools: Vec<String> = (0..12).map(|i| format!("School-{i:02}")).collect();
    for i in 0..rows {
        csv.row(&[
            s(i),
            format!("Student Name {i}"),
            s(rng.gen_range(1..=12)),
            schools[rng.gen_range(0..schools.len())].clone(),
            f2(rng.gen_range(0.0..100.0)),
            f2(rng.gen_range(0.0..100.0)),
            f2(rng.gen_range(0.0..100.0)),
            f2(rng.gen_range(0.0..100.0)),
            f2(rng.gen_range(60.0..100.0)),
            format!("Town{}", rng.gen_range(0..30)),
            format!("Counselor {}", rng.gen_range(0..40)),
            format!("remark about student {i}"),
        ])?;
    }
    Ok(())
}

/// Zip-code census (sort/head workload).
fn write_zip(dir: &Path, rows: usize) -> std::io::Result<()> {
    let mut rng = StdRng::seed_from_u64(1010);
    let mut csv = Csv::create(
        dir,
        "zip.csv",
        "zip,state,population,median_income,households,land_area,lat,lon,county,note",
    )?;
    for i in 0..rows {
        csv.row(&[
            format!("{:05}", i % 99_999),
            format!("S{}", rng.gen_range(0..50)),
            s(rng.gen_range(100..100_000u64)),
            f2(rng.gen_range(20_000.0..180_000.0)),
            s(rng.gen_range(50..40_000u64)),
            f2(rng.gen_range(1.0..900.0)),
            f2(rng.gen_range(25.0..49.0)),
            f2(rng.gen_range(-125.0..-67.0)),
            format!("County {}", rng.gen_range(0..300)),
            format!("zip note {i}"),
        ])?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lafp_columnar::csv::read_header;

    #[test]
    fn generation_is_deterministic_and_complete() {
        let root = std::env::temp_dir().join(format!(
            "lafp-datagen-{}",
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let dir = ensure_datasets(&root, Size::Small).unwrap();
        for name in [
            "nyt.csv",
            "ais.csv",
            "cty.csv",
            "cty_countries.csv",
            "dso.csv",
            "emp.csv",
            "env.csv",
            "fdb.csv",
            "mov.csv",
            "mov_titles.csv",
            "stu.csv",
            "zip.csv",
        ] {
            assert!(dir.join(name).exists(), "{name}");
        }
        // nyt has the paper's 22 columns.
        assert_eq!(read_header(&dir.join("nyt.csv")).unwrap().len(), 22);
        // Regenerating is a no-op (marker short-circuit).
        let size_before = std::fs::metadata(dir.join("nyt.csv")).unwrap().len();
        ensure_datasets(&root, Size::Small).unwrap();
        assert_eq!(
            std::fs::metadata(dir.join("nyt.csv")).unwrap().len(),
            size_before
        );
    }

    #[test]
    fn sizes_scale() {
        assert_eq!(Size::Small.factor(), 1);
        assert_eq!(Size::Medium.factor(), 3);
        assert_eq!(Size::Large.factor(), 9);
        assert_eq!(Size::Small.label(), "1.4GB");
    }
}
