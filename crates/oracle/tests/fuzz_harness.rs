//! The differential fuzzer's own test suite: codec round-trips, seeded
//! determinism, fixed-seed batches across the config matrix, replay,
//! and a mutation test proving a planted engine bug is caught and
//! shrunk to a small replayable trace.

use lafp_oracle::fuzz::{
    self, default_configs, gen, shrink, trace, FuzzConfig, Mode, Mutation,
};

/// Codec: decode(encode(decode(bytes))) == decode(bytes) for seeded
/// byte strings and for adversarial short/long ones.
#[test]
fn codec_round_trips() {
    for seed in [42u64, 1337, 7] {
        for case in 0..200 {
            let bytes = gen::seeded_case_bytes(seed, case);
            let t = trace::decode(&bytes);
            let re = trace::decode(&trace::encode(&t));
            assert_eq!(t, re, "seed {seed} case {case}");
        }
    }
    // Adversarial inputs: empty, short, all-0xFF, long junk.
    let mut rng = gen::SplitMix::new(0xC0DEC);
    for len in [0usize, 1, 2, 5, 9, 33, 64, 300] {
        let bytes: Vec<u8> = (0..len).map(|_| (rng.next_u64() >> 24) as u8).collect();
        let t = trace::decode(&bytes);
        let re = trace::decode(&trace::encode(&t));
        assert_eq!(t, re, "junk len {len}");
        let t2 = trace::decode(&vec![0xFF; len]);
        assert_eq!(t2, trace::decode(&trace::encode(&t2)), "0xFF len {len}");
    }
}

/// Hex round-trips, including whitespace tolerance and rejection.
#[test]
fn hex_round_trips() {
    let bytes = gen::seeded_case_bytes(42, 0);
    let hex = trace::to_hex(&bytes);
    assert_eq!(trace::from_hex(&hex).as_deref(), Some(&bytes[..]));
    let spaced: String = hex
        .chars()
        .enumerate()
        .flat_map(|(i, c)| if i % 8 == 0 { vec![' ', c] } else { vec![c] })
        .collect();
    assert_eq!(trace::from_hex(&spaced).as_deref(), Some(&bytes[..]));
    assert!(trace::from_hex("abc").is_none(), "odd digit count");
    assert!(trace::from_hex("zz").is_none(), "non-hex digit");
}

/// Seeded byte generation is deterministic and seed-sensitive.
#[test]
fn seeded_bytes_deterministic() {
    assert_eq!(gen::seeded_case_bytes(42, 7), gen::seeded_case_bytes(42, 7));
    assert_ne!(gen::seeded_case_bytes(42, 7), gen::seeded_case_bytes(43, 7));
    assert_ne!(gen::seeded_case_bytes(42, 7), gen::seeded_case_bytes(42, 8));
}

fn assert_batch_clean(seed: u64, cases: u64, configs: &[FuzzConfig]) {
    let report = fuzz::run_batch(seed, cases, configs, Mutation::None);
    assert!(
        report.failures.is_empty(),
        "seed {seed}: {} divergence(s); first: [{}] {}\n  replay: LAFP_FUZZ_REPLAY={}",
        report.failures.len(),
        report.failures[0].config,
        report.failures[0].message,
        report.failures[0].hex_shrunk,
    );
    assert_eq!(report.cases, cases);
}

/// The tier-1 fixed-seed batch: engine and oracle agree across the
/// config matrix. (CI runs larger batches; this keeps `cargo test`
/// fast while still rotating through every config cell.)
#[test]
fn fixed_seed_batch_seed_42() {
    assert_batch_clean(42, 48, &default_configs());
}

#[test]
fn fixed_seed_batch_seed_1337() {
    assert_batch_clean(1337, 48, &default_configs());
}

#[test]
fn fixed_seed_batch_seed_7() {
    assert_batch_clean(7, 48, &default_configs());
}

/// `LAFP_FUZZ_REPLAY=<hex>` support: when the variable is set, this
/// test re-executes the trace against the full config matrix and fails
/// on any divergence — the test-suite door for reproducing CI reports.
#[test]
fn replay_env_trace_if_set() {
    let Ok(hex) = std::env::var(fuzz::REPLAY_ENV) else {
        return;
    };
    let divergences = fuzz::replay_hex(&hex, &default_configs(), Mutation::None)
        .expect("LAFP_FUZZ_REPLAY must hold a hex trace");
    assert!(
        divergences.is_empty(),
        "replayed trace diverges: {divergences:?}"
    );
}

/// Mutation test: a planted engine bug (sort silently drops its last
/// row) must be (a) detected by a seeded batch, (b) shrunk to a small
/// trace, and (c) reproducible from the shrunk hex alone —
/// deterministically.
#[test]
fn planted_sort_bug_is_caught_shrunk_and_replayable() {
    // Eager config: the mutation hooks the eager/pooled sort path.
    let eager = vec![fuzz::config_by_name("eager").expect("eager config")];
    let report = fuzz::run_batch(42, 64, &eager, Mutation::SortDropsLastRow);
    assert!(
        !report.failures.is_empty(),
        "the planted sort bug must be detected within 64 seeded cases"
    );
    let failure = &report.failures[0];
    assert!(
        failure.shrunk_ops <= 10,
        "shrunk trace must be small, got {} ops (hex {})",
        failure.shrunk_ops,
        failure.hex_shrunk
    );
    // The shrunk hex replays to the same failure, twice (determinism).
    for round in 0..2 {
        let divergences =
            fuzz::replay_hex(&failure.hex_shrunk, &eager, Mutation::SortDropsLastRow)
                .expect("shrunk hex parses");
        assert_eq!(
            divergences.len(),
            1,
            "round {round}: shrunk trace must still diverge under the mutation"
        );
        assert_eq!(
            divergences[0].1, failure.message,
            "round {round}: divergence message must be deterministic"
        );
    }
    // And the same trace passes on the real (unmutated) engine.
    let clean = fuzz::replay_hex(&failure.hex_shrunk, &eager, Mutation::None)
        .expect("shrunk hex parses");
    assert!(
        clean.is_empty(),
        "shrunk trace must pass without the planted bug: {clean:?}"
    );
}

/// The shrinker preserves failure and never grows a trace.
#[test]
fn shrinker_only_shrinks() {
    let eager = fuzz::config_by_name("eager").expect("eager config");
    let report = fuzz::run_batch(7, 64, std::slice::from_ref(&eager), Mutation::SortDropsLastRow);
    let failure = report.failures.first().expect("mutation must be caught");
    let original = trace::decode(&trace::from_hex(&failure.hex_original).unwrap());
    let shrunk = shrink::shrink(&original, &eager, Mutation::SortDropsLastRow);
    assert!(shrunk.ops.len() <= original.ops.len());
    assert!(shrunk.main.rows <= original.main.rows);
    assert!(
        fuzz::run_case(&shrunk, &eager, Mutation::SortDropsLastRow).is_err(),
        "shrunk trace must still fail"
    );
}

/// Dask-mode coverage of the mutation-free matrix cells that tolerate
/// errors: structured errors are accepted, never panics.
#[test]
fn fault_and_budget_configs_accept_structured_errors() {
    let cells: Vec<FuzzConfig> = default_configs()
        .into_iter()
        .filter(|c| c.tolerates_errors())
        .collect();
    assert!(cells.iter().any(|c| c.faults));
    assert!(cells.iter().any(|c| c.budget.is_some()));
    for cfg in &cells {
        assert!(matches!(cfg.mode, Mode::Dask { .. }));
        let report = fuzz::run_batch(1337, 12, std::slice::from_ref(cfg), Mutation::None);
        assert!(
            report.failures.is_empty(),
            "[{}] {:?}",
            cfg.name,
            report.failures[0]
        );
    }
}
