//! Source emission: AST → PandaScript text (the "SCIRPy_to_python_opt"
//! step of Figure 5). The emitted text re-parses to an equivalent AST.

use crate::ast::{Ast, BinOpKind, CmpOpKind, Expr, FPiece, StmtId, StmtKind, Target, UnaryOpKind};

/// Emit a whole module.
pub fn emit_module(ast: &Ast) -> String {
    let mut out = String::new();
    for &id in &ast.module {
        emit_stmt(ast, id, 0, &mut out);
    }
    out
}

/// Emit one statement at the given indent level.
pub fn emit_stmt(ast: &Ast, id: StmtId, indent: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    match &ast.stmt(id).kind {
        StmtKind::Import { module, alias } => {
            out.push_str(&pad);
            out.push_str("import ");
            out.push_str(module);
            if let Some(a) = alias {
                out.push_str(" as ");
                out.push_str(a);
            }
            out.push('\n');
        }
        StmtKind::FromImport { module, names } => {
            out.push_str(&pad);
            out.push_str("from ");
            out.push_str(module);
            out.push_str(" import ");
            out.push_str(&names.join(", "));
            out.push('\n');
        }
        StmtKind::Expr(e) => {
            out.push_str(&pad);
            out.push_str(&emit_expr(e));
            out.push('\n');
        }
        StmtKind::Assign { target, value } => {
            out.push_str(&pad);
            match target {
                Target::Name(n) => out.push_str(n),
                Target::Subscript { obj, key } => {
                    out.push_str(obj);
                    out.push('[');
                    out.push_str(&emit_expr(key));
                    out.push(']');
                }
            }
            out.push_str(" = ");
            out.push_str(&emit_expr(value));
            out.push('\n');
        }
        StmtKind::If { cond, then, orelse } => {
            out.push_str(&pad);
            out.push_str("if ");
            out.push_str(&emit_expr(cond));
            out.push_str(":\n");
            emit_body(ast, then, indent + 1, out);
            if !orelse.is_empty() {
                out.push_str(&pad);
                out.push_str("else:\n");
                emit_body(ast, orelse, indent + 1, out);
            }
        }
        StmtKind::For { var, iter, body } => {
            out.push_str(&pad);
            out.push_str("for ");
            out.push_str(var);
            out.push_str(" in ");
            out.push_str(&emit_expr(iter));
            out.push_str(":\n");
            emit_body(ast, body, indent + 1, out);
        }
    }
}

fn emit_body(ast: &Ast, body: &[StmtId], indent: usize, out: &mut String) {
    if body.is_empty() {
        out.push_str(&"    ".repeat(indent));
        out.push_str("pass\n"); // keep blocks syntactically valid
        return;
    }
    for &id in body {
        emit_stmt(ast, id, indent, out);
    }
}

/// Emit an expression. Parenthesization is conservative: nested binary
/// operations are parenthesized, which is always re-parseable.
pub fn emit_expr(e: &Expr) -> String {
    match e {
        Expr::Name(n) => n.clone(),
        Expr::Int(v) => v.to_string(),
        Expr::Float(v) => {
            if *v == v.trunc() && v.abs() < 1e15 {
                format!("{v:.1}")
            } else {
                v.to_string()
            }
        }
        Expr::Str(s) => quote(s),
        Expr::Bool(true) => "True".into(),
        Expr::Bool(false) => "False".into(),
        Expr::NoneLit => "None".into(),
        Expr::FString(pieces) => {
            let mut inner = String::new();
            for p in pieces {
                match p {
                    FPiece::Text(t) => {
                        inner.push_str(&t.replace('{', "{{").replace('}', "}}"))
                    }
                    FPiece::Expr(e) => {
                        inner.push('{');
                        inner.push_str(&emit_expr(e));
                        inner.push('}');
                    }
                }
            }
            format!("f'{}'", inner.replace('\'', "\\'"))
        }
        Expr::List(items) => format!(
            "[{}]",
            items.iter().map(emit_expr).collect::<Vec<_>>().join(", ")
        ),
        Expr::Dict(items) => format!(
            "{{{}}}",
            items
                .iter()
                .map(|(k, v)| format!("{}: {}", emit_expr(k), emit_expr(v)))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Expr::Attribute { value, attr } => format!("{}.{}", emit_postfix(value), attr),
        Expr::Subscript { value, index } => {
            format!("{}[{}]", emit_postfix(value), emit_expr(index))
        }
        Expr::Call { func, args, kwargs } => {
            let mut parts: Vec<String> = args.iter().map(emit_expr).collect();
            parts.extend(
                kwargs
                    .iter()
                    .map(|(k, v)| format!("{}={}", k, emit_expr(v))),
            );
            format!("{}({})", emit_postfix(func), parts.join(", "))
        }
        Expr::BinOp { left, op, right } => {
            let sym = match op {
                BinOpKind::Add => "+",
                BinOpKind::Sub => "-",
                BinOpKind::Mul => "*",
                BinOpKind::Div => "/",
                BinOpKind::Mod => "%",
                BinOpKind::And => "&",
                BinOpKind::Or => "|",
            };
            format!("({} {} {})", emit_expr(left), sym, emit_expr(right))
        }
        Expr::Compare { left, op, right } => {
            let sym = match op {
                CmpOpKind::Eq => "==",
                CmpOpKind::Ne => "!=",
                CmpOpKind::Lt => "<",
                CmpOpKind::Le => "<=",
                CmpOpKind::Gt => ">",
                CmpOpKind::Ge => ">=",
            };
            format!("({} {} {})", emit_expr(left), sym, emit_expr(right))
        }
        Expr::Unary { op, operand } => {
            let sym = match op {
                UnaryOpKind::Invert => "~",
                UnaryOpKind::Neg => "-",
                UnaryOpKind::Not => "not ",
            };
            format!("{}{}", sym, emit_expr(operand))
        }
    }
}

/// Postfix positions (callee, attribute receiver) need parens around binary
/// operands: `(a + b).sum()`.
fn emit_postfix(e: &Expr) -> String {
    match e {
        Expr::BinOp { .. } | Expr::Compare { .. } | Expr::Unary { .. } => {
            format!("({})", emit_expr(e))
        }
        _ => emit_expr(e),
    }
}

fn quote(s: &str) -> String {
    format!("'{}'", s.replace('\\', "\\\\").replace('\'', "\\'"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Emitting and re-parsing must fix-point (parse ∘ emit ∘ parse = parse).
    fn roundtrip(src: &str) {
        let ast1 = parse(src).unwrap();
        let emitted1 = emit_module(&ast1);
        let ast2 = parse(&emitted1).unwrap();
        let emitted2 = emit_module(&ast2);
        assert_eq!(emitted1, emitted2, "emission must be stable\n{emitted1}");
    }

    #[test]
    fn roundtrip_figure3() {
        roundtrip(
            "\
import lazyfatpandas.pandas as pd
pd.analyze()
df = pd.read_csv('data.csv', parse_dates=['t'])
df = df[df.fare_amount > 0]
df['day'] = df.t.dt.dayofweek
df = df.groupby(['day'])['passenger_count'].sum()
print(df)
",
        );
    }

    #[test]
    fn roundtrip_control_flow() {
        roundtrip(
            "\
if x > 0:
    y = 1
elif x < 0:
    y = 2
else:
    y = 3
for i in items:
    total = total + i
",
        );
    }

    #[test]
    fn roundtrip_fstrings_and_dicts() {
        roundtrip("print(f'avg {x} of {y.mean()}')\nd = {'a': 1, 'b': 2}\n");
    }

    #[test]
    fn roundtrip_operators() {
        roundtrip("m = (df.a > 0) & ((df.b < 1) | (df.c == 'x'))\nz = ~m\nw = not flag\n");
        roundtrip("x = (1 + 2) * 3 - 4 / 5 % 2\n");
    }

    #[test]
    fn strings_escape() {
        roundtrip("s = 'it\\'s'\n");
    }

    #[test]
    fn empty_block_emits_pass() {
        // Synthesized ASTs can have empty branches.
        let mut ast = parse("if x > 0:\n    y = 1\n").unwrap();
        if let StmtKind::If { then, .. } = &mut ast.stmt_mut(ast.module[0]).kind {
            then.clear();
        }
        let out = emit_module(&ast);
        assert!(out.contains("pass"));
    }
}
