//! The paper's multi-print + external-plot scenario (Figures 7–11):
//! lazy prints batch into one pass; the plot call forces computation with
//! a live_df hint so the shared frame is persisted, not recomputed.

use lafp::backends::BackendKind;
use lafp::core::LafpConfig;
use lafp::interp::{ExecMode, Interp};
use lafp::rewrite::{analyze, RewriteOptions};
use lafp_bench::datagen::{ensure_datasets, Size};

const PROGRAM: &str = "\
import lazyfatpandas.pandas as pd
import matplotlib.pyplot as plt
pd.analyze()
df = pd.read_csv('nyt.csv', parse_dates=['tpep_pickup_datetime'])
print(df.head())
df['day'] = df.tpep_pickup_datetime.dt.dayofweek
p_per_day = df.groupby(['day'])['passenger_count'].sum()
print(p_per_day)
plt.plot(p_per_day)
plt.savefig('fig.png')
avg_fare = df.fare_amount.mean()
print(f'Average fare: {avg_fare}')
";

fn main() -> lafp::columnar::Result<()> {
    let dir = ensure_datasets(std::path::Path::new("target/lafp-data"), Size::Small)
        .expect("dataset generation");

    println!("--- original program ---\n{PROGRAM}");
    let analyzed = analyze(
        PROGRAM,
        &RewriteOptions {
            data_dir: Some(dir.clone()),
            ..Default::default()
        },
    )
    .expect("JIT analysis");
    println!("--- optimized program (Figure 11 shape) ---\n{}", analyzed.optimized_source);
    println!(
        "JIT static analysis took {:.2} ms\n",
        analyzed.report.duration.as_secs_f64() * 1e3
    );

    let config = LafpConfig {
        backend: BackendKind::Dask,
        ..Default::default()
    };
    let mut interp = Interp::new(ExecMode::Lafp, config, dir);
    let outcome = interp.run(&analyzed.ast)?;
    println!("--- program output ---");
    for line in outcome.output {
        println!("{line}");
    }
    println!("--- plots produced: {:?} ---", outcome.plots);
    Ok(())
}
