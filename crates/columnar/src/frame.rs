//! The `DataFrame`: an ordered collection of equal-length named columns,
//! plus the relational kernels the LaFP operator set needs.

use crate::bitmap::Bitmap;
use crate::column::Column;
use crate::dtype::DType;
use crate::error::{ColumnarError, Result};
use crate::series::Series;
use crate::HeapSize;
use std::collections::HashSet;

/// A 2-D table of named, equal-length columns.
///
/// Row identity is positional (a RangeIndex in pandas terms). The Dask-like
/// backend may reorder rows; order-sensitivity is tracked a level up, in the
/// backend layer, mirroring the paper's discussion (§5.2).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DataFrame {
    columns: Vec<Series>,
}

impl DataFrame {
    /// Empty frame (0 columns, 0 rows).
    pub fn empty() -> DataFrame {
        DataFrame::default()
    }

    /// Build from series; all must share one length and names must be unique.
    pub fn new(columns: Vec<Series>) -> Result<DataFrame> {
        let mut seen = HashSet::new();
        for s in &columns {
            if !seen.insert(s.name().to_string()) {
                return Err(ColumnarError::DuplicateColumn(s.name().to_string()));
            }
        }
        if let Some(first) = columns.first() {
            let n = first.len();
            for s in &columns {
                if s.len() != n {
                    return Err(ColumnarError::LengthMismatch {
                        left: n,
                        right: s.len(),
                    });
                }
            }
        }
        Ok(DataFrame { columns })
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, Series::len)
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// `(rows, cols)` like pandas `shape`.
    pub fn shape(&self) -> (usize, usize) {
        (self.num_rows(), self.num_columns())
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(Series::name).collect()
    }

    /// All series, in order.
    pub fn series(&self) -> &[Series] {
        &self.columns
    }

    /// Look up a column by name.
    pub fn column(&self, name: &str) -> Result<&Series> {
        self.columns
            .iter()
            .find(|s| s.name() == name)
            .ok_or_else(|| ColumnarError::ColumnNotFound(name.to_string()))
    }

    /// True if the frame has a column of this name.
    pub fn has_column(&self, name: &str) -> bool {
        self.columns.iter().any(|s| s.name() == name)
    }

    /// `(name, dtype)` schema pairs.
    pub fn schema(&self) -> Vec<(String, DType)> {
        self.columns
            .iter()
            .map(|s| (s.name().to_string(), s.dtype()))
            .collect()
    }

    /// Project to `names` (order follows `names`). Pandas `df[cols]`.
    pub fn select(&self, names: &[String]) -> Result<DataFrame> {
        let cols = names
            .iter()
            .map(|n| self.column(n).cloned())
            .collect::<Result<Vec<_>>>()?;
        DataFrame::new(cols)
    }

    /// Drop columns by name; missing names are an error (pandas default).
    pub fn drop(&self, names: &[String]) -> Result<DataFrame> {
        for n in names {
            if !self.has_column(n) {
                return Err(ColumnarError::ColumnNotFound(n.clone()));
            }
        }
        let keep: Vec<Series> = self
            .columns
            .iter()
            .filter(|s| !names.iter().any(|n| n == s.name()))
            .cloned()
            .collect();
        DataFrame::new(keep)
    }

    /// Add or replace a column (pandas `df[name] = values`). A scalar is
    /// broadcast to the frame's length.
    pub fn with_column(&self, name: &str, column: Column) -> Result<DataFrame> {
        if !self.columns.is_empty() && column.len() != self.num_rows() {
            return Err(ColumnarError::LengthMismatch {
                left: self.num_rows(),
                right: column.len(),
            });
        }
        let mut cols = self.columns.clone();
        match cols.iter_mut().find(|s| s.name() == name) {
            Some(slot) => *slot = Series::new(name, column),
            None => cols.push(Series::new(name, column)),
        }
        Ok(DataFrame { columns: cols })
    }

    /// Rename columns via `(old, new)` pairs; unknown names error.
    pub fn rename(&self, mapping: &[(String, String)]) -> Result<DataFrame> {
        for (old, _) in mapping {
            if !self.has_column(old) {
                return Err(ColumnarError::ColumnNotFound(old.clone()));
            }
        }
        let cols = self
            .columns
            .iter()
            .map(|s| {
                match mapping.iter().find(|(old, _)| old == s.name()) {
                    Some((_, new)) => s.clone().renamed(new.clone()),
                    None => s.clone(),
                }
            })
            .collect();
        DataFrame::new(cols)
    }

    /// Keep rows where `mask` is set.
    pub fn filter(&self, mask: &Bitmap) -> Result<DataFrame> {
        let cols = self
            .columns
            .iter()
            .map(|s| s.map_column(|c| c.filter(mask)))
            .collect::<Result<Vec<_>>>()?;
        Ok(DataFrame { columns: cols })
    }

    /// Gather rows at `indices`.
    pub fn take(&self, indices: &[usize]) -> Result<DataFrame> {
        let cols = self
            .columns
            .iter()
            .map(|s| s.map_column(|c| c.take(indices)))
            .collect::<Result<Vec<_>>>()?;
        Ok(DataFrame { columns: cols })
    }

    /// First `n` rows (pandas `head`).
    pub fn head(&self, n: usize) -> DataFrame {
        self.slice(0, n)
    }

    /// Last `n` rows (pandas `tail`).
    pub fn tail(&self, n: usize) -> DataFrame {
        let rows = self.num_rows();
        let start = rows.saturating_sub(n);
        self.slice(start, rows - start)
    }

    /// Contiguous row range.
    pub fn slice(&self, offset: usize, len: usize) -> DataFrame {
        DataFrame {
            columns: self
                .columns
                .iter()
                .map(|s| Series::new(s.name(), s.column().slice(offset, len)))
                .collect(),
        }
    }

    /// Vertically stack `other` under `self` (schemas must match by name;
    /// column order of `self` wins).
    pub fn concat(&self, other: &DataFrame) -> Result<DataFrame> {
        if self.columns.is_empty() {
            return Ok(other.clone());
        }
        if other.columns.is_empty() {
            return Ok(self.clone());
        }
        let cols = self
            .columns
            .iter()
            .map(|s| {
                let rhs = other.column(s.name())?;
                s.map_column(|c| c.concat(rhs.column()))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(DataFrame { columns: cols })
    }

    /// Remove duplicate rows over `subset` (all columns when empty),
    /// keeping the first occurrence — pandas `drop_duplicates`.
    pub fn drop_duplicates(&self, subset: &[String]) -> Result<DataFrame> {
        let keys: Vec<String> = if subset.is_empty() {
            self.column_names().iter().map(|s| s.to_string()).collect()
        } else {
            subset.to_vec()
        };
        let key_cols: Vec<&Series> = keys
            .iter()
            .map(|k| self.column(k))
            .collect::<Result<Vec<_>>>()?;
        let mut seen: HashSet<String> = HashSet::new();
        let mut keep = Vec::new();
        for i in 0..self.num_rows() {
            let key: String = key_cols
                .iter()
                .map(|s| s.get(i).to_string())
                .collect::<Vec<_>>()
                .join("\u{1}");
            if seen.insert(key) {
                keep.push(i);
            }
        }
        self.take(&keep)
    }

    /// Per-row combined hash over all columns (row fingerprints for the
    /// regression framework and join keys).
    pub fn row_hashes(&self, subset: &[String]) -> Result<Vec<u64>> {
        let mut hashes = vec![0xcbf29ce484222325u64; self.num_rows()];
        let names: Vec<String> = if subset.is_empty() {
            self.column_names().iter().map(|s| s.to_string()).collect()
        } else {
            subset.to_vec()
        };
        for name in &names {
            self.column(name)?.column().hash_into(&mut hashes);
        }
        Ok(hashes)
    }

    /// Render up to `max_rows` rows as an aligned-ish text table (used by
    /// the lazy `print` operator).
    pub fn to_display_string(&self, max_rows: usize) -> String {
        let mut out = String::new();
        out.push_str(&self.column_names().join("\t"));
        out.push('\n');
        let rows = self.num_rows();
        let shown = rows.min(max_rows);
        for i in 0..shown {
            let row: Vec<String> = self
                .columns
                .iter()
                .map(|s| s.get(i).to_string())
                .collect();
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        if rows > shown {
            out.push_str(&format!("... [{rows} rows x {} columns]", self.num_columns()));
        } else {
            out.push_str(&format!("[{rows} rows x {} columns]", self.num_columns()));
        }
        out
    }
}

impl HeapSize for DataFrame {
    fn heap_size(&self) -> usize {
        self.columns.iter().map(HeapSize::heap_size).sum()
    }
}

/// Convenience constructor used heavily in tests:
/// `df![("a", Column::from_i64(vec![1,2]))]`.
#[macro_export]
macro_rules! df {
    ($(($name:expr, $col:expr)),* $(,)?) => {
        $crate::DataFrame::new(vec![
            $($crate::Series::new($name, $col)),*
        ]).expect("valid test frame")
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::CmpOp;
    use crate::value::Scalar;

    fn taxi() -> DataFrame {
        df![
            ("fare", Column::from_f64(vec![5.0, -1.0, 12.5, 7.25])),
            ("passengers", Column::from_i64(vec![1, 2, 3, 1])),
            ("city", Column::from_strings(vec!["NY", "NY", "SF", "LA"])),
        ]
    }

    #[test]
    fn shape_and_names() {
        let df = taxi();
        assert_eq!(df.shape(), (4, 3));
        assert_eq!(df.column_names(), vec!["fare", "passengers", "city"]);
        assert!(df.has_column("fare"));
        assert!(!df.has_column("tip"));
    }

    #[test]
    fn new_rejects_ragged_and_duplicates() {
        let err = DataFrame::new(vec![
            Series::new("a", Column::from_i64(vec![1])),
            Series::new("b", Column::from_i64(vec![1, 2])),
        ]);
        assert!(matches!(err, Err(ColumnarError::LengthMismatch { .. })));
        let err = DataFrame::new(vec![
            Series::new("a", Column::from_i64(vec![1])),
            Series::new("a", Column::from_i64(vec![2])),
        ]);
        assert!(matches!(err, Err(ColumnarError::DuplicateColumn(_))));
    }

    #[test]
    fn select_projects_and_orders() {
        let df = taxi();
        let p = df.select(&["city".into(), "fare".into()]).unwrap();
        assert_eq!(p.column_names(), vec!["city", "fare"]);
        assert!(df.select(&["nope".into()]).is_err());
    }

    #[test]
    fn drop_removes_columns() {
        let df = taxi().drop(&["city".into()]).unwrap();
        assert_eq!(df.column_names(), vec!["fare", "passengers"]);
        assert!(taxi().drop(&["ghost".into()]).is_err());
    }

    #[test]
    fn with_column_adds_and_replaces() {
        let df = taxi();
        let df2 = df
            .with_column("tip", Column::from_f64(vec![1.0, 0.0, 2.0, 1.5]))
            .unwrap();
        assert_eq!(df2.num_columns(), 4);
        let df3 = df2
            .with_column("tip", Column::from_f64(vec![0.0; 4]))
            .unwrap();
        assert_eq!(df3.num_columns(), 4);
        assert_eq!(df3.column("tip").unwrap().get(0), Scalar::Float(0.0));
        assert!(df.with_column("bad", Column::from_i64(vec![1])).is_err());
    }

    #[test]
    fn rename_columns() {
        let df = taxi()
            .rename(&[("fare".into(), "fare_amount".into())])
            .unwrap();
        assert!(df.has_column("fare_amount"));
        assert!(!df.has_column("fare"));
        assert!(taxi().rename(&[("zzz".into(), "y".into())]).is_err());
    }

    #[test]
    fn filter_by_predicate() {
        let df = taxi();
        let mask = df
            .column("fare")
            .unwrap()
            .column()
            .compare_scalar(CmpOp::Gt, &Scalar::Float(0.0))
            .unwrap();
        let kept = df.filter(&mask).unwrap();
        assert_eq!(kept.num_rows(), 3);
        assert_eq!(kept.column("city").unwrap().get(0), Scalar::Str("NY".into()));
    }

    #[test]
    fn head_tail_slice() {
        let df = taxi();
        assert_eq!(df.head(2).num_rows(), 2);
        assert_eq!(df.head(99).num_rows(), 4);
        let t = df.tail(1);
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.column("city").unwrap().get(0), Scalar::Str("LA".into()));
        assert_eq!(df.slice(1, 2).num_rows(), 2);
    }

    #[test]
    fn concat_stacks_rows() {
        let df = taxi();
        let both = df.concat(&df).unwrap();
        assert_eq!(both.num_rows(), 8);
        assert_eq!(both.num_columns(), 3);
        let empty = DataFrame::empty();
        assert_eq!(empty.concat(&df).unwrap().num_rows(), 4);
        assert_eq!(df.concat(&empty).unwrap().num_rows(), 4);
    }

    #[test]
    fn concat_requires_matching_schema() {
        let df = taxi();
        let other = df![("other", Column::from_i64(vec![1]))];
        assert!(df.concat(&other).is_err());
    }

    #[test]
    fn drop_duplicates_keeps_first() {
        let df = df![
            ("k", Column::from_strings(vec!["a", "b", "a", "c"])),
            ("v", Column::from_i64(vec![1, 2, 3, 4])),
        ];
        let d = df.drop_duplicates(&["k".into()]).unwrap();
        assert_eq!(d.num_rows(), 3);
        assert_eq!(d.column("v").unwrap().get(0), Scalar::Int(1));
        // full-row dedup
        let full = df.concat(&df).unwrap().drop_duplicates(&[]).unwrap();
        assert_eq!(full.num_rows(), 4);
    }

    #[test]
    fn row_hashes_are_row_fingerprints() {
        let df = taxi();
        let h = df.row_hashes(&[]).unwrap();
        assert_eq!(h.len(), 4);
        let dup = df.concat(&df).unwrap();
        let h2 = dup.row_hashes(&[]).unwrap();
        assert_eq!(h2[0], h2[4]);
        assert_ne!(h2[0], h2[1]);
    }

    #[test]
    fn display_truncates() {
        let df = taxi();
        let text = df.to_display_string(2);
        assert!(text.contains("fare"));
        assert!(text.contains("... [4 rows x 3 columns]"));
        let full = df.to_display_string(10);
        assert!(full.contains("[4 rows x 3 columns]"));
    }
}
