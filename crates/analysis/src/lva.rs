//! Live Variable Analysis — the classic backward analysis the paper gets
//! from Soot (§2.3), at PandaScript statement granularity.

use crate::dataflow::{solve_backward, Lattice, Point};
use lafp_ir::ast::{Ast, StmtId, StmtKind, Target};
use lafp_ir::cfg::Cfg;
use std::collections::{BTreeSet, HashMap};

/// Set of live variable names.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VarSet(pub BTreeSet<String>);

impl Lattice for VarSet {
    fn join(&mut self, other: &Self) {
        self.0.extend(other.0.iter().cloned());
    }
}

/// Result of live variable analysis.
#[derive(Debug, Clone)]
pub struct LvaResult {
    facts: HashMap<Point, VarSet>,
}

impl LvaResult {
    /// Variables live immediately *before* the program point.
    pub fn live_in(&self, point: Point) -> &BTreeSet<String> {
        static EMPTY: std::sync::OnceLock<BTreeSet<String>> = std::sync::OnceLock::new();
        self.facts
            .get(&point)
            .map(|v| &v.0)
            .unwrap_or_else(|| EMPTY.get_or_init(BTreeSet::new))
    }
}

/// Uses and defs of one statement for variable-level liveness.
pub fn stmt_uses_defs(ast: &Ast, id: StmtId) -> (Vec<String>, Option<String>) {
    match &ast.stmt(id).kind {
        StmtKind::Assign { target, value } => {
            let mut uses = value.names_used();
            match target {
                Target::Name(n) => (uses, Some(n.clone())),
                Target::Subscript { obj, key } => {
                    // df['c'] = ... reads and writes df (partial kill: none)
                    uses.push(obj.clone());
                    uses.extend(key.names_used());
                    (uses, None)
                }
            }
        }
        StmtKind::Expr(e) => (e.names_used(), None),
        StmtKind::If { cond, .. } => (cond.names_used(), None),
        StmtKind::For { var, iter, .. } => (iter.names_used(), Some(var.clone())),
        _ => (Vec::new(), None),
    }
}

/// Run LVA over a CFG.
pub fn analyze(ast: &Ast, cfg: &Cfg) -> LvaResult {
    let facts = solve_backward::<VarSet>(cfg, &mut |stmt, _point, out| {
        let mut f = out.clone();
        if let Some(id) = stmt {
            let (uses, def) = stmt_uses_defs(ast, id);
            if let Some(d) = def {
                f.0.remove(&d);
            }
            f.0.extend(uses);
        }
        f
    });
    LvaResult { facts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lafp_ir::lower::lower;
    use lafp_ir::parser::parse;

    #[test]
    fn dead_after_last_use() {
        let src = "a = 1\nb = a\nc = 2\nprint(c)\n";
        let ast = parse(src).unwrap();
        let cfg = lower(&ast);
        let r = analyze(&ast, &cfg);
        // Before `b = a`: a is live. Before `c = 2`: nothing but print's c...
        let before_b = r.live_in(Point::Stmt(cfg.entry, 1));
        assert!(before_b.contains("a"));
        let before_c = r.live_in(Point::Stmt(cfg.entry, 2));
        assert!(!before_c.contains("a"), "a dead after b = a");
        assert!(!before_c.contains("b"), "b never used");
    }

    #[test]
    fn branch_joins_liveness() {
        let src = "\
x = 1
y = 2
if c > 0:
    print(x)
else:
    print(y)
";
        let ast = parse(src).unwrap();
        let cfg = lower(&ast);
        let r = analyze(&ast, &cfg);
        let before_first = r.live_in(Point::Stmt(cfg.entry, 0));
        assert!(before_first.contains("c"));
        let before_if = r.live_in(Point::Term(cfg.entry));
        assert!(before_if.contains("x") && before_if.contains("y"));
    }

    #[test]
    fn subscript_store_keeps_frame_live() {
        let src = "df['day'] = df.ts\nprint(df)\n";
        let ast = parse(src).unwrap();
        let cfg = lower(&ast);
        let r = analyze(&ast, &cfg);
        let before = r.live_in(Point::Stmt(cfg.entry, 0));
        assert!(before.contains("df"), "partial write does not kill df");
    }
}
