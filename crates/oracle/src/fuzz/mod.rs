//! The byte-driven differential fuzzer.
//!
//! A fuzz *case* is a [`trace::Trace`]: frame-generation plans (dtypes,
//! null densities, cardinalities, encodings, row counts up to and past
//! the 64 Ki morsel seam, optionally routed through a CSV file) plus a
//! sequence of ops over the op alphabet (filter, arith, compare,
//! fillna, groupby, join, sort, top-n, concat, slice, spill
//! round-trip, encode, decode, head). Every byte string decodes to a
//! valid trace; [`gen::seeded_case_bytes`] produces the canonical
//! random ones.
//!
//! Each case executes on the frozen references
//! ([`crate::reference`]) and on the real engine under one cell of the
//! execution-config matrix ([`exec::default_configs`]); every
//! materialization point must match within a 1e-12 relative Float64
//! tolerance. A divergence is shrunk ([`shrink::shrink`]) to a minimal
//! trace and reported as a hex string that
//! [`replay_hex`] (and `LAFP_FUZZ_REPLAY=<hex>` through the bench
//! harness) re-executes exactly.

pub mod exec;
pub mod gen;
pub mod shrink;
pub mod trace;

pub use exec::{config_by_name, default_configs, FuzzConfig, Mode, Mutation};

use std::sync::Mutex;

/// Environment variable the harness checks for a replay trace.
pub const REPLAY_ENV: &str = "LAFP_FUZZ_REPLAY";

/// Serializes case execution: a case may mutate process-global state
/// (`LAFP_NO_ENCODE`, the installed fault plan), so cases — including
/// shrink re-executions — never overlap.
static CASE_LOCK: Mutex<()> = Mutex::new(());

/// Restores an environment variable on drop.
struct EnvGuard {
    key: &'static str,
    prior: Option<String>,
}

impl EnvGuard {
    fn set(key: &'static str, value: &str) -> EnvGuard {
        let prior = std::env::var(key).ok();
        std::env::set_var(key, value);
        EnvGuard { key, prior }
    }
}

impl Drop for EnvGuard {
    fn drop(&mut self) {
        match &self.prior {
            Some(v) => std::env::set_var(self.key, v),
            None => std::env::remove_var(self.key),
        }
    }
}

/// Outcome of a passing case.
pub struct CaseOutcome {
    /// The structured engine error accepted under a fault/budget
    /// config, if the run ended in one.
    pub engine_error: Option<String>,
}

/// Execute one trace under one config: oracle run, engine run, and
/// comparison at every materialization point. `Err` is a divergence
/// message.
pub fn run_case(
    t: &trace::Trace,
    cfg: &FuzzConfig,
    mutation: Mutation,
) -> Result<CaseOutcome, String> {
    let _case = CASE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _env = cfg
        .no_encode
        .then(|| EnvGuard::set("LAFP_NO_ENCODE", "1"));
    let orun = exec::run_oracle(t);
    let _faults = cfg.faults.then(|| {
        use lafp_columnar::faults::{install, FaultPlan, FaultSite};
        install(
            FaultPlan::new(cfg.fault_seed)
                .with(FaultSite::SpillWrite, 0.05)
                .with(FaultSite::SpillRead, 0.05),
        )
    });
    let report = exec::run_engine(t, &orun, cfg, mutation)?;
    Ok(CaseOutcome {
        engine_error: report.error,
    })
}

/// One shrunk, replayable divergence.
#[derive(Debug)]
pub struct FailureReport {
    /// Batch case index.
    pub case: u64,
    /// Config cell the divergence appeared under.
    pub config: &'static str,
    /// The first divergence message (from the *shrunk* trace).
    pub message: String,
    /// Canonical hex of the original failing trace.
    pub hex_original: String,
    /// Canonical hex of the shrunk trace — the replay string.
    pub hex_shrunk: String,
    /// Op count after shrinking.
    pub shrunk_ops: usize,
}

/// A fixed-seed batch's summary.
#[derive(Debug, Default)]
pub struct BatchReport {
    /// Cases executed.
    pub cases: u64,
    /// Cases that ended in an accepted structured engine error
    /// (fault/budget configs only).
    pub engine_errors: u64,
    /// Shrunk divergences (the batch stops collecting after five).
    pub failures: Vec<FailureReport>,
}

/// Run `cases` seeded cases, rotating each across the config matrix
/// (`case % configs.len()`). Divergences are shrunk and reported; the
/// batch stops early after five.
pub fn run_batch(
    seed: u64,
    cases: u64,
    configs: &[FuzzConfig],
    mutation: Mutation,
) -> BatchReport {
    assert!(!configs.is_empty(), "run_batch needs at least one config");
    let mut report = BatchReport::default();
    for case in 0..cases {
        let bytes = gen::seeded_case_bytes(seed, case);
        let t = trace::decode(&bytes);
        let cfg = &configs[(case % configs.len() as u64) as usize];
        report.cases += 1;
        match run_case(&t, cfg, mutation) {
            Ok(outcome) => {
                if outcome.engine_error.is_some() {
                    report.engine_errors += 1;
                }
            }
            Err(first_message) => {
                let shrunk = shrink::shrink(&t, cfg, mutation);
                let message = run_case(&shrunk, cfg, mutation)
                    .err()
                    .unwrap_or(first_message);
                report.failures.push(FailureReport {
                    case,
                    config: cfg.name,
                    message,
                    hex_original: trace::to_hex(&trace::encode(&t)),
                    hex_shrunk: trace::to_hex(&trace::encode(&shrunk)),
                    shrunk_ops: shrunk.ops.len(),
                });
                if report.failures.len() >= 5 {
                    break;
                }
            }
        }
    }
    report
}

/// Re-execute a replay hex string against every config in `configs`.
/// Returns the per-config divergences (empty = trace passes
/// everywhere).
pub fn replay_hex(
    hex: &str,
    configs: &[FuzzConfig],
    mutation: Mutation,
) -> Result<Vec<(&'static str, String)>, String> {
    let bytes = trace::from_hex(hex).ok_or_else(|| format!("not a hex trace: {hex:?}"))?;
    let t = trace::decode(&bytes);
    let mut divergences = Vec::new();
    for cfg in configs {
        if let Err(msg) = run_case(&t, cfg, mutation) {
            divergences.push((cfg.name, msg));
        }
    }
    Ok(divergences)
}
