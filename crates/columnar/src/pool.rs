//! A shared, scoped worker pool for morsel-driven parallel kernels.
//!
//! The heavy kernels (group-by, join, sort, CSV ingestion) split their
//! input into *morsels* — contiguous row ranges of a few tens of
//! thousands of rows — and let a small set of workers claim morsels off a
//! shared atomic counter (morsel-driven scheduling, after Leis et al.).
//! Workers are spawned inside [`std::thread::scope`] per parallel call:
//! crates.io is unreachable from this build environment, so there is no
//! rayon; scoped threads keep the pool dependency-free and let kernels
//! borrow their inputs without `'static` bounds. Spawning a handful of
//! OS threads costs tens of microseconds, which is noise against the
//! multi-millisecond kernels the pool is reserved for — every entry
//! point falls back to the sequential path below [`PAR_MIN_ROWS`].
//!
//! Thread-count resolution is shared by every consumer (the engines, the
//! bench harness, the global pool): an explicit request wins, then the
//! `LAFP_THREADS` environment variable, then
//! [`std::thread::available_parallelism`]. See [`resolve_threads`].
//!
//! Determinism: every parallel kernel stitches its per-morsel outputs
//! back together in morsel order (or merges with a total, index-broken
//! comparator), so results are identical to the sequential path at any
//! thread count.

// New `unwrap`/`expect` escapes in the pool are panics that tear through
// the isolation layer — make them visible in review (CI elevates to deny;
// the survivors below carry justified `#[allow]`s).
#![warn(clippy::unwrap_used, clippy::expect_used)]

use crate::cancel::CancelToken;
use crate::error::{ColumnarError, Result};
use crate::faults::{self, FaultKind, FaultSite};
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock, PoisonError};

/// Extract a human-readable message from a caught panic payload
/// (`panic!` with a string literal or a formatted `String`; anything
/// else gets a placeholder). Used everywhere a panic is converted into
/// [`ColumnarError::WorkerPanic`].
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Record `err` as the run's first error (later errors are dropped —
/// the first failure is the one that poisoned the queue).
fn set_first_error(slot: &Mutex<Option<ColumnarError>>, err: ColumnarError) {
    let mut guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
    guard.get_or_insert(err);
}

/// Fire the pipeline-stage injection point (panics when the registry
/// says so; the surrounding `catch_unwind` is what is under test).
fn stage_inject() {
    if let Some(FaultKind::Panic(msg)) = faults::fire(FaultSite::PipelineStage) {
        panic!("{msg}");
    }
}

/// Default morsel size in rows for the parallel kernels. Large enough
/// that per-morsel overheads (an accumulator merge, a run header)
/// amortize, small enough that a handful of morsels per worker keeps the
/// claim queue busy when morsel costs are skewed.
pub const MORSEL_ROWS: usize = 64 * 1024;

/// Inputs below this row count take the sequential path: the work is
/// too small to amortize spawning scoped workers.
pub const PAR_MIN_ROWS: usize = 16 * 1024;

/// Resolve a requested worker count to an effective one.
///
/// `0` means "default": the `LAFP_THREADS` environment variable if set
/// to a positive integer, else the machine's available parallelism.
/// Non-zero requests are honored as-is. The result is always ≥ 1.
///
/// Every thread-count decision in the workspace routes through this one
/// function — the Modin-like eager engine, the Dask-like engine, the
/// global pool and the bench harness — so "default" cannot silently mean
/// different things in different layers.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var("LAFP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A scoped worker pool: a resolved thread count plus the morsel-claiming
/// machinery. Cheap to construct (no threads live between calls).
///
/// ```
/// use lafp_columnar::WorkerPool;
/// let pool = WorkerPool::new(2);
/// // Items are claimed dynamically; outputs come back in item order.
/// let doubled = pool.map(vec![1, 2, 3], |_, v| v * 2);
/// assert_eq!(doubled, vec![2, 4, 6]);
/// ```
#[derive(Debug)]
pub struct WorkerPool {
    threads: usize,
    /// Cooperative cancellation consulted at every morsel claim by the
    /// fallible entry points ([`try_map`](WorkerPool::try_map),
    /// [`run_workers`](WorkerPool::run_workers)). `None` = never
    /// cancelled.
    cancel: Option<CancelToken>,
}

/// A shared queue of task indexes `0..tasks`, claimed atomically by the
/// pool's workers (the morsel dispenser).
pub struct TaskQueue {
    next: AtomicUsize,
    tasks: usize,
    /// Set when a worker fails: remaining claims return `None` so the
    /// other workers drain instead of burning through a doomed run.
    poisoned: AtomicBool,
    cancel: Option<CancelToken>,
}

impl TaskQueue {
    fn new(tasks: usize, cancel: Option<CancelToken>) -> TaskQueue {
        TaskQueue {
            next: AtomicUsize::new(0),
            tasks,
            poisoned: AtomicBool::new(false),
            cancel,
        }
    }

    /// Claim the next unclaimed task index, or `None` when exhausted,
    /// poisoned, or cancelled. This is the single choke point every
    /// morsel passes through, so it doubles as the `worker_panic`
    /// injection site (the fault fires here as a real panic; the pool's
    /// `catch_unwind` boundary converts it).
    #[inline]
    pub fn claim(&self) -> Option<usize> {
        if self.poisoned.load(Ordering::Relaxed) {
            return None;
        }
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return None;
        }
        if let Some(FaultKind::Panic(msg)) = faults::fire(FaultSite::MorselExecute) {
            panic!("{msg}");
        }
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.tasks).then_some(i)
    }

    /// Stop handing out tasks: remaining and future claims return
    /// `None`. Called by a worker that hit an error or panic so its
    /// peers finish their in-hand morsel and exit.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Relaxed);
    }
}

/// One output slot, written exactly once by the worker that claimed its
/// index (disjoint writes — see the safety comments in [`WorkerPool::map`]).
struct Slot<T>(UnsafeCell<Option<T>>);

// SAFETY: slots are only written through disjoint, uniquely-claimed
// indexes while the scope is live, and only read after every worker has
// joined.
unsafe impl<T: Send> Sync for Slot<T> {}

impl WorkerPool {
    /// A pool with `threads` workers (`0` = default; see
    /// [`resolve_threads`]).
    pub fn new(threads: usize) -> WorkerPool {
        WorkerPool {
            threads: resolve_threads(threads),
            cancel: None,
        }
    }

    /// A single-threaded pool: every parallel entry point degenerates to
    /// its sequential path.
    pub const fn sequential() -> WorkerPool {
        WorkerPool {
            threads: 1,
            cancel: None,
        }
    }

    /// A pool sharing this one's thread count whose fallible entry
    /// points ([`try_map`](WorkerPool::try_map),
    /// [`run_workers`](WorkerPool::run_workers)) check `token` at every
    /// morsel claim and return [`ColumnarError::Cancelled`] once it
    /// trips. Cheap (no threads are held by a pool between calls); the
    /// engines derive one per query.
    pub fn with_cancel(&self, token: CancelToken) -> WorkerPool {
        WorkerPool {
            threads: self.threads,
            cancel: Some(token),
        }
    }

    /// The process-wide default pool, sized once from `LAFP_THREADS` /
    /// available parallelism.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| WorkerPool::new(0))
    }

    /// Worker count this pool runs with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Does this pool actually run work concurrently?
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Apply `f` to every item, in parallel, returning outputs in item
    /// order. Items are claimed dynamically (morsel-driven): a worker
    /// that finishes a cheap item immediately claims the next, so skewed
    /// per-item costs balance without static partitioning.
    ///
    /// `map` is infallible and ignores the pool's cancel token: a panic
    /// in `f` propagates out of the scope join and is only converted to
    /// a structured error at the query boundary. Fallible or
    /// cancellation-aware paths use [`try_map`](WorkerPool::try_map).
    #[allow(clippy::expect_used)] // slot invariants: each index claimed and filled exactly once
    pub fn map<T: Send, R: Send>(
        &self,
        items: Vec<T>,
        f: impl Fn(usize, T) -> R + Sync,
    ) -> Vec<R> {
        let n = items.len();
        if self.threads <= 1 || n <= 1 {
            return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let slots: Vec<Slot<T>> = items
            .into_iter()
            .map(|t| Slot(UnsafeCell::new(Some(t))))
            .collect();
        let out: Vec<Slot<R>> = (0..n).map(|_| Slot(UnsafeCell::new(None))).collect();
        let queue = TaskQueue::new(n, None);
        let workers = self.threads.min(n);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    while let Some(i) = queue.claim() {
                        // SAFETY: `claim` hands out each index exactly
                        // once, so this worker is the only one touching
                        // slot `i`; the vectors are never resized.
                        let item = unsafe { (*slots[i].0.get()).take() }
                            .expect("task claimed exactly once");
                        let r = f(i, item);
                        unsafe { *out[i].0.get() = Some(r) };
                    }
                });
            }
        });
        out.into_iter()
            .map(|s| s.0.into_inner().expect("worker filled its slot"))
            .collect()
    }

    /// Fallible, panic-isolating [`map`](WorkerPool::map): apply `f` to
    /// every item in parallel, returning outputs in item order, where
    /// any worker's `Err` or panic fails the whole call with the *first*
    /// failure. On failure the task queue is poisoned so the remaining
    /// workers finish their in-hand item and exit — one bad morsel costs
    /// one query, not the process. Checks the pool's cancel token at
    /// every claim.
    ///
    /// ```
    /// use lafp_columnar::WorkerPool;
    /// let pool = WorkerPool::new(2);
    /// let out = pool.try_map(vec![1, 2, 3], |_, v| Ok(v * 2)).unwrap();
    /// assert_eq!(out, vec![2, 4, 6]);
    /// ```
    pub fn try_map<T: Send, R: Send>(
        &self,
        items: Vec<T>,
        f: impl Fn(usize, T) -> Result<R> + Sync,
    ) -> Result<Vec<R>> {
        let n = items.len();
        if let Some(token) = &self.cancel {
            token.check()?;
        }
        if self.threads <= 1 || n <= 1 {
            let mut out = Vec::with_capacity(n);
            for (i, item) in items.into_iter().enumerate() {
                if let Some(token) = &self.cancel {
                    token.check()?;
                }
                // Same morsel-execution injection point the parallel
                // path hits in `TaskQueue::claim`.
                match catch_unwind(AssertUnwindSafe(|| {
                    faults::inject(FaultSite::MorselExecute).and_then(|()| f(i, item))
                })) {
                    Ok(r) => out.push(r?),
                    Err(payload) => {
                        faults::record_panic_isolated();
                        return Err(ColumnarError::WorkerPanic(panic_message(payload)));
                    }
                }
            }
            return Ok(out);
        }
        let slots: Vec<Slot<T>> = items
            .into_iter()
            .map(|t| Slot(UnsafeCell::new(Some(t))))
            .collect();
        let out: Vec<Slot<R>> = (0..n).map(|_| Slot(UnsafeCell::new(None))).collect();
        let queue = TaskQueue::new(n, self.cancel.clone());
        let error: Mutex<Option<ColumnarError>> = Mutex::new(None);
        let workers = self.threads.min(n);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let run = catch_unwind(AssertUnwindSafe(|| {
                        while let Some(i) = queue.claim() {
                            // SAFETY: as in `map` — disjoint uniquely
                            // claimed indexes, vectors never resized.
                            let Some(item) = (unsafe { (*slots[i].0.get()).take() }) else {
                                break;
                            };
                            match f(i, item) {
                                Ok(r) => unsafe { *out[i].0.get() = Some(r) },
                                Err(e) => {
                                    queue.poison();
                                    set_first_error(&error, e);
                                    break;
                                }
                            }
                        }
                    }));
                    if let Err(payload) = run {
                        queue.poison();
                        faults::record_panic_isolated();
                        set_first_error(
                            &error,
                            ColumnarError::WorkerPanic(panic_message(payload)),
                        );
                    }
                });
            }
        });
        if let Some(e) = error.into_inner().unwrap_or_else(PoisonError::into_inner) {
            return Err(e);
        }
        if let Some(token) = &self.cancel {
            token.check()?;
        }
        #[allow(clippy::expect_used)] // no error recorded ⇒ every slot was filled
        Ok(out
            .into_iter()
            .map(|s| s.0.into_inner().expect("worker filled its slot"))
            .collect())
    }

    /// Spawn up to `threads` workers, each running `worker` with the
    /// shared task queue over `0..tasks`, and return one result per
    /// worker (in worker order). This is the shape the group-by kernel
    /// needs: worker-local accumulators fed by dynamically claimed
    /// morsels, merged by the caller afterwards.
    ///
    /// A panicking worker poisons the queue (its peers drain and exit)
    /// and fails the call with [`ColumnarError::WorkerPanic`]; a tripped
    /// cancel token fails it with [`ColumnarError::Cancelled`].
    pub fn run_workers<R: Send>(
        &self,
        tasks: usize,
        worker: impl Fn(&TaskQueue) -> R + Sync,
    ) -> Result<Vec<R>> {
        let queue = TaskQueue::new(tasks, self.cancel.clone());
        let workers = self.threads.min(tasks.max(1));
        let error: Mutex<Option<ColumnarError>> = Mutex::new(None);
        let run_one = |queue: &TaskQueue| -> Option<R> {
            match catch_unwind(AssertUnwindSafe(|| worker(queue))) {
                Ok(r) => Some(r),
                Err(payload) => {
                    queue.poison();
                    faults::record_panic_isolated();
                    set_first_error(
                        &error,
                        ColumnarError::WorkerPanic(panic_message(payload)),
                    );
                    None
                }
            }
        };
        let results: Vec<Option<R>> = if workers <= 1 {
            vec![run_one(&queue)]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> =
                    (0..workers).map(|_| scope.spawn(|| run_one(&queue))).collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(r) => r,
                        // Unreachable (run_one catches), but stay structured.
                        Err(payload) => {
                            set_first_error(
                                &error,
                                ColumnarError::WorkerPanic(panic_message(payload)),
                            );
                            None
                        }
                    })
                    .collect()
            })
        };
        if let Some(e) = error.into_inner().unwrap_or_else(PoisonError::into_inner) {
            return Err(e);
        }
        if let Some(token) = &self.cancel {
            token.check()?;
        }
        #[allow(clippy::expect_used)] // no error recorded ⇒ every worker returned
        Ok(results
            .into_iter()
            .map(|r| r.expect("worker result present"))
            .collect())
    }
}

// ---------------------------------------------------------------------------
// Pipeline stages
// ---------------------------------------------------------------------------

/// A bounded single-producer/single-consumer channel between two
/// pipeline stages. The bound is the pipeline's *backpressure rule*: a
/// producer that gets more than `cap` items ahead of its consumer blocks
/// in [`send`](StageChannel::send), so at most `cap` in-flight items
/// (plus the two being worked on) are ever materialized — the property
/// that keeps a streaming scan's footprint independent of file size.
///
/// Built on `Mutex` + `Condvar` (no crossbeam in the sanctioned
/// dependency set); the morsels flowing through are thousands of rows
/// each, so lock traffic is noise.
pub struct StageChannel<T> {
    inner: Mutex<StageState<T>>,
    /// Signaled when an item is pushed or the producer closes.
    ready: Condvar,
    /// Signaled when an item is popped or the consumer hangs up.
    space: Condvar,
    cap: usize,
}

struct StageState<T> {
    queue: VecDeque<T>,
    /// Producer finished: drain the queue, then `recv` returns `None`.
    closed: bool,
    /// Consumer gone: `send` returns `false` so the producer can stop
    /// early (e.g. a `LIMIT` was satisfied downstream).
    hung_up: bool,
}

impl<T> StageChannel<T> {
    /// A channel admitting at most `cap` queued items (min 1).
    pub fn new(cap: usize) -> StageChannel<T> {
        StageChannel {
            inner: Mutex::new(StageState {
                queue: VecDeque::new(),
                closed: false,
                hung_up: false,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Lock the state, recovering from poison: the mutex is only held
    /// inside this module's short critical sections, so a poisoned lock
    /// means a *peer stage* panicked mid-protocol — the state itself is
    /// still consistent and shutdown must proceed, not double-panic.
    fn lock(&self) -> std::sync::MutexGuard<'_, StageState<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Push an item, blocking while the queue is full. Returns `false`
    /// (dropping the item) if the consumer has hung up — the producer
    /// should stop generating.
    pub fn send(&self, item: T) -> bool {
        let mut st = self.lock();
        while st.queue.len() >= self.cap && !st.hung_up {
            st = self.space.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if st.hung_up {
            return false;
        }
        st.queue.push_back(item);
        drop(st);
        self.ready.notify_one();
        true
    }

    /// Pop the next item, blocking while the queue is empty and the
    /// producer is still running. Returns `None` once the producer has
    /// [`close`](StageChannel::close)d and the queue is drained.
    pub fn recv(&self) -> Option<T> {
        let mut st = self.lock();
        loop {
            if let Some(item) = st.queue.pop_front() {
                drop(st);
                self.space.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Producer side: no more items will be sent. Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Consumer side: stop accepting items (subsequent and blocked
    /// `send`s return `false`). Queued items are dropped. Idempotent.
    pub fn hang_up(&self) {
        let mut st = self.lock();
        st.hung_up = true;
        st.queue.clear();
        drop(st);
        self.space.notify_all();
    }
}

/// Run a two-stage pipeline: `producer` on a scoped worker thread,
/// `consumer` on the calling thread, connected by a bounded
/// [`StageChannel`] of `cap` items. Returns both stages' results once
/// both finish.
///
/// The consumer runs on the caller's thread so it can hold `&mut`
/// state (an engine driving operators downstream of a scan) without
/// `Send` gymnastics. The producer must close the channel when done —
/// typical producers wrap their loop and call
/// [`close`](StageChannel::close) at the end; a consumer that stops
/// early (limit reached, error) should call
/// [`hang_up`](StageChannel::hang_up) so the producer's next `send`
/// returns `false` and it can exit instead of blocking forever.
///
/// Both stages run under `catch_unwind`, and the shutdown protocol runs
/// *unconditionally*: whatever a stage does — return, error out early,
/// or panic — its channel side is released (producer exit closes,
/// consumer exit hangs up), so the peer can never block forever on a
/// bounded queue. A panic in either stage surfaces as
/// [`ColumnarError::WorkerPanic`] after both stages have unwound.
///
/// ```
/// use lafp_columnar::pool::{pipeline, StageChannel};
/// let ((), sum) = pipeline(
///     2,
///     |tx: &StageChannel<i64>| {
///         for v in 1..=100 {
///             if !tx.send(v) {
///                 break;
///             }
///         }
///         tx.close();
///     },
///     |rx| {
///         let mut total = 0;
///         while let Some(v) = rx.recv() {
///             total += v;
///         }
///         total
///     },
/// )
/// .unwrap();
/// assert_eq!(sum, 5050);
/// ```
pub fn pipeline<T, A, B>(
    cap: usize,
    producer: impl FnOnce(&StageChannel<T>) -> A + Send,
    consumer: impl FnOnce(&StageChannel<T>) -> B,
) -> Result<(A, B)>
where
    T: Send,
    A: Send,
{
    let channel = StageChannel::new(cap);
    let (a, b) = std::thread::scope(|scope| {
        let handle = scope.spawn(|| {
            let r = catch_unwind(AssertUnwindSafe(|| {
                stage_inject();
                producer(&channel)
            }));
            // Whether the producer returned or panicked, the consumer
            // must not block on a channel nobody will feed again.
            channel.close();
            r
        });
        let b = catch_unwind(AssertUnwindSafe(|| consumer(&channel)));
        // A consumer that returned early (or panicked) must not strand
        // the producer on a full queue.
        channel.hang_up();
        let a = handle.join().unwrap_or_else(Err);
        (a, b)
    });
    match (a, b) {
        (Ok(a), Ok(b)) => Ok((a, b)),
        (ra, rb) => {
            let mut msgs: Vec<String> = [ra.err(), rb.err()]
                .into_iter()
                .flatten()
                .map(panic_message)
                .collect();
            for _ in &msgs {
                faults::record_panic_isolated();
            }
            Err(ColumnarError::WorkerPanic(if msgs.is_empty() {
                "pipeline stage panicked".to_string()
            } else {
                msgs.swap_remove(0)
            }))
        }
    }
}

/// Run a three-stage pipeline: `producer` and `middle` each on their own
/// scoped worker thread, `consumer` on the calling thread, connected by
/// two bounded [`StageChannel`]s of `cap` items each. This is the
/// multi-stage shape the streaming executor uses for
/// scan → fused-chain transform → accumulate: the parse thread, the
/// operator-chain thread, and the driver all run concurrently, and the
/// two bounds keep the total in-flight footprint at `2 · cap` morsels
/// regardless of file size.
///
/// Shutdown protocol (the part that must not deadlock): every stage
/// runs under `catch_unwind` and releases its channel sides
/// *unconditionally* when it exits — normally, on error, or by panic.
/// The producer's exit closes the upstream channel; the middle stage's
/// exit hangs up upstream (so a blocked producer `send` returns
/// `false`) and closes downstream (so the consumer's `recv` drains and
/// returns `None`); the consumer's exit hangs up downstream. Any stage
/// panic surfaces as [`ColumnarError::WorkerPanic`] after all three
/// stages have unwound — bounded-channel peers never block forever. A
/// middle stage should still mirror a well-behaved producer: forward
/// until `recv` returns `None` or `send` returns `false`, then
/// [`close`](StageChannel::close) its output.
///
/// ```
/// use lafp_columnar::pool::{pipeline3, StageChannel};
/// let ((), (), sum) = pipeline3(
///     2,
///     |tx: &StageChannel<i64>| {
///         for v in 1..=100 {
///             if !tx.send(v) {
///                 break;
///             }
///         }
///         tx.close();
///     },
///     |rx, tx: &StageChannel<i64>| {
///         while let Some(v) = rx.recv() {
///             if !tx.send(v * 2) {
///                 break;
///             }
///         }
///         tx.close();
///     },
///     |rx| {
///         let mut total = 0;
///         while let Some(v) = rx.recv() {
///             total += v;
///         }
///         total
///     },
/// )
/// .unwrap();
/// assert_eq!(sum, 10100);
/// ```
pub fn pipeline3<T, U, A, B, C>(
    cap: usize,
    producer: impl FnOnce(&StageChannel<T>) -> A + Send,
    middle: impl FnOnce(&StageChannel<T>, &StageChannel<U>) -> B + Send,
    consumer: impl FnOnce(&StageChannel<U>) -> C,
) -> Result<(A, B, C)>
where
    T: Send,
    U: Send,
    A: Send,
    B: Send,
{
    let upstream = StageChannel::new(cap);
    let downstream = StageChannel::new(cap);
    let (a, b, c) = std::thread::scope(|scope| {
        let h1 = scope.spawn(|| {
            let r = catch_unwind(AssertUnwindSafe(|| {
                stage_inject();
                producer(&upstream)
            }));
            upstream.close();
            r
        });
        let h2 = scope.spawn(|| {
            let r = catch_unwind(AssertUnwindSafe(|| {
                stage_inject();
                middle(&upstream, &downstream)
            }));
            // A middle stage that stopped — normally or not — must
            // release both neighbors: the producer may be blocked
            // sending upstream, the consumer waiting downstream.
            upstream.hang_up();
            downstream.close();
            r
        });
        let c = catch_unwind(AssertUnwindSafe(|| consumer(&downstream)));
        // Unwind in dependency order (each call is idempotent): free the
        // middle stage first, then the producer.
        downstream.hang_up();
        let b = h2.join().unwrap_or_else(Err);
        upstream.hang_up();
        let a = h1.join().unwrap_or_else(Err);
        (a, b, c)
    });
    match (a, b, c) {
        (Ok(a), Ok(b), Ok(c)) => Ok((a, b, c)),
        (ra, rb, rc) => {
            let mut msgs: Vec<String> = [ra.err(), rb.err(), rc.err()]
                .into_iter()
                .flatten()
                .map(panic_message)
                .collect();
            for _ in &msgs {
                faults::record_panic_isolated();
            }
            Err(ColumnarError::WorkerPanic(if msgs.is_empty() {
                "pipeline stage panicked".to_string()
            } else {
                msgs.swap_remove(0)
            }))
        }
    }
}

/// Split `rows` into contiguous `(start, len)` morsels of at most
/// `morsel` rows, evenly sized (lengths differ by at most one). Empty
/// input yields no morsels.
pub fn morsel_ranges(rows: usize, morsel: usize) -> Vec<(usize, usize)> {
    if rows == 0 {
        return Vec::new();
    }
    let morsel = morsel.max(1);
    let count = rows.div_ceil(morsel);
    let base = rows / count;
    let extra = rows % count;
    let mut out = Vec::with_capacity(count);
    let mut start = 0;
    for i in 0..count {
        let len = base + usize::from(i < extra);
        out.push((start, len));
        start += len;
    }
    out
}

/// Morsels for a kernel run: at most [`MORSEL_ROWS`] rows each, but at
/// least two per worker when the input is big enough to split at all, so
/// the claim queue can balance skew.
pub fn kernel_morsels(rows: usize, threads: usize) -> Vec<(usize, usize)> {
    let target = MORSEL_ROWS.min(rows.div_ceil(2 * threads.max(1)).max(1));
    morsel_ranges(rows, target)
}

/// Split `data` into disjoint mutable chunks aligned to `morsels` (as
/// produced by [`morsel_ranges`] / [`kernel_morsels`]), each paired with
/// its starting row — the item shape parallel fill-in-place kernels
/// [`WorkerPool::map`] over. `morsels` must cover `data` exactly.
pub fn split_mut_chunks<'a, T>(
    data: &'a mut [T],
    morsels: &[(usize, usize)],
) -> Vec<(usize, &'a mut [T])> {
    let mut chunks = Vec::with_capacity(morsels.len());
    let mut rest = data;
    for &(start, len) in morsels {
        let (head, tail) = rest.split_at_mut(len);
        chunks.push((start, head));
        rest = tail;
    }
    debug_assert!(rest.is_empty(), "morsels must cover the slice exactly");
    chunks
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely

    use super::*;

    #[test]
    fn resolve_honors_explicit_request() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn map_preserves_order_and_runs_everything() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..1000).collect();
        let out = pool.map(items, |i, v| {
            assert_eq!(i, v);
            v * 2
        });
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn map_sequential_fallback() {
        let pool = WorkerPool::sequential();
        assert!(!pool.is_parallel());
        let out = pool.map(vec![10, 20], |_, v| v + 1);
        assert_eq!(out, vec![11, 21]);
    }

    #[test]
    fn run_workers_claims_each_task_once() {
        use std::sync::Mutex;
        let pool = WorkerPool::new(4);
        let seen = Mutex::new(vec![0u32; 100]);
        let counts = pool
            .run_workers(100, |q| {
                let mut local = 0usize;
                while let Some(t) = q.claim() {
                    seen.lock().unwrap()[t] += 1;
                    local += 1;
                }
                local
            })
            .unwrap();
        assert_eq!(counts.iter().sum::<usize>(), 100);
        assert!(seen.lock().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn run_workers_zero_tasks_still_returns_one_result() {
        let pool = WorkerPool::new(4);
        let out = pool
            .run_workers(0, |q| {
                assert!(q.claim().is_none());
                7
            })
            .unwrap();
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn try_map_preserves_order() {
        let pool = WorkerPool::new(4);
        let out = pool
            .try_map((0..1000).collect::<Vec<usize>>(), |i, v| {
                assert_eq!(i, v);
                Ok(v * 2)
            })
            .unwrap();
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn try_map_surfaces_first_error() {
        for threads in [1, 4] {
            let pool = WorkerPool::new(threads);
            let err = pool
                .try_map((0..100).collect::<Vec<usize>>(), |_, v| {
                    if v == 57 {
                        Err(ColumnarError::InvalidArgument("morsel 57".into()))
                    } else {
                        Ok(v)
                    }
                })
                .unwrap_err();
            assert!(matches!(err, ColumnarError::InvalidArgument(_)));
        }
    }

    /// One panicking morsel fails the call with a structured error and
    /// the pool is immediately reusable — the core isolation property.
    #[test]
    fn try_map_isolates_worker_panic() {
        for threads in [1, 4] {
            let pool = WorkerPool::new(threads);
            let err = pool
                .try_map((0..100).collect::<Vec<usize>>(), |_, v| {
                    if v == 31 {
                        panic!("poisoned morsel 31");
                    }
                    Ok(v)
                })
                .unwrap_err();
            assert!(
                matches!(err, ColumnarError::WorkerPanic(ref m) if m.contains("poisoned morsel")),
                "got {err:?}"
            );
            // Same pool, next call: fine.
            let ok = pool.try_map(vec![1, 2, 3], |_, v| Ok(v + 1)).unwrap();
            assert_eq!(ok, vec![2, 3, 4]);
        }
    }

    #[test]
    fn run_workers_isolates_worker_panic() {
        let pool = WorkerPool::new(4);
        let err = pool
            .run_workers(100, |q| {
                while let Some(t) = q.claim() {
                    if t == 13 {
                        panic!("worker died on task 13");
                    }
                }
                0usize
            })
            .unwrap_err();
        assert!(matches!(err, ColumnarError::WorkerPanic(_)));
    }

    #[test]
    fn cancelled_pool_fails_fallible_entry_points() {
        let token = CancelToken::new();
        token.cancel();
        let pool = WorkerPool::new(4).with_cancel(token);
        assert!(matches!(
            pool.try_map(vec![1, 2, 3], |_, v| Ok(v)),
            Err(ColumnarError::Cancelled(_))
        ));
        assert!(matches!(
            pool.run_workers(10, |q| {
                while q.claim().is_some() {}
                0usize
            }),
            Err(ColumnarError::Cancelled(_))
        ));
    }

    /// Cancelling mid-run stops the claim queue: workers drain and the
    /// call reports `Cancelled` without executing every task.
    #[test]
    fn cancel_mid_run_stops_claims() {
        let token = CancelToken::new();
        let pool = WorkerPool::new(2).with_cancel(token.clone());
        let executed = AtomicUsize::new(0);
        let err = pool
            .run_workers(1_000_000, |q| {
                while q.claim().is_some() {
                    if executed.fetch_add(1, Ordering::Relaxed) == 10 {
                        token.cancel();
                    }
                }
            })
            .unwrap_err();
        assert!(matches!(err, ColumnarError::Cancelled(_)));
        assert!(
            executed.load(Ordering::Relaxed) < 1_000_000,
            "claims stopped early"
        );
    }

    #[test]
    fn morsel_ranges_cover_exactly() {
        for rows in [0usize, 1, 7, 100, 64 * 1024 + 3] {
            for morsel in [1usize, 10, 64 * 1024] {
                let ranges = morsel_ranges(rows, morsel);
                let mut next = 0;
                for (start, len) in &ranges {
                    assert_eq!(*start, next);
                    assert!(*len >= 1 && *len <= morsel);
                    next += len;
                }
                assert_eq!(next, rows);
            }
        }
    }

    #[test]
    fn kernel_morsels_split_for_workers() {
        let m = kernel_morsels(100_000, 4);
        assert!(m.len() >= 8, "at least two morsels per worker: {}", m.len());
        assert_eq!(m.iter().map(|(_, l)| l).sum::<usize>(), 100_000);
    }

    #[test]
    fn pipeline_streams_in_order() {
        let ((), got) = pipeline(
            4,
            |tx: &StageChannel<usize>| {
                for v in 0..1000 {
                    assert!(tx.send(v), "consumer drains everything");
                }
                tx.close();
            },
            |rx| {
                let mut out = Vec::new();
                while let Some(v) = rx.recv() {
                    out.push(v);
                }
                out
            },
        )
        .unwrap();
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
    }

    /// The bound is the backpressure rule: the producer can never get
    /// more than `cap` items ahead of the consumer.
    #[test]
    fn pipeline_bounds_in_flight_items() {
        let in_flight = AtomicUsize::new(0);
        let max_seen = AtomicUsize::new(0);
        let cap = 3;
        pipeline(
            cap,
            |tx: &StageChannel<()>| {
                for _ in 0..200 {
                    let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                    max_seen.fetch_max(now, Ordering::SeqCst);
                    assert!(tx.send(()));
                }
                tx.close();
            },
            |rx| {
                while rx.recv().is_some() {
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                }
            },
        )
        .unwrap();
        // `cap` queued, plus one item in the producer's pre-send window
        // and one in the consumer's popped-but-not-yet-counted window.
        assert!(
            max_seen.load(Ordering::SeqCst) <= cap + 2,
            "producer ran {} items ahead of a cap-{} channel",
            max_seen.load(Ordering::SeqCst),
            cap
        );
    }

    /// A consumer that stops early (a satisfied LIMIT) must unblock the
    /// producer instead of deadlocking it on a full queue.
    #[test]
    fn pipeline_consumer_hangup_stops_producer() {
        let (sent, got) = pipeline(
            1,
            |tx: &StageChannel<usize>| {
                let mut sent = 0usize;
                for v in 0..1_000_000 {
                    if !tx.send(v) {
                        break;
                    }
                    sent += 1;
                }
                tx.close();
                sent
            },
            |rx| {
                let mut out = Vec::new();
                for _ in 0..5 {
                    match rx.recv() {
                        Some(v) => out.push(v),
                        None => break,
                    }
                }
                rx.hang_up();
                out
            },
        )
        .unwrap();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert!(sent < 1_000_000, "producer stopped early (sent {sent})");
    }

    #[test]
    fn pipeline3_streams_in_order_through_both_channels() {
        let ((), (), got) = pipeline3(
            4,
            |tx: &StageChannel<usize>| {
                for v in 0..1000 {
                    assert!(tx.send(v));
                }
                tx.close();
            },
            |rx, tx: &StageChannel<usize>| {
                while let Some(v) = rx.recv() {
                    if !tx.send(v + 1) {
                        break;
                    }
                }
                tx.close();
            },
            |rx| {
                let mut out = Vec::new();
                while let Some(v) = rx.recv() {
                    out.push(v);
                }
                out
            },
        )
        .unwrap();
        assert_eq!(got, (1..=1000).collect::<Vec<_>>());
    }

    /// A middle stage may drop items (a fused filter chain): the stages
    /// around it must still terminate cleanly.
    #[test]
    fn pipeline3_middle_stage_filters() {
        let ((), kept, sum) = pipeline3(
            2,
            |tx: &StageChannel<usize>| {
                for v in 0..100 {
                    assert!(tx.send(v));
                }
                tx.close();
            },
            |rx, tx: &StageChannel<usize>| {
                let mut kept = 0usize;
                while let Some(v) = rx.recv() {
                    if v % 2 == 0 {
                        kept += 1;
                        if !tx.send(v) {
                            break;
                        }
                    }
                }
                tx.close();
                kept
            },
            |rx| {
                let mut total = 0usize;
                while let Some(v) = rx.recv() {
                    total += v;
                }
                total
            },
        )
        .unwrap();
        assert_eq!(kept, 50);
        assert_eq!(sum, (0..100).filter(|v| v % 2 == 0).sum::<usize>());
    }

    /// A consumer that stops early must unwind both upstream stages
    /// (downstream hang-up stops the middle, upstream hang-up stops the
    /// producer) instead of deadlocking on full queues.
    #[test]
    fn pipeline3_consumer_hangup_unwinds_both_stages() {
        let (sent, forwarded, got) = pipeline3(
            1,
            |tx: &StageChannel<usize>| {
                let mut sent = 0usize;
                for v in 0..1_000_000 {
                    if !tx.send(v) {
                        break;
                    }
                    sent += 1;
                }
                tx.close();
                sent
            },
            |rx, tx: &StageChannel<usize>| {
                let mut forwarded = 0usize;
                while let Some(v) = rx.recv() {
                    if !tx.send(v) {
                        break;
                    }
                    forwarded += 1;
                }
                tx.close();
                forwarded
            },
            |rx| {
                let mut out = Vec::new();
                for _ in 0..5 {
                    match rx.recv() {
                        Some(v) => out.push(v),
                        None => break,
                    }
                }
                rx.hang_up();
                out
            },
        )
        .unwrap();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert!(sent < 1_000_000, "producer stopped early (sent {sent})");
        assert!(forwarded < 1_000_000, "middle stopped early ({forwarded})");
    }

    /// Both channel bounds hold at once: neither stage outruns its
    /// consumer by more than the cap (+ the two in-hand windows).
    #[test]
    fn pipeline3_bounds_in_flight_items() {
        let in_flight = AtomicUsize::new(0);
        let max_seen = AtomicUsize::new(0);
        let cap = 3;
        pipeline3(
            cap,
            |tx: &StageChannel<()>| {
                for _ in 0..200 {
                    let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                    max_seen.fetch_max(now, Ordering::SeqCst);
                    assert!(tx.send(()));
                }
                tx.close();
            },
            |rx, tx: &StageChannel<()>| {
                while let Some(v) = rx.recv() {
                    if !tx.send(v) {
                        break;
                    }
                }
                tx.close();
            },
            |rx| {
                while rx.recv().is_some() {
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                }
            },
        )
        .unwrap();
        // Two cap-bounded queues plus one in-hand item per stage.
        assert!(
            max_seen.load(Ordering::SeqCst) <= 2 * cap + 3,
            "stages ran {} items ahead of two cap-{} channels",
            max_seen.load(Ordering::SeqCst),
            cap
        );
    }

    #[test]
    fn pipeline_empty_producer() {
        let ((), n) = pipeline(
            2,
            |tx: &StageChannel<u8>| tx.close(),
            |rx| {
                let mut n = 0;
                while rx.recv().is_some() {
                    n += 1;
                }
                n
            },
        )
        .unwrap();
        assert_eq!(n, 0);
    }

    /// Satellite regression: a producer that panics mid-stream (without
    /// closing) must not leave the consumer blocked on `recv` — the
    /// unconditional close in the stage wrapper ends the stream, and the
    /// panic surfaces as a structured error. Exercised at cap 1 (full
    /// backpressure) and a wide cap.
    #[test]
    fn pipeline_producer_panic_mid_stream_no_deadlock() {
        for cap in [1usize, 8] {
            let err = pipeline(
                cap,
                |tx: &StageChannel<usize>| {
                    for v in 0..10 {
                        let _ = tx.send(v);
                    }
                    panic!("producer exploded mid-stream");
                },
                |rx| {
                    let mut n = 0usize;
                    while rx.recv().is_some() {
                        n += 1;
                    }
                    n
                },
            )
            .unwrap_err();
            assert!(
                matches!(err, ColumnarError::WorkerPanic(ref m) if m.contains("exploded")),
                "cap {cap}: got {err:?}"
            );
        }
    }

    /// Satellite regression: a consumer that panics mid-stream must not
    /// leave the producer blocked on a full queue — the unconditional
    /// hang-up makes the producer's `send` return `false`.
    #[test]
    fn pipeline_consumer_panic_mid_stream_no_deadlock() {
        for cap in [1usize, 8] {
            let sent = AtomicUsize::new(0);
            let err = pipeline(
                cap,
                |tx: &StageChannel<usize>| {
                    for v in 0..1_000_000 {
                        if !tx.send(v) {
                            break;
                        }
                        sent.fetch_add(1, Ordering::Relaxed);
                    }
                    tx.close();
                },
                |rx| {
                    if rx.recv().is_some() {
                        panic!("consumer bailed");
                    }
                },
            )
            .unwrap_err();
            assert!(
                matches!(err, ColumnarError::WorkerPanic(ref m) if m.contains("bailed")),
                "cap {cap}: got {err:?}"
            );
            assert!(
                sent.load(Ordering::Relaxed) < 1_000_000,
                "cap {cap}: producer stopped early"
            );
        }
    }

    /// Satellite regression: a mid-stream *middle* stage failure must
    /// unwind both directions — the producer unblocks via upstream
    /// hang-up, the consumer drains via downstream close — at cap 1 and
    /// a wide cap.
    #[test]
    fn pipeline3_middle_panic_mid_stream_unwinds_both_directions() {
        for cap in [1usize, 8] {
            let sent = AtomicUsize::new(0);
            let err = pipeline3(
                cap,
                |tx: &StageChannel<usize>| {
                    for v in 0..1_000_000 {
                        if !tx.send(v) {
                            break;
                        }
                        sent.fetch_add(1, Ordering::Relaxed);
                    }
                    tx.close();
                },
                |rx, _tx: &StageChannel<usize>| {
                    if rx.recv().is_some() {
                        panic!("middle stage died");
                    }
                },
                |rx| {
                    let mut n = 0usize;
                    while rx.recv().is_some() {
                        n += 1;
                    }
                    n
                },
            )
            .unwrap_err();
            assert!(
                matches!(err, ColumnarError::WorkerPanic(ref m) if m.contains("middle stage died")),
                "cap {cap}: got {err:?}"
            );
            assert!(
                sent.load(Ordering::Relaxed) < 1_000_000,
                "cap {cap}: producer stopped early"
            );
        }
    }

    /// And the first stage of a 3-stage pipeline: its panic ends the
    /// stream for both downstream stages.
    #[test]
    fn pipeline3_producer_panic_mid_stream_no_deadlock() {
        for cap in [1usize, 8] {
            let err = pipeline3(
                cap,
                |tx: &StageChannel<usize>| {
                    let _ = tx.send(1);
                    panic!("scan failed");
                },
                |rx, tx: &StageChannel<usize>| {
                    while let Some(v) = rx.recv() {
                        if !tx.send(v) {
                            break;
                        }
                    }
                    tx.close();
                },
                |rx| {
                    let mut n = 0usize;
                    while rx.recv().is_some() {
                        n += 1;
                    }
                    n
                },
            )
            .unwrap_err();
            assert!(
                matches!(err, ColumnarError::WorkerPanic(ref m) if m.contains("scan failed")),
                "cap {cap}: got {err:?}"
            );
        }
    }
}
