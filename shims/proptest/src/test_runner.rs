//! The deterministic RNG driving the shim's case generation.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// A splitmix64 RNG seeded from the test name, so every run of a given
/// test draws the same cases and failures reproduce without a seed file.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test's name.
    pub fn from_name(name: &str) -> Self {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        TestRng {
            state: h.finish() | 1,
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[lo, hi)`; returns `lo` when the range is empty.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        lo + (self.next_u64() as usize) % (hi - lo)
    }

    /// Uniform `i128` in `[lo, hi)`. Callers guarantee `lo < hi`.
    pub fn i128_in(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo < hi);
        let span = (hi - lo) as u128;
        lo + ((self.next_u64() as u128) % span) as i128
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn name_seeding_is_stable() {
        let mut a = TestRng::from_name("t");
        let mut b = TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bounds_respected() {
        let mut r = TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = r.usize_in(3, 9);
            assert!((3..9).contains(&v));
            let v = r.i128_in(-5, 5);
            assert!((-5..5).contains(&v));
            let f = r.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
