//! Process-wide spill telemetry.
//!
//! The streaming backend evicts buffered partitions to disk when the
//! simulated memory budget would overflow (see `lafp-columnar`'s
//! `spill` module). These counters record how often and how much, so
//! benchmarks and tests can assert *that* a query spilled (or didn't)
//! without threading instrumentation through every operator. Counters
//! are cumulative atomics; [`SpillStats::reset`] zeroes them between
//! measured runs.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative spill counters. One global instance lives behind
/// [`global`]; engines record into it as they evict and restore.
#[derive(Debug, Default)]
pub struct SpillStats {
    events: AtomicU64,
    spilled_bytes: AtomicU64,
    restored_bytes: AtomicU64,
    files: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpillSnapshot {
    /// Partition evictions (one per frame written to disk).
    pub events: u64,
    /// Simulated heap bytes written out across all evictions.
    pub spilled_bytes: u64,
    /// Simulated heap bytes re-admitted from disk on drain.
    pub restored_bytes: u64,
    /// Spill files created.
    pub files: u64,
}

impl SpillStats {
    /// Record one evicted frame of `bytes` simulated heap.
    pub fn record_spill(&self, bytes: usize) {
        self.events.fetch_add(1, Ordering::Relaxed);
        self.spilled_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record `bytes` re-admitted from disk.
    pub fn record_restore(&self, bytes: usize) {
        self.restored_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record one spill file created.
    pub fn record_file(&self) {
        self.files.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the current counter values.
    pub fn snapshot(&self) -> SpillSnapshot {
        SpillSnapshot {
            events: self.events.load(Ordering::Relaxed),
            spilled_bytes: self.spilled_bytes.load(Ordering::Relaxed),
            restored_bytes: self.restored_bytes.load(Ordering::Relaxed),
            files: self.files.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter (between measured runs).
    pub fn reset(&self) {
        self.events.store(0, Ordering::Relaxed);
        self.spilled_bytes.store(0, Ordering::Relaxed);
        self.restored_bytes.store(0, Ordering::Relaxed);
        self.files.store(0, Ordering::Relaxed);
    }
}

/// The process-wide counters.
pub fn global() -> &'static SpillStats {
    static GLOBAL: SpillStats = SpillStats {
        events: AtomicU64::new(0),
        spilled_bytes: AtomicU64::new(0),
        restored_bytes: AtomicU64::new(0),
        files: AtomicU64::new(0),
    };
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let stats = SpillStats::default();
        stats.record_file();
        stats.record_spill(100);
        stats.record_spill(50);
        stats.record_restore(150);
        assert_eq!(
            stats.snapshot(),
            SpillSnapshot {
                events: 2,
                spilled_bytes: 150,
                restored_bytes: 150,
                files: 1,
            }
        );
        stats.reset();
        assert_eq!(stats.snapshot(), SpillSnapshot::default());
    }

    #[test]
    fn global_is_shared() {
        let before = global().snapshot();
        global().record_spill(7);
        let after = global().snapshot();
        assert_eq!(after.events, before.events + 1);
        assert_eq!(after.spilled_bytes, before.spilled_bytes + 7);
    }
}
