//! Offline shim for the subset of the `criterion` API this workspace uses.
//! The build environment has no crates.io access, so the real crate cannot
//! be fetched. Benches compile unmodified against this shim; running them
//! performs a simple warmup + timed-batch measurement and prints mean
//! wall-clock time per iteration (no statistics, plots, or baselines).

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 50,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    /// Register a benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_one(id, sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim ignores it.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.sample_size, f);
        self
    }

    /// End the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` times the workload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `routine`, keeping results from being
    /// optimized away.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warmup + calibration: find an iteration count that takes ~10ms.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(10);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..sample_size.min(20) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += iters;
    }
    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    println!("  {id}: {}", human_time(mean_ns));
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1e6 {
        format!("{:.2} µs/iter", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms/iter", ns / 1e6)
    } else {
        format!("{:.3} s/iter", ns / 1e9)
    }
}

/// Mirror of `criterion_group!`: bundles bench functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Mirror of `criterion_main!`: emits `fn main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags (e.g. --bench); ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        let mut ran = false;
        g.sample_size(1).bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn human_time_units() {
        assert!(human_time(10.0).contains("ns"));
        assert!(human_time(10_000.0).contains("µs"));
        assert!(human_time(10_000_000.0).contains("ms"));
        assert!(human_time(2e9).contains("s/iter"));
    }
}
