//! Spill-to-disk serialization of frames — the out-of-core substrate.
//!
//! Blocking operators in the streaming (Dask-like) backend buffer whole
//! partition sets: a sort buffers every input partition, a merge buffers
//! its build side, gather buffers the final result. Under a finite
//! simulated memory budget (charged via [`HeapSize`](crate::HeapSize))
//! those buffers are what
//! overflow first, so the backend evicts buffered partitions to disk in
//! this module's format and re-admits them (re-charging the budget) on
//! drain. That turns "dataset larger than the budget" from a hard
//! `OutOfMemory` into a first-class streaming scenario, exactly the
//! situation the paper's Dask backend exists for.
//!
//! ## File layout
//!
//! A spill file is a little-endian binary stream: an 8-byte magic
//! (`LAFPSPL1`), then zero or more frames. Each frame is
//!
//! ```text
//! u64 ncols · u64 nrows
//! per column:
//!   u32 name_len · name bytes (UTF-8)
//!   u8  dtype tag (0 Int64 · 1 Float64 · 2 Bool · 3 Utf8 · 4 Datetime · 5 Categorical)
//!   u8  has_validity; if 1: nrows.div_ceil(64) × u64 bitmap words
//!   payload:
//!     Int64/Datetime  nrows × i64
//!     Float64         nrows × u64   (f64::to_bits — NaN payloads survive bit-identically)
//!     Bool            nrows.div_ceil(64) × u64 bitmap words
//!     Utf8            u64 total_bytes · nrows × u32 row lengths · arena bytes
//!     Categorical     nrows × u32 codes · dict as a Utf8 payload (u64 rows first)
//! ```
//!
//! Utf8 payloads write the column's *used* arena range once
//! ([`Utf8Col::used_bytes`]) plus per-row lengths; restoring validates
//! the buffer as UTF-8 and re-slices on `str` boundaries before pushing
//! through [`Utf8Builder`], so the arena invariant (whole-`&str`
//! concatenation) is re-established by construction, never assumed of
//! the file. Restored frames are value-identical to what was written —
//! bit-identical for every numeric payload including float NaNs.
//!
//! Files are transient: [`SpillFile`] deletes its file on drop, and
//! [`SpillDir`] removes its directories when the owning engine goes away.
//!
//! ## Failure & recovery
//!
//! Spill I/O is the executor's contact surface with a fallible disk, so
//! this module owns the recovery ladder (see `ARCHITECTURE.md`, "Fault
//! model & recovery"):
//!
//! 1. **Retry with bounded backoff** — [`SpillDir::write_with_retry`]
//!    re-runs a failed write on a fresh file (the partial file is always
//!    removed first), [`SpillReader::next_frame`] seeks back to the
//!    frame start and re-reads. Transient faults (including everything
//!    the [`faults`] registry injects) recover here.
//! 2. **Fallback directory** — an ENOSPC-shaped write failure advances
//!    the dir to its next root (`LAFP_SPILL_DIRS`, colon-separated) and
//!    retries there: a full primary disk degrades to a slower spill
//!    volume, not a failed query.
//! 3. **Clean error** — when every root is exhausted the write returns a
//!    structured out-of-memory error (`requested: 0` marks
//!    "spill-to-disk unavailable"): the query fails cleanly with no
//!    temp file leaked and the engine stays usable.

// New `unwrap`/`expect` escapes in the spill path are panics where the
// recovery ladder should run instead — make them visible in review (CI
// elevates to deny).
#![warn(clippy::unwrap_used, clippy::expect_used)]

use crate::bitmap::Bitmap;
use crate::column::{Categorical, Column};
use crate::error::{ColumnarError, Result};
use crate::faults::{self, FaultSite};
use crate::frame::DataFrame;
use crate::series::Series;
use crate::strings::{Utf8Builder, Utf8Col};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"LAFPSPL1";

/// Total write attempts across all roots before degrading to a clean
/// error. Injected transient faults at 5% per operation survive this
/// many redraws with probability ~1e-8 — the chaos CI seeds rely on it.
const WRITE_ATTEMPTS: usize = 6;

/// Re-reads of one frame (after seeking back) before the error is real.
const READ_ATTEMPTS: usize = 4;

/// Backoff between same-root retries, in milliseconds (indexed by
/// attempt, clamped to the last entry). Kept tiny: real transient disk
/// errors clear in microseconds and tests pay this on every injected
/// fault.
const RETRY_BACKOFF_MS: [u64; 3] = [0, 1, 2];

/// Lazily created spill directories for one engine: a primary root plus
/// optional fallbacks. Construction is free (no filesystem touch); each
/// root's directory appears the first time a file path is reserved in it
/// and every created root is removed (best effort) on drop — an engine
/// that never spills never creates anything.
///
/// Writes normally land in the *active* root (initially the primary).
/// When a write fails with an ENOSPC-shaped error,
/// [`write_with_retry`](SpillDir::write_with_retry) advances the active
/// root to the next fallback — configured via the `LAFP_SPILL_DIRS`
/// environment variable (colon-separated directories, each given a
/// process-unique subdirectory) or [`with_fallbacks`](SpillDir::with_fallbacks).
#[derive(Debug)]
pub struct SpillDir {
    roots: Vec<SpillRoot>,
    /// Index of the root new files go to.
    active: AtomicUsize,
    next_file: AtomicU64,
}

#[derive(Debug)]
struct SpillRoot {
    path: PathBuf,
    created: AtomicBool,
}

impl SpillRoot {
    fn at(path: PathBuf) -> SpillRoot {
        SpillRoot {
            path,
            created: AtomicBool::new(false),
        }
    }
}

/// Process-wide uniquifier so two engines in one process never collide.
static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

impl SpillDir {
    /// A spill directory under the system temp dir, unique to this
    /// process and call, with fallback roots from `LAFP_SPILL_DIRS` (a
    /// colon-separated directory list; each entry gets a process-unique
    /// subdirectory).
    pub fn in_temp() -> SpillDir {
        let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
        let unique = |base: &Path| base.join(format!("lafp-spill-{}-{n}", std::process::id()));
        let mut roots = vec![SpillRoot::at(unique(&std::env::temp_dir()))];
        if let Ok(spec) = std::env::var("LAFP_SPILL_DIRS") {
            for dir in spec.split(':').filter(|d| !d.trim().is_empty()) {
                roots.push(SpillRoot::at(unique(Path::new(dir.trim()))));
            }
        }
        SpillDir {
            roots,
            active: AtomicUsize::new(0),
            next_file: AtomicU64::new(0),
        }
    }

    /// A spill directory at an explicit location (created lazily), with
    /// no fallback roots.
    pub fn at(path: PathBuf) -> SpillDir {
        SpillDir {
            roots: vec![SpillRoot::at(path)],
            active: AtomicUsize::new(0),
            next_file: AtomicU64::new(0),
        }
    }

    /// Append explicit fallback roots (tried in order after the primary).
    pub fn with_fallbacks(mut self, fallbacks: impl IntoIterator<Item = PathBuf>) -> SpillDir {
        self.roots.extend(fallbacks.into_iter().map(SpillRoot::at));
        self
    }

    /// Every root's path, primary first — test hooks scan these for
    /// leaked files.
    pub fn root_paths(&self) -> Vec<PathBuf> {
        self.roots.iter().map(|r| r.path.clone()).collect()
    }

    /// Reserve a fresh file path inside the active root, creating its
    /// directory on first use.
    pub fn new_file_path(&self) -> Result<PathBuf> {
        let root = &self.roots[self.active.load(Ordering::Relaxed).min(self.roots.len() - 1)];
        if !root.created.swap(true, Ordering::Relaxed) {
            std::fs::create_dir_all(&root.path).map_err(|e| ColumnarError::Io {
                kind: e.kind(),
                message: format!("{:?}: {e}", root.path),
            })?;
        }
        let n = self.next_file.fetch_add(1, Ordering::Relaxed);
        Ok(root.path.join(format!("part-{n}.spill")))
    }

    /// Advance the active root to the next fallback. Returns `false`
    /// when there is none left (the caller degrades to a clean error).
    fn advance_root(&self) -> bool {
        let cur = self.active.load(Ordering::Relaxed);
        if cur + 1 >= self.roots.len() {
            return false;
        }
        // Racing advancers both move forward at most one root; losing
        // the race just means someone else already advanced.
        let _ = self
            .active
            .compare_exchange(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed);
        true
    }

    /// Run `body` against a fresh [`SpillWriter`], retrying failures
    /// with bounded backoff and advancing to a fallback root on
    /// ENOSPC-shaped errors — the write path of the recovery ladder
    /// (see the module docs). Every failed attempt removes its partial
    /// file before the next one starts; when all attempts are spent the
    /// call degrades to a clean [`ColumnarError::OutOfMemory`] with
    /// `requested: 0` ("spill-to-disk unavailable") carrying no wrong
    /// result and leaking no temp file.
    ///
    /// `body` must be re-runnable: it is called once per attempt against
    /// an empty writer.
    pub fn write_with_retry(
        &self,
        body: impl Fn(&mut SpillWriter) -> Result<()>,
    ) -> Result<SpillFile> {
        let mut fell_back = false;
        for attempt in 0..WRITE_ATTEMPTS {
            let result = self.new_file_path().and_then(|path| {
                let attempt_path = path.clone();
                let run = || -> Result<SpillFile> {
                    let mut w = SpillWriter::create(path)?;
                    body(&mut w)?;
                    w.finish()
                };
                run().inspect_err(|_| {
                    // Never leak a partial file, whatever stage died.
                    let _ = std::fs::remove_file(&attempt_path);
                })
            });
            match result {
                Ok(file) => {
                    if fell_back {
                        faults::record_dir_fallback();
                    } else if attempt > 0 {
                        faults::record_retry_recovered();
                    }
                    return Ok(file);
                }
                Err(e) => {
                    let enospc = matches!(
                        &e,
                        ColumnarError::Io { kind, .. } if *kind == std::io::ErrorKind::StorageFull
                    );
                    if enospc && self.advance_root() {
                        fell_back = true;
                        continue; // fresh root: no backoff needed
                    }
                    if attempt + 1 == WRITE_ATTEMPTS {
                        break;
                    }
                    let ms = RETRY_BACKOFF_MS[attempt.min(RETRY_BACKOFF_MS.len() - 1)];
                    if ms > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(ms));
                    }
                }
            }
        }
        // All roots and retries exhausted: the buffer that wanted to
        // evict cannot free memory, so surface it as the budget running
        // out — `requested: 0` is the "spill-to-disk unavailable" marker.
        Err(ColumnarError::OutOfMemory {
            requested: 0,
            available: 0,
        })
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        for root in &self.roots {
            if root.created.load(Ordering::Relaxed) {
                let _ = std::fs::remove_dir_all(&root.path);
            }
        }
    }
}

/// Writes frames into one spill file. [`finish`](SpillWriter::finish)
/// flushes and hands back the owning [`SpillFile`].
pub struct SpillWriter {
    w: BufWriter<File>,
    path: PathBuf,
    frames: usize,
    payload_bytes: usize,
}

impl SpillWriter {
    /// Create (truncate) the spill file at `path` and write the magic.
    pub fn create(path: PathBuf) -> Result<SpillWriter> {
        inject_spill(FaultSite::SpillWrite, &path)?;
        let file =
            File::create(&path).map_err(|e| ColumnarError::Io { kind: e.kind(), message: format!("{path:?}: {e}") })?;
        let mut w = BufWriter::new(file);
        w.write_all(MAGIC)?;
        Ok(SpillWriter {
            w,
            path,
            frames: 0,
            payload_bytes: 0,
        })
    }

    /// Append one frame.
    pub fn write_frame(&mut self, frame: &DataFrame) -> Result<()> {
        inject_spill(FaultSite::SpillWrite, &self.path)?;
        let nrows = frame.num_rows();
        write_u64(&mut self.w, frame.num_columns() as u64)?;
        write_u64(&mut self.w, nrows as u64)?;
        for s in frame.series() {
            let name = s.name().as_bytes();
            write_u32(&mut self.w, name.len() as u32)?;
            self.w.write_all(name)?;
            write_column(&mut self.w, s.column(), nrows)?;
        }
        self.frames += 1;
        self.payload_bytes += crate::HeapSize::heap_size(frame);
        Ok(())
    }

    /// Flush and seal the file.
    pub fn finish(mut self) -> Result<SpillFile> {
        inject_spill(FaultSite::SpillWrite, &self.path)?;
        self.w.flush()?;
        Ok(SpillFile {
            path: self.path.clone(),
            frames: self.frames,
            payload_bytes: self.payload_bytes,
        })
    }

    /// Abandon the write: drop the buffered writer and remove the
    /// partial file from disk.
    pub fn discard(self) {
        let path = self.path.clone();
        drop(self);
        let _ = std::fs::remove_file(path);
    }
}

/// Fire the registry at a spill site, attaching the file path to the
/// synthetic error.
fn inject_spill(site: FaultSite, path: &Path) -> Result<()> {
    faults::inject_io(site).map_err(|e| ColumnarError::Io {
        kind: e.kind(),
        message: format!("{path:?}: {e}"),
    })
}

/// An owned, sealed spill file; deleted from disk on drop.
#[derive(Debug)]
pub struct SpillFile {
    path: PathBuf,
    frames: usize,
    payload_bytes: usize,
}

impl SpillFile {
    /// Where the file lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Frames written into the file.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Total simulated heap bytes of the frames written (what re-loading
    /// everything would charge against the budget).
    pub fn payload_bytes(&self) -> usize {
        self.payload_bytes
    }

    /// Open the file for reading back.
    pub fn open_reader(&self) -> Result<SpillReader> {
        SpillReader::open(self.path.clone())
    }

    /// Read every frame back (in write order).
    pub fn read_all(&self) -> Result<Vec<DataFrame>> {
        let mut r = self.open_reader()?;
        let mut out = Vec::with_capacity(self.frames);
        while let Some(f) = r.next_frame()? {
            out.push(f);
        }
        Ok(out)
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Convenience: write a single frame into a fresh file in `dir`,
/// through the full retry/fallback ladder.
pub fn spill_frame(dir: &SpillDir, frame: &DataFrame) -> Result<SpillFile> {
    dir.write_with_retry(|w| w.write_frame(frame))
}

/// Streams frames back out of a spill file in write order.
///
/// Reads are retried: a frame that fails mid-read seeks back to the
/// frame boundary and re-reads (up to a small bound), so transient read
/// faults — including everything the registry injects — recover
/// transparently, while real corruption fails every attempt and surfaces
/// as the structured error.
#[derive(Debug)]
pub struct SpillReader {
    r: BufReader<File>,
    path: PathBuf,
}

impl SpillReader {
    fn open(path: PathBuf) -> Result<SpillReader> {
        let mut last = None;
        for attempt in 0..READ_ATTEMPTS {
            match Self::open_once(&path) {
                Ok(r) => {
                    if attempt > 0 {
                        faults::record_retry_recovered();
                    }
                    return Ok(r);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| corrupt(&path, "unreachable: no open attempt ran")))
    }

    fn open_once(path: &Path) -> Result<SpillReader> {
        inject_spill(FaultSite::SpillRead, path)?;
        let file = File::open(path)
            .map_err(|e| ColumnarError::Io { kind: e.kind(), message: format!("{path:?}: {e}") })?;
        let mut r = BufReader::new(file);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)
            .map_err(|e| ColumnarError::Io { kind: e.kind(), message: format!("{path:?}: {e}") })?;
        if &magic != MAGIC {
            return Err(corrupt(path, "bad magic"));
        }
        Ok(SpillReader {
            r,
            path: path.to_path_buf(),
        })
    }

    /// The next frame, or `None` at end of file. Retries a failed read
    /// from the frame boundary (see the type docs).
    pub fn next_frame(&mut self) -> Result<Option<DataFrame>> {
        let start = self.r.stream_position()?;
        let mut last = None;
        for attempt in 0..READ_ATTEMPTS {
            match self.read_frame_once() {
                Ok(frame) => {
                    if attempt > 0 {
                        faults::record_retry_recovered();
                    }
                    return Ok(frame);
                }
                Err(e) => {
                    last = Some(e);
                    self.r.seek(SeekFrom::Start(start))?;
                }
            }
        }
        Err(last.unwrap_or_else(|| corrupt(&self.path, "unreachable: no read attempt ran")))
    }

    fn read_frame_once(&mut self) -> Result<Option<DataFrame>> {
        inject_spill(FaultSite::SpillRead, &self.path)?;
        let ncols = match try_read_u64(&mut self.r)? {
            Some(n) => n as usize,
            None => return Ok(None),
        };
        let nrows = read_u64(&mut self.r)? as usize;
        let mut series = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let name_len = read_u32(&mut self.r)? as usize;
            let mut name = vec![0u8; name_len];
            self.r.read_exact(&mut name)?;
            let name = String::from_utf8(name)
                .map_err(|_| corrupt(&self.path, "column name not UTF-8"))?;
            let col = read_column(&mut self.r, nrows, &self.path)?;
            series.push(Series::new(name, col));
        }
        Ok(Some(DataFrame::new(series)?))
    }
}

fn corrupt(path: &Path, what: &str) -> ColumnarError {
    ColumnarError::Io {
        kind: std::io::ErrorKind::InvalidData,
        message: format!("{path:?}: corrupt spill file ({what})"),
    }
}

// --- primitive I/O helpers (all little-endian) -----------------------------

fn write_u32(w: &mut impl Write, v: u32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> std::io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> std::io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Read a `u64`, mapping a clean EOF at the first byte to `None` (the
/// frame-boundary sentinel).
fn try_read_u64(r: &mut impl Read) -> std::io::Result<Option<u64>> {
    let mut b = [0u8; 8];
    let mut filled = 0;
    while filled < 8 {
        let n = r.read(&mut b[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "truncated frame header",
            ));
        }
        filled += n;
    }
    Ok(Some(u64::from_le_bytes(b)))
}

fn write_i64_slice(w: &mut impl Write, data: &[i64]) -> std::io::Result<()> {
    for &v in data {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_i64_vec(r: &mut impl Read, n: usize) -> std::io::Result<Vec<i64>> {
    let mut out = Vec::with_capacity(n);
    let mut b = [0u8; 8];
    for _ in 0..n {
        r.read_exact(&mut b)?;
        out.push(i64::from_le_bytes(b));
    }
    Ok(out)
}

fn write_bitmap(w: &mut impl Write, bm: &Bitmap) -> std::io::Result<()> {
    for &word in bm.as_words() {
        w.write_all(&word.to_le_bytes())?;
    }
    Ok(())
}

fn read_bitmap(r: &mut impl Read, len: usize) -> std::io::Result<Bitmap> {
    let nwords = len.div_ceil(64);
    let mut words = Vec::with_capacity(nwords);
    let mut b = [0u8; 8];
    for _ in 0..nwords {
        r.read_exact(&mut b)?;
        words.push(u64::from_le_bytes(b));
    }
    Ok(Bitmap::from_words(words, len))
}

// --- column payloads -------------------------------------------------------

fn dtype_tag(col: &Column) -> u8 {
    match col {
        Column::Int64(..) => 0,
        Column::Float64(..) => 1,
        Column::Bool(..) => 2,
        Column::Utf8(..) => 3,
        Column::Datetime(..) => 4,
        Column::Categorical(..) => 5,
        Column::Dict(..) => 6,
        Column::Rle(..) => 7,
    }
}

fn write_column(w: &mut impl Write, col: &Column, nrows: usize) -> Result<()> {
    w.write_all(&[dtype_tag(col)])?;
    let validity = col.validity();
    w.write_all(&[validity.is_some() as u8])?;
    if let Some(v) = validity {
        write_bitmap(w, v)?;
    }
    match col {
        Column::Int64(d, _) | Column::Datetime(d, _) => write_i64_slice(w, d)?,
        Column::Float64(d, _) => {
            for &v in d {
                w.write_all(&v.to_bits().to_le_bytes())?;
            }
        }
        Column::Bool(d, _) => write_bitmap(w, d)?,
        Column::Utf8(d, _) => write_utf8(w, d)?,
        // Dict shares the Categorical payload shape (codes + dict once)
        // under its own tag, so encoded columns spill their compressed
        // form — the dictionary is written once, not a string per row.
        Column::Categorical(c, _) | Column::Dict(c, _) => {
            for &code in &c.codes {
                write_u32(w, code)?;
            }
            write_u64(w, c.dict.len() as u64)?;
            write_utf8(w, &c.dict)?;
        }
        // Runs spill as-is: the run-value column (recursively, with one
        // row per run) followed by the u32 run ends.
        Column::Rle(r) => {
            write_u64(w, r.num_runs() as u64)?;
            write_column(w, &r.values, r.num_runs())?;
            for &end in &r.ends {
                write_u32(w, end)?;
            }
        }
    }
    debug_assert_eq!(col.len(), nrows);
    Ok(())
}

fn write_utf8(w: &mut impl Write, col: &Utf8Col) -> Result<()> {
    write_u64(w, col.value_bytes() as u64)?;
    for i in 0..col.len() {
        let len = col.len_at(i);
        let len32 = u32::try_from(len).map_err(|_| {
            ColumnarError::InvalidArgument(format!("spill: string row of {len} bytes"))
        })?;
        write_u32(w, len32)?;
    }
    w.write_all(col.used_bytes())?;
    Ok(())
}

fn read_column(r: &mut impl Read, nrows: usize, path: &Path) -> Result<Column> {
    let mut tag = [0u8; 2];
    r.read_exact(&mut tag)?;
    let [dtype, has_validity] = tag;
    let validity = if has_validity == 1 {
        Some(read_bitmap(r, nrows)?)
    } else if has_validity == 0 {
        None
    } else {
        return Err(corrupt(path, "bad validity flag"));
    };
    let col = match dtype {
        0 => Column::Int64(read_i64_vec(r, nrows)?, validity),
        1 => {
            let mut out = Vec::with_capacity(nrows);
            let mut b = [0u8; 8];
            for _ in 0..nrows {
                r.read_exact(&mut b)?;
                out.push(f64::from_bits(u64::from_le_bytes(b)));
            }
            Column::Float64(out, validity)
        }
        2 => Column::Bool(read_bitmap(r, nrows)?, validity),
        3 => Column::Utf8(read_utf8(r, nrows, path)?, validity),
        4 => Column::Datetime(read_i64_vec(r, nrows)?, validity),
        5 | 6 => {
            let mut codes = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                codes.push(read_u32(r)?);
            }
            let dict_rows = read_u64(r)? as usize;
            let dict = read_utf8(r, dict_rows, path)?;
            if codes.iter().any(|&c| c as usize >= dict_rows.max(1)) {
                return Err(corrupt(path, "categorical code out of range"));
            }
            let payload = Categorical {
                codes,
                dict: Arc::new(dict),
            };
            if dtype == 5 {
                Column::Categorical(payload, validity)
            } else {
                Column::Dict(payload, validity)
            }
        }
        7 => {
            if validity.is_some() {
                return Err(corrupt(path, "run-length column with row validity"));
            }
            let nruns = read_u64(r)? as usize;
            if nruns > nrows {
                return Err(corrupt(path, "more runs than rows"));
            }
            let values = read_column(r, nruns, path)?;
            let mut ends = Vec::with_capacity(nruns);
            let mut prev = 0u32;
            for _ in 0..nruns {
                let end = read_u32(r)?;
                if end <= prev {
                    return Err(corrupt(path, "run ends not increasing"));
                }
                prev = end;
                ends.push(end);
            }
            if ends.last().copied().unwrap_or(0) as usize != nrows {
                return Err(corrupt(path, "run ends disagree with row count"));
            }
            Column::Rle(crate::column::RleCol {
                values: Box::new(values),
                ends,
            })
        }
        _ => return Err(corrupt(path, "unknown dtype tag")),
    };
    if col.len() != nrows {
        return Err(corrupt(path, "column length mismatch"));
    }
    Ok(col)
}

fn read_utf8(r: &mut impl Read, nrows: usize, path: &Path) -> Result<Utf8Col> {
    let total = read_u64(r)? as usize;
    let mut lens = Vec::with_capacity(nrows);
    let mut sum = 0usize;
    for _ in 0..nrows {
        let len = read_u32(r)? as usize;
        sum = sum
            .checked_add(len)
            .ok_or_else(|| corrupt(path, "string lengths overflow"))?;
        lens.push(len);
    }
    if sum != total {
        return Err(corrupt(path, "string lengths disagree with arena size"));
    }
    let mut bytes = vec![0u8; total];
    r.read_exact(&mut bytes)?;
    // Validate once, then re-slice on char boundaries: the builder only
    // ever appends whole `&str` values, so the arena invariant the
    // unsafe fast path in `Utf8Col::get` relies on is re-established by
    // construction — a corrupt file fails here instead of later.
    let text =
        std::str::from_utf8(&bytes).map_err(|_| corrupt(path, "string payload not UTF-8"))?;
    let mut b = Utf8Builder::with_capacity(nrows, total);
    let mut pos = 0usize;
    for len in lens {
        let row = text
            .get(pos..pos + len)
            .ok_or_else(|| corrupt(path, "string row splits a UTF-8 sequence"))?;
        b.push(row);
        pos += len;
    }
    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely

    use super::*;
    use crate::column::Column;
    use crate::df;

    fn temp_dir() -> SpillDir {
        SpillDir::in_temp()
    }

    fn opt_bool(values: Vec<Option<bool>>) -> Column {
        let data: Vec<bool> = values.iter().map(|v| v.unwrap_or(false)).collect();
        let valid: Vec<bool> = values.iter().map(|v| v.is_some()).collect();
        Column::Bool(
            Bitmap::from_bools(&data),
            Some(Bitmap::from_bools(&valid)),
        )
    }

    fn opt_strings(values: Vec<Option<&str>>) -> Column {
        Column::from_opt_strings(values.into_iter().map(|o| o.map(String::from)).collect())
    }

    fn all_dtypes_frame() -> DataFrame {
        let cat = Column::from_strings(vec!["red", "green", "red", "blue"])
            .to_categorical()
            .unwrap();
        df![
            ("i", Column::from_opt_i64(vec![Some(-5), None, Some(i64::MAX), Some(0)])),
            (
                "f",
                Column::from_opt_f64(vec![Some(1.5), Some(-0.0), None, Some(f64::INFINITY)])
            ),
            (
                "b",
                opt_bool(vec![Some(true), Some(false), None, Some(true)])
            ),
            (
                "s",
                opt_strings(vec![Some("plain"), None, Some("emb\0nul"), Some("ünïcode")])
            ),
            ("d", Column::from_datetimes(vec![0, 86_400, -1, 1_700_000_000])),
            ("c", cat),
        ]
    }

    #[test]
    fn round_trip_all_dtypes() {
        let dir = temp_dir();
        let frame = all_dtypes_frame();
        let file = spill_frame(&dir, &frame).unwrap();
        assert_eq!(file.frames(), 1);
        let back = file.read_all().unwrap();
        assert_eq!(back.len(), 1);
        // The masked float slot holds NaN, which defeats whole-frame
        // PartialEq — compare the float column by bits, the rest directly.
        for name in ["i", "b", "s", "d", "c"] {
            assert_eq!(back[0].column(name).unwrap(), frame.column(name).unwrap());
        }
        assert_float_bits_eq(frame.column("f").unwrap(), back[0].column("f").unwrap());
        assert_eq!(
            back[0].column("c").unwrap().dtype(),
            crate::dtype::DType::Categorical
        );
    }

    fn assert_float_bits_eq(a: &Series, b: &Series) {
        let (Column::Float64(av, avm), Column::Float64(bv, bvm)) = (a.column(), b.column())
        else {
            panic!("expected float columns");
        };
        assert_eq!(avm, bvm, "float validity");
        assert_eq!(av.len(), bv.len());
        for (x, y) in av.iter().zip(bv) {
            assert_eq!(x.to_bits(), y.to_bits(), "bit-identical restore");
        }
    }

    #[test]
    fn float_nan_payloads_are_bit_identical() {
        let dir = temp_dir();
        // A NaN with a non-default payload and both zero signs.
        let weird = f64::from_bits(0x7ff8_0000_dead_beef);
        let frame = df![("f", Column::from_f64(vec![weird, -0.0, 0.0, f64::NEG_INFINITY]))];
        let file = spill_frame(&dir, &frame).unwrap();
        let back = &file.read_all().unwrap()[0];
        let Column::Float64(vals, _) = back.column("f").unwrap().column() else {
            panic!("dtype changed");
        };
        let Column::Float64(orig, _) = frame.column("f").unwrap().column() else {
            unreachable!();
        };
        for (a, b) in orig.iter().zip(vals) {
            assert_eq!(a.to_bits(), b.to_bits(), "bit-identical restore");
        }
    }

    #[test]
    fn multiple_frames_stream_in_order() {
        let dir = temp_dir();
        let mut w = SpillWriter::create(dir.new_file_path().unwrap()).unwrap();
        let frames: Vec<DataFrame> = (0..5)
            .map(|k| df![("v", Column::from_i64(vec![k, k + 1, k + 2]))])
            .collect();
        for f in &frames {
            w.write_frame(f).unwrap();
        }
        let file = w.finish().unwrap();
        assert_eq!(file.frames(), 5);
        let mut r = file.open_reader().unwrap();
        for f in &frames {
            assert_eq!(&r.next_frame().unwrap().unwrap(), f);
        }
        assert!(r.next_frame().unwrap().is_none());
    }

    #[test]
    fn empty_and_zero_row_frames() {
        let dir = temp_dir();
        let frame = df![("v", Column::from_i64(Vec::new()))];
        let file = spill_frame(&dir, &frame).unwrap();
        let back = file.read_all().unwrap();
        assert_eq!(back[0].shape(), (0, 1));
    }

    #[test]
    fn spill_file_removed_on_drop() {
        let dir = temp_dir();
        let frame = df![("v", Column::from_i64(vec![1]))];
        let file = spill_frame(&dir, &frame).unwrap();
        let path = file.path().to_path_buf();
        assert!(path.exists());
        drop(file);
        assert!(!path.exists(), "spill file must be deleted on drop");
    }

    #[test]
    fn corrupt_magic_rejected() {
        let dir = temp_dir();
        let path = dir.new_file_path().unwrap();
        std::fs::write(&path, b"NOTSPILL????").unwrap();
        let err = SpillReader::open(path).unwrap_err();
        assert!(err.to_string().contains("corrupt"));
    }

    /// Randomized property test: many shapes per dtype (validity
    /// patterns, empty strings, NUL bytes, duplicated categories)
    /// round-trip value-identically.
    #[test]
    fn property_round_trip_randomized() {
        // Tiny deterministic LCG — no external rand crate.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let dir = temp_dir();
        for case in 0..25 {
            let rows = next() % 70;
            let ints: Vec<Option<i64>> = (0..rows)
                .map(|_| (next() % 4 != 0).then(|| next() as i64 - (i64::MAX / 2)))
                .collect();
            let floats: Vec<Option<f64>> = (0..rows)
                .map(|_| match next() % 5 {
                    0 => None,
                    1 => Some(f64::from_bits(next() as u64 | 0x3ff0_0000_0000_0000)),
                    _ => Some(next() as f64 / 7.0),
                })
                .collect();
            let strings: Vec<Option<String>> = (0..rows)
                .map(|_| match next() % 6 {
                    0 => None,
                    1 => Some(String::new()),
                    2 => Some(format!("nul\0{}", next() % 100)),
                    3 => Some("ü".repeat(next() % 9)),
                    _ => Some(format!("value-{}", next() % 1000)),
                })
                .collect();
            let cats: Vec<&str> = (0..rows)
                .map(|_| ["a", "bb", "ccc", ""][next() % 4])
                .collect();
            let bools: Vec<Option<bool>> = (0..rows)
                .map(|_| (next() % 3 != 0).then(|| next() % 2 == 0))
                .collect();
            let frame = df![
                ("i", Column::from_opt_i64(ints)),
                ("f", Column::from_opt_f64(floats.clone())),
                ("s", Column::from_opt_strings(strings.clone())),
                ("c", Column::from_strings(cats).to_categorical().unwrap()),
                ("b", opt_bool(bools)),
            ];
            let file = spill_frame(&dir, &frame).unwrap();
            let back = &file.read_all().unwrap()[0];
            // Float NaN defeats PartialEq; compare floats by bits and
            // the rest structurally.
            for name in ["i", "s", "c", "b"] {
                assert_eq!(
                    back.column(name).unwrap(),
                    frame.column(name).unwrap(),
                    "case {case} column {name}"
                );
            }
            let (Column::Float64(a, va), Column::Float64(b, vb)) = (
                frame.column("f").unwrap().column(),
                back.column("f").unwrap().column(),
            ) else {
                panic!("float column changed dtype");
            };
            assert_eq!(va, vb, "case {case} float validity");
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "case {case} float bits");
            }
        }
    }
}
