//! Offline shim for the subset of the `rand` 0.8 API this workspace uses:
//! `StdRng::seed_from_u64`, `Rng::gen_range` over integer/float ranges,
//! `Rng::gen_bool`. The build environment has no crates.io access, so the
//! real crate cannot be fetched.
//!
//! The generator is splitmix64 — statistically fine for benchmark data
//! generation, NOT cryptographic. Sequences are stable across runs and
//! platforms, which is what the seeded dataset generators require.

#![warn(missing_docs)]

/// Concrete RNG types, mirroring `rand::rngs`.
pub mod rngs {
    /// A deterministic 64-bit RNG (splitmix64 core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl StdRng {
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Seeding constructors, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build an RNG whose sequence is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng { state: seed }
    }
}

/// Uniform-range sampling support, mirroring `rand::distributions::uniform`.
pub mod distributions {
    /// Uniform sampling traits.
    pub mod uniform {
        use crate::Rng;

        /// A range that can produce a uniformly distributed `T`.
        pub trait SampleRange<T> {
            /// Draw one sample from `rng`.
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for std::ops::Range<$t> {
                    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty gen_range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let v = (rng.next_u64() as u128) % span;
                        (self.start as i128 + v as i128) as $t
                    }
                }
                impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
                    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(start <= end, "empty gen_range");
                        let span = (end as i128 - start as i128) as u128 + 1;
                        let v = (rng.next_u64() as u128) % span;
                        (start as i128 + v as i128) as $t
                    }
                }
            )*};
        }
        int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

        macro_rules! float_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for std::ops::Range<$t> {
                    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty gen_range");
                        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                        self.start + (self.end - self.start) * unit as $t
                    }
                }
            )*};
        }
        float_range!(f64);

        impl SampleRange<f32> for std::ops::Range<f32> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
                assert!(self.start < self.end, "empty gen_range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (self.end - self.start) * unit as f32
            }
        }
    }
}

/// The user-facing RNG trait, mirroring `rand::Rng`.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_sequence() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: i64 = r.gen_range(-5..7);
            assert!((-5..7).contains(&v));
            let v: u64 = r.gen_range(3..=9);
            assert!((3..=9).contains(&v));
            let f: f64 = r.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn int_range_hits_all_values() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
