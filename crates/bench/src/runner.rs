//! Running one experiment cell: (program, configuration, size).

use crate::datagen::Size;
use crate::programs::Program;
use lafp_backends::BackendKind;
use lafp_core::optimizer::OptimizerFlags;
use lafp_core::LafpConfig;
use lafp_interp::{result_hash, ExecMode, Interp};
use lafp_rewrite::{analyze, RewriteOptions};
use std::path::Path;
use std::time::{Duration, Instant};

/// The six configurations of §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Config {
    /// Plain eager Pandas baseline.
    Pandas,
    /// LaFP (rewritten) on the Pandas backend.
    LPandas,
    /// Plain eager Modin baseline.
    Modin,
    /// LaFP on the Modin backend.
    LModin,
    /// Manually-ported Dask baseline.
    Dask,
    /// LaFP on the Dask backend.
    LDask,
}

impl Config {
    /// All configurations in the paper's column order (Figure 12).
    pub const ALL: [Config; 6] = [
        Config::Pandas,
        Config::LPandas,
        Config::Modin,
        Config::LModin,
        Config::Dask,
        Config::LDask,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Config::Pandas => "Pandas",
            Config::LPandas => "LPandas",
            Config::Modin => "Modin",
            Config::LModin => "LModin",
            Config::Dask => "Dask",
            Config::LDask => "LDask",
        }
    }

    /// Is this a LaFP (optimized) configuration?
    pub fn is_lafp(self) -> bool {
        matches!(self, Config::LPandas | Config::LModin | Config::LDask)
    }

    /// The baseline this LaFP configuration is compared against (Fig. 14/15).
    pub fn baseline(self) -> Config {
        match self {
            Config::LPandas => Config::Pandas,
            Config::LModin => Config::Modin,
            Config::LDask => Config::Dask,
            other => other,
        }
    }

    fn backend(self) -> BackendKind {
        match self {
            Config::Pandas | Config::LPandas => BackendKind::Pandas,
            Config::Modin | Config::LModin => BackendKind::Modin,
            Config::Dask | Config::LDask => BackendKind::Dask,
        }
    }
}

/// Result of one cell.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Completed without (simulated) OOM or other error.
    pub ok: bool,
    /// Error rendering when `!ok`.
    pub error: Option<String>,
    /// End-to-end execution wall time (excludes data generation; includes
    /// the JIT analysis for LaFP configs, like the paper's end-to-end
    /// numbers).
    pub wall: Duration,
    /// JIT static analysis + rewrite time (LaFP configs only; §5.3).
    pub analysis: Option<Duration>,
    /// Peak simulated memory in bytes.
    pub peak_memory: usize,
    /// Order-insensitive hash of the printed output (§5.2 regression).
    pub output_hash: u64,
    /// Number of print outputs produced.
    pub outputs: usize,
}

/// Extra knobs for ablations.
#[derive(Debug, Clone)]
pub struct RunKnobs {
    /// Disable §3.5 common-reuse persistence (the `stu` ablation).
    pub disable_caching: bool,
    /// Disable §3.1 column selection.
    pub disable_column_selection: bool,
    /// Disable §3.3 lazy print.
    pub disable_lazy_print: bool,
    /// Memory budget override (`None` = the scaled 32 GB).
    pub budget: Option<usize>,
    /// Consult the metastore at runtime (§3.6).
    pub use_metadata: bool,
}

impl Default for RunKnobs {
    fn default() -> Self {
        RunKnobs {
            disable_caching: false,
            disable_column_selection: false,
            disable_lazy_print: false,
            budget: None,
            use_metadata: true,
        }
    }
}

/// Run one (program, config) cell against datasets in `data_dir`.
pub fn run_cell(
    program: &Program,
    config: Config,
    data_dir: &Path,
    knobs: &RunKnobs,
) -> RunResult {
    let budget = knobs.budget.unwrap_or(Size::MEMORY_BUDGET);
    let lafp_config = LafpConfig {
        backend: config.backend(),
        memory_budget: budget,
        threads: 6, // the paper's hexa-core machine
        chunk_rows: 0,
        optimizer: OptimizerFlags {
            common_reuse: !knobs.disable_caching,
            ..Default::default()
        },
        use_metadata: knobs.use_metadata && config.is_lafp(),
        print_rows: 5,
    };
    let started = Instant::now();
    let (ast, analysis) = if config.is_lafp() {
        let opts = RewriteOptions {
            column_selection: !knobs.disable_column_selection,
            lazy_print: !knobs.disable_lazy_print,
            forced_compute: true,
            metadata_dtypes: knobs.use_metadata,
            data_dir: Some(data_dir.to_path_buf()),
        };
        match analyze(program.source, &opts) {
            Ok(analyzed) => (analyzed.ast, Some(analyzed.report.duration)),
            Err(e) => {
                return RunResult {
                    ok: false,
                    error: Some(e.to_string()),
                    wall: started.elapsed(),
                    analysis: None,
                    peak_memory: 0,
                    output_hash: 0,
                    outputs: 0,
                }
            }
        }
    } else {
        match lafp_ir::parser::parse(program.source) {
            Ok(ast) => (ast, None),
            Err(e) => {
                return RunResult {
                    ok: false,
                    error: Some(e.to_string()),
                    wall: started.elapsed(),
                    analysis: None,
                    peak_memory: 0,
                    output_hash: 0,
                    outputs: 0,
                }
            }
        }
    };
    let mode = if config.is_lafp() {
        ExecMode::Lafp
    } else {
        match config.backend() {
            BackendKind::Dask => ExecMode::PlainDask,
            kind => ExecMode::Eager(kind),
        }
    };
    let mut interp = Interp::new(mode, lafp_config, data_dir.to_path_buf());
    match interp.run(&ast) {
        Ok(outcome) => RunResult {
            ok: true,
            error: None,
            wall: started.elapsed(),
            analysis,
            peak_memory: outcome.peak_memory,
            output_hash: result_hash(&outcome.output),
            outputs: outcome.output.len(),
        },
        Err(e) => RunResult {
            ok: false,
            error: Some(e.to_string()),
            wall: started.elapsed(),
            analysis,
            peak_memory: interp.tracker().peak(),
            output_hash: 0,
            outputs: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{ensure_datasets, Size};
    use crate::programs::program;

    fn small_dir() -> std::path::PathBuf {
        let root = std::env::temp_dir().join("lafp-runner-tests-data");
        ensure_datasets(&root, Size::Small).unwrap()
    }

    #[test]
    fn nyt_runs_and_agrees_on_all_configs() {
        let dir = small_dir();
        let p = program("nyt").unwrap();
        let knobs = RunKnobs {
            budget: Some(usize::MAX),
            use_metadata: false,
            ..Default::default()
        };
        let baseline = run_cell(&p, Config::Pandas, &dir, &knobs);
        assert!(baseline.ok, "{:?}", baseline.error);
        assert!(baseline.outputs > 0);
        for config in Config::ALL {
            let r = run_cell(&p, config, &dir, &knobs);
            assert!(r.ok, "{}: {:?}", config.label(), r.error);
            assert_eq!(
                r.output_hash,
                baseline.output_hash,
                "{} must match pandas",
                config.label()
            );
            if config.is_lafp() {
                assert!(r.analysis.is_some());
            }
        }
    }

    #[test]
    fn lafp_uses_less_memory_on_projection_programs() {
        let dir = small_dir();
        let p = program("ais").unwrap();
        let knobs = RunKnobs {
            budget: Some(usize::MAX),
            use_metadata: false,
            ..Default::default()
        };
        let plain = run_cell(&p, Config::Pandas, &dir, &knobs);
        let lafp = run_cell(&p, Config::LPandas, &dir, &knobs);
        assert!(plain.ok && lafp.ok);
        assert!(
            (lafp.peak_memory as f64) < 0.6 * plain.peak_memory as f64,
            "column selection: {} vs {}",
            lafp.peak_memory,
            plain.peak_memory
        );
    }
}
