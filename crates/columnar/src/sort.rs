//! Multi-key sorting (pandas `sort_values`).
//!
//! The argsort is typed end to end: each key column is matched to a
//! borrowed view once, nulls are handled via the validity mask (floats
//! additionally treat NaN as null), and the comparators run over raw
//! `i64`/`f64`/`Arc<str>` slices. No [`Scalar`] is boxed per row — the
//! seed implementation materialized a `Vec<Scalar>` per key column and
//! dispatched `cmp_values` per comparison, which dominated the sort's
//! cost. A single-key sort takes a fast path that sorts indices directly
//! against one slice; `nlargest`/`nsmallest` use a partial
//! `select_nth_unstable`-based top-n instead of sorting the whole frame.

use crate::bitmap::Bitmap;
use crate::column::{Categorical, Column};
use crate::error::Result;
use crate::frame::DataFrame;
use std::cmp::Ordering;
use std::sync::Arc;

/// Options for a `sort_values` call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortOptions {
    /// Key column names, highest priority first.
    pub by: Vec<String>,
    /// Per-key ascending flags; a single flag is broadcast over all keys.
    pub ascending: Vec<bool>,
}

impl SortOptions {
    /// Ascending sort on the given keys.
    pub fn ascending(by: Vec<String>) -> SortOptions {
        let n = by.len();
        SortOptions {
            by,
            ascending: vec![true; n],
        }
    }

    /// Single-key sort with a direction.
    pub fn single(key: impl Into<String>, ascending: bool) -> SortOptions {
        SortOptions {
            by: vec![key.into()],
            ascending: vec![ascending],
        }
    }

    fn dir(&self, k: usize) -> bool {
        self.ascending.get(k).copied().unwrap_or(
            self.ascending.first().copied().unwrap_or(true),
        )
    }
}

/// A borrowed typed view of one sort key column plus its direction.
/// Matched once per sort so every comparison runs over raw buffers.
struct SortKey<'a> {
    view: KeyData<'a>,
    validity: Option<&'a Bitmap>,
    ascending: bool,
}

enum KeyData<'a> {
    /// Int64 and Datetime both order by the raw `i64`.
    I64(&'a [i64]),
    F64(&'a [f64]),
    Bool(&'a Bitmap),
    Str(&'a [Arc<str>]),
    Cat(&'a Categorical),
}

impl<'a> SortKey<'a> {
    fn new(col: &'a Column, ascending: bool) -> SortKey<'a> {
        let (view, validity) = match col {
            Column::Int64(d, v) | Column::Datetime(d, v) => (KeyData::I64(d), v.as_ref()),
            Column::Float64(d, v) => (KeyData::F64(d), v.as_ref()),
            Column::Bool(d, v) => (KeyData::Bool(d), v.as_ref()),
            Column::Utf8(d, v) => (KeyData::Str(d), v.as_ref()),
            Column::Categorical(c, v) => (KeyData::Cat(c), v.as_ref()),
        };
        SortKey {
            view,
            validity,
            ascending,
        }
    }

    #[inline]
    fn is_null(&self, i: usize) -> bool {
        if self.validity.is_some_and(|m| !m.get(i)) {
            return true;
        }
        matches!(&self.view, KeyData::F64(d) if d[i].is_nan())
    }

    /// Compare two non-null rows in this key's direction.
    #[inline]
    fn cmp_valid(&self, a: usize, b: usize) -> Ordering {
        let ord = match &self.view {
            KeyData::I64(d) => d[a].cmp(&d[b]),
            KeyData::F64(d) => d[a].partial_cmp(&d[b]).unwrap_or(Ordering::Equal),
            KeyData::Bool(d) => d.get(a).cmp(&d.get(b)),
            KeyData::Str(d) => d[a].as_ref().cmp(d[b].as_ref()),
            KeyData::Cat(c) => {
                c.dict[c.codes[a] as usize].cmp(&c.dict[c.codes[b] as usize])
            }
        };
        if self.ascending {
            ord
        } else {
            ord.reverse()
        }
    }

    /// Full row comparison: nulls sort last regardless of direction
    /// (pandas `na_position='last'` default).
    #[inline]
    fn cmp_rows(&self, a: usize, b: usize) -> Ordering {
        match (self.is_null(a), self.is_null(b)) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => self.cmp_valid(a, b),
        }
    }
}

/// Stable argsort of `0..n` under the composed key comparators.
fn argsort(keys: &[SortKey<'_>], n: usize) -> Vec<usize> {
    if let [key] = keys {
        return argsort_single(key, n);
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        for key in keys {
            let ord = key.cmp_rows(a, b);
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
    order
}

/// Single-key fast path: partition null rows off (stable, nulls last),
/// then sort the valid indices directly against the one raw slice.
fn argsort_single(key: &SortKey<'_>, n: usize) -> Vec<usize> {
    let mut valid: Vec<usize> = Vec::with_capacity(n);
    let mut nulls: Vec<usize> = Vec::new();
    if key.validity.is_none() && !matches!(key.view, KeyData::F64(_)) {
        valid.extend(0..n);
    } else {
        for i in 0..n {
            if key.is_null(i) {
                nulls.push(i);
            } else {
                valid.push(i);
            }
        }
    }
    // Stable sorts keep ties in row order in both directions, exactly as
    // the seed's `sort_by` with a reversed comparator did.
    match &key.view {
        KeyData::I64(d) => {
            if key.ascending {
                valid.sort_by_key(|&i| d[i]);
            } else {
                valid.sort_by_key(|&i| std::cmp::Reverse(d[i]));
            }
        }
        KeyData::F64(d) => {
            // Valid rows exclude NaN, so partial_cmp is total here.
            if key.ascending {
                valid.sort_by(|&a, &b| d[a].partial_cmp(&d[b]).unwrap_or(Ordering::Equal));
            } else {
                valid.sort_by(|&a, &b| d[b].partial_cmp(&d[a]).unwrap_or(Ordering::Equal));
            }
        }
        KeyData::Bool(d) => {
            if key.ascending {
                valid.sort_by_key(|&i| d.get(i));
            } else {
                valid.sort_by_key(|&i| std::cmp::Reverse(d.get(i)));
            }
        }
        KeyData::Str(d) => {
            if key.ascending {
                valid.sort_by(|&a, &b| d[a].as_ref().cmp(d[b].as_ref()));
            } else {
                valid.sort_by(|&a, &b| d[b].as_ref().cmp(d[a].as_ref()));
            }
        }
        KeyData::Cat(c) => {
            let at = |i: usize| -> &str { &c.dict[c.codes[i] as usize] };
            if key.ascending {
                valid.sort_by(|&a, &b| at(a).cmp(at(b)));
            } else {
                valid.sort_by(|&a, &b| at(b).cmp(at(a)));
            }
        }
    }
    valid.extend(nulls);
    valid
}

/// Resolve the key columns and directions of `options` against `frame`.
fn sort_keys<'a>(frame: &'a DataFrame, options: &SortOptions) -> Result<Vec<SortKey<'a>>> {
    options
        .by
        .iter()
        .enumerate()
        .map(|(k, name)| {
            frame
                .column(name)
                .map(|s| SortKey::new(s.column(), options.dir(k)))
        })
        .collect()
}

/// Stable multi-key sort; nulls sort last regardless of direction
/// (pandas `na_position='last'` default).
pub fn sort_values(frame: &DataFrame, options: &SortOptions) -> Result<DataFrame> {
    let keys = sort_keys(frame, options)?;
    let order = argsort(&keys, frame.num_rows());
    frame.take(&order)
}

/// Partial top-n: the `n` rows that would head the full stable sort in
/// `options`' (single-key) direction, in sorted order. Uses
/// `select_nth_unstable` with an index tie-break — the tie-break makes
/// the comparator total, so the unstable selection reproduces the stable
/// sort's prefix exactly.
fn top_n(frame: &DataFrame, n: usize, column: &str, ascending: bool) -> Result<DataFrame> {
    let options = SortOptions::single(column, ascending);
    let rows = frame.num_rows();
    if n >= rows {
        return sort_values(frame, &options);
    }
    let keys = sort_keys(frame, &options)?;
    let key = &keys[0];
    if n == 0 {
        return frame.take(&[]);
    }
    let cmp = |a: &usize, b: &usize| key.cmp_rows(*a, *b).then(a.cmp(b));
    let mut idx: Vec<usize> = (0..rows).collect();
    idx.select_nth_unstable_by(n - 1, cmp);
    let mut top = idx[..n].to_vec();
    top.sort_unstable_by(cmp);
    frame.take(&top)
}

/// `df.nlargest(n, col)` — top-n by one column, descending.
pub fn nlargest(frame: &DataFrame, n: usize, column: &str) -> Result<DataFrame> {
    top_n(frame, n, column, false)
}

/// `df.nsmallest(n, col)` — bottom-n by one column, ascending.
pub fn nsmallest(frame: &DataFrame, n: usize, column: &str) -> Result<DataFrame> {
    top_n(frame, n, column, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::df;
    use crate::value::Scalar;

    fn sample() -> DataFrame {
        df![
            ("name", Column::from_strings(vec!["b", "a", "c", "a"])),
            ("score", Column::from_opt_f64(vec![Some(2.0), Some(3.0), None, Some(1.0)])),
        ]
    }

    #[test]
    fn single_key_ascending() {
        let out = sort_values(&sample(), &SortOptions::single("score", true)).unwrap();
        assert_eq!(out.column("score").unwrap().get(0), Scalar::Float(1.0));
        // null last
        assert!(out.column("score").unwrap().column().is_null_at(3));
    }

    #[test]
    fn single_key_descending_nulls_still_last() {
        let out = sort_values(&sample(), &SortOptions::single("score", false)).unwrap();
        assert_eq!(out.column("score").unwrap().get(0), Scalar::Float(3.0));
        assert!(out.column("score").unwrap().column().is_null_at(3));
    }

    #[test]
    fn multi_key_with_mixed_directions() {
        let out = sort_values(
            &sample(),
            &SortOptions {
                by: vec!["name".into(), "score".into()],
                ascending: vec![true, false],
            },
        )
        .unwrap();
        // names: a, a, b, c; within the 'a's score desc: 3.0 then 1.0
        assert_eq!(out.column("name").unwrap().get(0), Scalar::Str("a".into()));
        assert_eq!(out.column("score").unwrap().get(0), Scalar::Float(3.0));
        assert_eq!(out.column("score").unwrap().get(1), Scalar::Float(1.0));
    }

    #[test]
    fn sort_is_stable() {
        let df = df![
            ("k", Column::from_i64(vec![1, 1, 1])),
            ("tag", Column::from_strings(vec!["first", "second", "third"])),
        ];
        let out = sort_values(&df, &SortOptions::single("k", true)).unwrap();
        assert_eq!(out.column("tag").unwrap().get(0), Scalar::Str("first".into()));
        assert_eq!(out.column("tag").unwrap().get(2), Scalar::Str("third".into()));
    }

    #[test]
    fn descending_ties_keep_row_order() {
        let df = df![
            ("k", Column::from_i64(vec![2, 1, 2, 1])),
            ("tag", Column::from_strings(vec!["a", "b", "c", "d"])),
        ];
        let out = sort_values(&df, &SortOptions::single("k", false)).unwrap();
        // ties within k=2 and k=1 keep original row order
        assert_eq!(out.column("tag").unwrap().get(0), Scalar::Str("a".into()));
        assert_eq!(out.column("tag").unwrap().get(1), Scalar::Str("c".into()));
        assert_eq!(out.column("tag").unwrap().get(2), Scalar::Str("b".into()));
        assert_eq!(out.column("tag").unwrap().get(3), Scalar::Str("d".into()));
    }

    #[test]
    fn nlargest_nsmallest() {
        let top = nlargest(&sample(), 2, "score").unwrap();
        assert_eq!(top.num_rows(), 2);
        assert_eq!(top.column("score").unwrap().get(0), Scalar::Float(3.0));
        let bottom = nsmallest(&sample(), 1, "score").unwrap();
        assert_eq!(bottom.column("score").unwrap().get(0), Scalar::Float(1.0));
    }

    #[test]
    fn top_n_matches_full_sort_with_duplicates() {
        let df = df![
            ("k", Column::from_i64(vec![3, 1, 3, 2, 3, 1, 2])),
            ("tag", Column::from_strings(vec!["a", "b", "c", "d", "e", "f", "g"])),
        ];
        for n in 0..=7 {
            let top = nlargest(&df, n, "k").unwrap();
            let full = sort_values(&df, &SortOptions::single("k", false)).unwrap().head(n);
            assert_eq!(top, full, "nlargest({n})");
            let bottom = nsmallest(&df, n, "k").unwrap();
            let full = sort_values(&df, &SortOptions::single("k", true)).unwrap().head(n);
            assert_eq!(bottom, full, "nsmallest({n})");
        }
    }

    #[test]
    fn top_n_with_nulls_matches_full_sort() {
        let df = df![
            ("k", Column::from_opt_f64(vec![Some(2.0), None, Some(5.0), None, Some(1.0)])),
        ];
        for n in 0..=5 {
            let top = nlargest(&df, n, "k").unwrap();
            let full = sort_values(&df, &SortOptions::single("k", false)).unwrap().head(n);
            // NaN payloads defeat derived equality; compare row scalars.
            assert_eq!(top.shape(), full.shape(), "nlargest({n}) with nulls");
            for i in 0..top.num_rows() {
                let (a, b) = (top.column("k").unwrap().get(i), full.column("k").unwrap().get(i));
                assert!(
                    (a.is_null() && b.is_null()) || a == b,
                    "nlargest({n}) row {i}: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn sort_all_dtypes() {
        let cat = Column::from_strings(vec!["b", "a", "c"]).to_categorical().unwrap();
        let df = df![
            ("i", Column::from_i64(vec![3, 1, 2])),
            ("d", Column::from_datetimes(vec![30, 10, 20])),
            ("b", Column::from_bool(vec![true, false, true])),
            ("s", Column::from_strings(vec!["z", "x", "y"])),
            ("c", cat),
        ];
        for key in ["i", "d", "b", "s", "c"] {
            let out = sort_values(&df, &SortOptions::single(key, true)).unwrap();
            assert_eq!(out.num_rows(), 3, "{key}");
            let first = out.column(key).unwrap().get(0);
            let last = out.column(key).unwrap().get(2);
            assert!(first.cmp_values(&last).is_le(), "{key}: {first:?} <= {last:?}");
        }
    }

    #[test]
    fn unknown_key_errors() {
        assert!(sort_values(&sample(), &SortOptions::single("ghost", true)).is_err());
    }
}
