//! The individual source-to-source rewrite passes.

use lafp_analysis::dfvars::DfVarInfo;
use lafp_analysis::laa::LaaResult;
use lafp_analysis::lda::LdaResult;
use lafp_ir::ast::{Ast, Expr, StmtId, StmtKind, Target};
use lafp_ir::cfg::Cfg;
use lafp_meta::MetaStore;
use std::collections::BTreeSet;
use std::path::Path;

/// Find `x = <pd>.read_csv(path, ...)` statements: (stmt, var, path lit).
pub fn read_csv_sites(ast: &Ast, info: &DfVarInfo) -> Vec<(StmtId, String, Option<String>)> {
    let mut out = Vec::new();
    for id in ast.all_ids() {
        if let StmtKind::Assign {
            target: Target::Name(var),
            value: Expr::Call { func, args, .. },
        } = &ast.stmt(id).kind
        {
            if let Expr::Attribute { value: recv, attr } = func.as_ref() {
                if attr == "read_csv" {
                    if let Expr::Name(m) = recv.as_ref() {
                        if Some(m) == info.pandas_alias.as_ref() {
                            let path = args
                                .first()
                                .and_then(|a| a.as_str_lit().map(str::to_string));
                            out.push((id, var.clone(), path));
                        }
                    }
                }
            }
        }
    }
    out
}

/// §3.1 column selection: inject `usecols=[live columns]` where LAA proves
/// a proper subset suffices. Returns the per-site column lists injected.
///
/// This runs at JIT time (program start), so the dataset is available: the
/// live set is intersected with the file's actual header — necessary when
/// liveness is conservative (e.g. merges attribute live columns to both
/// sides) and a column exists in only one input.
pub fn column_selection(
    ast: &mut Ast,
    cfg: &Cfg,
    info: &DfVarInfo,
    laa: &LaaResult,
    data_dir: Option<&Path>,
) -> Vec<(String, Vec<String>)> {
    let mut injected = Vec::new();
    for (stmt, var, path) in read_csv_sites(ast, info) {
        let live = laa.live_columns_after(cfg, stmt, &var);
        if live.all || live.is_empty() {
            continue;
        }
        let mut cols: Vec<String> = live.cols.iter().cloned().collect();
        // Intersect with the file header when resolvable.
        if let Some(path) = &path {
            let resolved = match data_dir {
                Some(dir) if Path::new(path).is_relative() => dir.join(path),
                _ => Path::new(path).to_path_buf(),
            };
            if let Ok(header) = lafp_columnar::csv::read_header(&resolved) {
                cols.retain(|c| header.contains(c));
            }
        }
        if cols.is_empty() {
            continue;
        }
        if let StmtKind::Assign { value: Expr::Call { kwargs, .. }, .. } =
            &mut ast.stmt_mut(stmt).kind
        {
            // Respect an existing user-provided usecols (intersect).
            let list = Expr::List(cols.iter().map(|c| Expr::Str(c.clone())).collect());
            match kwargs.iter_mut().find(|(k, _)| k == "usecols") {
                Some((_, existing)) => {
                    if let Some(user) = existing.as_str_list() {
                        let merged: Vec<String> =
                            cols.iter().filter(|c| user.contains(c)).cloned().collect();
                        *existing = Expr::List(
                            merged.iter().map(|c| Expr::Str(c.clone())).collect(),
                        );
                    }
                }
                None => kwargs.push(("usecols".into(), list)),
            }
            // parse_dates must stay within usecols.
            if let Some((_, pd_expr)) = kwargs.iter_mut().find(|(k, _)| k == "parse_dates") {
                if let Some(dates) = pd_expr.as_str_list() {
                    let kept: Vec<Expr> = dates
                        .into_iter()
                        .filter(|d| cols.contains(d))
                        .map(Expr::Str)
                        .collect();
                    *pd_expr = Expr::List(kept);
                }
            }
            injected.push((var.clone(), cols));
        }
    }
    injected
}

/// §3.3 lazy print: add the `from lazyfatpandas.func import print` override
/// after the last import and a `pd.flush()` at the end. Returns whether the
/// program had any prints (the pass is a no-op otherwise).
pub fn lazy_print(ast: &mut Ast, info: &DfVarInfo) -> bool {
    let has_print = ast.all_ids().any(|id| {
        matches!(
            &ast.stmt(id).kind,
            StmtKind::Expr(Expr::Call { func, .. })
                if matches!(func.as_ref(), Expr::Name(n) if n == "print")
        )
    });
    if !has_print {
        return false;
    }
    let already = ast.all_ids().any(|id| {
        matches!(
            &ast.stmt(id).kind,
            StmtKind::FromImport { module, names }
                if module == "lazyfatpandas.func" && names.iter().any(|n| n == "print")
        )
    });
    if !already {
        let import = ast.alloc(
            StmtKind::FromImport {
                module: "lazyfatpandas.func".into(),
                names: vec!["print".into()],
            },
            0,
        );
        let pos = ast
            .module
            .iter()
            .rposition(|&id| {
                matches!(
                    ast.stmt(id).kind,
                    StmtKind::Import { .. } | StmtKind::FromImport { .. }
                )
            })
            .map(|p| p + 1)
            .unwrap_or(0);
        ast.module.insert(pos, import);
    }
    // pd.flush() at the very end.
    let alias = info.pandas_alias.clone().unwrap_or_else(|| "pd".into());
    let flush = ast.alloc(
        StmtKind::Expr(Expr::Call {
            func: Box::new(Expr::Attribute {
                value: Box::new(Expr::Name(alias)),
                attr: "flush".into(),
            }),
            args: vec![],
            kwargs: vec![],
        }),
        0,
    );
    ast.module.push(flush);
    true
}

/// §3.4 forced computation: rewrite frame arguments of external-module
/// calls into `arg.compute(live_df=[...])`. Returns `(line, arg, live)`
/// descriptions of each rewrite.
pub fn forced_compute(
    ast: &mut Ast,
    cfg: &Cfg,
    info: &DfVarInfo,
    lda: &LdaResult,
) -> Vec<(usize, String, Vec<String>)> {
    let mut rewrites = Vec::new();
    let ids: Vec<StmtId> = ast.all_ids().collect();
    for id in ids {
        let frame_args = lafp_analysis::dfvars::external_call_frame_args(ast, id, info);
        if frame_args.is_empty() {
            continue;
        }
        let live: Vec<String> = lda
            .live_frames_after(ast, cfg, info, id)
            .into_iter()
            .collect();
        let line = ast.stmt(id).line;
        let live_list = Expr::List(live.iter().cloned().map(Expr::Name).collect());
        let wrap = |e: &mut Expr| {
            if let Expr::Call { func, args, .. } = e {
                if let Expr::Attribute { value, .. } = func.as_ref() {
                    if matches!(value.as_ref(), Expr::Name(m) if info.is_external_module(m)) {
                        for a in args.iter_mut() {
                            if let Expr::Name(v) = a {
                                if frame_args.contains(v) {
                                    let inner = std::mem::replace(a, Expr::NoneLit);
                                    *a = Expr::Call {
                                        func: Box::new(Expr::Attribute {
                                            value: Box::new(inner),
                                            attr: "compute".into(),
                                        }),
                                        args: vec![],
                                        kwargs: vec![(
                                            "live_df".into(),
                                            live_list.clone(),
                                        )],
                                    };
                                }
                            }
                        }
                    }
                }
            }
        };
        match &mut ast.stmt_mut(id).kind {
            StmtKind::Expr(e) => wrap(e),
            StmtKind::Assign { value, .. } => wrap(value),
            _ => {}
        }
        for arg in frame_args {
            rewrites.push((line, arg, live.clone()));
        }
    }
    rewrites
}

/// §3.6 metadata dtype optimization: for each `read_csv` of a file with a
/// valid metastore entry, declare low-cardinality **read-only** string
/// columns as `category` via `dtype={...}`. Returns `(var, col)` pairs.
pub fn metadata_category(
    ast: &mut Ast,
    info: &DfVarInfo,
    data_dir: Option<&Path>,
) -> Vec<(String, String)> {
    let store = MetaStore::new();
    let mut applied = Vec::new();
    for (stmt, var, path) in read_csv_sites(ast, info) {
        let Some(path) = path else { continue };
        let resolved = match data_dir {
            Some(dir) if Path::new(&path).is_relative() => dir.join(&path),
            _ => Path::new(&path).to_path_buf(),
        };
        let Ok(Some(meta)) = store.load(&resolved) else {
            continue;
        };
        // Columns actually read (respect an injected/user usecols).
        let usecols: Option<BTreeSet<String>> = match &ast.stmt(stmt).kind {
            StmtKind::Assign { value: Expr::Call { kwargs, .. }, .. } => kwargs
                .iter()
                .find(|(k, _)| k == "usecols")
                .and_then(|(_, v)| v.as_str_list())
                .map(|v| v.into_iter().collect()),
            _ => None,
        };
        let mut pairs: Vec<(String, String)> = Vec::new();
        for col in &meta.columns {
            let read = usecols.as_ref().is_none_or(|u| u.contains(&col.name));
            if read
                && col.is_category_candidate()
                && info.is_read_only_column(&var, &col.name)
            {
                pairs.push((col.name.clone(), "category".into()));
            }
        }
        if pairs.is_empty() {
            continue;
        }
        if let StmtKind::Assign { value: Expr::Call { kwargs, .. }, .. } =
            &mut ast.stmt_mut(stmt).kind
        {
            let dict = Expr::Dict(
                pairs
                    .iter()
                    .map(|(c, d)| (Expr::Str(c.clone()), Expr::Str(d.clone())))
                    .collect(),
            );
            match kwargs.iter_mut().find(|(k, _)| k == "dtype") {
                Some((_, existing)) => {
                    if let Expr::Dict(items) = existing {
                        for (c, d) in &pairs {
                            if !items.iter().any(|(k, _)| k.as_str_lit() == Some(c)) {
                                items.push((Expr::Str(c.clone()), Expr::Str(d.clone())));
                            }
                        }
                    }
                }
                None => kwargs.push(("dtype".into(), dict)),
            }
        }
        for (c, _) in pairs {
            applied.push((var.clone(), c));
        }
    }
    applied
}

/// Remove the `pd.analyze()` bootstrap call (Figure 4: the optimized
/// program does not re-trigger the JIT).
pub fn strip_analyze(ast: &mut Ast, info: &DfVarInfo) -> bool {
    let alias = info.pandas_alias.clone().unwrap_or_else(|| "pd".into());
    let before = ast.module.len();
    let keep: Vec<StmtId> = ast
        .module
        .iter()
        .copied()
        .filter(|&id| {
            !matches!(
                &ast.stmt(id).kind,
                StmtKind::Expr(Expr::Call { func, .. })
                    if matches!(
                        func.as_ref(),
                        Expr::Attribute { value, attr }
                            if attr == "analyze"
                                && matches!(value.as_ref(), Expr::Name(m) if *m == alias)
                    )
            )
        })
        .collect();
    ast.module = keep;
    ast.module.len() != before
}

#[cfg(test)]
mod tests {
    use super::*;
    use lafp_analysis::{dfvars, laa, lda};
    use lafp_ir::codegen::emit_module;
    use lafp_ir::lower::lower;
    use lafp_ir::parser::parse;

    fn prepared(src: &str) -> (Ast, Cfg, DfVarInfo, LaaResult, LdaResult) {
        let ast = parse(src).unwrap();
        let cfg = lower(&ast);
        let info = dfvars::infer(&ast);
        let laa = laa::analyze(&ast, &cfg, &info);
        let lda = lda::analyze(&ast, &cfg);
        (ast, cfg, info, laa, lda)
    }

    const FIG3: &str = "\
import lazyfatpandas.pandas as pd
pd.analyze()
df = pd.read_csv('data.csv', parse_dates=['tpep_pickup_datetime'])
df = df[df.fare_amount > 0]
df['day'] = df.tpep_pickup_datetime.dt.dayofweek
df = df.groupby(['day'])['passenger_count'].sum()
print(df)
";

    #[test]
    fn column_selection_injects_usecols() {
        let (mut ast, cfg, info, laa, _) = prepared(FIG3);
        let injected = column_selection(&mut ast, &cfg, &info, &laa, None);
        assert_eq!(injected.len(), 1);
        assert_eq!(
            injected[0].1,
            vec!["fare_amount", "passenger_count", "tpep_pickup_datetime"]
        );
        let out = emit_module(&ast);
        assert!(out.contains("usecols=['fare_amount', 'passenger_count', 'tpep_pickup_datetime']"), "{out}");
        // parse_dates column retained (it is live).
        assert!(out.contains("parse_dates=['tpep_pickup_datetime']"));
    }

    #[test]
    fn column_selection_skips_whole_frame_uses() {
        let src = "\
import lazyfatpandas.pandas as pd
df = pd.read_csv('d.csv')
print(df)
";
        let (mut ast, cfg, info, laa, _) = prepared(src);
        let injected = column_selection(&mut ast, &cfg, &info, &laa, None);
        assert!(injected.is_empty());
        assert!(!emit_module(&ast).contains("usecols"));
    }

    #[test]
    fn column_selection_respects_user_usecols() {
        let src = "\
import lazyfatpandas.pandas as pd
df = pd.read_csv('d.csv', usecols=['a', 'b', 'c'])
s = df['a']
print(f'{s.sum()}')
";
        let (mut ast, cfg, info, laa, _) = prepared(src);
        column_selection(&mut ast, &cfg, &info, &laa, None);
        let out = emit_module(&ast);
        assert!(out.contains("usecols=['a']"), "{out}");
    }

    #[test]
    fn lazy_print_adds_import_and_flush() {
        let (mut ast, _, info, _, _) = prepared(FIG3);
        assert!(lazy_print(&mut ast, &info));
        let out = emit_module(&ast);
        assert!(out.contains("from lazyfatpandas.func import print"));
        assert!(out.trim_end().ends_with("pd.flush()"));
        // Idempotent: running again does not duplicate the import.
        assert!(lazy_print(&mut ast, &info));
        let out2 = emit_module(&ast);
        assert_eq!(
            out2.matches("from lazyfatpandas.func import print").count(),
            1
        );
    }

    #[test]
    fn lazy_print_noop_without_prints() {
        let src = "import lazyfatpandas.pandas as pd\ndf = pd.read_csv('d.csv')\n";
        let (mut ast, _, info, _, _) = prepared(src);
        assert!(!lazy_print(&mut ast, &info));
    }

    #[test]
    fn forced_compute_wraps_external_args() {
        let src = "\
import lazyfatpandas.pandas as pd
import matplotlib.pyplot as plt
df = pd.read_csv('data.csv')
p_per_day = df.groupby(['day'])['passenger_count'].sum()
plt.plot(p_per_day)
avg = df['fare_amount'].mean()
print(f'{avg}')
";
        let (mut ast, cfg, info, _, lda) = prepared(src);
        let rewrites = forced_compute(&mut ast, &cfg, &info, &lda);
        assert_eq!(rewrites.len(), 1);
        assert_eq!(rewrites[0].1, "p_per_day");
        assert_eq!(rewrites[0].2, vec!["df".to_string()], "df live after plot");
        let out = emit_module(&ast);
        assert!(
            out.contains("plt.plot(p_per_day.compute(live_df=[df]))"),
            "{out}"
        );
    }

    #[test]
    fn strip_analyze_removes_bootstrap() {
        let (mut ast, _, info, _, _) = prepared(FIG3);
        assert!(strip_analyze(&mut ast, &info));
        let out = emit_module(&ast);
        assert!(!out.contains("analyze()"));
        assert!(!strip_analyze(&mut ast, &info), "second run: nothing left");
    }

    #[test]
    fn metadata_category_applies_to_read_only_low_cardinality() {
        // Build a dataset + metadata sidecar on disk.
        let dir = std::env::temp_dir().join("lafp-rewrite-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!(
            "m{}.csv",
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let mut content = String::from("city,note,value\n");
        for i in 0..50 {
            content.push_str(&format!("C{},unique-note-{i},{i}\n", i % 3));
        }
        std::fs::write(&path, content).unwrap();
        lafp_meta::scan::compute_and_store(&path).unwrap();

        let src = format!(
            "\
import lazyfatpandas.pandas as pd
df = pd.read_csv('{}')
df['note'] = df.city
print(df)
",
            path.display()
        );
        let (mut ast, _, info, _, _) = prepared(&src);
        let applied = metadata_category(&mut ast, &info, None);
        // city: 3 distinct, read-only => category. note: assigned => no.
        assert_eq!(applied, vec![("df".to_string(), "city".to_string())]);
        let out = emit_module(&ast);
        assert!(out.contains("dtype={'city': 'category'}"), "{out}");
    }
}
