//! Kernel microbenchmarks: the vectorized kernels raced against in-tree
//! re-implementations of the seed-era (PR 1) scalar-boxed algorithms, on
//! the same data in the same process, so each PR's `BENCH_PR<N>.json`
//! records an apples-to-apples trajectory point.
//!
//! The reference implementations mirror the seed code paths: group-by keys
//! rendered to a canonical `String` per row with `Scalar`-boxed aggregate
//! state, element-wise kernels calling `get(i) -> Scalar` per element, and
//! `slice` materializing an index vector and gathering. They live here (not
//! in `lafp-columnar`) so the production crate carries no dead slow paths.
//!
//! ```text
//! cargo run -p lafp-bench --release --bin harness -- bench \
//!     --rows 1000000 --json BENCH_PR2.json
//! ```

use crate::datagen::kernel_frame;
use lafp_backends::{DaskEngine, DaskOp, DaskValue, MemoryTracker};
use lafp_columnar::column::{ArithOp, CmpOp};
use lafp_columnar::csv::{read_csv, read_csv_par, CsvOptions};
use lafp_columnar::groupby::{group_by, group_by_par, AggKind, GroupBySpec};
use lafp_columnar::join::{merge, merge_par, JoinKind};
use lafp_columnar::pool::WorkerPool;
use lafp_columnar::sort::{nlargest, sort_values, sort_values_par, SortOptions};
use lafp_columnar::{Bitmap, Column, DType, DataFrame, Scalar, Series};
use lafp_expr::Expr;
use lafp_oracle::equiv::{assert_col_equiv, assert_frame_close, assert_frame_equiv};
use lafp_oracle::reference::{
    arith_ref, cast_ref, compare_ref, fillna_ref, filter_ref, group_by_ref,
    merge_ref, nlargest_ref, read_csv_schema_ref as read_csv_ref, slice_ref,
    sort_values_ref, sum_ref,
};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// One bench row: seed vs vectorized timing for a kernel.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Kernel name.
    pub name: String,
    /// Best-of-N wall time of the seed-era reference, in milliseconds.
    pub seed_ms: f64,
    /// Best-of-N wall time of the vectorized kernel, in milliseconds.
    pub vectorized_ms: f64,
    /// `seed_ms / vectorized_ms`.
    pub speedup: f64,
}

/// One string-representation bench row: the arena-backed Utf8 kernel vs
/// an in-tree `Arc<str>` (PR 2–4 era) baseline on the same data.
#[derive(Debug, Clone)]
pub struct StringBenchResult {
    /// Kernel name.
    pub name: String,
    /// Best-of-N wall time of the `Arc<str>` baseline, in milliseconds.
    pub arc_ms: f64,
    /// Best-of-N wall time of the arena-backed kernel, in milliseconds.
    pub arena_ms: f64,
    /// `arc_ms / arena_ms`.
    pub speedup: f64,
}

/// One parallel bench row: the same pool-driven kernel at one worker vs
/// `threads` workers.
#[derive(Debug, Clone)]
pub struct ParallelBenchResult {
    /// Kernel name.
    pub name: String,
    /// Best-of-N wall time on a 1-worker pool (the sequential path).
    pub t1_ms: f64,
    /// Best-of-N wall time on a `threads`-worker pool.
    pub tn_ms: f64,
    /// Worker count of the parallel column.
    pub threads: usize,
    /// `t1_ms / tn_ms`.
    pub speedup: f64,
}

/// One pipelined-executor bench row: the same streaming Dask query with
/// the CSV scan pipelined against downstream operator morsels vs fully
/// drained before them.
#[derive(Debug, Clone)]
pub struct PipelineBenchResult {
    /// Query name.
    pub name: String,
    /// Best-of-N wall time with `pipeline_scan` off (blocking drain).
    pub blocking_ms: f64,
    /// Best-of-N wall time with the scan overlapped on the worker pool.
    pub pipelined_ms: f64,
    /// Worker count of the engine pool (both sides).
    pub threads: usize,
    /// `blocking_ms / pipelined_ms`.
    pub speedup: f64,
}

/// One chain-fusion bench row: the same streaming Dask query with
/// row-local operator runs fused into one pass per morsel vs executed
/// as separate per-operator morsel passes.
#[derive(Debug, Clone)]
pub struct FusionBenchResult {
    /// Query name.
    pub name: String,
    /// Best-of-N wall time with `fuse_chains` off (one frame per op).
    pub unfused_ms: f64,
    /// Best-of-N wall time with the chain fused (`fuse_chains` on).
    pub fused_ms: f64,
    /// Worker count of the engine pool (both sides).
    pub threads: usize,
    /// `unfused_ms / fused_ms`.
    pub speedup: f64,
}

/// One encoded-execution bench row: the same kernel on an encoded
/// column (`Dict`/`Rle`) vs decode-then-compute on its plain twin.
#[derive(Debug, Clone)]
pub struct EncodingBenchResult {
    /// Kernel name.
    pub name: String,
    /// Best-of-N wall time of decode-then-compute, in milliseconds.
    pub decoded_ms: f64,
    /// Best-of-N wall time operating on the encoded column directly.
    pub encoded_ms: f64,
    /// `decoded_ms / encoded_ms`.
    pub speedup: f64,
}

/// Best-of-N paired timing: each iteration times the seed reference and
/// the vectorized kernel back to back, so both sides see the same
/// allocator and cache state as the process evolves — a seed-first block
/// followed by a fast-only block would systematically charge the fast
/// side with the reference's heap churn.
fn best_of_pair_ms(iters: usize, mut seed: impl FnMut(), mut fast: impl FnMut()) -> (f64, f64) {
    let mut best_seed = f64::INFINITY;
    let mut best_fast = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let t = Instant::now();
        seed();
        best_seed = best_seed.min(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        fast();
        best_fast = best_fast.min(t.elapsed().as_secs_f64() * 1e3);
    }
    (best_seed, best_fast)
}

/// Run the full kernel suite at `rows` rows, `iters` timing repetitions
/// each. Every pair is checked for result equivalence before timing.
pub fn run_suite(rows: usize, iters: usize) -> Vec<BenchResult> {
    let frame = kernel_frame(rows);
    let fare = frame.column("fare").unwrap().column();
    let tip = frame.column("tip").unwrap().column();
    let key = frame.column("key").unwrap().column();
    let passenger = frame.column("passenger_count").unwrap().column();
    let mut results = Vec::new();
    let mut push = |name: &str, seed_ms: f64, vectorized_ms: f64| {
        results.push(BenchResult {
            name: name.to_string(),
            seed_ms,
            vectorized_ms,
            speedup: seed_ms / vectorized_ms,
        });
    };

    // -- group-by ------------------------------------------------------
    let spec = GroupBySpec {
        keys: vec!["key".into()],
        value: "fare".into(),
        agg: AggKind::Sum,
    };
    assert_eq!(group_by_ref(&frame, &spec), group_by(&frame, &spec).unwrap());
    let (seed, fast) = best_of_pair_ms(
        iters,
        || {
        black_box(group_by_ref(black_box(&frame), &spec));
    },
        || {
        black_box(group_by(black_box(&frame), &spec).unwrap());
    },
    );
    push("groupby_i64key_sum_f64", seed, fast);

    let multi = GroupBySpec {
        keys: vec!["vendor".into(), "key".into()],
        value: "tip".into(),
        agg: AggKind::Mean,
    };
    assert_eq!(
        group_by_ref(&frame, &multi),
        group_by(&frame, &multi).unwrap()
    );
    let (seed, fast) = best_of_pair_ms(
        iters,
        || {
        black_box(group_by_ref(black_box(&frame), &multi));
    },
        || {
        black_box(group_by(black_box(&frame), &multi).unwrap());
    },
    );
    push("groupby_multikey_mean_f64", seed, fast);

    // -- filter --------------------------------------------------------
    let mask = fare.compare_scalar(CmpOp::Gt, &Scalar::Float(40.0)).unwrap();
    assert_eq!(filter_ref(&frame, &mask), frame.filter(&mask).unwrap());
    let (seed, fast) = best_of_pair_ms(
        iters,
        || {
        black_box(filter_ref(black_box(&frame), &mask));
    },
        || {
        black_box(frame.filter(black_box(&mask)).unwrap());
    },
    );
    push("filter_mixed_frame", seed, fast);

    // -- element-wise arithmetic ---------------------------------------
    assert_col_equiv(
        &arith_ref(fare, ArithOp::Mul, tip),
        &fare.arith(ArithOp::Mul, tip).unwrap(),
        "arith f64",
    );
    let (seed, fast) = best_of_pair_ms(
        iters,
        || {
        black_box(arith_ref(black_box(fare), ArithOp::Mul, tip));
    },
        || {
        black_box(black_box(fare).arith(ArithOp::Mul, tip).unwrap());
    },
    );
    push("arith_mul_f64", seed, fast);

    assert_col_equiv(
        &arith_ref(key, ArithOp::Add, passenger),
        &key.arith(ArithOp::Add, passenger).unwrap(),
        "arith i64",
    );
    let (seed, fast) = best_of_pair_ms(
        iters,
        || {
        black_box(arith_ref(black_box(key), ArithOp::Add, passenger));
    },
        || {
        black_box(black_box(key).arith(ArithOp::Add, passenger).unwrap());
    },
    );
    push("arith_add_i64", seed, fast);

    // -- comparison ----------------------------------------------------
    assert_eq!(compare_ref(fare, CmpOp::Gt, tip), fare.compare(CmpOp::Gt, tip).unwrap());
    let (seed, fast) = best_of_pair_ms(
        iters,
        || {
        black_box(compare_ref(black_box(fare), CmpOp::Gt, tip));
    },
        || {
        black_box(black_box(fare).compare(CmpOp::Gt, tip).unwrap());
    },
    );
    push("compare_gt_f64", seed, fast);

    // -- slice (head) --------------------------------------------------
    // Many short heads per timed pass: a single 1000-row slice is too fast
    // to time on its own.
    let head_loops = 200usize;
    assert_col_equiv(&slice_ref(fare, 10, 1000), &fare.slice(10, 1000), "slice");
    let (seed, fast) = best_of_pair_ms(
        iters,
        || {
        for k in 0..head_loops {
            black_box(slice_ref(black_box(fare), k, 1000));
        }
    },
        || {
        for k in 0..head_loops {
            black_box(black_box(fare).slice(k, 1000));
        }
    },
    );
    push("slice_head_1000_x200", seed, fast);

    // Frame-level slice across all six columns (strings included).
    let (seed, fast) = best_of_pair_ms(
        iters,
        || {
        for k in 0..head_loops {
            black_box(
                DataFrame::new(
                    frame
                        .series()
                        .iter()
                        .map(|s| Series::new(s.name(), slice_ref(s.column(), k, 1000)))
                        .collect(),
                )
                .unwrap(),
            );
        }
    },
        || {
        for k in 0..head_loops {
            black_box(black_box(&frame).slice(k, 1000));
        }
    },
    );
    push("slice_frame_1000_x200", seed, fast);

    // -- fillna / cast / sum -------------------------------------------
    assert_col_equiv(
        &fillna_ref(fare, &Scalar::Float(0.0)),
        &fare.fillna(&Scalar::Float(0.0)).unwrap(),
        "fillna",
    );
    let (seed, fast) = best_of_pair_ms(
        iters,
        || {
        black_box(fillna_ref(black_box(fare), &Scalar::Float(0.0)));
    },
        || {
        black_box(black_box(fare).fillna(&Scalar::Float(0.0)).unwrap());
    },
    );
    push("fillna_f64", seed, fast);

    assert_col_equiv(
        &cast_ref(key, DType::Float64).expect("int->float casts"),
        &key.cast(DType::Float64).unwrap(),
        "cast",
    );
    let (seed, fast) = best_of_pair_ms(
        iters,
        || {
        black_box(cast_ref(black_box(key), DType::Float64).expect("int->float casts"));
    },
        || {
        black_box(black_box(key).cast(DType::Float64).unwrap());
    },
    );
    push("cast_i64_to_f64", seed, fast);

    assert_eq!(sum_ref(fare), fare.sum());
    let (seed, fast) = best_of_pair_ms(
        iters,
        || {
        black_box(sum_ref(black_box(fare)));
    },
        || {
        black_box(black_box(fare).sum());
    },
    );
    push("sum_f64", seed, fast);

    // -- hash join -----------------------------------------------------
    // Right (build) sides: one row per distinct key for the single-key
    // joins, vendor x key combinations for the multi-key join. The
    // left-join side covers only half the keys so misses exercise the
    // null-aware typed gather.
    let vendors = ["CMT", "VTS", "DDS", "NYC", "JUNO", "LYFT"];
    let right_full = DataFrame::new(vec![
        Series::new("key", Column::from_i64((0..100).collect())),
        Series::new(
            "title",
            Column::from_strings((0..100).map(|k| format!("key-title-{k}"))),
        ),
        Series::new("val", Column::from_f64((0..100).map(|k| k as f64 * 0.5).collect())),
    ])
    .unwrap();
    let right_half = DataFrame::new(vec![
        Series::new("key", Column::from_i64((0..50).collect())),
        Series::new(
            "title",
            Column::from_strings((0..50).map(|k| format!("key-title-{k}"))),
        ),
        Series::new("val", Column::from_f64((0..50).map(|k| k as f64 * 0.5).collect())),
    ])
    .unwrap();
    let right_multi = DataFrame::new(vec![
        Series::new(
            "vendor",
            Column::from_strings(vendors.iter().flat_map(|v| std::iter::repeat_n(*v, 100))),
        ),
        Series::new(
            "key",
            Column::from_i64((0..vendors.len() as i64).flat_map(|_| 0..100).collect()),
        ),
        Series::new(
            "boost",
            Column::from_f64((0..vendors.len() * 100).map(|i| i as f64 * 0.25).collect()),
        ),
    ])
    .unwrap();

    let on_key = vec!["key".to_string()];
    let on_multi = vec!["vendor".to_string(), "key".to_string()];
    for (name, right, on, how) in [
        ("join_inner_i64key", &right_full, &on_key, JoinKind::Inner),
        ("join_inner_multikey", &right_multi, &on_multi, JoinKind::Inner),
        ("join_left_i64key", &right_half, &on_key, JoinKind::Left),
    ] {
        assert_frame_equiv(
            &merge(&frame, right, on, how).unwrap(),
            &merge_ref(&frame, right, on, how),
            name,
        );
        let (seed, fast) = best_of_pair_ms(
            iters,
            || {
            black_box(merge_ref(black_box(&frame), right, on, how));
        },
            || {
            black_box(merge(black_box(&frame), right, on, how).unwrap());
        },
        );
        push(name, seed, fast);
    }

    // -- sort ----------------------------------------------------------
    let sort_single = SortOptions::single("fare", true);
    let sort_multi = SortOptions {
        by: vec!["vendor".into(), "fare".into()],
        ascending: vec![true, false],
    };
    for (name, options) in [
        ("sort_single_f64", &sort_single),
        ("sort_multikey_str_f64", &sort_multi),
    ] {
        assert_frame_equiv(
            &sort_values(&frame, options).unwrap(),
            &sort_values_ref(&frame, options),
            name,
        );
        let (seed, fast) = best_of_pair_ms(
            iters,
            || {
            black_box(sort_values_ref(black_box(&frame), options));
        },
            || {
            black_box(sort_values(black_box(&frame), options).unwrap());
        },
        );
        push(name, seed, fast);
    }

    let top_n = 100.min(rows);
    assert_frame_equiv(
        &nlargest(&frame, top_n, "fare").unwrap(),
        &nlargest_ref(&frame, top_n, "fare"),
        "nlargest",
    );
    let (seed, fast) = best_of_pair_ms(
        iters,
        || {
        black_box(nlargest_ref(black_box(&frame), top_n, "fare"));
    },
        || {
        black_box(nlargest(black_box(&frame), top_n, "fare").unwrap());
    },
    );
    push("nlargest_100_f64", seed, fast);

    // -- CSV ingestion -------------------------------------------------
    // A mixed-dtype file written once outside the timed region: int id,
    // float fare with empty (null) cells, a string column with quoted
    // commas, and a bool flag.
    let csv_path = std::env::temp_dir().join(format!(
        "lafp-kernel-bench-{rows}-{}.csv",
        std::process::id()
    ));
    {
        use std::io::Write as _;
        let mut w = std::io::BufWriter::new(std::fs::File::create(&csv_path).unwrap());
        writeln!(w, "id,fare,city,ok").unwrap();
        for i in 0..rows {
            let fare = if i % 50 == 0 {
                String::new()
            } else {
                format!("{:.2}", (i % 977) as f64 * 0.13)
            };
            if i % 7 == 0 {
                writeln!(w, "{i},{fare},\"City, {}\",true", i % 80).unwrap();
            } else {
                writeln!(w, "{i},{fare},City{},false", i % 80).unwrap();
            }
        }
        w.flush().unwrap();
    }
    let csv_options = CsvOptions::new();
    let csv_schema = vec![
        ("id".to_string(), DType::Int64),
        ("fare".to_string(), DType::Float64),
        ("city".to_string(), DType::Utf8),
        ("ok".to_string(), DType::Bool),
    ];
    assert_frame_equiv(
        &read_csv(&csv_path, &csv_options).unwrap(),
        &read_csv_ref(&csv_path, &csv_schema),
        "read_csv",
    );
    let (seed, fast) = best_of_pair_ms(
        iters,
        || {
        black_box(read_csv_ref(black_box(&csv_path), &csv_schema));
    },
        || {
        black_box(read_csv(black_box(&csv_path), &csv_options).unwrap());
    },
    );
    push("read_csv_mixed", seed, fast);
    std::fs::remove_file(&csv_path).ok();

    results
}

// ---------------------------------------------------------------------------
// String representation benches (arena vs Arc<str>)
// ---------------------------------------------------------------------------

/// The PR 2–4 `Arc<str>` string gather, reproduced verbatim as the PR 5
/// baseline: contiguous ascending runs bulk-extend the `Arc` slice, but
/// every output row still pays one atomic refcount increment.
fn gather_arcs_ref(data: &[Arc<str>], indices: &[usize]) -> Vec<Arc<str>> {
    let n = indices.len();
    let mut out: Vec<Arc<str>> = Vec::with_capacity(n);
    let mut k = 0;
    while k < n {
        let start = indices[k];
        let mut run = 1;
        while k + run < n && indices[k + run] == start + run {
            run += 1;
        }
        if run >= 4 {
            out.extend_from_slice(&data[start..start + run]);
        } else {
            for r in 0..run {
                out.push(Arc::clone(&data[start + r]));
            }
        }
        k += run;
    }
    out
}

/// Run the string-representation suite: arena-backed Utf8 kernels raced
/// against the `Arc<str>` storage they replaced, on identical values.
/// Each pair is checked for value equivalence before timing. The gather
/// benches are the join-assembly cost model: `utf8_take_join_runs` uses
/// the ascending-run index shape an FK-join probe emits, and
/// `utf8_take_random` is the worst case with no runs to collapse.
pub fn run_string_suite(rows: usize, iters: usize) -> Vec<StringBenchResult> {
    // Realistic mixed-width values: mostly short city-style strings with
    // a longer tail every 13th row.
    let values: Vec<String> = (0..rows)
        .map(|i| {
            if i % 13 == 0 {
                format!("metropolitan-area-{}-{}", i % 997, i % 7)
            } else {
                format!("city-{:04}", i % 997)
            }
        })
        .collect();
    let arena_col = Column::from_strings(&values);
    let arc_col: Vec<Arc<str>> = values.iter().map(|s| Arc::from(s.as_str())).collect();

    // Index vectors: an FK-join-shaped one (ascending runs of ~8 rows
    // per matched key) and a pseudo-random one (no runs to collapse).
    let mut join_runs: Vec<usize> = Vec::with_capacity(rows);
    let mut start = 0usize;
    while join_runs.len() < rows {
        let run = 4 + (start % 9);
        for r in 0..run.min(rows - join_runs.len()) {
            join_runs.push((start + r) % rows);
        }
        start = (start + run * 7) % rows;
    }
    let random: Vec<usize> = (0..rows)
        .map(|i| (i.wrapping_mul(2654435761)) % rows)
        .collect();

    let mut results = Vec::new();
    let mut push = |name: &str, arc_ms: f64, arena_ms: f64| {
        results.push(StringBenchResult {
            name: name.to_string(),
            arc_ms,
            arena_ms,
            speedup: arc_ms / arena_ms,
        });
    };

    for (name, indices) in [
        ("utf8_take_join_runs", &join_runs),
        ("utf8_take_random", &random),
    ] {
        let gathered = arena_col.take(indices).unwrap();
        let reference = gather_arcs_ref(&arc_col, indices);
        assert_eq!(gathered.len(), reference.len(), "{name}: length");
        for (i, r) in reference.iter().enumerate() {
            assert_eq!(gathered.get(i), Scalar::Str(r.to_string()), "{name}: row {i}");
        }
        let (arc_ms, arena_ms) = best_of_pair_ms(
            iters,
            || {
                // Same bounds scan Column::take performs.
                assert!(indices.iter().all(|&i| i < arc_col.len()));
                black_box(gather_arcs_ref(black_box(&arc_col), indices));
            },
            || {
                black_box(black_box(&arena_col).take(indices).unwrap());
            },
        );
        push(name, arc_ms, arena_ms);
    }

    // Filter: alternating keep mask (runs of one — per-row memcpy vs
    // per-row refcount bump).
    let mask = Bitmap::from_iter((0..rows).map(|i| i % 2 == 0));
    let (arc_ms, arena_ms) = best_of_pair_ms(
        iters,
        || {
            let mut out: Vec<Arc<str>> = Vec::with_capacity(rows / 2);
            mask.for_each_set(|i| out.push(Arc::clone(&arc_col[i])));
            black_box(out);
        },
        || {
            black_box(black_box(&arena_col).filter(&mask).unwrap());
        },
    );
    push("utf8_filter_alternate", arc_ms, arena_ms);

    // Slice (head-style): arena slices share the byte buffer zero-copy,
    // the Arc representation clones a pointer per row.
    let head_loops = 200usize;
    let slice_len = (rows / 2).max(1);
    let (arc_ms, arena_ms) = best_of_pair_ms(
        iters,
        || {
            for k in 0..head_loops {
                let s = k.min(rows - slice_len.min(rows));
                black_box(arc_col[s..s + slice_len].to_vec());
            }
        },
        || {
            for k in 0..head_loops {
                let s = k.min(rows - slice_len.min(rows));
                black_box(black_box(&arena_col).slice(s, slice_len));
            }
        },
    );
    push("utf8_slice_half_x200", arc_ms, arena_ms);

    results
}

/// Run the morsel-parallel kernels at one worker vs `threads` workers —
/// the per-PR parallel-scaling trajectory. Each pair is checked for
/// result equivalence before timing (float aggregates within 1e-12
/// relative, everything else exact).
pub fn run_parallel_suite(rows: usize, iters: usize, threads: usize) -> Vec<ParallelBenchResult> {
    let frame = kernel_frame(rows);
    let pool1 = WorkerPool::new(1);
    let pooln = WorkerPool::new(threads);
    let mut results = Vec::new();
    let mut push = |name: &str, t1: f64, tn: f64| {
        results.push(ParallelBenchResult {
            name: name.to_string(),
            t1_ms: t1,
            tn_ms: tn,
            threads,
            speedup: t1 / tn,
        });
    };

    // -- group-by ------------------------------------------------------
    let spec = GroupBySpec {
        keys: vec!["key".into()],
        value: "fare".into(),
        agg: AggKind::Sum,
    };
    assert_frame_close(
        &group_by_par(&frame, &spec, &pooln).unwrap(),
        &group_by(&frame, &spec).unwrap(),
        1e-12,
        "par groupby",
    );
    let (t1, tn) = best_of_pair_ms(
        iters,
        || {
            black_box(group_by_par(black_box(&frame), &spec, &pool1).unwrap());
        },
        || {
            black_box(group_by_par(black_box(&frame), &spec, &pooln).unwrap());
        },
    );
    push("par_groupby_i64key_sum_f64", t1, tn);

    let multi = GroupBySpec {
        keys: vec!["vendor".into(), "key".into()],
        value: "tip".into(),
        agg: AggKind::Mean,
    };
    let (t1, tn) = best_of_pair_ms(
        iters,
        || {
            black_box(group_by_par(black_box(&frame), &multi, &pool1).unwrap());
        },
        || {
            black_box(group_by_par(black_box(&frame), &multi, &pooln).unwrap());
        },
    );
    push("par_groupby_multikey_mean_f64", t1, tn);

    // -- join ----------------------------------------------------------
    let right = DataFrame::new(vec![
        Series::new("key", Column::from_i64((0..100).collect())),
        Series::new(
            "title",
            Column::from_strings((0..100).map(|k| format!("key-title-{k}"))),
        ),
        Series::new("val", Column::from_f64((0..100).map(|k| k as f64 * 0.5).collect())),
    ])
    .unwrap();
    let on_key = vec!["key".to_string()];
    assert_frame_close(
        &merge_par(&frame, &right, &on_key, JoinKind::Inner, &pooln).unwrap(),
        &merge(&frame, &right, &on_key, JoinKind::Inner).unwrap(),
        0.0,
        "par join",
    );
    let (t1, tn) = best_of_pair_ms(
        iters,
        || {
            black_box(merge_par(black_box(&frame), &right, &on_key, JoinKind::Inner, &pool1).unwrap());
        },
        || {
            black_box(merge_par(black_box(&frame), &right, &on_key, JoinKind::Inner, &pooln).unwrap());
        },
    );
    push("par_join_inner_i64key", t1, tn);

    // -- sort ----------------------------------------------------------
    let sort_single = SortOptions::single("fare", true);
    let sort_multi = SortOptions {
        by: vec!["vendor".into(), "fare".into()],
        ascending: vec![true, false],
    };
    for (name, options) in [
        ("par_sort_single_f64", &sort_single),
        ("par_sort_multikey_str_f64", &sort_multi),
    ] {
        assert_frame_close(
            &sort_values_par(&frame, options, &pooln).unwrap(),
            &sort_values(&frame, options).unwrap(),
            0.0,
            name,
        );
        let (t1, tn) = best_of_pair_ms(
            iters,
            || {
                black_box(sort_values_par(black_box(&frame), options, &pool1).unwrap());
            },
            || {
                black_box(sort_values_par(black_box(&frame), options, &pooln).unwrap());
            },
        );
        push(name, t1, tn);
    }

    // -- CSV ingestion -------------------------------------------------
    let csv_path = std::env::temp_dir().join(format!(
        "lafp-parallel-bench-{rows}-{}.csv",
        std::process::id()
    ));
    {
        use std::io::Write as _;
        let mut w = std::io::BufWriter::new(std::fs::File::create(&csv_path).unwrap());
        writeln!(w, "id,fare,city,ok").unwrap();
        for i in 0..rows {
            let fare = if i % 50 == 0 {
                String::new()
            } else {
                format!("{:.2}", (i % 977) as f64 * 0.13)
            };
            if i % 7 == 0 {
                writeln!(w, "{i},{fare},\"City, {}\",true", i % 80).unwrap();
            } else {
                writeln!(w, "{i},{fare},City{},false", i % 80).unwrap();
            }
        }
        w.flush().unwrap();
    }
    let csv_options = CsvOptions::new();
    assert_frame_close(
        &read_csv_par(&csv_path, &csv_options, &pooln).unwrap(),
        &read_csv(&csv_path, &csv_options).unwrap(),
        0.0,
        "par csv",
    );
    let (t1, tn) = best_of_pair_ms(
        iters,
        || {
            black_box(read_csv_par(black_box(&csv_path), &csv_options, &pool1).unwrap());
        },
        || {
            black_box(read_csv_par(black_box(&csv_path), &csv_options, &pooln).unwrap());
        },
    );
    push("par_read_csv_mixed", t1, tn);
    std::fs::remove_file(&csv_path).ok();

    results
}

// ---------------------------------------------------------------------------
// Pipelined-executor benches (scan overlap vs blocking drain)
// ---------------------------------------------------------------------------

/// Run streaming Dask queries with the CSV scan overlapped against
/// downstream operator morsels (`pipeline_scan = true`, the default)
/// vs the blocking parse-everything-then-drain schedule, on the same
/// engine pool. Both sides are checked for row-hash equality before
/// timing. On a single-core host the overlap cannot beat the blocking
/// drain; the artifact still records the trajectory point.
pub fn run_pipeline_suite(rows: usize, iters: usize, threads: usize) -> Vec<PipelineBenchResult> {
    // The scan source: mixed dtypes with a low-cardinality group key, a
    // float measure, and a quoted-comma string column so the parse side
    // does realistic work.
    let csv_path = std::env::temp_dir().join(format!(
        "lafp-pipeline-bench-{rows}-{}.csv",
        std::process::id()
    ));
    {
        use std::io::Write as _;
        let mut w = std::io::BufWriter::new(std::fs::File::create(&csv_path).unwrap());
        writeln!(w, "id,day,fare,city,ok").unwrap();
        for i in 0..rows {
            let fare = if i % 50 == 0 {
                String::new()
            } else {
                format!("{:.2}", (i % 977) as f64 * 0.13)
            };
            if i % 7 == 0 {
                writeln!(w, "{i},{},{fare},\"City, {}\",true", i % 31, i % 80).unwrap();
            } else {
                writeln!(w, "{i},{},{fare},City{},false", i % 31, i % 80).unwrap();
            }
        }
        w.flush().unwrap();
    }

    // Build the query graph on a fresh engine; morsels small enough that
    // the scan emits many chunks for the pipeline to overlap.
    let chunk_rows = (rows / 64).clamp(1024, 65_536);
    let build = |e: &mut DaskEngine, query: &str| {
        let s = e.add(
            DaskOp::ReadCsv {
                path: csv_path.clone(),
                options: CsvOptions::new(),
                limit: None,
            },
            vec![],
        );
        match query {
            "filter_groupby" => {
                let f = e.add(
                    DaskOp::Filter(Expr::col("fare").gt(Expr::lit_float(10.0))),
                    vec![s],
                );
                e.add(
                    DaskOp::GroupByAgg(GroupBySpec {
                        keys: vec!["day".into()],
                        value: "fare".into(),
                        agg: AggKind::Sum,
                    }),
                    vec![f],
                )
            }
            "groupby_multikey" => e.add(
                DaskOp::GroupByAgg(GroupBySpec {
                    keys: vec!["city".into(), "day".into()],
                    value: "fare".into(),
                    agg: AggKind::Mean,
                }),
                vec![s],
            ),
            _ => unreachable!(),
        }
    };
    let run = |query: &str, pipelined: bool| -> DataFrame {
        let mut e = DaskEngine::with_threads(MemoryTracker::unlimited(), chunk_rows, threads);
        e.pipeline_scan = pipelined;
        let root = build(&mut e, query);
        let (v, _r) = e.compute(root).unwrap();
        v.into_frame().unwrap()
    };

    let mut results = Vec::new();
    for query in ["filter_groupby", "groupby_multikey"] {
        let piped = run(query, true);
        let blocking = run(query, false);
        assert_eq!(
            piped.row_hashes(&[]).unwrap(),
            blocking.row_hashes(&[]).unwrap(),
            "pipe_scan_{query}: pipelined vs blocking result"
        );
        let (blocking_ms, pipelined_ms) = best_of_pair_ms(
            iters,
            || {
                black_box(run(black_box(query), false));
            },
            || {
                black_box(run(black_box(query), true));
            },
        );
        results.push(PipelineBenchResult {
            name: format!("pipe_scan_{query}"),
            blocking_ms,
            pipelined_ms,
            threads,
            speedup: blocking_ms / pipelined_ms,
        });
    }
    std::fs::remove_file(&csv_path).ok();
    results
}

// ---------------------------------------------------------------------------
// Chain-fusion benches (fused per-morsel operator runs vs one frame per op)
// ---------------------------------------------------------------------------

/// Run streaming Dask queries with maximal row-local operator runs fused
/// into a single pass per morsel (`fuse_chains = true`, the default) vs
/// the one-intermediate-frame-per-operator schedule, on the same engine
/// pool. The source is a pre-materialized frame scattered into morsels
/// (`FromFrame`), so the race times the chains themselves rather than
/// the CSV parse that dominates a scan-fed query on both sides alike.
/// Both sides are checked for result equality before timing, and the
/// fused side is checked to materialize zero intermediate frames.
pub fn run_fusion_suite(rows: usize, iters: usize, threads: usize) -> Vec<FusionBenchResult> {
    // A fat source frame in the paper's taxi-scan shape — a
    // low-cardinality group key, a float measure with nulls, and seven
    // passenger columns the canonical chains never read, so the backward
    // liveness pass has real dead weight to prune (the unfused path must
    // gather every column at every hop) — parsed once up front and
    // shared across runs.
    let csv_path = std::env::temp_dir().join(format!(
        "lafp-fusion-bench-{rows}-{}.csv",
        std::process::id()
    ));
    {
        use std::io::Write as _;
        let mut w = std::io::BufWriter::new(std::fs::File::create(&csv_path).unwrap());
        writeln!(w, "id,day,fare,city,ok,lon,lat,tip,vendor,flag").unwrap();
        for i in 0..rows {
            let fare = if i % 50 == 0 {
                String::new()
            } else {
                format!("{:.2}", (i % 977) as f64 * 0.13)
            };
            let city = if i % 7 == 0 {
                format!("\"City, {}\"", i % 80)
            } else {
                format!("City{}", i % 80)
            };
            writeln!(
                w,
                "{i},{},{fare},{city},{},{:.4},{:.4},{:.2},V{},{}",
                i % 31,
                i % 2 == 0,
                -74.0 + (i % 500) as f64 * 0.001,
                40.7 + (i % 300) as f64 * 0.001,
                (i % 53) as f64 * 0.25,
                i % 5,
                i % 97,
            )
            .unwrap();
        }
        w.flush().unwrap();
    }
    let source = Arc::new(read_csv(&csv_path, &CsvOptions::new()).unwrap());
    std::fs::remove_file(&csv_path).ok();

    let chunk_rows = (rows / 64).clamp(1024, 65_536);
    let build = |e: &mut DaskEngine, query: &str| {
        let s = e.add(DaskOp::FromFrame(Arc::clone(&source)), vec![]);
        match query {
            // The canonical acceptance chain: filter -> with_column ->
            // select -> group-by, all absorbed into one fused pass.
            "filter_withcol_select_groupby" => {
                let f = e.add(
                    DaskOp::Filter(Expr::col("fare").gt(Expr::lit_float(10.0))),
                    vec![s],
                );
                let w = e.add(
                    DaskOp::WithColumn(
                        "fare2".into(),
                        Expr::col("fare").arith(ArithOp::Mul, Expr::lit_float(1.1)),
                    ),
                    vec![f],
                );
                let p = e.add(DaskOp::Select(vec!["day".into(), "fare2".into()]), vec![w]);
                e.add(
                    DaskOp::GroupByAgg(GroupBySpec {
                        keys: vec!["day".into()],
                        value: "fare2".into(),
                        agg: AggKind::Sum,
                    }),
                    vec![p],
                )
            }
            // Adjacent filters collapse into one selection bitmap, fed
            // straight into a scalar reduction — no gather at all.
            "two_filters_reduce" => {
                let f1 = e.add(
                    DaskOp::Filter(Expr::col("fare").gt(Expr::lit_float(10.0))),
                    vec![s],
                );
                let f2 = e.add(
                    DaskOp::Filter(Expr::col("day").lt(Expr::lit_int(20))),
                    vec![f1],
                );
                e.add(
                    DaskOp::Reduce {
                        column: "fare".into(),
                        agg: AggKind::Sum,
                    },
                    vec![f2],
                )
            }
            // A fused chain whose output is a materialized frame: the
            // single gather at the chain tail replaces three per-op ones.
            "filter_withcol_drop_frame" => {
                let f = e.add(
                    DaskOp::Filter(Expr::col("fare").gt(Expr::lit_float(100.0))),
                    vec![s],
                );
                let w = e.add(
                    DaskOp::WithColumn(
                        "half".into(),
                        Expr::col("fare").arith(ArithOp::Mul, Expr::lit_float(0.5)),
                    ),
                    vec![f],
                );
                e.add(
                    DaskOp::DropColumns(vec!["city".into(), "ok".into()]),
                    vec![w],
                )
            }
            _ => unreachable!(),
        }
    };
    let fingerprint = |v: DaskValue| -> String {
        match v {
            DaskValue::Frame(f) => {
                format!("{:?}:{:?}", f.column_names(), f.row_hashes(&[]).unwrap())
            }
            DaskValue::Scalar(s) => format!("{s:?}"),
        }
    };
    let run = |query: &str, fused: bool| -> String {
        let mut e = DaskEngine::with_threads(MemoryTracker::unlimited(), chunk_rows, threads);
        e.fuse_chains = fused;
        let root = build(&mut e, query);
        let (v, _r) = e.compute(root).unwrap();
        if fused {
            let stats = e.fusion_stats();
            assert!(stats.chains >= 1, "fuse_{query}: chain not planned");
            assert_eq!(
                stats.intermediate_frames, 0,
                "fuse_{query}: fused run materialized intermediate frames"
            );
        }
        fingerprint(v)
    };

    let mut results = Vec::new();
    for query in [
        "filter_withcol_select_groupby",
        "two_filters_reduce",
        "filter_withcol_drop_frame",
    ] {
        let fused = run(query, true);
        let unfused = run(query, false);
        assert_eq!(fused, unfused, "fuse_{query}: fused vs unfused result");
        let (unfused_ms, fused_ms) = best_of_pair_ms(
            iters,
            || {
                black_box(run(black_box(query), false));
            },
            || {
                black_box(run(black_box(query), true));
            },
        );
        results.push(FusionBenchResult {
            name: format!("fuse_{query}"),
            unfused_ms,
            fused_ms,
            threads,
            speedup: unfused_ms / fused_ms,
        });
    }
    results
}

// ---------------------------------------------------------------------------
// Encoded-execution benches (Dict/Rle kernels vs decode-then-compute)
// ---------------------------------------------------------------------------

/// Race kernels operating directly on encoded columns against the
/// decode-then-compute strategy on the same logical data: a
/// low-cardinality dictionary key through the code-keyed dense group-by
/// and the rank-table sort, a long-run RLE column through the
/// once-per-run filter, and an encoded frame through the LAFPSPL1 spill
/// round-trip. Each pair is checked for result equality before timing,
/// and the decode cost is *inside* the decoded side's timed region —
/// that is the strategy an encoding-oblivious engine actually pays.
pub fn run_encoding_suite(rows: usize, iters: usize) -> Vec<EncodingBenchResult> {
    use lafp_columnar::spill::{spill_frame, SpillDir};

    // Low-cardinality string key (32 merchants, padded so the decoded
    // arena is fat) with an i64 measure — the paper's groupby shape.
    let keys: Vec<String> = (0..rows)
        .map(|i| format!("merchant-{:04}-of-the-fleet", i % 32))
        .collect();
    let plain_key = Column::from_strings(&keys);
    drop(keys);
    let dict_key =
        lafp_columnar::encoding::dict_encode(&plain_key).expect("32 entries fit the cap");
    let values = Column::from_opt_i64((0..rows).map(|i| Some((i % 1009) as i64)).collect());
    let enc_frame = DataFrame::new(vec![
        Series::new("k", dict_key.clone()),
        Series::new("v", values.clone()),
    ])
    .unwrap();
    let spec = GroupBySpec {
        keys: vec!["k".into()],
        value: "v".into(),
        agg: AggKind::Sum,
    };
    let decode_then_group = |frame: &DataFrame| -> DataFrame {
        let plain = DataFrame::new(vec![
            Series::new("k", frame.column("k").unwrap().column().decode()),
            Series::new("v", frame.column("v").unwrap().column().clone()),
        ])
        .unwrap();
        group_by(&plain, &spec).unwrap()
    };

    let mut results = Vec::new();
    let mut race = |name: &str, mut decoded: Box<dyn FnMut()>, mut encoded: Box<dyn FnMut()>| {
        let (decoded_ms, encoded_ms) = best_of_pair_ms(iters, &mut *decoded, &mut *encoded);
        results.push(EncodingBenchResult {
            name: name.into(),
            decoded_ms,
            encoded_ms,
            speedup: decoded_ms / encoded_ms,
        });
    };

    // Group-by: dense code-indexed states vs decode + hash-table probe.
    assert_eq!(
        group_by(&enc_frame, &spec).unwrap().row_hashes(&[]).unwrap(),
        decode_then_group(&enc_frame).row_hashes(&[]).unwrap(),
        "enc_groupby_dict_codes: encoded result diverges"
    );
    {
        let f = enc_frame.clone();
        let g = enc_frame.clone();
        let gspec = spec.clone();
        race(
            "enc_groupby_dict_codes",
            Box::new(move || {
                black_box(decode_then_group(black_box(&f)));
            }),
            Box::new(move || {
                black_box(group_by(black_box(&g), &gspec).unwrap());
            }),
        );
    }

    // Sort: dictionary rank table vs decode + byte-wise comparator.
    let sort_opts = SortOptions {
        by: vec!["k".into()],
        ascending: vec![true],
    };
    let plain_frame = DataFrame::new(vec![
        Series::new("k", plain_key.clone()),
        Series::new("v", values.clone()),
    ])
    .unwrap();
    assert_eq!(
        sort_values(&enc_frame, &sort_opts)
            .unwrap()
            .column("v")
            .unwrap()
            .column(),
        sort_values(&plain_frame, &sort_opts)
            .unwrap()
            .column("v")
            .unwrap()
            .column(),
        "enc_sort_dict_ranks: encoded sort diverges"
    );
    {
        let f = enc_frame.clone();
        let g = enc_frame.clone();
        let (a, b) = (sort_opts.clone(), sort_opts);
        race(
            "enc_sort_dict_ranks",
            Box::new(move || {
                let plain = DataFrame::new(vec![
                    Series::new("k", f.column("k").unwrap().column().decode()),
                    Series::new("v", f.column("v").unwrap().column().clone()),
                ])
                .unwrap();
                black_box(sort_values(black_box(&plain), &a).unwrap());
            }),
            Box::new(move || {
                black_box(sort_values(black_box(&g), &b).unwrap());
            }),
        );
    }

    // Filter: one predicate evaluation per run, run-aligned bitmap
    // append vs decode + per-row comparison. Runs of ~1000 rows.
    let run_len = (rows / 1024).max(2);
    let rle = {
        let col = Column::from_opt_i64(
            (0..rows).map(|i| Some(((i / run_len) % 16) as i64)).collect(),
        );
        lafp_columnar::encoding::rle_encode(&col).expect("long runs encode")
    };
    let pivot = Scalar::Int(8);
    {
        let enc_mask = rle.compare_scalar(CmpOp::Lt, &pivot).unwrap();
        let plain_mask = rle.decode().compare_scalar(CmpOp::Lt, &pivot).unwrap();
        assert_eq!(
            enc_mask.count_set(),
            plain_mask.count_set(),
            "enc_filter_rle_runs: encoded mask diverges"
        );
        assert_eq!(
            rle.filter(&enc_mask).unwrap().decode(),
            rle.decode().filter(&plain_mask).unwrap(),
            "enc_filter_rle_runs: encoded filter diverges"
        );
    }
    {
        let (a, b) = (rle.clone(), rle.clone());
        let (pa, pb) = (pivot.clone(), pivot);
        race(
            "enc_filter_rle_runs",
            Box::new(move || {
                let plain = a.decode();
                let mask = plain.compare_scalar(CmpOp::Lt, &pa).unwrap();
                black_box(plain.filter(black_box(&mask)).unwrap());
            }),
            Box::new(move || {
                let mask = b.compare_scalar(CmpOp::Lt, &pb).unwrap();
                black_box(b.filter(black_box(&mask)).unwrap());
            }),
        );
    }

    // Spill: LAFPSPL1 serializes codes + dictionary / run list natively,
    // so the encoded round-trip moves far fewer bytes than the decoded
    // frame's arena. Round-trip equality doubles as the format check.
    let spill_src = DataFrame::new(vec![
        Series::new("k", dict_key),
        Series::new("r", rle),
    ])
    .unwrap();
    let spill_plain = DataFrame::new(vec![
        Series::new("k", spill_src.column("k").unwrap().column().decode()),
        Series::new("r", spill_src.column("r").unwrap().column().decode()),
    ])
    .unwrap();
    {
        let dir = SpillDir::in_temp();
        let file = spill_frame(&dir, &spill_src).unwrap();
        let back = file.read_all().unwrap();
        assert_eq!(
            back[0].column("k").unwrap().column(),
            spill_src.column("k").unwrap().column(),
            "encoded spill must round-trip bit-identically"
        );
        let plain_file = spill_frame(&dir, &spill_plain).unwrap();
        assert!(
            file.payload_bytes() < plain_file.payload_bytes(),
            "encoded spill should move fewer bytes ({} vs {})",
            file.payload_bytes(),
            plain_file.payload_bytes()
        );
    }
    {
        let dir = Arc::new(SpillDir::in_temp());
        let (a, b) = (spill_plain, spill_src);
        race(
            "enc_spill_roundtrip",
            Box::new({
                let dir = Arc::clone(&dir);
                move || {
                    let file = spill_frame(&dir, &a).unwrap();
                    black_box(file.read_all().unwrap());
                }
            }),
            Box::new(move || {
                let file = spill_frame(&dir, &b).unwrap();
                black_box(file.read_all().unwrap());
            }),
        );
    }

    results
}

/// The per-suite result slices of one bench run, bundled for rendering.
/// Optional suites left empty are omitted from the artifact.
#[derive(Debug, Clone, Copy, Default)]
pub struct BenchSections<'a> {
    /// The seed-vs-vectorized kernel races (the mandatory section).
    pub benches: &'a [BenchResult],
    /// The arena-vs-`Arc<str>` string kernel races.
    pub strings: &'a [StringBenchResult],
    /// The 1-worker-vs-N pool kernel races.
    pub parallel: &'a [ParallelBenchResult],
    /// The pipelined-scan-vs-blocking-drain query races.
    pub pipeline: &'a [PipelineBenchResult],
    /// The fused-chain-vs-per-operator query races.
    pub fusion: &'a [FusionBenchResult],
    /// The encoded-kernel-vs-decode-then-compute races.
    pub encoding: &'a [EncodingBenchResult],
}

/// Render the results as the `BENCH_PR<N>.json` trajectory artifact.
pub fn render_json(pr: u32, rows: usize, iters: usize, sections: &BenchSections<'_>) -> String {
    let BenchSections {
        benches: results,
        strings,
        parallel,
        pipeline,
        fusion,
        encoding,
    } = *sections;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"pr\": {pr},\n"));
    out.push_str(&format!("  \"rows\": {rows},\n"));
    out.push_str(&format!("  \"iters\": {iters},\n"));
    out.push_str(&format!(
        "  \"host_threads\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    out.push_str(
        "  \"reference\": \"seed-era (PR 1) scalar-boxed kernels, re-implemented in \
         lafp-bench::kernel_bench and raced in the same process\",\n",
    );
    // Render each present section as `"key": [rows]`, then join — one
    // code path no matter which optional sections exist.
    let section = |key: &str, rows: &[String]| -> String {
        format!("  \"{key}\": [\n{}\n  ]", rows.join(",\n"))
    };
    let mut sections: Vec<String> = Vec::new();
    sections.push(section(
        "benches",
        &results
            .iter()
            .map(|r| {
                format!(
                    "    {{\"name\": \"{}\", \"seed_ms\": {:.3}, \"vectorized_ms\": {:.3}, \
                     \"speedup\": {:.2}}}",
                    r.name, r.seed_ms, r.vectorized_ms, r.speedup
                )
            })
            .collect::<Vec<_>>(),
    ));
    if !strings.is_empty() {
        sections.push(section(
            "strings",
            &strings
                .iter()
                .map(|r| {
                    format!(
                        "    {{\"name\": \"{}\", \"arc_ms\": {:.3}, \"arena_ms\": {:.3}, \
                         \"speedup\": {:.2}}}",
                        r.name, r.arc_ms, r.arena_ms, r.speedup
                    )
                })
                .collect::<Vec<_>>(),
        ));
    }
    if !parallel.is_empty() {
        sections.push(section(
            "parallel",
            &parallel
                .iter()
                .map(|r| {
                    format!(
                        "    {{\"name\": \"{}\", \"t1_ms\": {:.3}, \"t{}_ms\": {:.3}, \
                         \"threads\": {}, \"speedup\": {:.2}}}",
                        r.name, r.t1_ms, r.threads, r.tn_ms, r.threads, r.speedup
                    )
                })
                .collect::<Vec<_>>(),
        ));
    }
    if !pipeline.is_empty() {
        sections.push(section(
            "pipeline",
            &pipeline
                .iter()
                .map(|r| {
                    format!(
                        "    {{\"name\": \"{}\", \"blocking_ms\": {:.3}, \"pipelined_ms\": {:.3}, \
                         \"threads\": {}, \"speedup\": {:.2}}}",
                        r.name, r.blocking_ms, r.pipelined_ms, r.threads, r.speedup
                    )
                })
                .collect::<Vec<_>>(),
        ));
    }
    if !fusion.is_empty() {
        sections.push(section(
            "fusion",
            &fusion
                .iter()
                .map(|r| {
                    format!(
                        "    {{\"name\": \"{}\", \"unfused_ms\": {:.3}, \"fused_ms\": {:.3}, \
                         \"threads\": {}, \"speedup\": {:.2}}}",
                        r.name, r.unfused_ms, r.fused_ms, r.threads, r.speedup
                    )
                })
                .collect::<Vec<_>>(),
        ));
    }
    if !encoding.is_empty() {
        sections.push(section(
            "encoding",
            &encoding
                .iter()
                .map(|r| {
                    format!(
                        "    {{\"name\": \"{}\", \"decoded_ms\": {:.3}, \"encoded_ms\": {:.3}, \
                         \"speedup\": {:.2}}}",
                        r.name, r.decoded_ms, r.encoded_ms, r.speedup
                    )
                })
                .collect::<Vec<_>>(),
        ));
    }
    out.push_str(&sections.join(",\n"));
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke: the suite runs at a small size and every pair agrees (the
    /// equivalence asserts inside `run_suite` are the real test).
    #[test]
    fn suite_smoke() {
        let results = run_suite(2_000, 1);
        assert!(results.len() >= 15);
        for r in &results {
            assert!(r.seed_ms >= 0.0 && r.vectorized_ms > 0.0, "{}", r.name);
        }
        let strings = run_string_suite(2_000, 1);
        assert_eq!(strings.len(), 4);
        for r in &strings {
            assert!(r.arc_ms >= 0.0 && r.arena_ms > 0.0, "{}", r.name);
        }
        let parallel = run_parallel_suite(2_000, 1, 2);
        assert_eq!(parallel.len(), 6);
        for r in &parallel {
            assert!(r.t1_ms > 0.0 && r.tn_ms > 0.0, "{}", r.name);
        }
        let pipeline = run_pipeline_suite(2_000, 1, 2);
        assert_eq!(pipeline.len(), 2);
        for r in &pipeline {
            assert!(r.blocking_ms > 0.0 && r.pipelined_ms > 0.0, "{}", r.name);
        }
        let fusion = run_fusion_suite(2_000, 1, 2);
        assert_eq!(fusion.len(), 3);
        for r in &fusion {
            assert!(r.unfused_ms > 0.0 && r.fused_ms > 0.0, "{}", r.name);
        }
        let encoding = run_encoding_suite(4_096, 1);
        assert_eq!(encoding.len(), 4);
        for r in &encoding {
            assert!(r.decoded_ms > 0.0 && r.encoded_ms > 0.0, "{}", r.name);
        }
        let all = BenchSections {
            benches: &results,
            strings: &strings,
            parallel: &parallel,
            pipeline: &pipeline,
            fusion: &fusion,
            encoding: &encoding,
        };
        let json = render_json(4, 2_000, 1, &all);
        assert!(json.contains("\"benches\""));
        assert!(json.contains("groupby_i64key_sum_f64"));
        assert!(json.contains("join_inner_i64key"));
        assert!(json.contains("sort_single_f64"));
        assert!(json.contains("read_csv_mixed"));
        assert!(json.contains("\"strings\""));
        assert!(json.contains("utf8_take_join_runs"));
        assert!(json.contains("\"parallel\""));
        assert!(json.contains("par_read_csv_mixed"));
        assert!(json.contains("\"host_threads\""));
        assert!(json.contains("\"pipeline\""));
        assert!(json.contains("pipe_scan_filter_groupby"));
        assert!(json.contains("\"fusion\""));
        assert!(json.contains("fuse_filter_withcol_select_groupby"));
        assert!(json.contains("\"encoding\""));
        assert!(json.contains("enc_groupby_dict_codes"));
        assert!(json.contains("enc_filter_rle_runs"));
        // Every section shape renders valid JSON-ish structure.
        let no_strings = render_json(4, 2_000, 1, &BenchSections { strings: &[], ..all });
        assert!(!no_strings.contains("\"strings\""));
        assert!(no_strings.contains("\"parallel\""));
        let no_parallel = render_json(
            4,
            2_000,
            1,
            &BenchSections {
                benches: &results,
                strings: &strings,
                ..Default::default()
            },
        );
        assert!(no_parallel.contains("\"strings\""));
        assert!(!no_parallel.contains("\"parallel\""));
        assert!(!no_parallel.contains("\"pipeline\""));
        assert!(!no_parallel.contains("\"fusion\""));
        assert!(!no_parallel.contains("\"encoding\""));
    }
}
