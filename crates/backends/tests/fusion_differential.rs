//! Differential suite pinning **fused operator chains** to the unfused
//! streaming executor.
//!
//! Every case builds the same Dask graph twice per thread count (1, 2
//! and 8 workers) — once with `fuse_chains` on, once off — and demands
//! bit-identical results (frames compared by ordered row hashes, so
//! partition arrival order is part of the contract). The cases cover
//! the hostile corners from the PR checklist: null-heavy columns, empty
//! morsels, head limits stopping a chain mid-partition, and a chain
//! running under a squeezed spill budget.

use lafp_backends::dask::{DaskEngine, DaskNodeId, DaskOp, DaskValue};
use lafp_backends::MemoryTracker;
use lafp_columnar::column::{ArithOp, Column};
use lafp_columnar::csv::CsvOptions;
use lafp_columnar::df;
use lafp_columnar::groupby::GroupBySpec;
use lafp_columnar::sort::SortOptions;
use lafp_columnar::{AggKind, HeapSize, Scalar};
use lafp_expr::Expr;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const THREADS: &[usize] = &[1, 2, 8];
const CHUNK_ROWS: usize = 33;

fn temp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("lafp-fusion-differential");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "{tag}-{}.csv",
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

/// Null-heavy CSV: every third fare and every fourth day cell is empty.
fn null_heavy_csv(rows: usize) -> PathBuf {
    let path = temp_path("nulls");
    let mut text = String::from("fare,day,extra\n");
    for i in 0..rows {
        let fare = if i % 3 == 0 {
            String::new()
        } else {
            format!("{}", i as f64 - 3.0)
        };
        let day = if i % 4 == 0 {
            String::new()
        } else {
            format!("{}", i % 7)
        };
        text.push_str(&format!("{fare},{day},blob-{i}\n"));
    }
    std::fs::write(&path, text).unwrap();
    path
}

fn dense_csv(rows: usize) -> PathBuf {
    let frame = df![
        (
            "fare",
            Column::from_f64((0..rows).map(|i| i as f64 - 3.0).collect())
        ),
        (
            "day",
            Column::from_i64((0..rows).map(|i| (i % 7) as i64).collect())
        ),
        (
            "extra",
            Column::from_strings((0..rows).map(|i| format!("blob-{i}")).collect::<Vec<_>>())
        ),
    ];
    let path = temp_path("dense");
    lafp_columnar::csv::write_csv(&frame, &path).unwrap();
    path
}

fn scan(e: &mut DaskEngine, path: &Path) -> DaskNodeId {
    e.add(
        DaskOp::ReadCsv {
            path: path.to_path_buf(),
            options: CsvOptions::new(),
            limit: None,
        },
        vec![],
    )
}

/// Order-sensitive fingerprint of a computed value.
fn fingerprint(v: DaskValue) -> String {
    match v {
        DaskValue::Scalar(s) => format!("scalar:{s}"),
        DaskValue::Frame(f) => {
            let names = f.column_names().join(",");
            format!("frame:[{names}]:{:?}", f.row_hashes(&[]).unwrap())
        }
    }
}

/// Run `build` fused and unfused at 1/2/8 threads; every combination
/// must produce the same value. `tracker` is invoked per run so budgeted
/// cases start from a clean ledger.
fn assert_differential(
    tracker: impl Fn() -> Arc<MemoryTracker>,
    build: impl Fn(&mut DaskEngine) -> DaskNodeId,
) {
    let mut reference: Option<String> = None;
    for &threads in THREADS {
        for fuse in [false, true] {
            let mut e = DaskEngine::with_threads(tracker(), CHUNK_ROWS, threads);
            e.fuse_chains = fuse;
            let root = build(&mut e);
            let (v, _r) = e.compute(root).unwrap();
            let got = fingerprint(v);
            match &reference {
                None => reference = Some(got),
                Some(expect) => assert_eq!(
                    &got, expect,
                    "fuse={fuse} threads={threads} diverged from the unfused single-thread run"
                ),
            }
        }
    }
}

#[test]
fn null_heavy_chain_matches_unfused() {
    let path = null_heavy_csv(700);
    assert_differential(MemoryTracker::unlimited, |e| {
        let s = scan(e, &path);
        let f = e.add(
            DaskOp::Filter(Expr::col("fare").gt(Expr::lit_float(0.0))),
            vec![s],
        );
        let w = e.add(
            DaskOp::WithColumn(
                "fare2".into(),
                Expr::col("fare").arith(ArithOp::Mul, Expr::lit_float(2.0)),
            ),
            vec![f],
        );
        let fill = e.add(DaskOp::FillNa(Scalar::Float(-1.0)), vec![w]);
        let sel = e.add(DaskOp::Select(vec!["day".into(), "fare2".into()]), vec![fill]);
        e.add(
            DaskOp::GroupByAgg(GroupBySpec {
                keys: vec!["day".into()],
                value: "fare2".into(),
                agg: AggKind::Sum,
            }),
            vec![sel],
        )
    });
}

#[test]
fn null_keys_reach_the_accumulator_identically() {
    // No fillna: null group keys flow into the fused masked update and
    // the unfused compacted update alike.
    let path = null_heavy_csv(500);
    assert_differential(MemoryTracker::unlimited, |e| {
        let s = scan(e, &path);
        let f = e.add(
            DaskOp::Filter(Expr::col("fare").lt(Expr::lit_float(100.0))),
            vec![s],
        );
        e.add(
            DaskOp::GroupByAgg(GroupBySpec {
                keys: vec!["day".into()],
                value: "fare".into(),
                agg: AggKind::Mean,
            }),
            vec![f],
        )
    });
}

#[test]
fn empty_morsels_flow_through_chains() {
    // A filter nothing survives: every morsel reaches the chain and
    // leaves it empty, terminally aggregated to an empty frame.
    let path = dense_csv(400);
    assert_differential(MemoryTracker::unlimited, |e| {
        let s = scan(e, &path);
        let f = e.add(
            DaskOp::Filter(Expr::col("fare").gt(Expr::lit_float(1e12))),
            vec![s],
        );
        let w = e.add(
            DaskOp::WithColumn(
                "fare2".into(),
                Expr::col("fare").arith(ArithOp::Add, Expr::lit_float(1.0)),
            ),
            vec![f],
        );
        e.add(
            DaskOp::GroupByAgg(GroupBySpec {
                keys: vec!["day".into()],
                value: "fare2".into(),
                agg: AggKind::Count,
            }),
            vec![w],
        )
    });
}

#[test]
fn zero_row_source_flows_through_chains() {
    let empty = Arc::new(df![
        ("fare", Column::from_f64(vec![])),
        ("day", Column::from_i64(vec![])),
    ]);
    assert_differential(MemoryTracker::unlimited, |e| {
        let s = e.add(DaskOp::FromFrame(Arc::clone(&empty)), vec![]);
        let f = e.add(
            DaskOp::Filter(Expr::col("fare").gt(Expr::lit_float(0.0))),
            vec![s],
        );
        let r = e.add(
            DaskOp::Rename(vec![("fare".into(), "amount".into())]),
            vec![f],
        );
        e.add(DaskOp::Len, vec![r])
    });
}

#[test]
fn head_stops_chain_mid_partition() {
    // Head downstream of the chain truncates the chain's output mid
    // partition (17 < chunk size) and hangs up the rest of the stream.
    let path = dense_csv(900);
    assert_differential(MemoryTracker::unlimited, |e| {
        let s = scan(e, &path);
        let f = e.add(
            DaskOp::Filter(Expr::col("fare").ge(Expr::lit_float(0.0))),
            vec![s],
        );
        let w = e.add(
            DaskOp::WithColumn(
                "half".into(),
                Expr::col("fare").arith(ArithOp::Div, Expr::lit_float(2.0)),
            ),
            vec![f],
        );
        let d = e.add(DaskOp::DropColumns(vec!["extra".into()]), vec![w]);
        e.add(DaskOp::Head(17), vec![d])
    });
}

#[test]
fn head_upstream_feeds_chain_partial_morsel() {
    // Head upstream of the chain: the chain's first (and only) morsel is
    // a mid-partition truncation.
    let path = dense_csv(900);
    assert_differential(MemoryTracker::unlimited, |e| {
        let s = scan(e, &path);
        let h = e.add(DaskOp::Head(13), vec![s]);
        let f = e.add(
            DaskOp::Filter(Expr::col("fare").gt(Expr::lit_float(-100.0))),
            vec![h],
        );
        let sel = e.add(DaskOp::Select(vec!["day".into(), "fare".into()]), vec![f]);
        e.add(
            DaskOp::GroupByAgg(GroupBySpec {
                keys: vec!["day".into()],
                value: "fare".into(),
                agg: AggKind::Count,
            }),
            vec![sel],
        )
    });
}

#[test]
fn chain_under_squeezed_spill_budget() {
    // The chain feeds a blocking sort whose buffer cannot hold the
    // input (budget is a sixth of the materialized size under
    // `LAFP_BUDGET_DIVISOR=6`, a third by default): the fused and
    // unfused paths must spill to the same sorted answer.
    let divisor: usize = std::env::var("LAFP_BUDGET_DIVISOR")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(|d: usize| d.max(2))
        .unwrap_or(3);
    let path = dense_csv(2400);
    let mut probe = DaskEngine::new(MemoryTracker::unlimited(), 64);
    let s = scan(&mut probe, &path);
    let (full, _r) = probe.gather(s).unwrap();
    let budget = full.heap_size() / divisor;
    drop(probe);

    assert_differential(
        || MemoryTracker::with_budget(budget),
        |e| {
            let s = scan(e, &path);
            let f = e.add(
                DaskOp::Filter(Expr::col("fare").gt(Expr::lit_float(10.0))),
                vec![s],
            );
            let w = e.add(
                DaskOp::WithColumn(
                    "neg".into(),
                    Expr::col("fare").arith(ArithOp::Mul, Expr::lit_float(-1.0)),
                ),
                vec![f],
            );
            let so = e.add(DaskOp::Sort(SortOptions::single("neg", false)), vec![w]);
            e.add(DaskOp::Head(96), vec![so])
        },
    );
}

#[test]
fn multi_consumer_link_breaks_the_chain() {
    // A row-wise node feeding TWO consumer slots (both sides of a
    // Concat) cannot be fused past; the chain resumes below the fan-out.
    let path = dense_csv(300);
    assert_differential(MemoryTracker::unlimited, |e| {
        let s = scan(e, &path);
        let f = e.add(
            DaskOp::Filter(Expr::col("fare").gt(Expr::lit_float(0.0))),
            vec![s],
        );
        let c = e.add(DaskOp::Concat, vec![f, f]);
        let w = e.add(
            DaskOp::WithColumn(
                "fare2".into(),
                Expr::col("fare").arith(ArithOp::Mul, Expr::lit_float(3.0)),
            ),
            vec![c],
        );
        e.add(
            DaskOp::GroupByAgg(GroupBySpec {
                keys: vec!["day".into()],
                value: "fare2".into(),
                agg: AggKind::Max,
            }),
            vec![w],
        )
    });
}

#[test]
fn with_column_replacing_filter_input_matches() {
    // The derived column REPLACES a column an earlier (pending) filter
    // read — exercises compaction ordering: the filter's selection is
    // applied before the old values are overwritten.
    let path = dense_csv(350);
    assert_differential(MemoryTracker::unlimited, |e| {
        let s = scan(e, &path);
        let f = e.add(
            DaskOp::Filter(Expr::col("fare").gt(Expr::lit_float(5.0))),
            vec![s],
        );
        let w = e.add(
            DaskOp::WithColumn(
                "fare".into(),
                Expr::col("fare").arith(ArithOp::Sub, Expr::lit_float(100.0)),
            ),
            vec![f],
        );
        let f2 = e.add(
            DaskOp::Filter(Expr::col("fare").lt(Expr::lit_float(0.0))),
            vec![w],
        );
        e.add(
            DaskOp::GroupByAgg(GroupBySpec {
                keys: vec!["day".into()],
                value: "fare".into(),
                agg: AggKind::Min,
            }),
            vec![f2],
        )
    });
}

#[test]
fn reduce_terminal_with_selection_matches() {
    let path = null_heavy_csv(600);
    assert_differential(MemoryTracker::unlimited, |e| {
        let s = scan(e, &path);
        let f = e.add(
            DaskOp::Filter(Expr::col("day").ge(Expr::lit_int(2))),
            vec![s],
        );
        let f2 = e.add(
            DaskOp::Filter(Expr::col("fare").gt(Expr::lit_float(0.0))),
            vec![f],
        );
        e.add(
            DaskOp::Reduce {
                column: "fare".into(),
                agg: AggKind::Sum,
            },
            vec![f2],
        )
    });
}
