//! Automated backend choice — the paper's stated next step (§2.6: "The
//! optimal back-end can also be identified in a cost-based manner,
//! implementation of which is a part of future work"; §3.6: "Decisions on
//! what framework to use depend on whether the dataframes can fit in
//! memory, which can be inferred from the metadata statistics").
//!
//! The rule implemented here is the one the paper sketches: estimate the
//! in-memory footprint of every dataset the program reads (restricted to
//! the columns static analysis proved live, when available), compare
//! against the memory budget, and pick:
//!
//! * **Pandas** when the working set fits with comfortable headroom —
//!   eager single-threaded execution has the least overhead (Fig. 13);
//! * **Modin** when it still fits but headroom is thin or the data is
//!   large enough for parallel scans to pay off;
//! * **Dask** when the estimate approaches or exceeds the budget — only
//!   the streaming backend can run it at all (Fig. 12);
//! * additionally, programs that are **row-order sensitive** must avoid
//!   Dask (§5.2), falling back to Modin and accepting the OOM risk.

use lafp_backends::BackendKind;
use lafp_meta::MetaStore;
use std::path::Path;

/// One dataset a program will read: path plus (optionally) the live
/// columns from Live Attribute Analysis.
#[derive(Debug, Clone)]
pub struct DatasetUse {
    /// CSV path.
    pub path: std::path::PathBuf,
    /// Live columns (usecols); `None` = all columns.
    pub live_columns: Option<Vec<String>>,
}

/// Eager execution needs roughly input + scratch + result at an operator's
/// peak; this multiplier converts a resident-frame estimate into a peak
/// working-set estimate (matches the backend memory model in
/// `lafp-backends`).
const EAGER_PEAK_FACTOR: f64 = 3.0;

/// Below this fraction of the budget, single-threaded eager execution is
/// the fastest option; above it, prefer partition-parallel Modin.
const PANDAS_COMFORT: f64 = 0.35;

/// Above this fraction of the budget, only the streaming backend is safe.
const EAGER_LIMIT: f64 = 0.9;

/// Estimated bytes of the resident frames for `datasets`, using metastore
/// statistics where available and file size as a (conservative, 2.5×
/// inflation) fallback.
pub fn estimate_resident_bytes(datasets: &[DatasetUse]) -> u64 {
    let store = MetaStore::new();
    datasets
        .iter()
        .map(|d| match store.load(&d.path) {
            Ok(Some(meta)) => match &d.live_columns {
                Some(cols) => meta.estimated_bytes_for(cols),
                None => meta.estimated_bytes(),
            },
            _ => file_size_estimate(&d.path),
        })
        .sum()
}

fn file_size_estimate(path: &Path) -> u64 {
    std::fs::metadata(path)
        .map(|m| (m.len() as f64 * 2.5) as u64)
        .unwrap_or(0)
}

/// Pick the backend for a program, per the rule above.
pub fn choose_backend(
    datasets: &[DatasetUse],
    memory_budget: usize,
    order_sensitive: bool,
) -> BackendKind {
    let resident = estimate_resident_bytes(datasets) as f64;
    let peak = resident * EAGER_PEAK_FACTOR;
    let budget = memory_budget as f64;
    if order_sensitive {
        // Dask is off the table (§5.2): best remaining option.
        return if peak <= budget * PANDAS_COMFORT {
            BackendKind::Pandas
        } else {
            BackendKind::Modin
        };
    }
    if peak <= budget * PANDAS_COMFORT {
        BackendKind::Pandas
    } else if peak <= budget * EAGER_LIMIT {
        BackendKind::Modin
    } else {
        BackendKind::Dask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_dataset(rows: usize) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("lafp-autoselect-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!(
            "a{}.csv",
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let mut content = String::from("a,b,c,long_text\n");
        for i in 0..rows {
            content.push_str(&format!("{i},{},{}.5,padding text {i}\n", i * 2, i));
        }
        std::fs::write(&path, content).unwrap();
        lafp_meta::scan::compute_and_store(&path).unwrap();
        path
    }

    fn uses(path: &Path, cols: Option<Vec<String>>) -> Vec<DatasetUse> {
        vec![DatasetUse {
            path: path.to_path_buf(),
            live_columns: cols,
        }]
    }

    #[test]
    fn small_data_picks_pandas() {
        let path = write_dataset(50);
        let choice = choose_backend(&uses(&path, None), 64 * 1024 * 1024, false);
        assert_eq!(choice, BackendKind::Pandas);
    }

    #[test]
    fn medium_data_picks_modin_large_picks_dask() {
        let path = write_dataset(2000);
        let resident = estimate_resident_bytes(&uses(&path, None));
        assert!(resident > 0);
        // Budget sized so the estimate lands between the two thresholds.
        let medium_budget = (resident as f64 * EAGER_PEAK_FACTOR / 0.6) as usize;
        assert_eq!(
            choose_backend(&uses(&path, None), medium_budget, false),
            BackendKind::Modin
        );
        let tight_budget = (resident as f64 * EAGER_PEAK_FACTOR / 1.5) as usize;
        assert_eq!(
            choose_backend(&uses(&path, None), tight_budget, false),
            BackendKind::Dask
        );
    }

    #[test]
    fn order_sensitivity_forbids_dask() {
        let path = write_dataset(2000);
        let resident = estimate_resident_bytes(&uses(&path, None));
        let tight_budget = (resident as f64 * EAGER_PEAK_FACTOR / 1.5) as usize;
        assert_eq!(
            choose_backend(&uses(&path, None), tight_budget, true),
            BackendKind::Modin,
            "order-sensitive programs cannot run on Dask (§5.2)"
        );
    }

    #[test]
    fn live_columns_shrink_the_estimate() {
        let path = write_dataset(2000);
        let all = estimate_resident_bytes(&uses(&path, None));
        let narrow = estimate_resident_bytes(&uses(&path, Some(vec!["a".into()])));
        assert!(
            narrow < all / 2,
            "column selection shifts the backend decision: {narrow} vs {all}"
        );
        // And it can flip the choice from Dask back to an eager backend.
        let budget = (all as f64 * EAGER_PEAK_FACTOR / 1.2) as usize;
        assert_eq!(choose_backend(&uses(&path, None), budget, false), BackendKind::Dask);
        assert_ne!(
            choose_backend(&uses(&path, Some(vec!["a".into()])), budget, false),
            BackendKind::Dask
        );
    }

    #[test]
    fn missing_metadata_falls_back_to_file_size() {
        let dir = std::env::temp_dir().join("lafp-autoselect-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("no-meta.csv");
        std::fs::write(&path, "a\n1\n2\n3\n").unwrap();
        let est = estimate_resident_bytes(&uses(&path, None));
        assert!(est > 0);
        let missing = dir.join("does-not-exist.csv");
        assert_eq!(estimate_resident_bytes(&uses(&missing, None)), 0);
    }
}
