//! The frozen seed-semantics reference implementations.
//!
//! Every function here is the naive `Scalar`-per-row algorithm the seed
//! repo shipped, extracted verbatim from the private copies that used to
//! live in `crates/columnar/tests/differential.rs` and
//! `crates/bench/src/kernel_bench.rs`. They define *what the engine must
//! compute*; the engine's vectorized, parallel, fused, and encoded
//! kernels are only allowed to change the cost of a computation, never
//! its result.
//!
//! Freeze policy: these bodies do not change. A behavioural divergence
//! between a reference and the engine is an engine bug (or, rarely, a
//! deliberate semantics change that must update the reference, its
//! callers, and the fuzz corpus expectations in the same commit, with
//! the ISSUE/ROADMAP note explaining why). Performance of this module is
//! irrelevant by design — the slowness *is* the baseline the bench suite
//! measures against.

use lafp_columnar::column::{ArithOp, CmpOp, ColumnBuilder, RleCol};
use lafp_columnar::csv::{split_record, CsvOptions};
use lafp_columnar::groupby::GroupBySpec;
use lafp_columnar::join::JoinKind;
use lafp_columnar::sort::SortOptions;
use lafp_columnar::{AggKind, Bitmap, Column, DType, DataFrame, Scalar, Series};
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Group-by
// ---------------------------------------------------------------------------

/// The seed aggregation state: `Scalar`-boxed min/max, stringly distinct.
#[derive(Clone)]
pub struct RefAggState {
    /// Float running sum (drives `Sum` on float values and `Mean`).
    pub sum: f64,
    /// Wrapping integer running sum (drives `Sum` on int/bool values).
    pub int_sum: i64,
    /// Count of non-null values seen.
    pub count: u64,
    /// Smallest value by `Scalar::cmp_values`.
    pub min: Option<Scalar>,
    /// Largest value by `Scalar::cmp_values`.
    pub max: Option<Scalar>,
    /// Distinct rendered values (the seed's stringly `nunique`).
    pub distinct: std::collections::HashSet<String>,
    /// Whether the value column was integer-like (Int64 or Bool).
    pub value_is_int: bool,
}

impl RefAggState {
    /// Fresh state for a value column whose dtype is integer-like or not.
    pub fn new(value_is_int: bool) -> RefAggState {
        RefAggState {
            sum: 0.0,
            int_sum: 0,
            count: 0,
            min: None,
            max: None,
            distinct: Default::default(),
            value_is_int,
        }
    }

    /// Fold one value into the state. Nulls are skipped entirely.
    pub fn update(&mut self, v: &Scalar, agg: AggKind) {
        if v.is_null() {
            return;
        }
        self.count += 1;
        match agg {
            AggKind::Sum | AggKind::Mean => {
                if let Some(x) = v.as_f64() {
                    self.sum += x;
                }
                if let Some(x) = v.as_i64() {
                    self.int_sum = self.int_sum.wrapping_add(x);
                }
            }
            AggKind::Min => {
                if self.min.as_ref().is_none_or(|m| v.cmp_values(m).is_lt()) {
                    self.min = Some(v.clone());
                }
            }
            AggKind::Max => {
                if self.max.as_ref().is_none_or(|m| v.cmp_values(m).is_gt()) {
                    self.max = Some(v.clone());
                }
            }
            AggKind::NUnique => {
                self.distinct.insert(v.to_string());
            }
            AggKind::Count => {}
        }
    }

    /// The aggregate result (a group with zero non-null values is null
    /// for Sum/Mean, per the seed semantics).
    pub fn finish(&self, agg: AggKind) -> Scalar {
        match agg {
            AggKind::Sum => {
                if self.count == 0 {
                    Scalar::Null
                } else if self.value_is_int {
                    Scalar::Int(self.int_sum)
                } else {
                    Scalar::Float(self.sum)
                }
            }
            AggKind::Mean => {
                if self.count == 0 {
                    Scalar::Null
                } else {
                    Scalar::Float(self.sum / self.count as f64)
                }
            }
            AggKind::Count => Scalar::Int(self.count as i64),
            AggKind::Min => self.min.clone().unwrap_or(Scalar::Null),
            AggKind::Max => self.max.clone().unwrap_or(Scalar::Null),
            AggKind::NUnique => Scalar::Int(self.distinct.len() as i64),
        }
    }
}

/// The canonical group/join key: rendered scalars joined with `\u{1}`.
/// Nulls render `"NaN"`, so a null key equates with a literal `"NaN"`.
pub fn canon(key: &[Scalar]) -> String {
    key.iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join("\u{1}")
}

/// The seed group-by: one `Vec<Scalar>` + canonical `String` per input
/// row, output rows sorted by canonical key.
pub fn group_by_ref(frame: &DataFrame, spec: &GroupBySpec) -> DataFrame {
    let key_cols: Vec<&Series> = spec
        .keys
        .iter()
        .map(|k| frame.column(k).unwrap())
        .collect();
    let value_col = frame.column(&spec.value).unwrap();
    let value_is_int =
        value_col.column().dtype() == DType::Int64 || value_col.column().dtype() == DType::Bool;
    let mut groups: HashMap<String, RefAggState> = HashMap::new();
    let mut key_order: Vec<Vec<Scalar>> = Vec::new();
    for i in 0..frame.num_rows() {
        let key: Vec<Scalar> = key_cols.iter().map(|s| s.get(i)).collect();
        let canon_key = canon(&key);
        let state = match groups.entry(canon_key) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                key_order.push(key);
                e.insert(RefAggState::new(value_is_int))
            }
        };
        state.update(&value_col.get(i), spec.agg);
    }
    key_order.sort_by_cached_key(|k| canon(k));
    let mut key_builders: Vec<ColumnBuilder> = (0..spec.keys.len())
        .map(|k| {
            let dtype = key_order
                .iter()
                .find_map(|key| key[k].dtype())
                .unwrap_or(DType::Utf8);
            ColumnBuilder::new(dtype)
        })
        .collect();
    let mut values: Vec<Scalar> = Vec::with_capacity(key_order.len());
    for key in &key_order {
        for (k, b) in key_builders.iter_mut().enumerate() {
            b.push_scalar(&key[k]).unwrap();
        }
        values.push(groups[&canon(key)].finish(spec.agg));
    }
    let out_dtype = values
        .iter()
        .find_map(Scalar::dtype)
        .unwrap_or(DType::Float64);
    let mut vb = ColumnBuilder::new(out_dtype);
    for v in &values {
        vb.push_scalar(v).unwrap();
    }
    let mut series = Vec::new();
    for (k, b) in key_builders.into_iter().enumerate() {
        series.push(Series::new(spec.keys[k].clone(), b.finish()));
    }
    series.push(Series::new(spec.value.clone(), vb.finish()));
    DataFrame::new(series).unwrap()
}

// ---------------------------------------------------------------------------
// Element-wise kernels
// ---------------------------------------------------------------------------

/// The seed element-wise arithmetic: `get(i) -> Scalar` per element.
/// Int/Int stays int (wrapping, `rem_euclid` for Mod, Mod-by-zero is
/// null) except `Div`, which is float like pandas. Everything else is
/// float with NaN for null inputs.
pub fn arith_ref(left: &Column, op: ArithOp, right: &Column) -> Column {
    let len = left.len();
    let both_int = left.dtype() == DType::Int64 && right.dtype() == DType::Int64;
    if both_int && op != ArithOp::Div {
        let mut out = Vec::with_capacity(len);
        let mut validity = Bitmap::new(len, true);
        let mut has_null = false;
        for i in 0..len {
            let (a, b) = (left.get(i), right.get(i));
            match (a.as_i64(), b.as_i64()) {
                (Some(x), Some(y)) if !(op == ArithOp::Mod && y == 0) => out.push(match op {
                    ArithOp::Add => x.wrapping_add(y),
                    ArithOp::Sub => x.wrapping_sub(y),
                    ArithOp::Mul => x.wrapping_mul(y),
                    ArithOp::Mod => x.rem_euclid(y),
                    ArithOp::Div => unreachable!(),
                }),
                _ => {
                    out.push(0);
                    validity.set(i, false);
                    has_null = true;
                }
            }
        }
        return Column::Int64(out, has_null.then_some(validity));
    }
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        let (a, b) = (left.get(i), right.get(i));
        let v = match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => match op {
                ArithOp::Add => x + y,
                ArithOp::Sub => x - y,
                ArithOp::Mul => x * y,
                ArithOp::Div => x / y,
                ArithOp::Mod => x.rem_euclid(y),
            },
            _ => f64::NAN,
        };
        out.push(v);
    }
    Column::Float64(out, None)
}

/// The seed column comparison: two `Scalar`s per row; any null operand
/// yields `false` except under `Ne`, which yields `true`.
pub fn compare_ref(left: &Column, op: CmpOp, right: &Column) -> Bitmap {
    Bitmap::from_iter((0..left.len()).map(|i| {
        let (a, b) = (left.get(i), right.get(i));
        if a.is_null() || b.is_null() {
            op == CmpOp::Ne
        } else {
            let ord = a.cmp_values(&b);
            match op {
                CmpOp::Eq => ord.is_eq(),
                CmpOp::Ne => !ord.is_eq(),
                CmpOp::Lt => ord.is_lt(),
                CmpOp::Le => !ord.is_gt(),
                CmpOp::Gt => ord.is_gt(),
                CmpOp::Ge => !ord.is_lt(),
            }
        }
    }))
}

/// [`compare_ref`] with a broadcast right-hand scalar: the same null
/// semantics, one boxed comparison per row.
pub fn compare_scalar_ref(left: &Column, op: CmpOp, rhs: &Scalar) -> Bitmap {
    Bitmap::from_iter((0..left.len()).map(|i| {
        let a = left.get(i);
        if a.is_null() || rhs.is_null() {
            op == CmpOp::Ne
        } else {
            let ord = a.cmp_values(rhs);
            match op {
                CmpOp::Eq => ord.is_eq(),
                CmpOp::Ne => !ord.is_eq(),
                CmpOp::Lt => ord.is_lt(),
                CmpOp::Le => !ord.is_gt(),
                CmpOp::Gt => ord.is_gt(),
                CmpOp::Ge => !ord.is_lt(),
            }
        }
    }))
}

/// The seed filter: index vector, then a gather that deep-copied string
/// payloads (emulated with a `String` materialization per kept row).
pub fn filter_ref(frame: &DataFrame, mask: &Bitmap) -> DataFrame {
    let idx = mask.set_indices();
    let columns = frame
        .series()
        .iter()
        .map(|s| {
            let col = match s.column() {
                Column::Utf8(..) => {
                    let strings: Vec<Option<String>> = idx
                        .iter()
                        .map(|&i| match s.column().get(i) {
                            Scalar::Str(v) => Some(v),
                            _ => None,
                        })
                        .collect();
                    Column::from_opt_strings(strings)
                }
                other => other.take(&idx).unwrap(),
            };
            Series::new(s.name(), col)
        })
        .collect();
    DataFrame::new(columns).unwrap()
}

/// The seed slice: materialize the index range, then gather row by row
/// (with the string deep-copy the seed's `Vec<String>` storage implied).
pub fn slice_ref(col: &Column, offset: usize, len: usize) -> Column {
    let end = (offset + len).min(col.len());
    let idx: Vec<usize> = (offset.min(col.len())..end).collect();
    match col {
        Column::Utf8(..) => {
            let strings: Vec<Option<String>> = idx
                .iter()
                .map(|&i| match col.get(i) {
                    Scalar::Str(v) => Some(v),
                    _ => None,
                })
                .collect();
            Column::from_opt_strings(strings)
        }
        other => other.take(&idx).unwrap(),
    }
}

/// The seed fillna: scalar builder loop. Panics when the builder rejects
/// the fill scalar for this dtype; use [`try_fillna_ref`] where the
/// frame-level pass-through-on-error semantics are needed.
pub fn fillna_ref(col: &Column, fill: &Scalar) -> Column {
    try_fillna_ref(col, fill).expect("fill scalar representable in the column dtype")
}

/// [`fillna_ref`] that reports an unrepresentable fill instead of
/// panicking. `None` exactly when the engine's `Column::fillna` errors:
/// a column with no nulls never consults the fill scalar, and a column
/// with nulls fails only if the builder rejects the scalar.
pub fn try_fillna_ref(col: &Column, fill: &Scalar) -> Option<Column> {
    let mut b = ColumnBuilder::new(col.dtype());
    for i in 0..col.len() {
        if col.is_null_at(i) {
            b.push_scalar(fill).ok()?;
        } else {
            b.push_scalar(&col.get(i)).ok()?;
        }
    }
    Some(b.finish())
}

/// The seed frame-level fillna (the Dask `FillNa` operator's contract):
/// fill every column, passing columns with an unrepresentable fill
/// through unchanged.
pub fn fillna_frame_ref(frame: &DataFrame, fill: &Scalar) -> DataFrame {
    let columns = frame
        .series()
        .iter()
        .map(|s| {
            let col = try_fillna_ref(s.column(), fill).unwrap_or_else(|| s.column().clone());
            Series::new(s.name(), col)
        })
        .collect();
    DataFrame::new(columns).unwrap()
}

/// The seed cast: scalar builder loop through `Scalar` boxing. `None`
/// when any value is unrepresentable in the target dtype.
pub fn cast_ref(col: &Column, target: DType) -> Option<Column> {
    let mut b = ColumnBuilder::new(target);
    for i in 0..col.len() {
        match col.get(i) {
            Scalar::Null => b.push_null(),
            s => b.push_scalar(&s).ok()?,
        }
    }
    Some(b.finish())
}

/// The seed float reduction: one `Scalar` per row, NaN skipped, null
/// when no addend survives.
pub fn sum_ref(col: &Column) -> Scalar {
    let mut acc = 0.0;
    let mut any = false;
    for i in 0..col.len() {
        if let Some(x) = col.get(i).as_f64() {
            if !x.is_nan() {
                acc += x;
                any = true;
            }
        }
    }
    if any {
        Scalar::Float(acc)
    } else {
        Scalar::Null
    }
}

/// The seed row-wise concat: one boxed scalar per row of both frames,
/// matched by the left frame's column order.
pub fn concat_ref(left: &DataFrame, right: &DataFrame) -> DataFrame {
    let columns = left
        .series()
        .iter()
        .map(|s| {
            let other = right.column(s.name()).unwrap().column();
            let mut b = ColumnBuilder::new(s.column().dtype());
            for i in 0..s.len() {
                match s.get(i) {
                    Scalar::Null => b.push_null(),
                    v => b.push_scalar(&v).unwrap(),
                }
            }
            for i in 0..other.len() {
                match other.get(i) {
                    Scalar::Null => b.push_null(),
                    v => b.push_scalar(&v).unwrap(),
                }
            }
            Series::new(s.name(), b.finish())
        })
        .collect();
    DataFrame::new(columns).unwrap()
}

// ---------------------------------------------------------------------------
// Join
// ---------------------------------------------------------------------------

/// The seed hash join: one canonical key `String` per row on *both*
/// sides (so a null key equates with a literal `"NaN"`), `Scalar`-boxed
/// gather of the right columns, `_x`/`_y` suffixes on overlapping
/// non-key columns.
pub fn merge_ref(left: &DataFrame, right: &DataFrame, on: &[String], how: JoinKind) -> DataFrame {
    let key_strings = |frame: &DataFrame| -> Vec<String> {
        let cols: Vec<&Series> = on.iter().map(|k| frame.column(k).unwrap()).collect();
        (0..frame.num_rows())
            .map(|i| {
                cols.iter()
                    .map(|s| s.get(i).to_string())
                    .collect::<Vec<_>>()
                    .join("\u{1}")
            })
            .collect()
    };
    let right_keys = key_strings(right);
    let mut build: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, k) in right_keys.iter().enumerate() {
        build.entry(k.as_str()).or_default().push(i);
    }
    let left_keys = key_strings(left);
    let mut left_idx: Vec<usize> = Vec::new();
    let mut right_idx: Vec<Option<usize>> = Vec::new();
    for (i, k) in left_keys.iter().enumerate() {
        match build.get(k.as_str()) {
            Some(matches) => {
                for &j in matches {
                    left_idx.push(i);
                    right_idx.push(Some(j));
                }
            }
            None => {
                if how == JoinKind::Left {
                    left_idx.push(i);
                    right_idx.push(None);
                }
            }
        }
    }
    let gather_optional = |col: &Column| -> Column {
        if right_idx.iter().all(Option::is_some) {
            let idx: Vec<usize> = right_idx.iter().map(|i| i.unwrap()).collect();
            return col.take(&idx).unwrap();
        }
        let mut b = ColumnBuilder::new(col.dtype());
        for ix in &right_idx {
            match ix {
                Some(i) => b.push_scalar(&col.get(*i)).unwrap(),
                None => b.push_null(),
            }
        }
        b.finish()
    };
    let key_set: std::collections::HashSet<&str> = on.iter().map(String::as_str).collect();
    let overlap: std::collections::HashSet<&str> = left
        .column_names()
        .into_iter()
        .filter(|n| !key_set.contains(n) && right.has_column(n))
        .collect();
    let mut out: Vec<Series> = Vec::new();
    for s in left.series() {
        let name = if overlap.contains(s.name()) {
            format!("{}_x", s.name())
        } else {
            s.name().to_string()
        };
        out.push(Series::new(name, s.column().take(&left_idx).unwrap()));
    }
    for s in right.series() {
        if key_set.contains(s.name()) {
            continue;
        }
        let name = if overlap.contains(s.name()) {
            format!("{}_y", s.name())
        } else {
            s.name().to_string()
        };
        out.push(Series::new(name, gather_optional(s.column())));
    }
    DataFrame::new(out).unwrap()
}

// ---------------------------------------------------------------------------
// Sort / top-n
// ---------------------------------------------------------------------------

/// The seed sort: `Vec<Scalar>` key columns, boxed `cmp_values` per row
/// comparison, nulls last regardless of direction, stable on ties.
pub fn sort_values_ref(frame: &DataFrame, options: &SortOptions) -> DataFrame {
    use std::cmp::Ordering;
    let dir = |k: usize| -> bool {
        options.ascending.get(k).copied().unwrap_or(
            options.ascending.first().copied().unwrap_or(true),
        )
    };
    let key_cols: Vec<Vec<Scalar>> = options
        .by
        .iter()
        .map(|name| {
            let s = frame.column(name).unwrap();
            (0..frame.num_rows()).map(|i| s.get(i)).collect()
        })
        .collect();
    let mut order: Vec<usize> = (0..frame.num_rows()).collect();
    order.sort_by(|&a, &b| {
        for (k, col) in key_cols.iter().enumerate() {
            let (x, y) = (&col[a], &col[b]);
            let ord = match (x.is_null(), y.is_null()) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Greater,
                (false, true) => Ordering::Less,
                (false, false) => {
                    let o = x.cmp_values(y);
                    if dir(k) {
                        o
                    } else {
                        o.reverse()
                    }
                }
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
    frame.take(&order).unwrap()
}

/// The seed nlargest: full descending sort, then head.
pub fn nlargest_ref(frame: &DataFrame, n: usize, column: &str) -> DataFrame {
    sort_values_ref(frame, &SortOptions::single(column, false)).head(n)
}

/// The seed nsmallest: full ascending sort, then head.
pub fn nsmallest_ref(frame: &DataFrame, n: usize, column: &str) -> DataFrame {
    sort_values_ref(frame, &SortOptions::single(column, true)).head(n)
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

/// The seed CSV reader with dtype inference: one `Vec<String>` per
/// record via `split_record`, inference over the first 1000 records
/// (bool, then int, then float, then datetime, else utf8), one boxed
/// `Scalar` per cell through `push_scalar`. Empty fields are null.
pub fn read_csv_infer_ref(path: &std::path::Path, options: &CsvOptions) -> DataFrame {
    use std::io::BufRead;
    let file = std::fs::File::open(path).unwrap();
    let reader = std::io::BufReader::new(file);
    let mut lines = reader.lines();
    let header = split_record(&lines.next().unwrap().unwrap());
    let keep: Vec<usize> = match &options.usecols {
        Some(cols) => (0..header.len())
            .filter(|&i| cols.iter().any(|c| *c == header[i]))
            .collect(),
        None => (0..header.len()).collect(),
    };
    let records: Vec<Vec<String>> = lines
        .map(|l| l.unwrap())
        .filter(|l| !l.trim_end_matches(['\n', '\r']).is_empty())
        .map(|l| split_record(l.trim_end_matches(['\n', '\r'])))
        .collect();
    let infer = |col_idx: usize| -> DType {
        let sample = records.iter().take(1000).map(|r| r[col_idx].as_str());
        let mut any = false;
        let (mut all_int, mut all_float, mut all_bool) = (true, true, true);
        let mut all_dt = true;
        for v in sample {
            if v.is_empty() {
                continue;
            }
            any = true;
            let t = v.trim();
            all_int &= t.parse::<i64>().is_ok();
            all_float &= t.parse::<f64>().is_ok();
            all_bool &= matches!(t, "True" | "true" | "False" | "false");
            all_dt &= lafp_columnar::value::parse_datetime(t).is_some();
        }
        if !any {
            DType::Utf8
        } else if all_bool {
            DType::Bool
        } else if all_int {
            DType::Int64
        } else if all_float {
            DType::Float64
        } else if all_dt {
            DType::Datetime
        } else {
            DType::Utf8
        }
    };
    let mut series = Vec::new();
    for &col_idx in &keep {
        let name = &header[col_idx];
        let dtype = if let Some(&dt) = options.dtypes.get(name) {
            dt
        } else if options.parse_dates.iter().any(|c| c == name) {
            DType::Datetime
        } else {
            infer(col_idx)
        };
        let mut b = ColumnBuilder::new(dtype);
        for r in &records {
            let raw = &r[col_idx];
            if raw.is_empty() {
                b.push_null();
                continue;
            }
            let scalar = match dtype {
                DType::Int64 => Scalar::Int(raw.trim().parse().unwrap()),
                DType::Float64 => Scalar::Float(raw.trim().parse().unwrap()),
                DType::Bool => Scalar::Bool(matches!(raw.trim(), "True" | "true" | "1")),
                DType::Datetime => {
                    Scalar::Datetime(lafp_columnar::value::parse_datetime(raw).unwrap())
                }
                DType::Utf8 | DType::Categorical => Scalar::Str(raw.clone()),
            };
            b.push_scalar(&scalar).unwrap();
        }
        series.push(Series::new(name.clone(), b.finish()));
    }
    DataFrame::new(series).unwrap()
}

/// The seed CSV reader with a caller-supplied schema (no inference): a
/// fresh `Vec<String>` per record via `split_record`, one boxed `Scalar`
/// per cell through `push_scalar`.
pub fn read_csv_schema_ref(path: &std::path::Path, schema: &[(String, DType)]) -> DataFrame {
    use std::io::BufRead;
    let file = std::fs::File::open(path).unwrap();
    let mut reader = std::io::BufReader::new(file);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let header = split_record(line.trim_end_matches(['\n', '\r']));
    assert_eq!(header.len(), schema.len());
    let mut builders: Vec<ColumnBuilder> = schema
        .iter()
        .map(|(_, dt)| ColumnBuilder::new(*dt))
        .collect();
    loop {
        line.clear();
        if reader.read_line(&mut line).unwrap() == 0 {
            break;
        }
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed.is_empty() {
            continue;
        }
        let record = split_record(trimmed);
        for (slot, raw) in record.iter().enumerate() {
            let b = &mut builders[slot];
            if raw.is_empty() {
                b.push_null();
                continue;
            }
            let scalar = match schema[slot].1 {
                DType::Int64 => Scalar::Int(raw.trim().parse().unwrap()),
                DType::Float64 => Scalar::Float(raw.trim().parse().unwrap()),
                DType::Bool => Scalar::Bool(matches!(raw.trim(), "True" | "true" | "1")),
                DType::Datetime => {
                    Scalar::Datetime(lafp_columnar::value::parse_datetime(raw).unwrap())
                }
                DType::Utf8 | DType::Categorical => Scalar::Str(raw.clone()),
            };
            b.push_scalar(&scalar).unwrap();
        }
    }
    DataFrame::new(
        schema
            .iter()
            .zip(builders)
            .map(|((name, _), b)| Series::new(name.clone(), b.finish()))
            .collect(),
    )
    .unwrap()
}

// ---------------------------------------------------------------------------
// Encoding construction helpers
// ---------------------------------------------------------------------------

/// Hand-rolled run-length encode without `rle_encode`'s shrink gate, so
/// differential tests and the fuzzer can cover inputs the ingest
/// heuristic would refuse (alternating values, empty columns). The
/// result decodes to exactly the input.
pub fn force_rle(col: &Column) -> Column {
    let rows = col.len();
    let mut ends: Vec<u32> = Vec::new();
    let mut starts: Vec<usize> = Vec::new();
    for i in 0..rows {
        let new_run = i == 0 || {
            let (an, bn) = (col.is_null_at(i - 1), col.is_null_at(i));
            match (an, bn) {
                (true, true) => false,
                (false, false) => col.get(i - 1) != col.get(i),
                _ => true,
            }
        };
        if new_run {
            if i > 0 {
                ends.push(i as u32);
            }
            starts.push(i);
        }
    }
    if rows > 0 {
        ends.push(rows as u32);
    }
    let values = col.take(&starts).expect("run starts in bounds");
    Column::Rle(RleCol {
        values: Box::new(values),
        ends,
    })
}
