//! The Dask-like backend: a self-contained lazy dataframe framework.
//!
//! Mirrors the three properties of Dask that the paper leans on (§2.5–2.6,
//! §5.2):
//!
//! 1. **Lazy task graphs with their own optimizer.** Operations build a
//!    [`DaskOp`] graph; computing first runs the engine's own optimizer
//!    (dead-node culling is implicit in the reachability walk; `head`-limit
//!    pushdown into scans runs always — the paper-era Dask did *not* do
//!    automatic column projection on `read_csv`, which is exactly why
//!    LaFP's static column selection still pays off on this backend; an
//!    opt-in projection pass exists for the ablation benches).
//! 2. **Out-of-core execution.** Partitions stream from the CSV chunk
//!    reader through row-wise operators without materializing the whole
//!    frame; aggregations keep only their running state. Only blocking
//!    operators (sort, merge build side, full gather) buffer partitions,
//!    charging the shared [`MemoryTracker`] — and when a buffer would
//!    overflow the budget, it **spills** partitions to disk in the
//!    `lafp-columnar` spill format and re-admits them (re-charging the
//!    budget) on drain. A sort whose buffer spilled switches to an
//!    external sort: sorted runs on disk merged k-way with bounded
//!    memory. CSV scans are additionally **pipelined** when the worker
//!    pool is parallel: the parse runs on a producer thread overlapping
//!    downstream operator work on the driver thread, connected by a
//!    bounded channel (backpressure keeps at most a few chunks in
//!    flight).
//! 3. **Shared multi-output computation.** [`DaskEngine::compute_batch`]
//!    executes several roots in *one* pass over shared sources with an
//!    event-driven, push-based scheduler — the engine-level behaviour that
//!    makes LaFP's lazy-print batching (§3.3) profitable: one scan feeds
//!    every deferred print instead of one re-scan per print.
//!
//! `persist()` pins a node's partitions in (tracked) memory for reuse
//! across compute calls — the substrate of the paper's common computation
//! reuse (§3.5) — and `unpersist()` releases them after the last use.
//!
//! Row order: partitions keep file order, but positional operations are
//! partition-local (`head` reads from the front of the stream), so programs
//! relying on global positional indexing see Dask-like behaviour.

use crate::memory::{MemoryReservation, MemoryTracker};
use lafp_columnar::csv::{CsvChunkReader, CsvOptions};
use lafp_columnar::faults::{self, FaultSite};
use lafp_columnar::groupby::{GroupByAccumulator, GroupBySpec};
use lafp_columnar::join::{merge as join_merge, JoinKind};
use lafp_columnar::pool::{panic_message, pipeline, pipeline3, StageChannel, WorkerPool};
use lafp_columnar::sort::{cmp_rows_across, sort_values_par, FrameSortKeys, SortOptions};
use lafp_columnar::spill::{spill_frame, SpillDir, SpillFile, SpillReader};
use lafp_columnar::{
    AggKind, Bitmap, CancelToken, Column, ColumnarError, DataFrame, HeapSize, Result, Scalar,
    Series,
};
use lafp_expr::Expr;
use lafp_meta::FusionStats;
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

/// Identifier of a node in the Dask graph.
pub type DaskNodeId = usize;

/// Operators of the Dask engine's own task graph.
#[derive(Debug, Clone)]
pub enum DaskOp {
    /// Partitioned CSV scan.
    ReadCsv {
        /// Source file.
        path: PathBuf,
        /// Scan options (projection, dtypes, date parsing).
        options: CsvOptions,
        /// Stop after this many rows (installed by the head-limit pass).
        limit: Option<usize>,
    },
    /// Scatter an already-materialized frame into the graph.
    FromFrame(Arc<DataFrame>),
    /// Row filter.
    Filter(Expr),
    /// Add or replace a computed column.
    WithColumn(String, Expr),
    /// Column projection.
    Select(Vec<String>),
    /// Drop columns.
    DropColumns(Vec<String>),
    /// Rename columns.
    Rename(Vec<(String, String)>),
    /// Frame-wide fillna.
    FillNa(Scalar),
    /// Streaming distinct over a key subset (empty = all columns).
    DropDuplicates(Vec<String>),
    /// Group-by aggregation (streams to partial-aggregate state).
    GroupByAgg(GroupBySpec),
    /// Column reduction to a scalar.
    Reduce {
        /// Column to reduce.
        column: String,
        /// Aggregate to apply.
        agg: AggKind,
    },
    /// Row count (lazy `len()`).
    Len,
    /// Hash join of the two inputs (input 0 probes, input 1 builds).
    Merge {
        /// Join keys.
        on: Vec<String>,
        /// Join kind.
        how: JoinKind,
    },
    /// Global sort (blocking: buffers all partitions).
    Sort(SortOptions),
    /// First `n` rows of the stream.
    Head(usize),
    /// Vertical concatenation of the two inputs.
    Concat,
}

impl DaskOp {
    /// Row-wise operators stream partition-at-a-time with O(partition)
    /// memory; everything else blocks or reduces.
    pub fn is_row_wise(&self) -> bool {
        matches!(
            self,
            DaskOp::Filter(_)
                | DaskOp::WithColumn(..)
                | DaskOp::Select(_)
                | DaskOp::DropColumns(_)
                | DaskOp::Rename(_)
                | DaskOp::FillNa(_)
        )
    }
}

/// Result of a compute call.
#[derive(Debug, Clone)]
pub enum DaskValue {
    /// A materialized frame.
    Frame(DataFrame),
    /// A scalar (reductions, len).
    Scalar(Scalar),
}

impl DaskValue {
    /// Unwrap a frame.
    pub fn into_frame(self) -> Result<DataFrame> {
        match self {
            DaskValue::Frame(f) => Ok(f),
            DaskValue::Scalar(s) => Err(ColumnarError::InvalidArgument(format!(
                "expected frame, got scalar {s}"
            ))),
        }
    }

    /// Unwrap a scalar.
    pub fn into_scalar(self) -> Result<Scalar> {
        match self {
            DaskValue::Scalar(s) => Ok(s),
            DaskValue::Frame(_) => Err(ColumnarError::InvalidArgument(
                "expected scalar, got frame".into(),
            )),
        }
    }
}

#[derive(Debug)]
struct DaskNode {
    op: DaskOp,
    inputs: Vec<DaskNodeId>,
    persisted: bool,
    cache: Option<CachedPartitions>,
}

#[derive(Debug)]
struct CachedPartitions {
    parts: Vec<Arc<DataFrame>>,
    _reservation: MemoryReservation,
}

/// The lazy engine: graph construction + optimizer + streaming executor.
#[derive(Debug)]
pub struct DaskEngine {
    nodes: Vec<DaskNode>,
    tracker: Arc<MemoryTracker>,
    /// Target partition size in rows for CSV scans.
    chunk_rows: usize,
    /// Worker pool for blocking operators (sort flush, buffered probe
    /// drain). Streaming operators stay partition-at-a-time — that is
    /// the engine's out-of-core contract — but partition *work* that has
    /// already been buffered is submitted to the pool instead of drained
    /// on one core.
    pool: Arc<WorkerPool>,
    /// Where blocking operators evict buffered partitions once the
    /// memory budget is exhausted. Lazily created on first spill;
    /// removed when the engine drops.
    spill_dir: Arc<SpillDir>,
    /// Enable the engine's own column-projection pushdown into scans.
    /// Off by default: the paper-era Dask lacked it (see module docs).
    pub projection_pushdown: bool,
    /// Run CSV scans as a two-stage pipeline (parse thread overlapping
    /// operator work) when the pool is parallel. On by default; exists
    /// so benches can measure the blocking drain for comparison.
    pub pipeline_scan: bool,
    /// Fuse maximal runs of row-wise operators (plus a terminal
    /// aggregation) into single-pass per-morsel chains. On by default;
    /// `LAFP_NO_FUSE=1` or this flag disables it so CI and benches can
    /// exercise the unfused path.
    pub fuse_chains: bool,
    /// Engine-local chain-fusion counters (mirrored into
    /// [`lafp_meta::fusion::global`]).
    fusion_stats: Arc<FusionStats>,
    /// Engine-level cancellation token. Each `compute_batch` derives a
    /// per-query handle from it (`for_query`), which also arms the
    /// `LAFP_QUERY_TIMEOUT_MS` deadline; cancelling this token aborts
    /// the running query and every later one.
    cancel: CancelToken,
}

impl DaskEngine {
    /// New engine charging `tracker`, scanning CSVs in `chunk_rows`-row
    /// partitions (0 picks the 8192-row default). Worker count comes
    /// from the shared resolver (`LAFP_THREADS` / available
    /// parallelism — see [`lafp_columnar::pool::resolve_threads`]).
    pub fn new(tracker: Arc<MemoryTracker>, chunk_rows: usize) -> DaskEngine {
        DaskEngine {
            nodes: Vec::new(),
            tracker,
            chunk_rows: if chunk_rows == 0 { 8192 } else { chunk_rows },
            pool: Arc::new(WorkerPool::new(0)),
            spill_dir: Arc::new(SpillDir::in_temp()),
            projection_pushdown: false,
            pipeline_scan: true,
            fuse_chains: fuse_default(),
            fusion_stats: Arc::new(FusionStats::default()),
            cancel: CancelToken::new(),
        }
    }

    /// Like [`new`](Self::new) but with an explicit worker-thread count
    /// (`0` = default resolution). Used by tests and benches to exercise
    /// the pipelined scan deterministically regardless of host cores.
    pub fn with_threads(
        tracker: Arc<MemoryTracker>,
        chunk_rows: usize,
        threads: usize,
    ) -> DaskEngine {
        let mut engine = DaskEngine::new(tracker, chunk_rows);
        engine.pool = Arc::new(WorkerPool::new(threads));
        engine
    }

    /// The shared memory tracker.
    pub fn tracker(&self) -> &Arc<MemoryTracker> {
        &self.tracker
    }

    /// Replace the engine-level cancellation token. Queries started
    /// after this call observe the new token.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = token;
    }

    /// The engine-level cancellation token. Cancelling it stops the
    /// in-flight query (if any) at its next morsel/spill boundary and
    /// makes every later query fail fast with
    /// [`ColumnarError::Cancelled`].
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Snapshot of this engine's chain-fusion counters: how many chains
    /// were planned, how many morsels flowed through them, and how many
    /// intermediate frames the *unfused* row-wise path materialized.
    /// A fully fused pipeline reports `intermediate_frames == 0`.
    pub fn fusion_stats(&self) -> lafp_meta::FusionSnapshot {
        self.fusion_stats.snapshot()
    }

    /// Count one intermediate frame materialized by the unfused row-wise
    /// path (the cost fusion exists to remove).
    fn record_intermediate(&self) {
        self.fusion_stats.record_intermediate();
        lafp_meta::fusion::global().record_intermediate();
    }

    /// Number of graph nodes created so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes exist.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Add a node.
    pub fn add(&mut self, op: DaskOp, inputs: Vec<DaskNodeId>) -> DaskNodeId {
        let id = self.nodes.len();
        self.nodes.push(DaskNode {
            op,
            inputs,
            persisted: false,
            cache: None,
        });
        id
    }

    /// The op of a node (primarily for tests and plan display).
    pub fn op(&self, id: DaskNodeId) -> &DaskOp {
        &self.nodes[id].op
    }

    /// Mark a node persisted: its partitions are cached (and charged) on
    /// first execution and reused afterwards (§3.5).
    pub fn persist(&mut self, id: DaskNodeId) {
        self.nodes[id].persisted = true;
    }

    /// Release a persisted node's cache (after its last use).
    pub fn unpersist(&mut self, id: DaskNodeId) {
        self.nodes[id].persisted = false;
        self.nodes[id].cache = None;
    }

    /// Is the node currently cached?
    pub fn is_cached(&self, id: DaskNodeId) -> bool {
        self.nodes[id].cache.is_some()
    }

    // ------------------------------------------------------------------
    // The engine's own optimizer.
    // ------------------------------------------------------------------

    /// Head-limit pushdown: `Head(n)` whose input chain is row-preserving
    /// row-wise ops over a scan limits the scan so the reader stops early.
    /// (Filters are skipped: they change row counts.) The limits are
    /// *per-batch* — the shared graph is never mutated, so later computes
    /// over the same scan still see every row.
    fn plan_head_limits(
        &self,
        roots: &[DaskNodeId],
    ) -> std::collections::HashMap<DaskNodeId, usize> {
        let mut limits = std::collections::HashMap::new();
        let included = self.reachable(roots);
        for &id in &included {
            if let DaskOp::Head(n) = self.nodes[id].op {
                let mut cur = self.nodes[id].inputs[0];
                loop {
                    match &self.nodes[cur].op {
                        DaskOp::Select(_)
                        | DaskOp::DropColumns(_)
                        | DaskOp::Rename(_)
                        | DaskOp::WithColumn(..)
                        | DaskOp::FillNa(_) => cur = self.nodes[cur].inputs[0],
                        DaskOp::ReadCsv { .. } => {
                            // Safe only when nothing else in THIS batch
                            // consumes the scan (it would need all rows).
                            let consumers = included
                                .iter()
                                .filter(|&&c| {
                                    self.nodes[c].cache.is_none()
                                        && self.nodes[c].inputs.contains(&cur)
                                })
                                .count();
                            if consumers == 1 {
                                let slot = limits.entry(cur).or_insert(n);
                                *slot = (*slot).min(n);
                            }
                            break;
                        }
                        _ => break,
                    }
                }
            }
        }
        limits
    }

    /// Optional projection pushdown (ablation only; see module docs).
    fn pushdown_projection(&mut self, roots: &[DaskNodeId]) {
        let mut required: Vec<Option<ColumnRequirement>> = vec![None; self.nodes.len()];
        let order = self.topo_order(roots);
        for &root in roots {
            required[root] = Some(ColumnRequirement::All);
        }
        for &id in order.iter().rev() {
            let Some(req) = required[id].clone() else {
                continue;
            };
            let inputs = self.nodes[id].inputs.clone();
            let input_reqs = input_requirements(&self.nodes[id].op, &req, inputs.len());
            for (input, in_req) in inputs.into_iter().zip(input_reqs) {
                let slot = &mut required[input];
                *slot = Some(match slot.take() {
                    None => in_req,
                    Some(prev) => prev.union(&in_req),
                });
            }
        }
        for (node, req) in self.nodes.iter_mut().zip(&required) {
            if let (DaskOp::ReadCsv { options, .. }, Some(ColumnRequirement::Some(cols))) =
                (&mut node.op, req)
            {
                let mut cols: Vec<String> = cols.iter().cloned().collect();
                cols.sort();
                options.usecols = Some(match options.usecols.take() {
                    Some(existing) => existing.into_iter().filter(|c| cols.contains(c)).collect(),
                    None => cols,
                });
            }
        }
    }

    /// Nodes reachable from `roots`, stopping at cached nodes' inputs
    /// (a cached node is a source; its upstream need not run).
    fn reachable(&self, roots: &[DaskNodeId]) -> Vec<DaskNodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<DaskNodeId> = roots.to_vec();
        let mut out = Vec::new();
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut seen[id], true) {
                continue;
            }
            out.push(id);
            if self.nodes[id].cache.is_none() {
                stack.extend(self.nodes[id].inputs.iter().copied());
            }
        }
        out
    }

    fn topo_order(&self, roots: &[DaskNodeId]) -> Vec<DaskNodeId> {
        let mut order = Vec::new();
        let mut state = vec![0u8; self.nodes.len()];
        let mut stack: Vec<(DaskNodeId, bool)> = roots.iter().map(|&r| (r, false)).collect();
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                state[id] = 2;
                order.push(id);
                continue;
            }
            if state[id] != 0 {
                continue;
            }
            state[id] = 1;
            stack.push((id, true));
            if self.nodes[id].cache.is_none() {
                // Reverse push so input 0's subtree is visited (and thus
                // scheduled) before input 1's — Concat emits left-first.
                for &i in self.nodes[id].inputs.iter().rev() {
                    if state[i] == 0 {
                        stack.push((i, false));
                    }
                }
            }
        }
        order
    }

    // ------------------------------------------------------------------
    // Execution: event-driven, push-based, multi-root.
    // ------------------------------------------------------------------

    /// Compute one root.
    pub fn compute(&mut self, root: DaskNodeId) -> Result<(DaskValue, MemoryReservation)> {
        Ok(self.compute_batch(&[root])?.pop().expect("one root"))
    }

    /// Materialize every partition of `id` into one frame (the blocking
    /// "convert to pandas" step; this is where large frames OOM).
    pub fn gather(&mut self, id: DaskNodeId) -> Result<(DataFrame, MemoryReservation)> {
        let (value, reservation) = self.compute(id)?;
        Ok((value.into_frame()?, reservation))
    }

    /// Compute several roots in **one pass** over shared sources.
    ///
    /// This is what a `flush()` of several lazy prints compiles to: all
    /// deferred outputs are satisfied by a single scan of each input file.
    pub fn compute_batch(
        &mut self,
        roots: &[DaskNodeId],
    ) -> Result<Vec<(DaskValue, MemoryReservation)>> {
        // Per-query cancellation handle: engine token plus the
        // `LAFP_QUERY_TIMEOUT_MS` deadline (if configured).
        let query = self.cancel.for_query();
        // Blocking helpers (sort flush, buffered drains) submitted to the
        // pool during this query observe the same handle.
        let saved_pool = Arc::clone(&self.pool);
        self.pool = Arc::new(saved_pool.with_cancel(query.clone()));
        // Panic boundary: a poisoned morsel (or any bug on the driver
        // path) fails THIS query with a structured error instead of
        // aborting the process. All working state is RAII — dropping the
        // half-built `BatchRun` releases its reservations and deletes its
        // spill files — so the engine stays usable for the next query.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.compute_batch_inner(roots, &query)
        }));
        self.pool = saved_pool;
        match result {
            Ok(r) => r,
            Err(payload) => {
                lafp_columnar::faults::record_panic_isolated();
                Err(ColumnarError::WorkerPanic(panic_message(payload)))
            }
        }
    }

    fn compute_batch_inner(
        &mut self,
        roots: &[DaskNodeId],
        query: &CancelToken,
    ) -> Result<Vec<(DaskValue, MemoryReservation)>> {
        query.check()?;
        let scan_limits = self.plan_head_limits(roots);
        if self.projection_pushdown {
            self.pushdown_projection(roots);
        }
        let mut run = BatchRun::plan(self, roots, query.clone())?;
        run.scan_limits = scan_limits;
        run.execute(self)?;
        run.finish(self, roots)
    }
}

// ---------------------------------------------------------------------------
// Batch executor internals
// ---------------------------------------------------------------------------

/// Per-node runtime state in one batch execution.
enum NodeState {
    /// Source: partitions produced by the driver loop (scan / FromFrame /
    /// cached partitions).
    Source,
    /// Stateless row-wise transform.
    RowWise,
    /// Streaming group-by.
    GroupBy {
        acc: GroupByAccumulator,
        state: MemoryReservation,
    },
    /// Streaming scalar reduction.
    Reduce { acc: ReduceState },
    /// Streaming row count.
    Len { rows: usize },
    /// First-n rows pass-through.
    Head { remaining: usize, emitted: bool },
    /// Blocking sort buffer.
    Sort { buffer: PartitionBuffer },
    /// Streaming dedup with global seen-set.
    Dedup {
        seen: std::collections::HashSet<u64>,
        state: MemoryReservation,
    },
    /// Hash join: buffers the build side (slot 1), then streams probes.
    MergeState {
        build: PartitionBuffer,
        build_done: bool,
        pending_probes: PartitionBuffer,
        built: Option<DataFrame>,
    },
    /// Concatenation forwards both inputs.
    ConcatState,
}

/// One buffered partition: resident, or evicted to its own spill file.
enum BufPart {
    Mem(DataFrame),
    Disk(SpillFile),
}

/// A charged buffer of partitions with spill-to-disk overflow.
///
/// `push` first tries to grow the reservation; on [`OutOfMemory`]
/// it evicts the **oldest resident** partitions to disk (giving their
/// bytes back to the budget via [`MemoryReservation::shrink`]) until the
/// newcomer fits, spilling the newcomer itself as a last resort — so a
/// push only fails when a single partition alone exceeds the whole
/// budget. Draining (`concat_all` / `pop_front`) re-admits evicted
/// partitions *under reservation*: restoring more than the budget still
/// reports [`OutOfMemory`], which keeps "gather a too-large frame" an
/// error while letting bounded-output queries complete out-of-core.
///
/// [`OutOfMemory`]: ColumnarError::OutOfMemory
struct PartitionBuffer {
    parts: std::collections::VecDeque<BufPart>,
    reservation: MemoryReservation,
    spill_dir: Arc<SpillDir>,
    spilled: bool,
    /// Per-query handle: spill-boundary cancellation checkpoint.
    cancel: CancelToken,
}

impl PartitionBuffer {
    fn new(
        tracker: &Arc<MemoryTracker>,
        spill_dir: &Arc<SpillDir>,
        cancel: &CancelToken,
    ) -> PartitionBuffer {
        PartitionBuffer {
            parts: std::collections::VecDeque::new(),
            reservation: MemoryReservation::empty(tracker),
            spill_dir: Arc::clone(spill_dir),
            spilled: false,
            cancel: cancel.clone(),
        }
    }

    /// Did any push overflow the budget and hit disk?
    fn spilled(&self) -> bool {
        self.spilled
    }

    fn evict(&mut self, frame: &DataFrame) -> Result<SpillFile> {
        let bytes = frame.heap_size();
        let file = spill_frame(&self.spill_dir, frame)?;
        let stats = lafp_meta::spill::global();
        stats.record_file();
        stats.record_spill(bytes);
        self.spilled = true;
        Ok(file)
    }

    fn push(&mut self, frame: DataFrame) -> Result<()> {
        self.cancel.check()?;
        let bytes = frame.heap_size();
        if self.reservation.grow(bytes).is_ok() {
            self.parts.push_back(BufPart::Mem(frame));
            return Ok(());
        }
        // Over budget: evict resident partitions oldest-first until the
        // newcomer fits.
        for i in 0..self.parts.len() {
            if !matches!(self.parts[i], BufPart::Mem(_)) {
                continue;
            }
            let BufPart::Mem(resident) =
                std::mem::replace(&mut self.parts[i], BufPart::Mem(DataFrame::empty()))
            else {
                unreachable!("checked above");
            };
            let freed = resident.heap_size();
            let file = self.evict(&resident)?;
            drop(resident);
            self.parts[i] = BufPart::Disk(file);
            self.reservation.shrink(freed);
            if self.reservation.grow(bytes).is_ok() {
                self.parts.push_back(BufPart::Mem(frame));
                return Ok(());
            }
        }
        // Nothing left to evict (or the newcomer alone exceeds what
        // eviction can free): spill the newcomer itself.
        let file = self.evict(&frame)?;
        self.parts.push_back(BufPart::Disk(file));
        Ok(())
    }

    fn restore(&mut self, file: SpillFile) -> Result<DataFrame> {
        let frame = file
            .read_all()?
            .pop()
            .ok_or_else(|| ColumnarError::io("empty spill file"))?;
        self.reservation.grow(frame.heap_size())?;
        lafp_meta::spill::global().record_restore(frame.heap_size());
        Ok(frame)
    }

    /// Remove and return the oldest partition, re-admitting it from disk
    /// (and re-charging the budget) if it was evicted. The returned
    /// frame's bytes stay covered by this buffer's reservation until
    /// [`release`](Self::release) or drop.
    fn pop_front(&mut self) -> Result<Option<DataFrame>> {
        self.cancel.check()?;
        match self.parts.pop_front() {
            None => Ok(None),
            Some(BufPart::Mem(f)) => Ok(Some(f)),
            Some(BufPart::Disk(file)) => Ok(Some(self.restore(file)?)),
        }
    }

    /// Give `bytes` back to the budget for popped frames the caller has
    /// finished with.
    fn release(&mut self, bytes: usize) {
        self.reservation.shrink(bytes);
    }

    /// Pop the newest partition, but only if it is resident in memory.
    /// (Eviction keeps the invariant "disk prefix, then memory suffix",
    /// so the external sort drains the charged suffix first.)
    fn pop_back_mem(&mut self) -> Option<DataFrame> {
        match self.parts.back() {
            Some(BufPart::Mem(_)) => match self.parts.pop_back() {
                Some(BufPart::Mem(f)) => Some(f),
                _ => unreachable!("just checked"),
            },
            _ => None,
        }
    }

    /// Total payload across resident and spilled partitions.
    fn total_bytes(&self) -> usize {
        self.parts
            .iter()
            .map(|p| match p {
                BufPart::Mem(f) => f.heap_size(),
                BufPart::Disk(file) => file.payload_bytes(),
            })
            .sum()
    }

    /// Materialize every partition into one frame. The partitions and
    /// the assembled result genuinely coexist while concatenating, so
    /// both are charged — materializing a frame the budget cannot hold
    /// twice over still fails, spill or no spill (the paper's "convert
    /// to pandas" OOM). The partitions' bytes are released at the end;
    /// the reservation then covers exactly the result.
    fn concat_all(&mut self) -> Result<DataFrame> {
        let mut acc: Option<DataFrame> = None;
        let mut parts_bytes = 0usize;
        let mut acc_charged = 0usize;
        while let Some(p) = self.pop_front()? {
            parts_bytes += p.heap_size();
            let next = match acc.take() {
                Some(prev) => prev.concat(&p)?,
                None => p.clone(),
            };
            let sz = next.heap_size();
            if sz > acc_charged {
                self.reservation.grow(sz - acc_charged)?;
                acc_charged = sz;
            }
            acc = Some(next);
        }
        self.reservation.shrink(parts_bytes);
        Ok(acc.unwrap_or_else(DataFrame::empty))
    }
}

// ---------------------------------------------------------------------------
// Fused operator chains
// ---------------------------------------------------------------------------
//
// The batch planner groups maximal runs of row-wise operators (plus an
// optional terminal aggregation) into a `FusedChain` executed as ONE pass
// per morsel. Instead of each operator materializing a fresh frame
// (filter gathers every column; with_column clones every column), the
// chain accumulates filter predicates into a selection bitmap, computes
// derived columns only for surviving rows, applies projections and
// renames as schema bookkeeping, and feeds a terminal group-by / reduce /
// len accumulator straight from the selected view. The only per-morsel
// materialization is the chain's *output* — and a chain that ends in an
// aggregation materializes nothing at all.

/// `LAFP_NO_FUSE=1` disables chain fusion engine-wide (CI escape hatch).
fn fuse_default() -> bool {
    match std::env::var("LAFP_NO_FUSE") {
        Ok(v) => {
            let v = v.trim();
            v.is_empty() || v == "0"
        }
        Err(_) => true,
    }
}

/// One row-local step of a fused chain (the op of an absorbed node).
enum FusedStep {
    /// AND the predicate into the selection bitmap (no rows gathered).
    Filter(Expr),
    /// Compute a column over the *compacted* domain (survivors only).
    WithColumn(String, Expr),
    /// Projection: schema bookkeeping only.
    Select(Vec<String>),
    /// Column drop: schema bookkeeping only.
    Drop(Vec<String>),
    /// Rename: schema bookkeeping only.
    Rename(Vec<(String, String)>),
    /// Fill nulls in every live column over the current domain (fill is
    /// row-local, so it commutes with a pending selection).
    FillNa(Scalar),
}

/// A planned chain: row-local steps executed as one pass per morsel.
struct FusedChain {
    /// Steps in execution order; `steps[0]` is the chain head's op.
    steps: Vec<FusedStep>,
    /// Node id of the last row-wise step — chain output emits from it
    /// (it may be persisted, a root, or have several consumers).
    last: DaskNodeId,
    /// Terminal aggregation absorbed into the chain (`GroupByAgg`,
    /// `Reduce` or `Len`), fed from the selected view without ever
    /// materializing the chain output.
    terminal: Option<DaskNodeId>,
    /// `live[k]`: column names whose *values* steps `k..` (and the chain
    /// output) still need; `None` = all visible. Compaction consults this
    /// to gather only live columns — dead ones keep their name (schema
    /// steps still validate against it) but drop their data.
    live: Vec<Option<BTreeSet<String>>>,
}

/// Where a visible column's values currently live while a chain runs.
enum FusedSrc {
    /// Column `i` of the input morsel, untouched (zero copies so far).
    Base(usize),
    /// Computed / filled / compacted column owned by this morsel.
    Owned(Column),
    /// Liveness-pruned at a compaction: the name is still visible (so
    /// select / drop / rename semantics match the unfused path) but the
    /// values were provably never needed again.
    Dead,
}

/// The result of running a chain's steps over one input morsel: a
/// visible schema over base/owned columns plus a pending selection.
/// Nothing here is materialized into a frame.
struct FusedMorsel {
    cols: Vec<(String, FusedSrc)>,
    /// Pending selection over the current row domain (`None` = all rows).
    sel: Option<Bitmap>,
    /// Current row-domain length (post-compaction, pre-`sel`).
    rows: usize,
}

/// Resolve a visible column to a borrowed `Column` (base or owned).
fn fused_resolve<'a>(
    cols: &'a [(String, FusedSrc)],
    part: &'a DataFrame,
    name: &str,
) -> Result<&'a Column> {
    for (n, src) in cols {
        if n == name {
            return match src {
                FusedSrc::Base(i) => Ok(part.series()[*i].column()),
                FusedSrc::Owned(c) => Ok(c),
                FusedSrc::Dead => Err(ColumnarError::ColumnNotFound(name.to_string())),
            };
        }
    }
    Err(ColumnarError::ColumnNotFound(name.to_string()))
}

/// Apply a pending selection: gather the live columns once, mark dead
/// ones, and shrink the row domain. This is the *only* place a fused
/// chain gathers rows, and it gathers each live column exactly once no
/// matter how many filters preceded it.
fn fused_compact(
    part: &DataFrame,
    cols: &mut [(String, FusedSrc)],
    sel: &mut Option<Bitmap>,
    rows: &mut usize,
    live: &Option<BTreeSet<String>>,
) -> Result<()> {
    let Some(mask) = sel.take() else {
        return Ok(());
    };
    *rows = mask.count_set();
    for (name, src) in cols.iter_mut() {
        if let Some(live) = live {
            if !live.contains(name) {
                *src = FusedSrc::Dead;
                continue;
            }
        }
        let gathered = match src {
            FusedSrc::Base(i) => part.series()[*i].column().filter(&mask)?,
            FusedSrc::Owned(c) => c.filter(&mask)?,
            FusedSrc::Dead => continue,
        };
        *src = FusedSrc::Owned(gathered);
    }
    Ok(())
}

/// Add-or-replace preserving position (mirrors `DataFrame::with_column`).
fn fused_upsert(cols: &mut Vec<(String, FusedSrc)>, name: &str, col: Column) {
    match cols.iter_mut().find(|(n, _)| n == name) {
        Some((_, src)) => *src = FusedSrc::Owned(col),
        None => cols.push((name.to_string(), FusedSrc::Owned(col))),
    }
}

impl FusedChain {
    /// Compile a planned run of row-wise node ids (+ optional terminal)
    /// into executable steps with per-step column liveness.
    fn compile(
        engine: &DaskEngine,
        run: &[DaskNodeId],
        terminal: Option<DaskNodeId>,
    ) -> FusedChain {
        let steps: Vec<FusedStep> = run
            .iter()
            .map(|&id| match engine.nodes[id].op.clone() {
                DaskOp::Filter(e) => FusedStep::Filter(e),
                DaskOp::WithColumn(name, e) => FusedStep::WithColumn(name, e),
                DaskOp::Select(cols) => FusedStep::Select(cols),
                DaskOp::DropColumns(cols) => FusedStep::Drop(cols),
                DaskOp::Rename(mapping) => FusedStep::Rename(mapping),
                DaskOp::FillNa(value) => FusedStep::FillNa(value),
                other => unreachable!("non-fusable op {other:?} in chain"),
            })
            .collect();
        // Backward liveness: what each suffix of the chain still reads.
        let n = steps.len();
        let mut live: Vec<Option<BTreeSet<String>>> = vec![None; n + 1];
        live[n] = terminal.map(|t| match &engine.nodes[t].op {
            DaskOp::GroupByAgg(spec) => {
                let mut s: BTreeSet<String> = spec.keys.iter().cloned().collect();
                s.insert(spec.value.clone());
                s
            }
            DaskOp::Reduce { column, .. } => std::iter::once(column.clone()).collect(),
            DaskOp::Len => BTreeSet::new(),
            other => unreachable!("op {other:?} fused as terminal"),
        });
        for k in (0..n).rev() {
            let down = live[k + 1].clone();
            live[k] = match &steps[k] {
                FusedStep::Filter(e) => down.map(|mut s| {
                    s.extend(e.used_columns());
                    s
                }),
                FusedStep::WithColumn(name, e) => down.map(|mut s| {
                    s.remove(name);
                    s.extend(e.used_columns());
                    s
                }),
                FusedStep::Select(names) => Some(match down {
                    Some(s) => s,
                    None => names.iter().cloned().collect(),
                }),
                FusedStep::Drop(_) | FusedStep::FillNa(_) => down,
                FusedStep::Rename(mapping) => down.map(|s| {
                    s.into_iter()
                        .map(|c| match mapping.iter().find(|(_, new)| *new == c) {
                            Some((old, _)) => old.clone(),
                            None => c,
                        })
                        .collect()
                }),
            };
        }
        FusedChain {
            steps,
            last: *run.last().expect("non-empty chain"),
            terminal,
            live,
        }
    }

    /// Run every step over one input morsel in a single pass. Error
    /// semantics deliberately mirror the unfused operators: unknown
    /// columns report [`ColumnNotFound`], duplicate projections report
    /// [`DuplicateColumn`], and `fillna` skips columns it cannot fill.
    ///
    /// [`ColumnNotFound`]: ColumnarError::ColumnNotFound
    /// [`DuplicateColumn`]: ColumnarError::DuplicateColumn
    fn apply(&self, part: &DataFrame) -> Result<FusedMorsel> {
        let mut cols: Vec<(String, FusedSrc)> = part
            .series()
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name().to_string(), FusedSrc::Base(i)))
            .collect();
        let mut sel: Option<Bitmap> = None;
        let mut rows = part.num_rows();
        for (k, step) in self.steps.iter().enumerate() {
            match step {
                FusedStep::Filter(expr) => {
                    // Evaluate over the current (possibly unselected)
                    // domain and AND into the pending selection: adjacent
                    // filters collapse into one bitmap before any row is
                    // gathered. Sound because every expression kernel is
                    // total (e.g. `% 0` nulls, never panics), so rows an
                    // earlier predicate already rejected are harmless.
                    let mask =
                        expr.evaluate_mask_resolved(rows, &|n| fused_resolve(&cols, part, n))?;
                    match &mut sel {
                        None => sel = Some(mask),
                        Some(s) => s.and_assign(&mask),
                    }
                }
                FusedStep::WithColumn(name, expr) => {
                    // Compact first so the derived column is computed
                    // only for surviving rows.
                    fused_compact(part, &mut cols, &mut sel, &mut rows, &self.live[k])?;
                    let col =
                        expr.evaluate_resolved(rows, &|n| fused_resolve(&cols, part, n))?;
                    fused_upsert(&mut cols, name, col);
                }
                FusedStep::Select(names) => {
                    let mut picked: Vec<(String, FusedSrc)> = Vec::with_capacity(names.len());
                    for name in names {
                        let idx = cols
                            .iter()
                            .position(|(n, _)| n == name)
                            .ok_or_else(|| ColumnarError::ColumnNotFound(name.clone()))?;
                        if picked.iter().any(|(n, _)| n == name) {
                            return Err(ColumnarError::DuplicateColumn(name.clone()));
                        }
                        let src = std::mem::replace(&mut cols[idx].1, FusedSrc::Dead);
                        picked.push((name.clone(), src));
                    }
                    cols = picked;
                }
                FusedStep::Drop(names) => {
                    for name in names {
                        if !cols.iter().any(|(n, _)| n == name) {
                            return Err(ColumnarError::ColumnNotFound(name.clone()));
                        }
                    }
                    cols.retain(|(n, _)| !names.iter().any(|d| d == n));
                }
                FusedStep::Rename(mapping) => {
                    for (old, _) in mapping {
                        if !cols.iter().any(|(n, _)| n == old) {
                            return Err(ColumnarError::ColumnNotFound(old.clone()));
                        }
                    }
                    for (name, _) in cols.iter_mut() {
                        if let Some((_, new)) = mapping.iter().find(|(old, _)| old == name) {
                            *name = new.clone();
                        }
                    }
                    let mut seen = BTreeSet::new();
                    for (name, _) in &cols {
                        if !seen.insert(name.clone()) {
                            return Err(ColumnarError::DuplicateColumn(name.clone()));
                        }
                    }
                }
                FusedStep::FillNa(value) => {
                    // Fill is row-local, so it commutes with the pending
                    // selection — no compaction needed. Only live columns
                    // are filled; unfillable ones pass through unchanged
                    // (unfused parity).
                    for (name, src) in cols.iter_mut() {
                        if let Some(live) = &self.live[k] {
                            if !live.contains(name) {
                                continue;
                            }
                        }
                        let base = match src {
                            FusedSrc::Base(i) => part.series()[*i].column(),
                            FusedSrc::Owned(c) => c,
                            FusedSrc::Dead => continue,
                        };
                        if let Ok(filled) = base.fillna(value) {
                            *src = FusedSrc::Owned(filled);
                        }
                    }
                }
            }
        }
        Ok(FusedMorsel { cols, sel, rows })
    }
}

/// Materialize a chain's output morsel into a frame — the chain
/// boundary, and the only per-morsel materialization a fused chain
/// performs. Each output column is gathered (or cloned) exactly once.
fn fused_materialize(part: &DataFrame, morsel: FusedMorsel) -> Result<DataFrame> {
    let FusedMorsel { cols, sel, .. } = morsel;
    let mut series = Vec::with_capacity(cols.len());
    for (name, src) in cols {
        let col = match (src, &sel) {
            (FusedSrc::Base(i), Some(mask)) => part.series()[i].column().filter(mask)?,
            (FusedSrc::Base(i), None) => part.series()[i].column().clone(),
            (FusedSrc::Owned(c), Some(mask)) => c.filter(mask)?,
            (FusedSrc::Owned(c), None) => c,
            // Liveness only kills columns the suffix provably never
            // reads, and the output reads every visible column.
            (FusedSrc::Dead, _) => {
                return Err(ColumnarError::ColumnNotFound(name));
            }
        };
        series.push(Series::new(name, col));
    }
    DataFrame::new(series)
}

/// One batch execution over the engine graph.
struct BatchRun {
    /// Node ids included in this run.
    nodes: Vec<DaskNodeId>,
    /// Runtime state per included node (indexed by dense position).
    states: Vec<NodeState>,
    /// Dense position per node id.
    pos: Vec<Option<usize>>,
    /// Consumers per node: (consumer id, input slot).
    consumers: Vec<Vec<(DaskNodeId, usize)>>,
    /// Remaining not-yet-finished inputs per node.
    open_inputs: Vec<usize>,
    /// Cache tee for persisted nodes.
    persist_tees: std::collections::HashMap<DaskNodeId, (Vec<Arc<DataFrame>>, MemoryReservation)>,
    /// The batch's roots.
    root_set: std::collections::HashSet<DaskNodeId>,
    /// Scalar results per root node id.
    scalar_results: std::collections::HashMap<DaskNodeId, Scalar>,
    /// Output buffers for frame-valued roots, keyed by dense position.
    gather_buffers: std::collections::HashMap<usize, PartitionBuffer>,
    /// Per-batch scan row limits from head pushdown.
    scan_limits: std::collections::HashMap<DaskNodeId, usize>,
    /// Fused operator chains planned for this batch (`Arc` so a pipeline
    /// transform stage can run a chain while the driver owns the run).
    chains: Vec<Arc<FusedChain>>,
    /// Chain index by head node id: partitions delivered to a head are
    /// routed through the whole chain in one pass.
    chain_by_head: std::collections::HashMap<DaskNodeId, usize>,
    /// Per-query cancellation handle, checked at morsel boundaries
    /// (consume / fused absorb / external-sort merge rounds).
    cancel: CancelToken,
}

impl BatchRun {
    fn plan(engine: &DaskEngine, roots: &[DaskNodeId], cancel: CancelToken) -> Result<BatchRun> {
        let included = engine.reachable(roots);
        let mut pos = vec![None; engine.nodes.len()];
        for (i, &id) in included.iter().enumerate() {
            pos[id] = Some(i);
        }
        let root_set: std::collections::HashSet<DaskNodeId> = roots.iter().copied().collect();
        let mut consumers: Vec<Vec<(DaskNodeId, usize)>> = vec![Vec::new(); included.len()];
        let mut open_inputs = vec![0usize; included.len()];
        for &id in &included {
            if engine.nodes[id].cache.is_some() {
                continue; // cached: acts as a source, no live inputs
            }
            for (slot, &input) in engine.nodes[id].inputs.iter().enumerate() {
                let ipos = pos[input].expect("input included");
                consumers[ipos].push((id, slot));
                open_inputs[pos[id].unwrap()] += 1;
            }
        }
        let tracker = &engine.tracker;
        let mut states = Vec::with_capacity(included.len());
        for &id in &included {
            let node = &engine.nodes[id];
            let state = if node.cache.is_some() {
                NodeState::Source
            } else {
                match &node.op {
                    DaskOp::ReadCsv { .. } | DaskOp::FromFrame(_) => NodeState::Source,
                    op if op.is_row_wise() => NodeState::RowWise,
                    DaskOp::GroupByAgg(spec) => NodeState::GroupBy {
                        acc: GroupByAccumulator::new(spec.clone()),
                        state: MemoryReservation::empty(tracker),
                    },
                    DaskOp::Reduce { agg, .. } => NodeState::Reduce {
                        acc: ReduceState::new(*agg),
                    },
                    DaskOp::Len => NodeState::Len { rows: 0 },
                    DaskOp::Head(n) => NodeState::Head {
                        remaining: *n,
                        emitted: false,
                    },
                    DaskOp::Sort(_) => NodeState::Sort {
                        buffer: PartitionBuffer::new(tracker, &engine.spill_dir, &cancel),
                    },
                    DaskOp::DropDuplicates(_) => NodeState::Dedup {
                        seen: std::collections::HashSet::new(),
                        state: MemoryReservation::empty(tracker),
                    },
                    DaskOp::Merge { .. } => NodeState::MergeState {
                        build: PartitionBuffer::new(tracker, &engine.spill_dir, &cancel),
                        build_done: false,
                        pending_probes: PartitionBuffer::new(tracker, &engine.spill_dir, &cancel),
                        built: None,
                    },
                    DaskOp::Concat => NodeState::ConcatState,
                    _ => NodeState::RowWise,
                }
            };
            states.push(state);
        }
        // Frame-valued roots get a gather buffer appended conceptually; we
        // model it by wrapping: a root that is frame-valued buffers its own
        // deliveries in scalar_results/gather. Implemented in deliver().
        let mut run = BatchRun {
            nodes: included,
            states,
            pos,
            consumers,
            open_inputs,
            persist_tees: std::collections::HashMap::new(),
            root_set,
            scalar_results: std::collections::HashMap::new(),
            gather_buffers: std::collections::HashMap::new(),
            scan_limits: std::collections::HashMap::new(),
            chains: Vec::new(),
            chain_by_head: std::collections::HashMap::new(),
            cancel,
        };
        // Frame-valued roots additionally buffer their output.
        for &root in roots {
            let p = run.pos[root].expect("root included");
            let scalar_valued = matches!(
                engine.nodes[root].op,
                DaskOp::Reduce { .. } | DaskOp::Len
            ) && engine.nodes[root].cache.is_none();
            if !scalar_valued {
                // Wrap the state so root deliveries also land in a buffer.
                run.install_gather(p, tracker, &engine.spill_dir);
            }
        }
        if engine.fuse_chains {
            run.plan_chains(engine);
        }
        Ok(run)
    }

    /// Plan fused operator chains (see the "Fused operator chains"
    /// section above). A node heads a chain when it is row-wise,
    /// uncached, and its producer does not itself extend into it; the
    /// chain then absorbs every downstream link whose output is
    /// invisible to the rest of the batch (single consumer, no persist
    /// tee, not a root), and optionally a terminal aggregation.
    fn plan_chains(&mut self, engine: &DaskEngine) {
        let fusable =
            |id: DaskNodeId| engine.nodes[id].cache.is_none() && engine.nodes[id].op.is_row_wise();
        // Interior links must be invisible to everything but the next
        // link: exactly one consumer, no persist tee, not a batch root.
        let interior_ok = |run: &BatchRun, n: DaskNodeId| {
            let p = run.pos[n].expect("chain node included");
            run.consumers[p].len() == 1
                && !engine.nodes[n].persisted
                && !run.root_set.contains(&n)
        };
        for idx in 0..self.nodes.len() {
            let id = self.nodes[idx];
            if !fusable(id) {
                continue;
            }
            let producer = engine.nodes[id].inputs.first().copied();
            if producer.is_some_and(|p| fusable(p) && interior_ok(self, p)) {
                continue; // not a head: the upstream chain absorbs this node
            }
            let mut run_nodes = vec![id];
            let mut terminal = None;
            let mut cur = id;
            while interior_ok(self, cur) {
                let (next, _slot) = self.consumers[self.pos[cur].unwrap()][0];
                if fusable(next) {
                    run_nodes.push(next);
                    cur = next;
                    continue;
                }
                if matches!(
                    engine.nodes[next].op,
                    DaskOp::GroupByAgg(_) | DaskOp::Reduce { .. } | DaskOp::Len
                ) {
                    terminal = Some(next);
                }
                break;
            }
            if run_nodes.len() < 2 && terminal.is_none() {
                continue; // a lone row-wise op has nothing to fuse with
            }
            let ops = run_nodes.len() + usize::from(terminal.is_some());
            engine.fusion_stats.record_chain(ops);
            lafp_meta::fusion::global().record_chain(ops);
            let chain = FusedChain::compile(engine, &run_nodes, terminal);
            self.chain_by_head.insert(id, self.chains.len());
            self.chains.push(Arc::new(chain));
        }
    }

    fn install_gather(
        &mut self,
        p: usize,
        tracker: &Arc<MemoryTracker>,
        spill_dir: &Arc<SpillDir>,
    ) {
        // A root may also feed other consumers; we keep its operational
        // state and add a side buffer keyed by dense position.
        self.gather_buffers
            .entry(p)
            .or_insert_with(|| PartitionBuffer::new(tracker, spill_dir, &self.cancel));
    }

    fn execute(&mut self, engine: &mut DaskEngine) -> Result<()> {
        // Drive sources in topo order (so Concat's input-0 emits first and
        // merge build sides tend to finish before probe floods).
        let mut roots: Vec<DaskNodeId> = self.root_set.iter().copied().collect();
        roots.sort_unstable();
        let order = engine.topo_order(&roots);
        let mut sources: Vec<DaskNodeId> = order
            .into_iter()
            .filter(|&id| {
                self.pos[id].is_some()
                    && matches!(self.states[self.pos[id].unwrap()], NodeState::Source)
            })
            .collect();
        // Merge build sides (input 1) should finish before probe sources
        // start, or every probe partition gets buffered. Run sources that
        // feed only build sides first (stable within each class).
        let mut build_side: std::collections::HashSet<DaskNodeId> = Default::default();
        let mut probe_side: std::collections::HashSet<DaskNodeId> = Default::default();
        for &id in &self.nodes {
            if engine.nodes[id].cache.is_none() {
                if let DaskOp::Merge { .. } = engine.nodes[id].op {
                    build_side.extend(engine.reachable(&[engine.nodes[id].inputs[1]]));
                    probe_side.extend(engine.reachable(&[engine.nodes[id].inputs[0]]));
                }
            }
        }
        sources.sort_by_key(|id| !build_side.contains(id) || probe_side.contains(id));
        for source in sources {
            self.drive_source(engine, source)?;
        }
        // Persist tees -> engine caches.
        for (id, (parts, reservation)) in self.persist_tees.drain() {
            engine.nodes[id].cache = Some(CachedPartitions {
                parts,
                _reservation: reservation,
            });
        }
        Ok(())
    }

    fn drive_source(&mut self, engine: &mut DaskEngine, id: DaskNodeId) -> Result<()> {
        self.cancel.check()?;
        // Cached partitions replay.
        if let Some(cache) = &engine.nodes[id].cache {
            let parts = cache.parts.clone();
            for p in parts {
                self.emit(engine, id, &p)?;
            }
            self.finish_node(engine, id)?;
            return Ok(());
        }
        match engine.nodes[id].op.clone() {
            DaskOp::ReadCsv {
                path,
                options,
                limit,
            } => {
                let limit = match (limit, self.scan_limits.get(&id).copied()) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                let mut reader = CsvChunkReader::open(&path, &options, engine.chunk_rows)?;
                // A header-only file yields no chunks; remember the
                // schema so the scan still emits one empty partition — a
                // zero-part stream would otherwise materialize as a
                // 0-column frame downstream.
                let scan_empty = reader.empty_frame()?;
                let mut scanned_any = false;
                // When the scan's sole observer is a fused chain head and
                // no row limit applies, run a THREE-stage pipeline: the
                // parse thread overlaps a dedicated chain-transform
                // thread, and this (driver) thread only lands finished
                // morsels (accumulator updates / output emits).
                let chain_ci = if limit.is_none()
                    && !engine.nodes[id].persisted
                    && !self.root_set.contains(&id)
                    && self.consumers[self.pos[id].expect("source included")].len() == 1
                {
                    let (consumer, _slot) =
                        self.consumers[self.pos[id].expect("source included")][0];
                    self.chain_by_head.get(&consumer).copied()
                } else {
                    None
                };
                if let (true, Some(ci)) = (
                    engine.pipeline_scan && engine.pool.is_parallel(),
                    chain_ci,
                ) {
                    let cap = engine.pool.threads();
                    let chain = Arc::clone(&self.chains[ci]);
                    let landed_chain = Arc::clone(&self.chains[ci]);
                    let ((), (), drive) = pipeline3(
                        cap,
                        move |tx: &StageChannel<Result<DataFrame>>| {
                            loop {
                                match reader.next_chunk() {
                                    Ok(Some(chunk)) => {
                                        if !tx.send(Ok(chunk)) {
                                            break; // downstream hung up
                                        }
                                    }
                                    Ok(None) => break,
                                    Err(e) => {
                                        let _ = tx.send(Err(e));
                                        break;
                                    }
                                }
                            }
                            tx.close();
                        },
                        move |rx: &StageChannel<Result<DataFrame>>,
                              tx: &StageChannel<Result<(DataFrame, FusedMorsel)>>| {
                            while let Some(item) = rx.recv() {
                                let out = item
                                    .and_then(|chunk| chain.apply(&chunk).map(|m| (chunk, m)));
                                let stop = out.is_err();
                                if !tx.send(out) || stop {
                                    break;
                                }
                            }
                            tx.close();
                        },
                        |rx: &StageChannel<Result<(DataFrame, FusedMorsel)>>| -> Result<()> {
                            while let Some(item) = rx.recv() {
                                let (chunk, morsel) = item?;
                                scanned_any = true;
                                let _t = engine.tracker.charge(chunk.heap_size())?;
                                self.absorb_fused(engine, &landed_chain, &chunk, morsel)?;
                            }
                            Ok(())
                        },
                    )?;
                    drive?;
                } else if engine.pipeline_scan && engine.pool.is_parallel() {
                    // Pipelined scan: the CSV parse runs on a producer
                    // thread while this (driver) thread pushes finished
                    // chunks through the downstream operators. The
                    // bounded channel is the backpressure rule — at most
                    // `threads` parsed-but-unconsumed chunks in flight,
                    // so a slow consumer throttles the parser instead of
                    // buffering the file.
                    let cap = engine.pool.threads();
                    let ((), drive) = pipeline(
                        cap,
                        move |tx: &StageChannel<Result<DataFrame>>| {
                            loop {
                                match reader.next_chunk() {
                                    Ok(Some(chunk)) => {
                                        if !tx.send(Ok(chunk)) {
                                            break; // consumer hung up (limit hit / error)
                                        }
                                    }
                                    Ok(None) => break,
                                    Err(e) => {
                                        let _ = tx.send(Err(e));
                                        break;
                                    }
                                }
                            }
                            tx.close();
                        },
                        |rx: &StageChannel<Result<DataFrame>>| -> Result<()> {
                            let mut emitted = 0usize;
                            while let Some(item) = rx.recv() {
                                let chunk = item?;
                                let chunk = match limit {
                                    Some(l) if emitted + chunk.num_rows() > l => {
                                        chunk.head(l - emitted)
                                    }
                                    _ => chunk,
                                };
                                emitted += chunk.num_rows();
                                scanned_any = true;
                                let _t = engine.tracker.charge(chunk.heap_size())?;
                                self.emit(engine, id, &chunk)?;
                                if limit.is_some_and(|l| emitted >= l) {
                                    break;
                                }
                            }
                            Ok(())
                        },
                    )?;
                    drive?;
                } else {
                    let mut emitted = 0usize;
                    while let Some(chunk) = reader.next_chunk()? {
                        self.cancel.check()?;
                        let chunk = match limit {
                            Some(l) if emitted + chunk.num_rows() > l => chunk.head(l - emitted),
                            _ => chunk,
                        };
                        emitted += chunk.num_rows();
                        scanned_any = true;
                        let _t = engine.tracker.charge(chunk.heap_size())?;
                        self.emit(engine, id, &chunk)?;
                        if limit.is_some_and(|l| emitted >= l) {
                            break;
                        }
                    }
                }
                if !scanned_any {
                    self.emit(engine, id, &scan_empty)?;
                }
            }
            DaskOp::FromFrame(frame) => {
                let rows = frame.num_rows();
                let mut start = 0;
                if rows == 0 {
                    self.emit(engine, id, frame.as_ref())?;
                }
                while start < rows {
                    self.cancel.check()?;
                    let len = engine.chunk_rows.min(rows - start);
                    let part = frame.slice(start, len);
                    let _t = engine.tracker.charge(part.heap_size())?;
                    self.emit(engine, id, &part)?;
                    start += len;
                }
            }
            other => {
                return Err(ColumnarError::InvalidArgument(format!(
                    "node {id} with op {other:?} is not a source"
                )))
            }
        }
        self.finish_node(engine, id)
    }

    /// A node produced one output partition: tee to persist/gather buffers
    /// and push to all consumers.
    fn emit(&mut self, engine: &mut DaskEngine, from: DaskNodeId, part: &DataFrame) -> Result<()> {
        let p = self.pos[from].expect("emitting node included");
        if engine.nodes[from].persisted && engine.nodes[from].cache.is_none() {
            let tee = self
                .persist_tees
                .entry(from)
                .or_insert_with(|| (Vec::new(), MemoryReservation::empty(&engine.tracker)));
            tee.1.grow(part.heap_size())?;
            tee.0.push(Arc::new(part.clone()));
        }
        if let Some(buffer) = self.gather_buffers.get_mut(&p) {
            buffer.push(part.clone())?;
        }
        let consumers = self.consumers[p].clone();
        for (consumer, slot) in consumers {
            self.consume(engine, consumer, slot, part)?;
        }
        Ok(())
    }

    /// Deliver one input partition into a node's state.
    fn consume(
        &mut self,
        engine: &mut DaskEngine,
        id: DaskNodeId,
        slot: usize,
        part: &DataFrame,
    ) -> Result<()> {
        self.cancel.check()?;
        // Driver-side morsel-execution injection point (the pool's
        // equivalent sits in `TaskQueue::claim`); a fired panic unwinds
        // to the `compute_batch` isolation boundary.
        faults::inject(FaultSite::MorselExecute)?;
        // A chain head routes the partition through the whole fused
        // chain in one pass instead of its own (unfused) arm below.
        if let Some(ci) = self.chain_by_head.get(&id).copied() {
            let chain = Arc::clone(&self.chains[ci]);
            let morsel = chain.apply(part)?;
            return self.absorb_fused(engine, &chain, part, morsel);
        }
        let p = self.pos[id].expect("consumer included");
        let op = engine.nodes[id].op.clone();
        // Take the state out to satisfy the borrow checker across recursion.
        let mut state = std::mem::replace(&mut self.states[p], NodeState::RowWise);
        let result = (|| -> Result<()> {
            match (&op, &mut state) {
                (DaskOp::Filter(expr), NodeState::RowWise) => {
                    engine.record_intermediate();
                    let out = part.filter(&expr.evaluate_mask(part)?)?;
                    let _t = engine.tracker.charge(out.heap_size())?;
                    self.emit(engine, id, &out)
                }
                (DaskOp::WithColumn(name, expr), NodeState::RowWise) => {
                    engine.record_intermediate();
                    let out = part.with_column(name, expr.evaluate(part)?)?;
                    let _t = engine.tracker.charge(out.heap_size())?;
                    self.emit(engine, id, &out)
                }
                (DaskOp::Select(cols), NodeState::RowWise) => {
                    engine.record_intermediate();
                    self.emit_owned(engine, id, part.select(cols)?)
                }
                (DaskOp::DropColumns(cols), NodeState::RowWise) => {
                    engine.record_intermediate();
                    self.emit_owned(engine, id, part.drop(cols)?)
                }
                (DaskOp::Rename(mapping), NodeState::RowWise) => {
                    engine.record_intermediate();
                    self.emit_owned(engine, id, part.rename(mapping)?)
                }
                (DaskOp::FillNa(value), NodeState::RowWise) => {
                    engine.record_intermediate();
                    let mut cols = Vec::with_capacity(part.num_columns());
                    for s in part.series() {
                        match s.column().fillna(value) {
                            Ok(c) => cols.push(Series::new(s.name(), c)),
                            Err(_) => cols.push(s.clone()),
                        }
                    }
                    self.emit_owned(engine, id, DataFrame::new(cols)?)
                }
                (DaskOp::GroupByAgg(_), NodeState::GroupBy { acc, state }) => {
                    acc.update(part)?;
                    let held = acc.heap_size();
                    if held > state.bytes() {
                        state.grow(held - state.bytes())?;
                    }
                    Ok(())
                }
                (DaskOp::Reduce { column, .. }, NodeState::Reduce { acc }) => {
                    acc.update(part, column)
                }
                (DaskOp::Len, NodeState::Len { rows }) => {
                    *rows += part.num_rows();
                    Ok(())
                }
                (DaskOp::Head(_), NodeState::Head { remaining, emitted }) => {
                    // Emit at least one (possibly empty) part so a
                    // zero-row head still reports its schema.
                    if *remaining == 0 && *emitted {
                        return Ok(());
                    }
                    let take = (*remaining).min(part.num_rows());
                    *remaining -= take;
                    *emitted = true;
                    let out = part.head(take);
                    self.emit(engine, id, &out)
                }
                (DaskOp::Sort(_), NodeState::Sort { buffer }) => buffer.push(part.clone()),
                (DaskOp::DropDuplicates(subset), NodeState::Dedup { seen, state }) => {
                    let hashes = part.row_hashes(subset)?;
                    let keep: Vec<usize> = hashes
                        .iter()
                        .enumerate()
                        .filter(|(_, h)| seen.insert(**h))
                        .map(|(i, _)| i)
                        .collect();
                    state.grow(keep.len() * 8)?;
                    // Pass empty parts through (schema preservation);
                    // skip only when a non-empty part deduped to nothing.
                    if keep.is_empty() && part.num_rows() > 0 {
                        return Ok(());
                    }
                    let out = part.take(&keep)?;
                    self.emit(engine, id, &out)
                }
                (
                    DaskOp::Merge { on, how },
                    NodeState::MergeState {
                        build,
                        build_done,
                        pending_probes,
                        built,
                    },
                ) => {
                    if slot == 1 {
                        build.push(part.clone())
                    } else if *build_done {
                        let right = built.clone().expect("built after build_done");
                        let out = join_merge(part, &right, on, *how)?;
                        let _t = engine.tracker.charge(out.heap_size())?;
                        self.emit(engine, id, &out)
                    } else {
                        pending_probes.push(part.clone())
                    }
                }
                (DaskOp::Concat, NodeState::ConcatState) => self.emit(engine, id, part),
                (op, _) => Err(ColumnarError::InvalidArgument(format!(
                    "unexpected state for op {op:?}"
                ))),
            }
        })();
        self.states[p] = state;
        result
    }

    /// Land one chain-transformed morsel: feed the terminal accumulator
    /// straight from the selected view (zero materializations), or
    /// materialize the chain's output frame once and emit it from the
    /// last fused node (which handles persist tees / gather buffers /
    /// fan-out exactly like an unfused emit).
    fn absorb_fused(
        &mut self,
        engine: &mut DaskEngine,
        chain: &FusedChain,
        part: &DataFrame,
        morsel: FusedMorsel,
    ) -> Result<()> {
        self.cancel.check()?;
        faults::inject(FaultSite::MorselExecute)?;
        engine.fusion_stats.record_fused_morsel(part.num_rows());
        lafp_meta::fusion::global().record_fused_morsel(part.num_rows());
        let Some(t) = chain.terminal else {
            let out = fused_materialize(part, morsel)?;
            let _t = engine.tracker.charge(out.heap_size())?;
            return self.emit(engine, chain.last, &out);
        };
        let p = self.pos[t].expect("terminal included");
        let op = engine.nodes[t].op.clone();
        let mut state = std::mem::replace(&mut self.states[p], NodeState::RowWise);
        let result = (|| -> Result<()> {
            match (&op, &mut state) {
                (DaskOp::GroupByAgg(spec), NodeState::GroupBy { acc, state }) => {
                    let key_cols: Vec<&Column> = spec
                        .keys
                        .iter()
                        .map(|k| fused_resolve(&morsel.cols, part, k))
                        .collect::<Result<_>>()?;
                    let value_col = fused_resolve(&morsel.cols, part, &spec.value)?;
                    acc.update_cols(&key_cols, value_col, morsel.sel.as_ref())?;
                    let held = acc.heap_size();
                    if held > state.bytes() {
                        state.grow(held - state.bytes())?;
                    }
                    Ok(())
                }
                (DaskOp::Reduce { column, .. }, NodeState::Reduce { acc }) => {
                    let col = fused_resolve(&morsel.cols, part, column)?;
                    match &morsel.sel {
                        Some(mask) => acc.update_col(&col.filter(mask)?),
                        None => acc.update_col(col),
                    }
                }
                (DaskOp::Len, NodeState::Len { rows }) => {
                    *rows += morsel
                        .sel
                        .as_ref()
                        .map_or(morsel.rows, Bitmap::count_set);
                    Ok(())
                }
                (op, _) => Err(ColumnarError::InvalidArgument(format!(
                    "unexpected state for fused terminal {op:?}"
                ))),
            }
        })();
        self.states[p] = state;
        result
    }

    fn emit_owned(
        &mut self,
        engine: &mut DaskEngine,
        id: DaskNodeId,
        frame: DataFrame,
    ) -> Result<()> {
        self.emit(engine, id, &frame)
    }

    /// An upstream input of `id` finished; when all inputs are done the
    /// node flushes its final output(s) and finishes itself.
    fn input_finished(&mut self, engine: &mut DaskEngine, id: DaskNodeId, slot: usize) -> Result<()> {
        let p = self.pos[id].expect("node included");
        // Merge needs to react to the build side finishing even before all
        // inputs are done.
        if let DaskOp::Merge { on, how } = engine.nodes[id].op.clone() {
            if slot == 1 {
                let mut state = std::mem::replace(&mut self.states[p], NodeState::RowWise);
                let result = (|| -> Result<()> {
                    if let NodeState::MergeState {
                        build,
                        build_done,
                        pending_probes,
                        built,
                    } = &mut state
                    {
                        *build_done = true;
                        *built = Some(build.concat_all()?);
                        let mut probes = std::mem::replace(
                            pending_probes,
                            PartitionBuffer::new(&engine.tracker, &engine.spill_dir, &self.cancel),
                        );
                        let right = built.clone().expect("just built");
                        // The backlog of buffered probe partitions is
                        // embarrassingly parallel: join against the
                        // shared build side on the pool in waves of one
                        // partition per worker. Draining wave-by-wave
                        // (instead of mapping the whole backlog at once)
                        // bounds the tracked footprint to one wave of
                        // inputs plus outputs, and lets a backlog that
                        // spilled to disk re-admit a wave at a time.
                        let pool = Arc::clone(&engine.pool);
                        let wave = pool.threads().max(1);
                        loop {
                            let mut batch = Vec::with_capacity(wave);
                            while batch.len() < wave {
                                match probes.pop_front()? {
                                    Some(f) => batch.push(f),
                                    None => break,
                                }
                            }
                            if batch.is_empty() {
                                break;
                            }
                            let in_bytes: usize =
                                batch.iter().map(HeapSize::heap_size).sum();
                            let outs: Vec<DataFrame> = pool
                                .map(batch, |_, probe| join_merge(&probe, &right, &on, how))
                                .into_iter()
                                .collect::<Result<Vec<_>>>()?;
                            let wave_bytes: usize =
                                outs.iter().map(HeapSize::heap_size).sum();
                            let _t = engine.tracker.charge(wave_bytes)?;
                            for out in outs {
                                self.emit(engine, id, &out)?;
                            }
                            probes.release(in_bytes);
                        }
                    }
                    Ok(())
                })();
                self.states[p] = state;
                result?;
            }
        }
        self.open_inputs[p] -= 1;
        if self.open_inputs[p] == 0 {
            self.flush_finals(engine, id)?;
            self.finish_node(engine, id)?;
        }
        Ok(())
    }

    /// Emit whatever a stateful node holds at end-of-stream.
    fn flush_finals(&mut self, engine: &mut DaskEngine, id: DaskNodeId) -> Result<()> {
        let p = self.pos[id].expect("node included");
        let op = engine.nodes[id].op.clone();
        let mut state = std::mem::replace(&mut self.states[p], NodeState::RowWise);
        let result = (|| -> Result<()> {
            match (&op, &mut state) {
                (DaskOp::GroupByAgg(_), NodeState::GroupBy { acc, .. }) => {
                    let spec = acc.spec().clone();
                    let done =
                        std::mem::replace(acc, GroupByAccumulator::new(spec)).finish()?;
                    let _t = engine.tracker.charge(done.heap_size())?;
                    self.emit(engine, id, &done)
                }
                (DaskOp::Reduce { agg, .. }, NodeState::Reduce { acc }) => {
                    let done = std::mem::replace(acc, ReduceState::new(*agg)).finish();
                    self.scalar_results.insert(id, done);
                    Ok(())
                }
                (DaskOp::Len, NodeState::Len { rows }) => {
                    self.scalar_results.insert(id, Scalar::Int(*rows as i64));
                    Ok(())
                }
                (DaskOp::Sort(options), NodeState::Sort { buffer }) => {
                    if buffer.spilled() {
                        // The input didn't fit in the budget: external
                        // sort (sorted on-disk runs + k-way merge).
                        self.external_sort(engine, id, options, buffer)
                    } else {
                        // The sort is blocking anyway — every partition
                        // is already buffered — so flush through the
                        // morsel-parallel kernel.
                        let frame = buffer.concat_all()?;
                        let sorted = sort_values_par(&frame, options, &engine.pool)?;
                        let _t = engine.tracker.charge(sorted.heap_size())?;
                        self.emit(engine, id, &sorted)
                    }
                }
                _ => Ok(()),
            }
        })();
        self.states[p] = state;
        result
    }

    /// External sort for a buffer that overflowed the budget.
    ///
    /// Phase 1 drains the buffer into **sorted runs**: partitions are
    /// accumulated (re-admitting spilled ones one at a time) up to a
    /// run budget, sorted with the morsel-parallel kernel, and written
    /// back to disk as chunk-sized frames. Phase 2 **k-way merges** the
    /// runs holding one resident chunk per run, comparing rows with the
    /// cross-frame sort keys; key ties break toward the earlier run, so
    /// the merge is stable with respect to arrival order exactly like
    /// the in-memory path (the underlying kernel sort is stable).
    fn external_sort(
        &mut self,
        engine: &mut DaskEngine,
        id: DaskNodeId,
        options: &SortOptions,
        buffer: &mut PartitionBuffer,
    ) -> Result<()> {
        let budget = engine.tracker.budget();
        let run_budget = if budget == usize::MAX {
            usize::MAX
        } else {
            // Each run is accumulated under charge before it is sorted
            // and parked on disk; /4 keeps phase 1 comfortably inside
            // the budget once the resident suffix has been drained.
            (budget / 4).max(1)
        };
        // The merge holds one resident chunk per run; cap run-file frame
        // sizes so ~est_runs of them stay within half the budget.
        let est_runs = buffer.total_bytes() / run_budget + 1;
        let frame_cap = if budget == usize::MAX {
            usize::MAX
        } else {
            (budget / (2 * est_runs)).max(1)
        };

        // Drain the *resident suffix* first (eviction keeps spilled
        // partitions as an arrival-order prefix): flushing it into runs
        // releases its charge before any spilled partition is
        // re-admitted, so phase 1 never holds resident-suffix + restored
        // bytes at once. Runs are later merged with an arrival-order
        // tie-break, so the run list must be assembled prefix-first.
        let mut resident: Vec<DataFrame> = Vec::new();
        while let Some(f) = buffer.pop_back_mem() {
            resident.push(f);
        }
        resident.reverse(); // arrival order
        let mut suffix_runs: Vec<SpillFile> = Vec::new();
        let mut acc: Vec<DataFrame> = Vec::new();
        let mut acc_bytes = 0usize;
        for part in resident {
            acc_bytes += part.heap_size();
            acc.push(part);
            if acc_bytes >= run_budget {
                suffix_runs.push(write_sorted_run(engine, &mut acc, options, frame_cap)?);
                buffer.release(acc_bytes);
                acc_bytes = 0;
            }
        }
        if !acc.is_empty() {
            suffix_runs.push(write_sorted_run(engine, &mut acc, options, frame_cap)?);
            buffer.release(acc_bytes);
            acc_bytes = 0;
        }
        // Now re-admit the spilled prefix, one run's worth at a time.
        let mut runs: Vec<SpillFile> = Vec::new();
        while let Some(part) = buffer.pop_front()? {
            acc_bytes += part.heap_size();
            acc.push(part);
            if acc_bytes >= run_budget {
                runs.push(write_sorted_run(engine, &mut acc, options, frame_cap)?);
                buffer.release(acc_bytes);
                acc_bytes = 0;
            }
        }
        if !acc.is_empty() {
            runs.push(write_sorted_run(engine, &mut acc, options, frame_cap)?);
            buffer.release(acc_bytes);
        }
        runs.extend(suffix_runs);

        let nruns = runs.len();
        let stats = lafp_meta::spill::global();
        let mut readers: Vec<SpillReader> = Vec::with_capacity(nruns);
        for r in &runs {
            readers.push(r.open_reader()?);
        }
        let mut resv = MemoryReservation::empty(&engine.tracker);
        let mut frames: Vec<Option<DataFrame>> = Vec::with_capacity(nruns);
        let mut rows: Vec<usize> = vec![0; nruns];
        for reader in &mut readers {
            let f = next_nonempty(reader)?;
            if let Some(f) = &f {
                resv.grow(f.heap_size())?;
                stats.record_restore(f.heap_size());
            }
            frames.push(f);
        }
        loop {
            self.cancel.check()?;
            // Cross-frame comparators for the resident chunks. Rebuilt
            // each round (a round ends when some chunk exhausts) — cheap
            // relative to the per-row merge work.
            let mut keys: Vec<Option<FrameSortKeys>> = Vec::with_capacity(nruns);
            for f in &frames {
                keys.push(match f {
                    Some(fr) => Some(FrameSortKeys::resolve(fr, options)?),
                    None => None,
                });
            }
            if keys.iter().all(Option::is_none) {
                break;
            }
            // Pop global-minimum rows until some run's chunk exhausts.
            let mut pops: Vec<(usize, usize)> = Vec::new();
            let exhausted = loop {
                let mut best: Option<usize> = None;
                for r in 0..nruns {
                    let Some(k) = &keys[r] else { continue };
                    best = Some(match best {
                        None => r,
                        Some(b)
                            if cmp_rows_across(
                                k,
                                rows[r],
                                keys[b].as_ref().expect("active"),
                                rows[b],
                            ) == Ordering::Less =>
                        {
                            r
                        }
                        Some(b) => b,
                    });
                }
                let b = best.expect("some run active");
                pops.push((b, rows[b]));
                rows[b] += 1;
                if rows[b] == frames[b].as_ref().expect("active").num_rows() {
                    break b;
                }
            };
            drop(keys);
            // Materialize the round: gather each run's popped rows, then
            // one permutation take interleaves them in pop order.
            let mut per_run: Vec<Vec<usize>> = vec![Vec::new(); nruns];
            for &(r, i) in &pops {
                per_run[r].push(i);
            }
            let mut offsets = vec![0usize; nruns];
            let mut off = 0usize;
            let mut combined: Option<DataFrame> = None;
            for r in 0..nruns {
                if per_run[r].is_empty() {
                    continue;
                }
                offsets[r] = off;
                off += per_run[r].len();
                let sub = frames[r].as_ref().expect("active run").take(&per_run[r])?;
                combined = Some(match combined.take() {
                    Some(c) => c.concat(&sub)?,
                    None => sub,
                });
            }
            let combined = combined.expect("round popped at least one row");
            let mut cursor = offsets;
            let mut perm = Vec::with_capacity(pops.len());
            for &(r, _) in &pops {
                perm.push(cursor[r]);
                cursor[r] += 1;
            }
            let ordered = combined.take(&perm)?;
            // Emit the round in chunk-sized partitions.
            let total = ordered.num_rows();
            let mut start = 0usize;
            while start < total {
                let len = engine.chunk_rows.min(total - start);
                let part = ordered.slice(start, len);
                let _t = engine.tracker.charge(part.heap_size())?;
                self.emit(engine, id, &part)?;
                start += len;
            }
            // Advance the exhausted run to its next resident chunk.
            let done = frames[exhausted].take().expect("was active");
            resv.shrink(done.heap_size());
            drop(done);
            if let Some(next) = next_nonempty(&mut readers[exhausted])? {
                resv.grow(next.heap_size())?;
                stats.record_restore(next.heap_size());
                rows[exhausted] = 0;
                frames[exhausted] = Some(next);
            }
        }
        Ok(())
    }

    /// Node is done emitting: notify consumers.
    fn finish_node(&mut self, engine: &mut DaskEngine, id: DaskNodeId) -> Result<()> {
        let p = self.pos[id].expect("node included");
        let consumers = self.consumers[p].clone();
        for (consumer, slot) in consumers {
            self.input_finished(engine, consumer, slot)?;
        }
        Ok(())
    }

    fn finish(
        mut self,
        engine: &mut DaskEngine,
        roots: &[DaskNodeId],
    ) -> Result<Vec<(DaskValue, MemoryReservation)>> {
        let mut out = Vec::with_capacity(roots.len());
        for &root in roots {
            let p = self.pos[root].expect("root included");
            if let Some(scalar) = self.scalar_results.remove(&root) {
                out.push((
                    DaskValue::Scalar(scalar),
                    MemoryReservation::empty(&engine.tracker),
                ));
            } else if let Some(mut buffer) = self.gather_buffers.remove(&p) {
                let frame = buffer.concat_all()?;
                out.push((DaskValue::Frame(frame), buffer.reservation));
            } else {
                return Err(ColumnarError::InvalidArgument(format!(
                    "root {root} produced no value"
                )));
            }
        }
        Ok(out)
    }
}

/// Concatenate and sort the accumulated partitions of one external-sort
/// run, writing the result to a fresh spill file in frames no larger
/// than the engine chunk size or `frame_cap` bytes (whichever is
/// smaller — the cap bounds the k-way merge's resident footprint).
fn write_sorted_run(
    engine: &DaskEngine,
    acc: &mut Vec<DataFrame>,
    options: &SortOptions,
    frame_cap: usize,
) -> Result<SpillFile> {
    let mut frame: Option<DataFrame> = None;
    for p in acc.drain(..) {
        frame = Some(match frame.take() {
            Some(f) => f.concat(&p)?,
            None => p,
        });
    }
    let frame = frame.unwrap_or_else(DataFrame::empty);
    let sorted = sort_values_par(&frame, options, &engine.pool)?;
    drop(frame);
    let rows = sorted.num_rows();
    let row_bytes = (sorted.heap_size() / rows.max(1)).max(1);
    let frame_rows = engine.chunk_rows.min((frame_cap / row_bytes).max(1));
    // write_with_retry owns the transient-failure ladder: retry, fall
    // back to a secondary spill root on ENOSPC, or degrade to a clean
    // OutOfMemory ("spill unavailable") error with no partial file left.
    let file = engine.spill_dir.write_with_retry(|w| {
        let mut start = 0usize;
        while start < rows {
            let len = frame_rows.min(rows - start);
            w.write_frame(&sorted.slice(start, len))?;
            start += len;
        }
        Ok(())
    })?;
    let stats = lafp_meta::spill::global();
    stats.record_file();
    stats.record_spill(sorted.heap_size());
    Ok(file)
}

/// Next frame with at least one row (zero-row frames carry no merge
/// work and would break the "exhausted when `rows == num_rows`" rule).
fn next_nonempty(reader: &mut SpillReader) -> Result<Option<DataFrame>> {
    while let Some(f) = reader.next_frame()? {
        if f.num_rows() > 0 {
            return Ok(Some(f));
        }
    }
    Ok(None)
}

/// Column requirement propagated by the projection-pushdown pass.
#[derive(Debug, Clone)]
enum ColumnRequirement {
    All,
    Some(std::collections::BTreeSet<String>),
}

impl ColumnRequirement {
    fn union(&self, other: &ColumnRequirement) -> ColumnRequirement {
        match (self, other) {
            (ColumnRequirement::Some(a), ColumnRequirement::Some(b)) => {
                ColumnRequirement::Some(a.union(b).cloned().collect())
            }
            _ => ColumnRequirement::All,
        }
    }

    fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> ColumnRequirement {
        ColumnRequirement::Some(iter.into_iter().collect())
    }
}

/// What each input must provide, given what this op must produce.
fn input_requirements(
    op: &DaskOp,
    out: &ColumnRequirement,
    n_inputs: usize,
) -> Vec<ColumnRequirement> {
    let add_used = |base: &ColumnRequirement, extra: Vec<String>| match base {
        ColumnRequirement::All => ColumnRequirement::All,
        ColumnRequirement::Some(set) => {
            let mut s = set.clone();
            s.extend(extra);
            ColumnRequirement::Some(s)
        }
    };
    match op {
        DaskOp::Filter(e) => vec![add_used(out, e.used_columns().into_iter().collect())],
        DaskOp::WithColumn(name, e) => {
            let mut req = match out {
                ColumnRequirement::All => ColumnRequirement::All,
                ColumnRequirement::Some(set) => {
                    let mut s = set.clone();
                    s.remove(name);
                    ColumnRequirement::Some(s)
                }
            };
            req = add_used(&req, e.used_columns().into_iter().collect());
            vec![req]
        }
        DaskOp::Select(cols) => vec![ColumnRequirement::from_iter(cols.iter().cloned())],
        DaskOp::GroupByAgg(spec) => {
            let mut cols: Vec<String> = spec.keys.clone();
            cols.push(spec.value.clone());
            vec![ColumnRequirement::from_iter(cols)]
        }
        DaskOp::Reduce { column, .. } => {
            vec![ColumnRequirement::from_iter([column.clone()])]
        }
        DaskOp::Len => vec![out.clone()],
        DaskOp::Rename(mapping) => match out {
            ColumnRequirement::All => vec![ColumnRequirement::All],
            ColumnRequirement::Some(set) => {
                let mut s = std::collections::BTreeSet::new();
                for c in set {
                    match mapping.iter().find(|(_, new)| new == c) {
                        Some((old, _)) => s.insert(old.clone()),
                        None => s.insert(c.clone()),
                    };
                }
                vec![ColumnRequirement::Some(s)]
            }
        },
        DaskOp::Sort(opts) => vec![add_used(out, opts.by.clone())],
        DaskOp::DropDuplicates(subset) => vec![add_used(out, subset.clone())],
        DaskOp::Merge { on, .. } => {
            let both = add_used(out, on.clone());
            vec![both.clone(), both]
        }
        // FillNa fills whatever flows through it and Head passes rows
        // through — neither widens what the input must provide.
        DaskOp::FillNa(_) | DaskOp::Head(_) => vec![out.clone()],
        // Drop errors on missing names (pandas default), so the dropped
        // columns must still be *read* even though they are discarded.
        DaskOp::DropColumns(cols) => vec![add_used(out, cols.clone())],
        _ => vec![ColumnRequirement::All; n_inputs],
    }
}

/// Streaming single-column reduction state.
struct ReduceState {
    agg: AggKind,
    acc: GroupByAccumulator,
}

impl ReduceState {
    fn new(agg: AggKind) -> ReduceState {
        ReduceState {
            agg,
            acc: GroupByAccumulator::new(GroupBySpec {
                keys: vec!["__all".into()],
                value: "__v".into(),
                agg,
            }),
        }
    }

    fn update(&mut self, part: &DataFrame, column: &str) -> Result<()> {
        self.update_col(part.column(column)?.column())
    }

    /// Feed a bare value column (fused chains resolve the column out of
    /// the morsel, so no two-column scratch frame is assembled).
    fn update_col(&mut self, col: &Column) -> Result<()> {
        let all = Column::from_i64(vec![0; col.len()]);
        self.acc.update_cols(&[&all], col, None)
    }

    fn finish(self) -> Scalar {
        let agg = self.agg;
        match self.acc.finish() {
            Ok(frame) if frame.num_rows() == 1 => frame
                .column("__v")
                .map(|s| s.get(0))
                .unwrap_or(Scalar::Null),
            _ => match agg {
                AggKind::Count | AggKind::NUnique => Scalar::Int(0),
                _ => Scalar::Null,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lafp_columnar::column::Column;
    use lafp_columnar::csv::write_csv;
    use lafp_columnar::df;
    use std::path::Path;

    fn temp_csv(rows: usize) -> PathBuf {
        let df = df![
            (
                "fare",
                Column::from_f64((0..rows).map(|i| i as f64 - 3.0).collect())
            ),
            (
                "day",
                Column::from_i64((0..rows).map(|i| (i % 7) as i64).collect())
            ),
            (
                "extra",
                Column::from_strings((0..rows).map(|i| format!("blob-{i}")).collect::<Vec<_>>())
            ),
        ];
        let dir = std::env::temp_dir().join("lafp-dask-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!(
            "d{}.csv",
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        write_csv(&df, &path).unwrap();
        path
    }

    fn scan(engine: &mut DaskEngine, path: &Path) -> DaskNodeId {
        engine.add(
            DaskOp::ReadCsv {
                path: path.to_path_buf(),
                options: CsvOptions::new(),
                limit: None,
            },
            vec![],
        )
    }

    /// Zero-part streams must still report their schema (found by the
    /// differential fuzzer): a header-only CSV scan, a `head(0)`, and a
    /// drop-duplicates over an empty stream each materialize as a
    /// 0-row frame with the right columns — never a 0-column frame.
    #[test]
    fn empty_streams_preserve_schema() {
        // Header-only file: the chunk reader yields no chunks.
        let dir = std::env::temp_dir().join("lafp-dask-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!(
            "empty{}.csv",
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::write(&path, "fare,day\n").unwrap();
        let mut e = DaskEngine::new(MemoryTracker::unlimited(), 16);
        let s = scan(&mut e, &path);
        let (f, _r) = e.gather(s).unwrap();
        assert_eq!(f.column_names(), vec!["fare", "day"]);
        assert_eq!(f.num_rows(), 0);

        // head(0) over a non-empty scan: the head node emits nothing
        // row-wise but must still forward the schema.
        let data = temp_csv(50);
        let mut e = DaskEngine::new(MemoryTracker::unlimited(), 16);
        let s = scan(&mut e, &data);
        let h = e.add(DaskOp::Head(0), vec![s]);
        let (f, _r) = e.gather(h).unwrap();
        assert_eq!(f.column_names(), vec!["fare", "day", "extra"]);
        assert_eq!(f.num_rows(), 0);

        // Operators downstream of an empty stream see the empty part.
        let mut e = DaskEngine::new(MemoryTracker::unlimited(), 16);
        let s = scan(&mut e, &data);
        let h = e.add(DaskOp::Head(0), vec![s]);
        let d = e.add(DaskOp::DropDuplicates(vec![]), vec![h]);
        let g = e.add(
            DaskOp::Sort(SortOptions::single("fare", true)),
            vec![d],
        );
        let (f, _r) = e.gather(g).unwrap();
        assert_eq!(f.column_names(), vec!["fare", "day", "extra"]);
        assert_eq!(f.num_rows(), 0);
    }

    #[test]
    fn scan_filter_groupby_streams() {
        let path = temp_csv(100);
        let mut e = DaskEngine::new(MemoryTracker::unlimited(), 16);
        let s = scan(&mut e, &path);
        let f = e.add(
            DaskOp::Filter(Expr::col("fare").gt(Expr::lit_float(0.0))),
            vec![s],
        );
        let g = e.add(
            DaskOp::GroupByAgg(GroupBySpec {
                keys: vec!["day".into()],
                value: "fare".into(),
                agg: AggKind::Count,
            }),
            vec![f],
        );
        let (v, _r) = e.compute(g).unwrap();
        let frame = v.into_frame().unwrap();
        assert_eq!(frame.num_rows(), 7);
        let total: i64 = (0..7)
            .map(|i| frame.column("fare").unwrap().get(i).as_i64().unwrap())
            .sum();
        assert_eq!(total, 96); // 4 non-positive fares filtered out
    }

    #[test]
    fn streaming_uses_less_memory_than_gather() {
        let path = temp_csv(2000);
        let mut whole = DaskEngine::new(MemoryTracker::unlimited(), 64);
        let s = scan(&mut whole, &path);
        let (frame, _r) = whole.gather(s).unwrap();
        let full_size = frame.heap_size();

        // Budget too small to hold the whole frame but fine per-partition.
        let tracker = MemoryTracker::with_budget(full_size / 3);
        let mut e = DaskEngine::new(Arc::clone(&tracker), 64);
        let s = scan(&mut e, &path);
        let g = e.add(
            DaskOp::Reduce {
                column: "fare".into(),
                agg: AggKind::Sum,
            },
            vec![s],
        );
        let (v, _r) = e.compute(g).unwrap();
        let sum = v.into_scalar().unwrap();
        assert_eq!(sum, Scalar::Float((0..2000).map(|i| i as f64 - 3.0).sum()));
        // And gathering under the same budget fails:
        let mut e2 = DaskEngine::new(tracker, 64);
        let s2 = scan(&mut e2, &path);
        assert!(matches!(
            e2.gather(s2),
            Err(ColumnarError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn head_limits_scan() {
        let path = temp_csv(1000);
        let mut e = DaskEngine::new(MemoryTracker::unlimited(), 10);
        let s = scan(&mut e, &path);
        let h = e.add(DaskOp::Head(5), vec![s]);
        let (v, _r) = e.compute(h).unwrap();
        let frame = v.into_frame().unwrap();
        assert_eq!(frame.num_rows(), 5);
        // The per-batch limit must NOT leak into later computes over the
        // same scan: a full-count batch still sees every row.
        let l = e.add(DaskOp::Len, vec![s]);
        let (v, _r) = e.compute(l).unwrap();
        assert_eq!(v.into_scalar().unwrap(), Scalar::Int(1000));
    }

    #[test]
    fn persist_caches_and_unpersist_releases() {
        let path = temp_csv(100);
        let tracker = MemoryTracker::unlimited();
        let mut e = DaskEngine::new(Arc::clone(&tracker), 16);
        let s = scan(&mut e, &path);
        let f = e.add(
            DaskOp::Filter(Expr::col("fare").gt(Expr::lit_float(0.0))),
            vec![s],
        );
        e.persist(f);
        let g1 = e.add(
            DaskOp::Reduce {
                column: "fare".into(),
                agg: AggKind::Count,
            },
            vec![f],
        );
        let (v1, _r1) = e.compute(g1).unwrap();
        assert!(e.is_cached(f));
        assert!(tracker.current() > 0, "persisted partitions are charged");
        // Second compute reuses the cache (file could even disappear).
        std::fs::remove_file(&path).unwrap();
        let g2 = e.add(
            DaskOp::Reduce {
                column: "fare".into(),
                agg: AggKind::Sum,
            },
            vec![f],
        );
        let (v2, _r2) = e.compute(g2).unwrap();
        assert_eq!(v1.into_scalar().unwrap(), Scalar::Int(96));
        assert!(matches!(v2.into_scalar().unwrap(), Scalar::Float(_)));
        e.unpersist(f);
        assert_eq!(tracker.current(), 0);
    }

    #[test]
    fn merge_streams_probe_side() {
        let path = temp_csv(50);
        let mut e = DaskEngine::new(MemoryTracker::unlimited(), 8);
        let s = scan(&mut e, &path);
        let lookup = df![
            ("day", Column::from_i64((0..7).collect())),
            ("weekend", Column::from_bool((0..7).map(|d| d >= 5).collect())),
        ];
        let r = e.add(DaskOp::FromFrame(Arc::new(lookup)), vec![]);
        let m = e.add(
            DaskOp::Merge {
                on: vec!["day".into()],
                how: JoinKind::Inner,
            },
            vec![s, r],
        );
        let (v, _r) = e.compute(m).unwrap();
        let frame = v.into_frame().unwrap();
        assert_eq!(frame.num_rows(), 50);
        assert!(frame.has_column("weekend"));
    }

    #[test]
    fn sort_is_blocking_but_correct() {
        let path = temp_csv(40);
        let mut e = DaskEngine::new(MemoryTracker::unlimited(), 7);
        let s = scan(&mut e, &path);
        let so = e.add(DaskOp::Sort(SortOptions::single("fare", false)), vec![s]);
        let (v, _r) = e.compute(so).unwrap();
        let frame = v.into_frame().unwrap();
        assert_eq!(frame.column("fare").unwrap().get(0), Scalar::Float(36.0));
    }

    #[test]
    fn drop_duplicates_streams_with_global_state() {
        let path = temp_csv(60);
        let mut e = DaskEngine::new(MemoryTracker::unlimited(), 9);
        let s = scan(&mut e, &path);
        let d = e.add(DaskOp::DropDuplicates(vec!["day".into()]), vec![s]);
        let (v, _r) = e.compute(d).unwrap();
        assert_eq!(v.into_frame().unwrap().num_rows(), 7);
    }

    #[test]
    fn len_is_lazy_scalar() {
        let path = temp_csv(33);
        let mut e = DaskEngine::new(MemoryTracker::unlimited(), 10);
        let s = scan(&mut e, &path);
        let l = e.add(DaskOp::Len, vec![s]);
        let (v, _r) = e.compute(l).unwrap();
        assert_eq!(v.into_scalar().unwrap(), Scalar::Int(33));
    }

    #[test]
    fn projection_pushdown_opt_in() {
        let path = temp_csv(30);
        let mut e = DaskEngine::new(MemoryTracker::unlimited(), 10);
        e.projection_pushdown = true;
        let s = scan(&mut e, &path);
        let g = e.add(
            DaskOp::GroupByAgg(GroupBySpec {
                keys: vec!["day".into()],
                value: "fare".into(),
                agg: AggKind::Mean,
            }),
            vec![s],
        );
        let (v, _r) = e.compute(g).unwrap();
        assert_eq!(v.into_frame().unwrap().num_rows(), 7);
        match e.op(s) {
            DaskOp::ReadCsv { options, .. } => {
                assert_eq!(
                    options.usecols,
                    Some(vec!["day".to_string(), "fare".to_string()])
                );
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn concat_streams_both_inputs() {
        let path = temp_csv(10);
        let mut e = DaskEngine::new(MemoryTracker::unlimited(), 4);
        let a = scan(&mut e, &path);
        let b = scan(&mut e, &path);
        let c = e.add(DaskOp::Concat, vec![a, b]);
        let l = e.add(DaskOp::Len, vec![c]);
        let (v, _r) = e.compute(l).unwrap();
        assert_eq!(v.into_scalar().unwrap(), Scalar::Int(20));
    }

    #[test]
    fn batch_computes_multiple_roots_in_one_pass() {
        let path = temp_csv(200);
        let mut e = DaskEngine::new(MemoryTracker::unlimited(), 16);
        let s = scan(&mut e, &path);
        let f = e.add(
            DaskOp::Filter(Expr::col("fare").gt(Expr::lit_float(0.0))),
            vec![s],
        );
        let g = e.add(
            DaskOp::GroupByAgg(GroupBySpec {
                keys: vec!["day".into()],
                value: "fare".into(),
                agg: AggKind::Sum,
            }),
            vec![f],
        );
        let m = e.add(
            DaskOp::Reduce {
                column: "fare".into(),
                agg: AggKind::Mean,
            },
            vec![f],
        );
        let c = e.add(DaskOp::Len, vec![s]);
        let results = e.compute_batch(&[g, m, c]).unwrap();
        assert_eq!(results.len(), 3);
        let frame = results[0].0.clone().into_frame().unwrap();
        assert_eq!(frame.num_rows(), 7);
        assert!(matches!(results[1].0, DaskValue::Scalar(Scalar::Float(_))));
        assert_eq!(results[2].0.clone().into_scalar().unwrap(), Scalar::Int(200));
        // Shared scan executed once: delete the file and batch again fails,
        // proving data really came from the file (sanity), while the single
        // pass above satisfied all three roots.
        std::fs::remove_file(&path).unwrap();
        let l2 = e.add(DaskOp::Len, vec![s]);
        assert!(e.compute(l2).is_err());
    }

    #[test]
    fn batch_root_that_is_also_intermediate() {
        // A root that other roots consume must both buffer its output and
        // keep feeding downstream consumers.
        let path = temp_csv(20);
        let mut e = DaskEngine::new(MemoryTracker::unlimited(), 6);
        let s = scan(&mut e, &path);
        let f = e.add(
            DaskOp::Filter(Expr::col("fare").gt(Expr::lit_float(0.0))),
            vec![s],
        );
        let l = e.add(DaskOp::Len, vec![f]);
        let results = e.compute_batch(&[f, l]).unwrap();
        let frame = results[0].0.clone().into_frame().unwrap();
        assert_eq!(frame.num_rows(), 16);
        assert_eq!(results[1].0.clone().into_scalar().unwrap(), Scalar::Int(16));
    }

    /// How hard the spill tests squeeze the budget: dataset size divided
    /// by this. Defaults to 3; CI runs the suite a second time with
    /// `LAFP_BUDGET_DIVISOR=6` so the out-of-core paths see a much
    /// tighter budget than the default run.
    fn budget_divisor() -> usize {
        std::env::var("LAFP_BUDGET_DIVISOR")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&d| d >= 2)
            .unwrap_or(3)
    }

    #[test]
    fn over_budget_sort_completes_via_spill_with_identical_result() {
        let path = temp_csv(3000);
        // Unbudgeted reference: full sort, then a bounded head so the
        // final gather stays small in the budgeted rerun.
        let mut reference = DaskEngine::new(MemoryTracker::unlimited(), 64);
        let s = scan(&mut reference, &path);
        let (full, _r) = reference.gather(s).unwrap();
        let full_size = full.heap_size();
        let so = reference.add(DaskOp::Sort(SortOptions::single("fare", false)), vec![s]);
        let h = reference.add(DaskOp::Head(128), vec![so]);
        let (v, _r) = reference.compute(h).unwrap();
        let expect = v.into_frame().unwrap().row_hashes(&[]).unwrap();
        assert_eq!(expect.len(), 128);

        // Budget a fraction of the dataset (a third by default, tighter
        // under LAFP_BUDGET_DIVISOR): the sort buffer cannot hold the
        // input, so the query must spill — and still match.
        let before = lafp_meta::spill::global().snapshot();
        let tracker = MemoryTracker::with_budget(full_size / budget_divisor());
        let mut e = DaskEngine::new(Arc::clone(&tracker), 64);
        let s = scan(&mut e, &path);
        let so = e.add(DaskOp::Sort(SortOptions::single("fare", false)), vec![s]);
        let h = e.add(DaskOp::Head(128), vec![so]);
        let (v, result_reservation) = e.compute(h).unwrap();
        let got = v.into_frame().unwrap().row_hashes(&[]).unwrap();
        assert_eq!(got, expect, "spilled sort must match in-memory result");
        let after = lafp_meta::spill::global().snapshot();
        assert!(
            after.events > before.events,
            "an over-budget sort must actually spill"
        );
        assert!(after.restored_bytes > before.restored_bytes);
        // Only the returned result's own reservation may remain charged.
        drop(result_reservation);
        assert_eq!(tracker.current(), 0, "all reservations released");
    }

    #[test]
    fn failed_drain_releases_all_reservations() {
        let path = temp_csv(2000);
        let mut whole = DaskEngine::new(MemoryTracker::unlimited(), 64);
        let s = scan(&mut whole, &path);
        let (frame, _r) = whole.gather(s).unwrap();
        let full_size = frame.heap_size();

        // Buffering succeeds by spilling, but the final gather charges
        // the assembled result alongside the re-admitted partitions and
        // fails mid-drain. Every reservation taken along the way — scan
        // charges, buffer charges, partial restores, the partial result
        // — must be returned when the error propagates.
        let tracker = MemoryTracker::with_budget(full_size / budget_divisor());
        assert_eq!(tracker.current(), 0);
        let mut e = DaskEngine::new(Arc::clone(&tracker), 64);
        let s = scan(&mut e, &path);
        let result = e.gather(s);
        assert!(matches!(result, Err(ColumnarError::OutOfMemory { .. })));
        drop(result);
        drop(e);
        assert_eq!(
            tracker.current(),
            0,
            "failed drain must release every reservation"
        );
    }

    #[test]
    fn pipelined_scan_matches_blocking_scan() {
        let path = temp_csv(1500);
        let run = |pipelined: bool| {
            let mut e = DaskEngine::with_threads(MemoryTracker::unlimited(), 37, 4);
            e.pipeline_scan = pipelined;
            assert!(e.pool.is_parallel());
            let s = scan(&mut e, &path);
            let f = e.add(
                DaskOp::Filter(Expr::col("fare").gt(Expr::lit_float(10.0))),
                vec![s],
            );
            let g = e.add(
                DaskOp::GroupByAgg(GroupBySpec {
                    keys: vec!["day".into()],
                    value: "fare".into(),
                    agg: AggKind::Sum,
                }),
                vec![f],
            );
            let (v, _r) = e.compute(g).unwrap();
            v.into_frame().unwrap()
        };
        let piped = run(true);
        let blocking = run(false);
        assert_eq!(
            piped.row_hashes(&[]).unwrap(),
            blocking.row_hashes(&[]).unwrap()
        );
    }

    #[test]
    fn pipelined_scan_respects_head_limit() {
        // The consumer stops at the limit and hangs up the channel; the
        // parse thread must unblock and the scan must not over-emit.
        let path = temp_csv(5000);
        let mut e = DaskEngine::with_threads(MemoryTracker::unlimited(), 32, 4);
        let s = scan(&mut e, &path);
        let h = e.add(DaskOp::Head(10), vec![s]);
        let (v, _r) = e.compute(h).unwrap();
        assert_eq!(v.into_frame().unwrap().num_rows(), 10);
    }

    #[test]
    fn merge_build_side_scheduled_first() {
        // Both sides are scans; the build side (input 1) must be driven
        // before the probe side so probes stream instead of buffering.
        let left_path = temp_csv(50);
        let right = df![
            ("day", Column::from_i64((0..7).collect())),
            ("tag", Column::from_strings((0..7).map(|d| format!("d{d}")).collect::<Vec<_>>())),
        ];
        let dir = std::env::temp_dir().join("lafp-dask-tests");
        let right_path = dir.join(format!(
            "r{}.csv",
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        write_csv(&right, &right_path).unwrap();
        let mut e = DaskEngine::new(MemoryTracker::unlimited(), 8);
        let l = scan(&mut e, &left_path);
        let r = scan(&mut e, &right_path);
        let m = e.add(
            DaskOp::Merge {
                on: vec!["day".into()],
                how: JoinKind::Left,
            },
            vec![l, r],
        );
        let (v, _r) = e.compute(m).unwrap();
        let frame = v.into_frame().unwrap();
        assert_eq!(frame.num_rows(), 50);
        assert!(frame.has_column("tag"));
    }

    // ------------------------------------------------------------------
    // Chain fusion
    // ------------------------------------------------------------------

    use lafp_columnar::column::ArithOp;

    /// `scan → filter → with_column → select → groupby` — the canonical
    /// fully-fusable chain from the PR's acceptance criteria.
    fn fused_query(e: &mut DaskEngine, path: &Path) -> DaskNodeId {
        let s = scan(e, path);
        let f = e.add(
            DaskOp::Filter(Expr::col("fare").gt(Expr::lit_float(0.0))),
            vec![s],
        );
        let w = e.add(
            DaskOp::WithColumn(
                "fare2".into(),
                Expr::col("fare").arith(ArithOp::Mul, Expr::lit_float(2.0)),
            ),
            vec![f],
        );
        let sel = e.add(
            DaskOp::Select(vec!["day".into(), "fare2".into()]),
            vec![w],
        );
        e.add(
            DaskOp::GroupByAgg(GroupBySpec {
                keys: vec!["day".into()],
                value: "fare2".into(),
                agg: AggKind::Sum,
            }),
            vec![sel],
        )
    }

    #[test]
    fn fused_chain_zero_intermediate_frames() {
        let path = temp_csv(300);
        let mut fused = DaskEngine::new(MemoryTracker::unlimited(), 16);
        fused.fuse_chains = true;
        let g = fused_query(&mut fused, &path);
        let (v, _r) = fused.compute(g).unwrap();
        let got = v.into_frame().unwrap();
        let stats = fused.fusion_stats();
        assert_eq!(stats.chains, 1);
        assert_eq!(stats.fused_ops, 4, "filter + with_column + select + groupby");
        assert!(stats.fused_morsels > 0);
        assert_eq!(
            stats.intermediate_frames, 0,
            "no frame may be materialized between fused ops"
        );

        let mut unfused = DaskEngine::new(MemoryTracker::unlimited(), 16);
        unfused.fuse_chains = false;
        let g = fused_query(&mut unfused, &path);
        let (v, _r) = unfused.compute(g).unwrap();
        let expect = v.into_frame().unwrap();
        let stats = unfused.fusion_stats();
        assert_eq!(stats.chains, 0);
        assert!(stats.intermediate_frames > 0);
        assert_eq!(
            got.row_hashes(&[]).unwrap(),
            expect.row_hashes(&[]).unwrap()
        );
    }

    #[test]
    fn adjacent_filters_collapse_into_one_selection() {
        let path = temp_csv(200);
        let run = |fuse: bool| {
            let mut e = DaskEngine::new(MemoryTracker::unlimited(), 16);
            e.fuse_chains = fuse;
            let s = scan(&mut e, &path);
            let f1 = e.add(
                DaskOp::Filter(Expr::col("fare").gt(Expr::lit_float(0.0))),
                vec![s],
            );
            let f2 = e.add(
                DaskOp::Filter(Expr::col("day").lt(Expr::lit_int(5))),
                vec![f1],
            );
            let l = e.add(DaskOp::Len, vec![f2]);
            let (v, _r) = e.compute(l).unwrap();
            (v.into_scalar().unwrap(), e.fusion_stats())
        };
        let (fused, fs) = run(true);
        let (plain, _) = run(false);
        assert_eq!(fused, plain);
        assert_eq!(fs.chains, 1);
        assert_eq!(fs.fused_ops, 3, "two filters + the len terminal");
        assert_eq!(
            fs.intermediate_frames, 0,
            "both selections AND into one bitmap; no row is ever gathered"
        );
    }

    #[test]
    fn fused_schema_steps_match_unfused() {
        // rename + drop + with_column exercise the schema-bookkeeping
        // steps; the chain ends at a frame root, so its output is
        // materialized exactly once per morsel.
        let path = temp_csv(150);
        let run = |fuse: bool| {
            let mut e = DaskEngine::new(MemoryTracker::unlimited(), 16);
            e.fuse_chains = fuse;
            let s = scan(&mut e, &path);
            let f = e.add(
                DaskOp::Filter(Expr::col("fare").ge(Expr::lit_float(-1.0))),
                vec![s],
            );
            let r = e.add(
                DaskOp::Rename(vec![("fare".into(), "amount".into())]),
                vec![f],
            );
            let d = e.add(DaskOp::DropColumns(vec!["extra".into()]), vec![r]);
            let w = e.add(
                DaskOp::WithColumn(
                    "half".into(),
                    Expr::col("amount").arith(ArithOp::Div, Expr::lit_float(2.0)),
                ),
                vec![d],
            );
            let (v, _r) = e.compute(w).unwrap();
            v.into_frame().unwrap()
        };
        let fused = run(true);
        let plain = run(false);
        assert_eq!(fused.column_names(), plain.column_names());
        assert_eq!(
            fused.row_hashes(&[]).unwrap(),
            plain.row_hashes(&[]).unwrap()
        );
    }

    #[test]
    fn three_stage_scan_matches_blocking_unfused() {
        // parse | chain-transform | land, versus a blocking unfused run.
        let path = temp_csv(4000);
        let run = |threads: usize, pipe: bool, fuse: bool| {
            let mut e = DaskEngine::with_threads(MemoryTracker::unlimited(), 37, threads);
            e.pipeline_scan = pipe;
            e.fuse_chains = fuse;
            let g = fused_query(&mut e, &path);
            let (v, _r) = e.compute(g).unwrap();
            v.into_frame().unwrap().row_hashes(&[]).unwrap()
        };
        let three_stage = run(4, true, true);
        let blocking_fused = run(1, false, true);
        let blocking_plain = run(1, false, false);
        assert_eq!(three_stage, blocking_plain);
        assert_eq!(blocking_fused, blocking_plain);
    }

    #[test]
    fn fused_chain_respects_persist_tee() {
        // A persisted mid-chain node must keep emitting real partitions
        // for its cache, so the chain may not swallow it.
        let path = temp_csv(90);
        let mut e = DaskEngine::new(MemoryTracker::unlimited(), 16);
        e.fuse_chains = true;
        let s = scan(&mut e, &path);
        let f = e.add(
            DaskOp::Filter(Expr::col("fare").gt(Expr::lit_float(0.0))),
            vec![s],
        );
        e.persist(f);
        let w = e.add(
            DaskOp::WithColumn(
                "fare2".into(),
                Expr::col("fare").arith(ArithOp::Mul, Expr::lit_float(2.0)),
            ),
            vec![f],
        );
        let l = e.add(DaskOp::Len, vec![w]);
        let (v, _r) = e.compute(l).unwrap();
        assert_eq!(v.into_scalar().unwrap(), Scalar::Int(86));
        assert!(e.is_cached(f), "persist tee still fills behind fusion");
        // Replays from the cache flow through the remaining chain.
        let l2 = e.add(DaskOp::Len, vec![w]);
        let (v2, _r2) = e.compute(l2).unwrap();
        assert_eq!(v2.into_scalar().unwrap(), Scalar::Int(86));
    }

    #[test]
    fn projection_pushdown_through_fillna_and_drop() {
        let path = temp_csv(60);
        let mut e = DaskEngine::new(MemoryTracker::unlimited(), 16);
        e.projection_pushdown = true;
        let s = scan(&mut e, &path);
        let fill = e.add(DaskOp::FillNa(Scalar::Float(0.0)), vec![s]);
        let d = e.add(DaskOp::DropColumns(vec!["extra".into()]), vec![fill]);
        let g = e.add(
            DaskOp::Reduce {
                column: "fare".into(),
                agg: AggKind::Sum,
            },
            vec![d],
        );
        let (v, _r) = e.compute(g).unwrap();
        assert!(matches!(v.into_scalar().unwrap(), Scalar::Float(_)));
        // FillNa propagates its downstream requirement; DropColumns adds
        // only the dropped names (they must exist to be dropped). The
        // scan must NOT fall back to reading every column.
        match e.op(s) {
            DaskOp::ReadCsv { options, .. } => {
                assert_eq!(
                    options.usecols,
                    Some(vec!["extra".to_string(), "fare".to_string()])
                );
            }
            _ => unreachable!(),
        }
    }
}
