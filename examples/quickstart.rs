//! Quickstart: the Figure-3 taxi pipeline on the LaFP lazy dataframe API.
//!
//! ```text
//! cargo run -p lafp --example quickstart
//! ```

use lafp::columnar::AggKind;
use lafp::core::{LaFP, LafpConfig};
use lafp::expr::Expr;
use lafp_bench::datagen::{ensure_datasets, Size};

fn main() -> lafp::columnar::Result<()> {
    let dir = ensure_datasets(std::path::Path::new("target/lafp-data"), Size::Small)
        .expect("dataset generation");

    let pd = LaFP::with_config(LafpConfig::default()); // Dask-like backend
    let df = pd.read_csv(&dir.join("nyt.csv"));
    let df = df.filter(Expr::col("fare_amount").gt(Expr::lit_float(0.0)));
    let df = df.with_column(
        "day",
        Expr::col("tpep_pickup_datetime").dt(lafp::columnar::column::DtField::DayOfWeek),
    );
    let by_day = df.groupby_agg(vec!["day".into()], "passenger_count", AggKind::Sum);

    by_day.print(); // lazy print — deferred until flush (§3.3)
    println!("--- task graph before execution (Figure 6) ---");
    println!("{}", pd.explain(&[]));

    pd.flush()?; // one batched streaming pass over the CSV
    for line in pd.take_output() {
        println!("{line}");
    }
    println!(
        "peak simulated memory: {:.2} MB",
        pd.peak_memory() as f64 / 1e6
    );
    Ok(())
}
