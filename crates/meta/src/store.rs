//! Metadata records and the sidecar-file store.

use lafp_columnar::{ColumnarError, DType, Result, Scalar};
use std::path::{Path, PathBuf};

/// Statistics for one column of a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMeta {
    /// Column name.
    pub name: String,
    /// Detected dtype.
    pub dtype: DType,
    /// Minimum non-null value (rendered), if any.
    pub min: Option<String>,
    /// Maximum non-null value (rendered), if any.
    pub max: Option<String>,
    /// Exact-up-to-a-cap distinct count (capped at [`NDISTINCT_CAP`]).
    pub ndistinct: u64,
    /// Number of null cells.
    pub null_count: u64,
}

/// Distinct counting stops at this many values; beyond it a column is
/// certainly not a category candidate.
pub const NDISTINCT_CAP: u64 = 10_000;

/// Columns with at most this many distinct values qualify for the
/// `category` dtype optimization (when also read-only; §3.6).
pub const CATEGORY_THRESHOLD: u64 = 256;

impl ColumnMeta {
    /// Is this column a candidate for dictionary (`category`) encoding?
    /// The *read-only* half of the §3.6 safety condition is checked by
    /// static analysis, not here.
    pub fn is_category_candidate(&self) -> bool {
        self.dtype == DType::Utf8 && self.ndistinct > 0 && self.ndistinct <= CATEGORY_THRESHOLD
    }

    /// Selectivity estimate for an equality predicate on this column.
    pub fn eq_selectivity(&self) -> f64 {
        if self.ndistinct == 0 {
            1.0
        } else {
            1.0 / self.ndistinct as f64
        }
    }

    /// Numeric range as scalars when the column is numeric.
    pub fn numeric_range(&self) -> Option<(f64, f64)> {
        let lo: f64 = self.min.as_ref()?.parse().ok()?;
        let hi: f64 = self.max.as_ref()?.parse().ok()?;
        Some((lo, hi))
    }

    /// Selectivity estimate for `column > value` under a uniform
    /// assumption, used by the runtime optimizer's cost heuristics.
    pub fn gt_selectivity(&self, value: &Scalar) -> f64 {
        match (self.numeric_range(), value.as_f64()) {
            (Some((lo, hi)), Some(v)) if hi > lo => ((hi - v) / (hi - lo)).clamp(0.0, 1.0),
            _ => 0.5,
        }
    }
}

/// Metadata for one dataset file.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetMeta {
    /// The dataset file this describes.
    pub path: PathBuf,
    /// File modification time (seconds since epoch) when computed.
    pub modified_unix: u64,
    /// Number of data rows.
    pub nrows: u64,
    /// Average in-memory bytes per row.
    pub row_bytes: f64,
    /// Per-column statistics, in file order.
    pub columns: Vec<ColumnMeta>,
}

impl DatasetMeta {
    /// Look up one column's stats.
    pub fn column(&self, name: &str) -> Option<&ColumnMeta> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Estimated in-memory size of the full dataset.
    pub fn estimated_bytes(&self) -> u64 {
        (self.nrows as f64 * self.row_bytes) as u64
    }

    /// Estimated in-memory size if only `cols` are loaded.
    pub fn estimated_bytes_for(&self, cols: &[String]) -> u64 {
        let per_row: f64 = self
            .columns
            .iter()
            .filter(|c| cols.contains(&c.name))
            .map(|c| match c.dtype.fixed_width() {
                Some(w) => w as f64,
                None => 24.0,
            })
            .sum();
        let total_fixed: f64 = self
            .columns
            .iter()
            .map(|c| c.dtype.fixed_width().map_or(24.0, |w| w as f64))
            .sum();
        if total_fixed <= 0.0 {
            return self.estimated_bytes();
        }
        (self.nrows as f64 * self.row_bytes * (per_row / total_fixed)) as u64
    }

    /// The dtype map this metadata implies for `read_csv(dtype=...)`:
    /// every column with a known type, with category for low-cardinality
    /// string columns in `read_only_cols`.
    pub fn dtype_overrides(&self, read_only_cols: &[String]) -> Vec<(String, DType)> {
        self.columns
            .iter()
            .map(|c| {
                let dt = if c.is_category_candidate()
                    && read_only_cols.contains(&c.name)
                {
                    DType::Categorical
                } else {
                    c.dtype
                };
                (c.name.clone(), dt)
            })
            .collect()
    }
}

/// Reads and writes `<dataset>.lafpmeta` sidecar files.
#[derive(Debug, Clone, Default)]
pub struct MetaStore;

impl MetaStore {
    /// Create a store (stateless; sidecars live next to the data files).
    pub fn new() -> MetaStore {
        MetaStore
    }

    /// Sidecar path for a dataset.
    pub fn sidecar_path(dataset: &Path) -> PathBuf {
        let mut os = dataset.as_os_str().to_os_string();
        os.push(".lafpmeta");
        PathBuf::from(os)
    }

    /// File mtime in unix seconds.
    pub fn file_mtime(path: &Path) -> Result<u64> {
        let meta = std::fs::metadata(path)
            .map_err(|e| ColumnarError::Io { kind: e.kind(), message: format!("{path:?}: {e}") })?;
        let mtime = meta
            .modified()
            .map_err(|e| ColumnarError::Io { kind: e.kind(), message: e.to_string() })?;
        Ok(mtime
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0))
    }

    /// Load metadata for `dataset` if present **and still valid** (the
    /// file's mtime matches the one recorded at computation time).
    pub fn load(&self, dataset: &Path) -> Result<Option<DatasetMeta>> {
        let sidecar = Self::sidecar_path(dataset);
        if !sidecar.exists() {
            return Ok(None);
        }
        let text = std::fs::read_to_string(&sidecar)
            .map_err(|e| ColumnarError::Io { kind: e.kind(), message: format!("{sidecar:?}: {e}") })?;
        let meta = parse_sidecar(dataset, &text)?;
        let current = Self::file_mtime(dataset)?;
        if meta.modified_unix != current {
            return Ok(None); // stale: dataset was modified after computation
        }
        Ok(Some(meta))
    }

    /// Persist metadata next to the dataset.
    pub fn save(&self, meta: &DatasetMeta) -> Result<()> {
        let sidecar = Self::sidecar_path(&meta.path);
        std::fs::write(&sidecar, render_sidecar(meta))
            .map_err(|e| ColumnarError::Io { kind: e.kind(), message: format!("{sidecar:?}: {e}") })?;
        Ok(())
    }
}

fn render_sidecar(meta: &DatasetMeta) -> String {
    let mut out = String::new();
    out.push_str("lafpmeta-version=1\n");
    out.push_str(&format!("modified_unix={}\n", meta.modified_unix));
    out.push_str(&format!("nrows={}\n", meta.nrows));
    out.push_str(&format!("row_bytes={}\n", meta.row_bytes));
    for c in &meta.columns {
        out.push_str(&format!("column={}\n", escape(&c.name)));
        out.push_str(&format!("  dtype={}\n", c.dtype));
        if let Some(min) = &c.min {
            out.push_str(&format!("  min={}\n", escape(min)));
        }
        if let Some(max) = &c.max {
            out.push_str(&format!("  max={}\n", escape(max)));
        }
        out.push_str(&format!("  ndistinct={}\n", c.ndistinct));
        out.push_str(&format!("  null_count={}\n", c.null_count));
    }
    out
}

fn parse_sidecar(dataset: &Path, text: &str) -> Result<DatasetMeta> {
    let bad = |msg: &str| ColumnarError::Csv(format!("sidecar for {dataset:?}: {msg}"));
    let mut meta = DatasetMeta {
        path: dataset.to_path_buf(),
        modified_unix: 0,
        nrows: 0,
        row_bytes: 0.0,
        columns: Vec::new(),
    };
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let (key, value) = trimmed
            .split_once('=')
            .ok_or_else(|| bad(&format!("malformed line {trimmed:?}")))?;
        match key {
            "lafpmeta-version" => {}
            "modified_unix" => meta.modified_unix = value.parse().map_err(|_| bad("mtime"))?,
            "nrows" => meta.nrows = value.parse().map_err(|_| bad("nrows"))?,
            "row_bytes" => meta.row_bytes = value.parse().map_err(|_| bad("row_bytes"))?,
            "column" => meta.columns.push(ColumnMeta {
                name: unescape(value),
                dtype: DType::Utf8,
                min: None,
                max: None,
                ndistinct: 0,
                null_count: 0,
            }),
            "dtype" | "min" | "max" | "ndistinct" | "null_count" => {
                let col = meta
                    .columns
                    .last_mut()
                    .ok_or_else(|| bad("column field before any column"))?;
                match key {
                    "dtype" => {
                        col.dtype =
                            DType::parse(value).ok_or_else(|| bad("unknown dtype"))?
                    }
                    "min" => col.min = Some(unescape(value)),
                    "max" => col.max = Some(unescape(value)),
                    "ndistinct" => col.ndistinct = value.parse().map_err(|_| bad("ndistinct"))?,
                    "null_count" => {
                        col.null_count = value.parse().map_err(|_| bad("null_count"))?
                    }
                    _ => unreachable!(),
                }
            }
            other => return Err(bad(&format!("unknown key {other:?}"))),
        }
    }
    Ok(meta)
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_meta(path: PathBuf, mtime: u64) -> DatasetMeta {
        DatasetMeta {
            path,
            modified_unix: mtime,
            nrows: 1000,
            row_bytes: 40.0,
            columns: vec![
                ColumnMeta {
                    name: "city".into(),
                    dtype: DType::Utf8,
                    min: Some("Austin".into()),
                    max: Some("Zurich".into()),
                    ndistinct: 40,
                    null_count: 3,
                },
                ColumnMeta {
                    name: "fare".into(),
                    dtype: DType::Float64,
                    min: Some("0".into()),
                    max: Some("100".into()),
                    ndistinct: 900,
                    null_count: 0,
                },
            ],
        }
    }

    #[test]
    fn sidecar_roundtrip() {
        let meta = sample_meta(PathBuf::from("/data/x.csv"), 42);
        let parsed = parse_sidecar(Path::new("/data/x.csv"), &render_sidecar(&meta)).unwrap();
        assert_eq!(parsed, meta);
    }

    #[test]
    fn category_candidates() {
        let meta = sample_meta(PathBuf::from("x"), 0);
        assert!(meta.column("city").unwrap().is_category_candidate());
        // numeric column never a category candidate
        assert!(!meta.column("fare").unwrap().is_category_candidate());
        // high-cardinality string column is not
        let mut c = meta.column("city").unwrap().clone();
        c.ndistinct = 100_000;
        assert!(!c.is_category_candidate());
    }

    #[test]
    fn selectivity_estimates() {
        let meta = sample_meta(PathBuf::from("x"), 0);
        let fare = meta.column("fare").unwrap();
        assert!((fare.eq_selectivity() - 1.0 / 900.0).abs() < 1e-9);
        assert!((fare.gt_selectivity(&Scalar::Float(75.0)) - 0.25).abs() < 1e-9);
        assert_eq!(fare.gt_selectivity(&Scalar::Str("x".into())), 0.5);
    }

    #[test]
    fn dtype_overrides_use_category_only_for_read_only() {
        let meta = sample_meta(PathBuf::from("x"), 0);
        let overrides = meta.dtype_overrides(&["city".into()]);
        assert!(overrides.contains(&("city".into(), DType::Categorical)));
        let overrides = meta.dtype_overrides(&[]);
        assert!(overrides.contains(&("city".into(), DType::Utf8)));
    }

    #[test]
    fn size_estimates_scale_with_projection() {
        let meta = sample_meta(PathBuf::from("x"), 0);
        let full = meta.estimated_bytes();
        let fare_only = meta.estimated_bytes_for(&["fare".into()]);
        assert!(fare_only < full);
        assert!(fare_only > 0);
    }

    #[test]
    fn store_load_validates_mtime() {
        let dir = std::env::temp_dir().join("lafp-meta-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join(format!(
            "d{}.csv",
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::write(&data, "a,b\n1,2\n").unwrap();
        let mtime = MetaStore::file_mtime(&data).unwrap();
        let store = MetaStore::new();
        store.save(&sample_meta(data.clone(), mtime)).unwrap();
        assert!(store.load(&data).unwrap().is_some());
        // Touch the file into the future => stale metadata is rejected.
        let stale = sample_meta(data.clone(), mtime.wrapping_sub(100));
        store.save(&stale).unwrap();
        assert!(store.load(&data).unwrap().is_none());
        // Missing sidecar => None, not an error.
        let other = dir.join("nothing.csv");
        std::fs::write(&other, "x\n").unwrap();
        assert!(store.load(&other).unwrap().is_none());
    }

    #[test]
    fn escape_handles_newlines_and_backslashes() {
        for s in ["plain", "with\nnewline", "back\\slash"] {
            assert_eq!(unescape(&escape(s)), s);
        }
    }
}
