//! Trace execution: schema-driven op resolution, the oracle run, and
//! the engine runs across the execution-config matrix.
//!
//! Resolution happens once, against the *oracle's* evolving schema:
//! each [`RawOp`]'s operand bytes select columns / comparisons /
//! literals modulo whatever the live schema offers, so every byte
//! string resolves to a fully-defined op sequence (ops with no eligible
//! operands become [`ROp::Skip`]). The engine then replays the resolved
//! ops — eagerly (sequential or pooled) or as Dask graph runs — and
//! every checkpoint is compared against the oracle state with the
//! established 1e-12 relative float tolerance.

use super::gen::{build_plain, encode_for_engine, temp_csv_path, write_csv};
use super::trace::{RawOp, Trace, GROWTH_CAP};
use crate::equiv::check_frame_close;
use crate::reference as oracle;
use lafp_backends::{DaskEngine, DaskOp, MemoryTracker};
use lafp_columnar::column::{ArithOp, CmpOp};
use lafp_columnar::csv::{read_csv_par, CsvOptions};
use lafp_columnar::encoding::dict_encode;
use lafp_columnar::groupby::group_by_par;
use lafp_columnar::join::merge_par;
use lafp_columnar::sort::{nlargest, nsmallest, sort_values_par};
use lafp_columnar::spill::{spill_frame, SpillDir};
use lafp_columnar::{
    AggKind, Column, DType, DataFrame, GroupBySpec, JoinKind, Result as ColResult, Scalar, Series,
    SortOptions, WorkerPool,
};
use lafp_expr::Expr;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Relative Float64 tolerance for all fuzz comparisons — the
/// re-association allowance established by the parallel-kernel suites.
pub const TOL: f64 = 1e-12;

// ---------------------------------------------------------------------------
// Config matrix
// ---------------------------------------------------------------------------

/// How the engine side executes a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Sequential eager kernels.
    Eager,
    /// Pooled kernels (`group_by_par` / `merge_par` / `sort_values_par`
    /// / `read_csv_par`) at the given thread count.
    Par(usize),
    /// The Dask engine: expressible op runs become task graphs
    /// (streamed, fused, spillable); the rest execute eagerly between
    /// graph runs.
    Dask {
        /// Worker threads.
        threads: usize,
        /// Whether operator-chain fusion is enabled.
        fuse: bool,
    },
}

/// One cell of the execution-config matrix.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Display name (stable: CI and replay address configs by it).
    pub name: &'static str,
    /// Execution mode.
    pub mode: Mode,
    /// Dask memory budget in bytes (`None` = unlimited). A squeezed
    /// budget forces spills and may legitimately end in
    /// `OutOfMemory` — structured engine errors are accepted.
    pub budget: Option<usize>,
    /// Inject recoverable spill faults (5% write + 5% read) during the
    /// engine run.
    pub faults: bool,
    /// Seed for the fault plan's deterministic coin.
    pub fault_seed: u64,
    /// Run the engine with `LAFP_NO_ENCODE=1` (disables ingest
    /// auto-encoding; explicit trace encodings still apply).
    pub no_encode: bool,
}

impl FuzzConfig {
    fn plain(name: &'static str, mode: Mode) -> FuzzConfig {
        FuzzConfig {
            name,
            mode,
            budget: None,
            faults: false,
            fault_seed: 0,
            no_encode: false,
        }
    }

    /// Whether a structured engine error ends the case as *accepted*
    /// (fault- and budget-squeezed configs) rather than as a
    /// divergence.
    pub fn tolerates_errors(&self) -> bool {
        self.faults || self.budget.is_some()
    }
}

/// The standard config matrix. `run_batch` rotates cases across it;
/// `replay` runs a trace against every cell.
pub fn default_configs() -> Vec<FuzzConfig> {
    vec![
        FuzzConfig::plain("eager", Mode::Eager),
        FuzzConfig::plain("par2", Mode::Par(2)),
        FuzzConfig::plain("par8", Mode::Par(8)),
        FuzzConfig::plain(
            "dask",
            Mode::Dask {
                threads: 2,
                fuse: true,
            },
        ),
        FuzzConfig::plain(
            "dask-nofuse",
            Mode::Dask {
                threads: 2,
                fuse: false,
            },
        ),
        FuzzConfig {
            name: "dask-budget",
            mode: Mode::Dask {
                threads: 2,
                fuse: true,
            },
            budget: Some(1 << 20),
            faults: false,
            fault_seed: 0,
            no_encode: false,
        },
        FuzzConfig {
            name: "dask-faults",
            mode: Mode::Dask {
                threads: 4,
                fuse: true,
            },
            budget: None,
            faults: true,
            fault_seed: 0xFA17,
            no_encode: false,
        },
        FuzzConfig {
            name: "eager-noencode",
            mode: Mode::Eager,
            budget: None,
            faults: false,
            fault_seed: 0,
            no_encode: true,
        },
    ]
}

/// Look a config up by its stable name.
pub fn config_by_name(name: &str) -> Option<FuzzConfig> {
    default_configs().into_iter().find(|c| c.name == name)
}

/// Deliberate engine defects for mutation-testing the harness itself
/// (prove the fuzzer catches and shrinks a planted bug, then revert to
/// [`Mutation::None`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// The real engine, unmodified.
    None,
    /// Sort silently drops its last output row (eager/par modes).
    SortDropsLastRow,
}

// ---------------------------------------------------------------------------
// Resolved ops
// ---------------------------------------------------------------------------

const CMPS: [CmpOp; 6] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];
const ARITHS: [ArithOp; 5] = [
    ArithOp::Add,
    ArithOp::Sub,
    ArithOp::Mul,
    ArithOp::Div,
    ArithOp::Mod,
];
const AGGS: [AggKind; 6] = [
    AggKind::Sum,
    AggKind::Mean,
    AggKind::Count,
    AggKind::Min,
    AggKind::Max,
    AggKind::NUnique,
];

/// A fully-resolved op: concrete column names, operators, literals and
/// row numbers. Both sides execute exactly this.
#[derive(Clone, Debug)]
pub enum ROp {
    /// Keep rows where `col <cmp> lit`.
    Filter {
        /// Filtered column.
        col: String,
        /// Comparison.
        cmp: CmpOp,
        /// Broadcast literal.
        lit: Scalar,
    },
    /// Append `out = lhs <op> rhs`.
    WithArith {
        /// Left column.
        lhs: String,
        /// Right column.
        rhs: String,
        /// Operator.
        op: ArithOp,
        /// Output column name.
        out: String,
    },
    /// Append `out = lhs <cmp> rhs` as a Bool column.
    WithCompare {
        /// Left column.
        lhs: String,
        /// Right column.
        rhs: String,
        /// Comparison.
        cmp: CmpOp,
        /// Output column name.
        out: String,
    },
    /// Frame-wide fillna (per column; columns that reject the scalar
    /// pass through unchanged — the frozen frame-level contract).
    FillNa {
        /// Fill value.
        fill: Scalar,
    },
    /// Group-by aggregation.
    GroupBy {
        /// The grouping spec.
        spec: GroupBySpec,
    },
    /// Join against the auxiliary frame, result capped at
    /// [`GROWTH_CAP`] rows.
    Join {
        /// Join keys (common columns).
        on: Vec<String>,
        /// Join kind.
        how: JoinKind,
    },
    /// Stable sort by one key.
    Sort {
        /// Sort key.
        by: String,
        /// Ascending?
        ascending: bool,
    },
    /// `nlargest` / `nsmallest`.
    TopN {
        /// Ranked column.
        col: String,
        /// Row count.
        n: usize,
        /// `nlargest` when true.
        largest: bool,
    },
    /// Self-concat: append the frame's own first 64 rows.
    Concat,
    /// Contiguous row range (resolved to concrete bounds).
    Slice {
        /// Start row.
        offset: usize,
        /// Row count.
        len: usize,
    },
    /// Engine side: spill the frame to disk and read it back. Oracle
    /// side: identity.
    SpillRoundTrip,
    /// Engine side: dictionary- or run-length-encode a column in
    /// place. Oracle side: identity.
    Encode {
        /// Target column.
        col: String,
    },
    /// Engine side: decode every encoded column. Oracle side: identity.
    Decode,
    /// First `n` rows.
    Head {
        /// Row count.
        n: usize,
    },
    /// No eligible operands — identity on both sides.
    Skip,
}

fn schema_of(frame: &DataFrame) -> Vec<(String, DType)> {
    frame
        .series()
        .iter()
        .map(|s| (s.name().to_string(), s.column().dtype()))
        .collect()
}

fn pick(
    schema: &[(String, DType)],
    byte: u8,
    pred: impl Fn(DType) -> bool,
) -> Option<&(String, DType)> {
    let eligible: Vec<&(String, DType)> =
        schema.iter().filter(|(_, d)| pred(*d)).collect();
    (!eligible.is_empty()).then(|| eligible[byte as usize % eligible.len()])
}

fn numeric(d: DType) -> bool {
    matches!(d, DType::Int64 | DType::Float64)
}

fn filter_lit(dtype: DType, c: u8) -> Scalar {
    match dtype {
        DType::Int64 => Scalar::Int((c % 21) as i64 - 10),
        DType::Float64 => Scalar::Float(((c % 41) as f64 - 20.0) * 0.25),
        _ => Scalar::Str(format!("s{}", c % 32)),
    }
}

/// Resolve one raw op against the current (oracle) schema. `aux` is the
/// auxiliary frame's schema; `with_counter` numbers fresh `d{n}`
/// output columns across the trace.
fn resolve(
    raw: RawOp,
    cur: &DataFrame,
    aux_schema: &[(String, DType)],
    with_counter: &mut usize,
) -> ROp {
    let schema = schema_of(cur);
    match raw.code {
        0 => match pick(&schema, raw.a, |d| {
            matches!(d, DType::Int64 | DType::Float64 | DType::Utf8)
        }) {
            Some((name, dtype)) => ROp::Filter {
                col: name.clone(),
                cmp: CMPS[raw.b as usize % CMPS.len()],
                lit: filter_lit(*dtype, raw.c),
            },
            None => ROp::Skip,
        },
        1 => {
            let (Some((lhs, _)), Some((rhs, _))) = (
                pick(&schema, raw.a, numeric),
                pick(&schema, raw.b, numeric),
            ) else {
                return ROp::Skip;
            };
            let out = format!("d{with_counter}");
            *with_counter += 1;
            ROp::WithArith {
                lhs: lhs.clone(),
                rhs: rhs.clone(),
                op: ARITHS[raw.c as usize % ARITHS.len()],
                out,
            }
        }
        2 => {
            // Compare within one dtype family: numeric x numeric or
            // Utf8 x Utf8, chosen by the low operand bit when both are
            // available.
            let prefer_num = raw.c & 1 == 0;
            let pair = [prefer_num, !prefer_num].into_iter().find_map(|want_num| {
                let pred: fn(DType) -> bool =
                    if want_num { numeric } else { |d| d == DType::Utf8 };
                Some((
                    pick(&schema, raw.a, pred)?.0.clone(),
                    pick(&schema, raw.b, pred)?.0.clone(),
                ))
            });
            let Some((lhs, rhs)) = pair else {
                return ROp::Skip;
            };
            let out = format!("d{with_counter}");
            *with_counter += 1;
            ROp::WithCompare {
                lhs,
                rhs,
                cmp: CMPS[(raw.c >> 1) as usize % CMPS.len()],
                out,
            }
        }
        3 => ROp::FillNa {
            fill: if raw.b.is_multiple_of(2) {
                Scalar::Int((raw.a % 19) as i64 - 9)
            } else {
                Scalar::Float(((raw.a % 19) as f64 - 9.0) * 0.5)
            },
        },
        4 => {
            let Some((key, _)) = pick(&schema, raw.a, |_| true) else {
                return ROp::Skip;
            };
            let Some((value, _)) =
                pick(&schema, raw.b, numeric).filter(|(v, _)| v != key).or_else(|| {
                    schema.iter().find(|(v, d)| numeric(*d) && v != key)
                })
            else {
                return ROp::Skip;
            };
            ROp::GroupBy {
                spec: GroupBySpec {
                    keys: vec![key.clone()],
                    value: value.clone(),
                    agg: AGGS[raw.c as usize % AGGS.len()],
                },
            }
        }
        5 => {
            let common: Vec<String> = schema
                .iter()
                .filter(|(n, d)| aux_schema.iter().any(|(an, ad)| an == n && ad == d))
                .map(|(n, _)| n.clone())
                .collect();
            if common.is_empty() {
                return ROp::Skip;
            }
            let n_keys = (1 + raw.b as usize % 2).min(common.len());
            let on = &common[..n_keys];
            // Skip joins whose _x/_y suffixing would collide with an
            // existing column (e.g. a `c1_x` left over from an earlier
            // join meeting a fresh `c1` overlap): both the oracle and
            // the engine reject the duplicate, which non-fault configs
            // would read as a divergence.
            let overlap: Vec<&String> = schema
                .iter()
                .map(|(n, _)| n)
                .filter(|n| !on.contains(n) && aux_schema.iter().any(|(an, _)| an == *n))
                .collect();
            let mut names: Vec<String> = Vec::new();
            for (n, _) in &schema {
                names.push(if overlap.contains(&n) {
                    format!("{n}_x")
                } else {
                    n.clone()
                });
            }
            for (n, _) in aux_schema {
                if on.contains(n) {
                    continue;
                }
                names.push(if overlap.contains(&n) {
                    format!("{n}_y")
                } else {
                    n.clone()
                });
            }
            let unique: std::collections::HashSet<&String> = names.iter().collect();
            if unique.len() != names.len() {
                return ROp::Skip;
            }
            ROp::Join {
                on: on.to_vec(),
                how: if raw.a.is_multiple_of(2) {
                    JoinKind::Inner
                } else {
                    JoinKind::Left
                },
            }
        }
        6 => match pick(&schema, raw.a, |_| true) {
            Some((by, _)) => ROp::Sort {
                by: by.clone(),
                ascending: raw.b.is_multiple_of(2),
            },
            None => ROp::Skip,
        },
        7 => match pick(&schema, raw.a, numeric) {
            Some((col, _)) => ROp::TopN {
                col: col.clone(),
                n: raw.c as usize % 40,
                largest: raw.b.is_multiple_of(2),
            },
            None => ROp::Skip,
        },
        8 => ROp::Concat,
        9 => {
            let rows = cur.num_rows();
            ROp::Slice {
                offset: rows * (raw.a as usize % 101) / 100,
                len: rows * (raw.b as usize % 101) / 100,
            }
        }
        10 => ROp::SpillRoundTrip,
        11 => match pick(&schema, raw.a, |_| true) {
            Some((col, _)) => ROp::Encode { col: col.clone() },
            None => ROp::Skip,
        },
        12 => ROp::Decode,
        _ => ROp::Head {
            n: (raw.a as usize).wrapping_mul(7) % 65,
        },
    }
}

// ---------------------------------------------------------------------------
// Oracle run
// ---------------------------------------------------------------------------

/// The oracle's execution of a trace: the resolved ops and the frame
/// state before/after each one (`states[0]` is the initial frame,
/// `states[k + 1]` the state after op `k`).
pub struct OracleRun {
    /// Frame states; `states.len() == rops.len() + 1`.
    pub states: Vec<DataFrame>,
    /// The resolved op sequence.
    pub rops: Vec<ROp>,
    /// The plain auxiliary frame (join partner).
    pub aux: DataFrame,
    /// The CSV file the main frame routes through, when `via_csv`.
    pub csv_path: Option<PathBuf>,
}

impl Drop for OracleRun {
    fn drop(&mut self) {
        if let Some(p) = &self.csv_path {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// Replace-or-append a column, preserving position — the reference
/// twin of `DataFrame::with_column`.
fn with_col_ref(frame: &DataFrame, name: &str, col: Column) -> DataFrame {
    let mut series: Vec<Series> = frame.series().to_vec();
    match series.iter_mut().find(|s| s.name() == name) {
        Some(slot) => *slot = Series::new(name, col),
        None => series.push(Series::new(name, col)),
    }
    DataFrame::new(series).expect("reference with_column is well-formed")
}

/// Reference head/slice built from `slice_ref` per column.
fn slice_frame_ref(frame: &DataFrame, offset: usize, len: usize) -> DataFrame {
    DataFrame::new(
        frame
            .series()
            .iter()
            .map(|s| Series::new(s.name(), oracle::slice_ref(s.column(), offset, len)))
            .collect(),
    )
    .expect("reference slice is well-formed")
}

fn oracle_apply(cur: &DataFrame, aux: &DataFrame, rop: &ROp) -> DataFrame {
    match rop {
        ROp::Filter { col, cmp, lit } => {
            let target = cur.column(col).expect("resolved column").column();
            let mask = oracle::compare_scalar_ref(target, *cmp, lit);
            oracle::filter_ref(cur, &mask)
        }
        ROp::WithArith { lhs, rhs, op, out } => {
            let l = cur.column(lhs).expect("resolved column").column();
            let r = cur.column(rhs).expect("resolved column").column();
            with_col_ref(cur, out, oracle::arith_ref(l, *op, r))
        }
        ROp::WithCompare { lhs, rhs, cmp, out } => {
            let l = cur.column(lhs).expect("resolved column").column();
            let r = cur.column(rhs).expect("resolved column").column();
            with_col_ref(cur, out, Column::Bool(oracle::compare_ref(l, *cmp, r), None))
        }
        ROp::FillNa { fill } => oracle::fillna_frame_ref(cur, fill),
        ROp::GroupBy { spec } => oracle::group_by_ref(cur, spec),
        ROp::Join { on, how } => {
            slice_frame_ref(&oracle::merge_ref(cur, aux, on, *how), 0, GROWTH_CAP)
        }
        ROp::Sort { by, ascending } => {
            oracle::sort_values_ref(cur, &SortOptions::single(by.clone(), *ascending))
        }
        ROp::TopN { col, n, largest } => {
            if *largest {
                oracle::nlargest_ref(cur, *n, col)
            } else {
                oracle::nsmallest_ref(cur, *n, col)
            }
        }
        ROp::Concat => oracle::concat_ref(cur, &slice_frame_ref(cur, 0, 64)),
        ROp::Slice { offset, len } => slice_frame_ref(cur, *offset, *len),
        ROp::SpillRoundTrip | ROp::Encode { .. } | ROp::Decode | ROp::Skip => cur.clone(),
        ROp::Head { n } => slice_frame_ref(cur, 0, *n),
    }
}

/// Execute a trace on the oracle: build the inputs, resolve every op
/// against the evolving schema, and record each intermediate state.
pub fn run_oracle(trace: &Trace) -> OracleRun {
    let main_plain = build_plain(&trace.main);
    let aux = build_plain(&trace.aux);
    let (initial, csv_path) = if trace.via_csv {
        let path = temp_csv_path();
        write_csv(&main_plain, &path);
        (
            oracle::read_csv_infer_ref(&path, &CsvOptions::new()),
            Some(path),
        )
    } else {
        (main_plain, None)
    };
    let aux_schema = schema_of(&aux);
    let mut with_counter = 0usize;
    let mut states = vec![initial];
    let mut rops = Vec::with_capacity(trace.ops.len());
    for raw in &trace.ops {
        let cur = states.last().expect("non-empty");
        let rop = resolve(*raw, cur, &aux_schema, &mut with_counter);
        let next = oracle_apply(cur, &aux, &rop);
        rops.push(rop);
        states.push(next);
    }
    OracleRun {
        states,
        rops,
        aux,
        csv_path,
    }
}

// ---------------------------------------------------------------------------
// Engine runs
// ---------------------------------------------------------------------------

/// What the engine run produced: `error` is the structured engine error
/// that ended the run early, when the config tolerates one.
pub struct EngineReport {
    /// Structured engine error accepted under a fault/budget config.
    pub error: Option<String>,
}

fn engine_encode(cur: &DataFrame, col: &str) -> ColResult<DataFrame> {
    let c = cur.column(col)?.column();
    let encoded = if c.is_encoded() {
        None
    } else if c.dtype() == DType::Utf8 {
        dict_encode(c)
    } else {
        Some(oracle::force_rle(c))
    };
    match encoded {
        Some(e) => cur.with_column(col, e),
        None => Ok(cur.clone()),
    }
}

fn engine_decode(cur: &DataFrame) -> DataFrame {
    DataFrame::new(
        cur.series()
            .iter()
            .map(|s| {
                let c = s.column();
                let plain = if c.is_encoded() { c.decode() } else { c.clone() };
                Series::new(s.name(), plain)
            })
            .collect(),
    )
    .expect("decode preserves shape")
}

fn engine_fillna(cur: &DataFrame, fill: &Scalar) -> DataFrame {
    // The frozen frame-level contract (shared by the Dask FillNa
    // operator): a column that rejects the fill scalar passes through
    // unchanged.
    DataFrame::new(
        cur.series()
            .iter()
            .map(|s| {
                let col = match s.column().fillna(fill) {
                    Ok(c) => c,
                    Err(_) => s.column().clone(),
                };
                Series::new(s.name(), col)
            })
            .collect(),
    )
    .expect("fillna preserves shape")
}

fn engine_spill_round_trip(cur: &DataFrame) -> ColResult<DataFrame> {
    let dir = SpillDir::in_temp();
    let file = spill_frame(&dir, cur)?;
    let frames = file.read_all()?;
    let mut out = cur.head(0);
    for f in &frames {
        out = out.concat(f)?;
    }
    Ok(out)
}

/// One eager/pooled engine op. `pool` drives the `_par` kernel variants
/// (a sequential pool selects the plain kernels inside them).
fn engine_apply(
    cur: &DataFrame,
    aux: &DataFrame,
    rop: &ROp,
    pool: &WorkerPool,
    mutation: Mutation,
) -> ColResult<DataFrame> {
    match rop {
        ROp::Filter { col, cmp, lit } => {
            let mask = cur.column(col)?.column().compare_scalar(*cmp, lit)?;
            cur.filter(&mask)
        }
        ROp::WithArith { lhs, rhs, op, out } => {
            let v = cur
                .column(lhs)?
                .column()
                .arith(*op, cur.column(rhs)?.column())?;
            cur.with_column(out, v)
        }
        ROp::WithCompare { lhs, rhs, cmp, out } => {
            let mask = cur
                .column(lhs)?
                .column()
                .compare(*cmp, cur.column(rhs)?.column())?;
            cur.with_column(out, Column::Bool(mask, None))
        }
        ROp::FillNa { fill } => Ok(engine_fillna(cur, fill)),
        ROp::GroupBy { spec } => group_by_par(cur, spec, pool),
        ROp::Join { on, how } => Ok(merge_par(cur, aux, on, *how, pool)?.head(GROWTH_CAP)),
        ROp::Sort { by, ascending } => {
            let sorted =
                sort_values_par(cur, &SortOptions::single(by.clone(), *ascending), pool)?;
            Ok(apply_sort_mutation(sorted, mutation))
        }
        ROp::TopN { col, n, largest } => {
            if *largest {
                nlargest(cur, *n, col)
            } else {
                nsmallest(cur, *n, col)
            }
        }
        ROp::Concat => cur.concat(&cur.head(64)),
        ROp::Slice { offset, len } => Ok(cur.slice(*offset, *len)),
        ROp::SpillRoundTrip => engine_spill_round_trip(cur),
        ROp::Encode { col } => engine_encode(cur, col),
        ROp::Decode => Ok(engine_decode(cur)),
        ROp::Head { n } => Ok(cur.head(*n)),
        ROp::Skip => Ok(cur.clone()),
    }
}

fn apply_sort_mutation(sorted: DataFrame, mutation: Mutation) -> DataFrame {
    match mutation {
        Mutation::None => sorted,
        Mutation::SortDropsLastRow => {
            let rows = sorted.num_rows();
            if rows > 0 {
                sorted.head(rows - 1)
            } else {
                sorted
            }
        }
    }
}

fn engine_inputs(
    trace: &Trace,
    orun: &OracleRun,
    pool: &WorkerPool,
) -> ColResult<(DataFrame, DataFrame)> {
    let aux = encode_for_engine(&build_plain(&trace.aux), &trace.aux);
    let main = match &orun.csv_path {
        Some(path) => read_csv_par(path, &CsvOptions::new(), pool)?,
        None => encode_for_engine(&build_plain(&trace.main), &trace.main),
    };
    Ok((main, aux))
}

/// Run the engine eagerly (sequential or pooled) and compare every
/// intermediate state against the oracle.
fn run_eager(
    trace: &Trace,
    orun: &OracleRun,
    cfg: &FuzzConfig,
    mutation: Mutation,
) -> Result<EngineReport, String> {
    let threads = match cfg.mode {
        Mode::Par(n) => n,
        _ => 1,
    };
    let pool = WorkerPool::new(threads);
    let accept = |e: lafp_columnar::ColumnarError, at: &str| -> Result<EngineReport, String> {
        if cfg.tolerates_errors() {
            Ok(EngineReport {
                error: Some(format!("{at}: {e}")),
            })
        } else {
            Err(format!("[{}] engine error at {at} where oracle succeeded: {e}", cfg.name))
        }
    };
    let (mut cur, aux) = match engine_inputs(trace, orun, &pool) {
        Ok(v) => v,
        Err(e) => return accept(e, "input build"),
    };
    check_frame_close(&cur, &orun.states[0], TOL, &format!("[{}] initial frame", cfg.name))?;
    for (i, rop) in orun.rops.iter().enumerate() {
        cur = match engine_apply(&cur, &aux, rop, &pool, mutation) {
            Ok(f) => f,
            Err(e) => return accept(e, &format!("op {i}")),
        };
        check_frame_close(
            &cur,
            &orun.states[i + 1],
            TOL,
            &format!("[{}] after op {i} ({rop:?})", cfg.name),
        )?;
    }
    Ok(EngineReport { error: None })
}

/// Which resolved ops the Dask engine can express as graph nodes.
fn dask_nodes(rop: &ROp) -> Option<Vec<DaskOp>> {
    Some(match rop {
        ROp::Filter { col, cmp, lit } => vec![DaskOp::Filter(
            Expr::col(col.clone()).cmp(*cmp, Expr::Lit(lit.clone())),
        )],
        ROp::WithArith { lhs, rhs, op, out } => vec![DaskOp::WithColumn(
            out.clone(),
            Expr::col(lhs.clone()).arith(*op, Expr::col(rhs.clone())),
        )],
        ROp::WithCompare { lhs, rhs, cmp, out } => vec![DaskOp::WithColumn(
            out.clone(),
            Expr::col(lhs.clone()).cmp(*cmp, Expr::col(rhs.clone())),
        )],
        ROp::FillNa { fill } => vec![DaskOp::FillNa(fill.clone())],
        ROp::GroupBy { spec } => vec![DaskOp::GroupByAgg(spec.clone())],
        ROp::Join { on, how } => vec![
            DaskOp::Merge {
                on: on.clone(),
                how: *how,
            },
            DaskOp::Head(GROWTH_CAP),
        ],
        ROp::Sort { by, ascending } => {
            vec![DaskOp::Sort(SortOptions::single(by.clone(), *ascending))]
        }
        ROp::TopN { col, n, largest } => vec![
            DaskOp::Sort(SortOptions::single(col.clone(), !largest)),
            DaskOp::Head(*n),
        ],
        ROp::Head { n } => vec![DaskOp::Head(*n)],
        ROp::Skip => vec![],
        _ => return None,
    })
}

/// Run one Dask graph over `rops[start..end]`, seeded either from a
/// materialized frame or the trace's CSV scan.
#[allow(clippy::too_many_arguments)]
fn dask_graph_run(
    cfg: &FuzzConfig,
    seed_frame: Option<&DataFrame>,
    csv_path: Option<&Path>,
    rops: &[ROp],
    aux: &DataFrame,
) -> ColResult<DataFrame> {
    let (threads, fuse) = match cfg.mode {
        Mode::Dask { threads, fuse } => (threads, fuse),
        _ => unreachable!("dask_graph_run requires Mode::Dask"),
    };
    let tracker = match cfg.budget {
        Some(b) => MemoryTracker::with_budget(b),
        None => MemoryTracker::unlimited(),
    };
    let chunk_rows = if cfg.budget.is_some() { 256 } else { 1024 };
    let mut engine = DaskEngine::with_threads(tracker, chunk_rows, threads);
    engine.fuse_chains = fuse;
    let mut node = match seed_frame {
        Some(f) => engine.add(DaskOp::FromFrame(Arc::new(f.clone())), vec![]),
        None => engine.add(
            DaskOp::ReadCsv {
                path: csv_path.expect("csv-seeded run").to_path_buf(),
                options: CsvOptions::new(),
                limit: None,
            },
            vec![],
        ),
    };
    for rop in rops {
        for op in dask_nodes(rop).expect("only expressible ops reach a graph run") {
            let inputs = match op {
                DaskOp::Merge { .. } => {
                    let right = engine.add(DaskOp::FromFrame(Arc::new(aux.clone())), vec![]);
                    vec![node, right]
                }
                _ => vec![node],
            };
            node = engine.add(op, inputs);
        }
    }
    let (value, reservation) = engine.compute(node)?;
    let frame = value.into_frame()?;
    drop(reservation);
    Ok(frame)
}

/// Run the engine through the Dask backend: maximal runs of
/// graph-expressible ops become task graphs (streamed, fused,
/// spillable), everything else executes eagerly in between, and every
/// materialization point is compared against the oracle.
fn run_dask(
    trace: &Trace,
    orun: &OracleRun,
    cfg: &FuzzConfig,
    mutation: Mutation,
) -> Result<EngineReport, String> {
    let pool = WorkerPool::new(1);
    let accept = |e: lafp_columnar::ColumnarError, at: &str| -> Result<EngineReport, String> {
        if cfg.tolerates_errors() {
            Ok(EngineReport {
                error: Some(format!("{at}: {e}")),
            })
        } else {
            Err(format!("[{}] engine error at {at} where oracle succeeded: {e}", cfg.name))
        }
    };
    let aux = encode_for_engine(&build_plain(&trace.aux), &trace.aux);
    // `cur = None` means "still inside the CSV scan": the first graph
    // run streams the scan and its op run in one pipeline.
    let mut cur: Option<DataFrame> = match &orun.csv_path {
        Some(_) => None,
        None => {
            let f = encode_for_engine(&build_plain(&trace.main), &trace.main);
            check_frame_close(&f, &orun.states[0], TOL, &format!("[{}] initial frame", cfg.name))?;
            Some(f)
        }
    };
    let mut i = 0;
    while i < orun.rops.len() {
        if dask_nodes(&orun.rops[i]).is_some() {
            let mut j = i;
            while j < orun.rops.len() && dask_nodes(&orun.rops[j]).is_some() {
                j += 1;
            }
            let frame = match dask_graph_run(
                cfg,
                cur.as_ref(),
                orun.csv_path.as_deref(),
                &orun.rops[i..j],
                &aux,
            ) {
                Ok(f) => f,
                Err(e) => return accept(e, &format!("graph run over ops {i}..{j}")),
            };
            check_frame_close(
                &frame,
                &orun.states[j],
                TOL,
                &format!("[{}] after graph run over ops {i}..{j}", cfg.name),
            )?;
            cur = Some(frame);
            i = j;
        } else {
            let base = match cur.take() {
                Some(f) => f,
                // Leading non-expressible op on a CSV-seeded trace:
                // materialize the bare scan first.
                None => {
                    let f = match dask_graph_run(
                        cfg,
                        None,
                        orun.csv_path.as_deref(),
                        &[],
                        &aux,
                    ) {
                        Ok(f) => f,
                        Err(e) => return accept(e, "csv scan"),
                    };
                    check_frame_close(
                        &f,
                        &orun.states[0],
                        TOL,
                        &format!("[{}] initial frame", cfg.name),
                    )?;
                    f
                }
            };
            let next = match engine_apply(&base, &aux, &orun.rops[i], &pool, mutation) {
                Ok(f) => f,
                Err(e) => return accept(e, &format!("op {i}")),
            };
            check_frame_close(
                &next,
                &orun.states[i + 1],
                TOL,
                &format!("[{}] after op {i} ({:?})", cfg.name, orun.rops[i]),
            )?;
            cur = Some(next);
            i += 1;
        }
    }
    if cur.is_none() {
        // CSV-seeded trace with no ops: still verify the scan itself.
        let f = match dask_graph_run(cfg, None, orun.csv_path.as_deref(), &[], &aux) {
            Ok(f) => f,
            Err(e) => return accept(e, "csv scan"),
        };
        check_frame_close(&f, &orun.states[0], TOL, &format!("[{}] initial frame", cfg.name))?;
    }
    Ok(EngineReport { error: None })
}

/// Execute the engine side of a trace under one config and compare
/// against the oracle run. `Err` is a divergence (the fuzzer's
/// "found something"); `Ok` carries the accepted structured error, if
/// any.
pub fn run_engine(
    trace: &Trace,
    orun: &OracleRun,
    cfg: &FuzzConfig,
    mutation: Mutation,
) -> Result<EngineReport, String> {
    match cfg.mode {
        Mode::Eager | Mode::Par(_) => run_eager(trace, orun, cfg, mutation),
        Mode::Dask { .. } => run_dask(trace, orun, cfg, mutation),
    }
}
