//! # lafp-rewrite — the static optimizer and the JIT pipeline
//!
//! Implements the compile-time half of LaFP (paper §2.3–2.4, §3): given a
//! PandaScript program, run the analyses from `lafp-analysis` and rewrite
//! the AST:
//!
//! * **Column selection** (§3.1) — inject `usecols=[...]` into `read_csv`
//!   calls from Live Attribute Analysis.
//! * **Lazy print** (§3.3) — add `from lazyfatpandas.func import print`
//!   and a final `pd.flush()`.
//! * **Forced computation** (§3.4) — wrap frame arguments of external
//!   module calls in `.compute(live_df=[...])`, with the live list from
//!   Live DataFrame Analysis (§3.5).
//! * **Metadata dtypes** (§3.6) — consult the metastore and declare
//!   low-cardinality **read-only** string columns as `category`.
//! * Drop the `pd.analyze()` bootstrap call from the optimized program.
//!
//! [`jit::analyze`] is the Figure-5 pipeline: parse → analyze → rewrite →
//! emit optimized source (the caller then executes it), returning a
//! [`jit::RewriteReport`] that the §5.3 overhead experiment measures.

#![warn(missing_docs)]

pub mod jit;
pub mod passes;

pub use jit::{analyze, AnalyzedProgram, RewriteOptions, RewriteReport};
