//! Encoding decisions and telemetry for compressed execution.
//!
//! PR 9 makes column encodings a first-class execution concept: strings
//! can live as [`Column::Dict`] (u32 codes over a shared dictionary) and
//! any scalar lane as [`Column::Rle`] (run values + run ends), and the
//! hot kernels consume both *without decompressing* — group-by keys hash
//! and compare codes, filters evaluate predicates once per run, sort
//! orders codes through a dictionary permutation, and spill writes the
//! compressed form. This module owns the two cross-cutting concerns:
//!
//! - **Decisions.** [`dict_encode_auto`] is the ingest-side heuristic the
//!   CSV readers apply to finished string columns: encode only when the
//!   column is big enough to matter, the cardinality is low, and the
//!   encoded representation is actually smaller. [`dict_encode`] and
//!   [`rle_encode`] are the unconditional constructors used by tests and
//!   benchmarks. `LAFP_NO_ENCODE=1` (checked per call, like
//!   `LAFP_NO_FUSE`) disables auto-encoding entirely so every pipeline
//!   can be exercised on plain columns.
//! - **Telemetry.** Process-wide counters record how many columns were
//!   encoded, how many bytes that saved, and — crucially for the
//!   acceptance tests — how many times a kernel fell back to
//!   [`Column::decode`] instead of running encoded. A low-cardinality
//!   query that stays on the fast paths must report **zero** decode
//!   fallbacks.
//!
//! ```
//! use lafp_columnar::column::Column;
//! use lafp_columnar::encoding;
//! let city = Column::from_strings(["NYC", "NYC", "LA", "NYC", "LA"]);
//! let dict = encoding::dict_encode(&city).expect("string column encodes");
//! assert_eq!(dict.decode(), city);
//! ```

use crate::bitmap::Bitmap;
use crate::column::{fnv1a, Categorical, Column, RleCol};
use crate::strings::{Utf8Builder, Utf8Col};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Columns shorter than this are never auto-encoded: the constant-factor
/// win can't pay for the dictionary build, and tiny test frames keep
/// their plain representation.
pub const DICT_MIN_ROWS: usize = 1024;

/// Hard cap on dictionary cardinality. Beyond this the column is not
/// "low-cardinality" in any useful sense, and the code-indexed group-by
/// fast path (which allocates one dense slot per dictionary entry)
/// stops being a win.
pub const DICT_MAX_CARDINALITY: usize = 65_536;

/// True unless `LAFP_NO_ENCODE=1` disables ingest-time auto-encoding.
/// Checked per call (same contract as the `LAFP_NO_FUSE` fusion gate) so
/// tests can flip it without rebuilding readers.
pub fn enabled() -> bool {
    !matches!(
        std::env::var("LAFP_NO_ENCODE").ok().as_deref(),
        Some("1") | Some("true")
    )
}

/// Cumulative encoding counters (process-wide; see [`global`]).
#[derive(Debug, Default)]
pub struct EncodingStats {
    dict_columns: AtomicU64,
    rle_columns: AtomicU64,
    decode_fallbacks: AtomicU64,
    bytes_saved: AtomicU64,
}

/// A point-in-time copy of the encoding counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EncodingSnapshot {
    /// String columns dictionary-encoded (at ingest or explicitly).
    pub dict_columns: u64,
    /// Columns run-length-encoded.
    pub rle_columns: u64,
    /// Times a kernel decoded an encoded column instead of running on
    /// it directly (the universal fallback). Zero for a query that
    /// stayed on the encoded fast paths end to end.
    pub decode_fallbacks: u64,
    /// Heap bytes saved by encoding (plain representation minus
    /// encoded representation, summed over encoded columns).
    pub bytes_saved: u64,
}

impl EncodingStats {
    /// Record one dictionary-encoded column that saved `bytes_saved`
    /// heap bytes versus its plain form.
    pub fn record_dict(&self, bytes_saved: u64) {
        self.dict_columns.fetch_add(1, Ordering::Relaxed);
        self.bytes_saved.fetch_add(bytes_saved, Ordering::Relaxed);
    }

    /// Record one run-length-encoded column that saved `bytes_saved`.
    pub fn record_rle(&self, bytes_saved: u64) {
        self.rle_columns.fetch_add(1, Ordering::Relaxed);
        self.bytes_saved.fetch_add(bytes_saved, Ordering::Relaxed);
    }

    /// Record one decode fallback taken by a kernel.
    pub fn record_decode_fallback(&self) {
        self.decode_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the current counter values.
    pub fn snapshot(&self) -> EncodingSnapshot {
        EncodingSnapshot {
            dict_columns: self.dict_columns.load(Ordering::Relaxed),
            rle_columns: self.rle_columns.load(Ordering::Relaxed),
            decode_fallbacks: self.decode_fallbacks.load(Ordering::Relaxed),
            bytes_saved: self.bytes_saved.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter (between measured runs).
    pub fn reset(&self) {
        self.dict_columns.store(0, Ordering::Relaxed);
        self.rle_columns.store(0, Ordering::Relaxed);
        self.decode_fallbacks.store(0, Ordering::Relaxed);
        self.bytes_saved.store(0, Ordering::Relaxed);
    }
}

/// The process-wide encoding counters.
pub fn global() -> &'static EncodingStats {
    static GLOBAL: EncodingStats = EncodingStats {
        dict_columns: AtomicU64::new(0),
        rle_columns: AtomicU64::new(0),
        decode_fallbacks: AtomicU64::new(0),
        bytes_saved: AtomicU64::new(0),
    };
    &GLOBAL
}

/// Snapshot of the process-wide counters.
pub fn snapshot() -> EncodingSnapshot {
    global().snapshot()
}

/// Reset the process-wide counters.
pub fn reset() {
    global().reset()
}

/// Build the code vector + dictionary for a string column, aborting as
/// soon as the distinct count exceeds `cap`. Null rows are interned as
/// `""` so that `decode()` reproduces the normalized null-slot sentinel
/// the plain builders use; validity still marks them null.
fn build_dict(
    values: &Utf8Col,
    validity: Option<&Bitmap>,
    cap: usize,
) -> Option<(Vec<u32>, Utf8Col)> {
    let rows = values.len();
    let mut codes = Vec::with_capacity(rows);
    let mut builder = Utf8Builder::with_capacity(cap.min(rows), 0);
    // fnv hash of entry bytes -> candidate codes (collision list).
    let mut index: HashMap<u64, Vec<u32>> = HashMap::new();
    // Entry bytes live in `values`' arena for valid rows; remember each
    // distinct entry's first row so candidates compare without copying
    // (u32::MAX marks the interned-"" entry for null rows).
    let mut first_row: Vec<u32> = Vec::new();
    for i in 0..rows {
        let valid = validity.map(|v| v.get(i)).unwrap_or(true);
        let bytes: &[u8] = if valid { values.bytes_at(i) } else { b"" };
        let h = fnv1a(bytes);
        let slot = index.entry(h).or_default();
        let mut code = u32::MAX;
        for &c in slot.iter() {
            let fr = first_row[c as usize] as usize;
            let existing: &[u8] = if fr == u32::MAX as usize {
                b""
            } else {
                values.bytes_at(fr)
            };
            if existing == bytes {
                code = c;
                break;
            }
        }
        if code == u32::MAX {
            if builder.len() >= cap {
                return None;
            }
            code = builder.len() as u32;
            // Safety of utf8: bytes come from a Utf8Col row (or are "").
            builder.push(if valid { values.get(i) } else { "" });
            first_row.push(if valid { i as u32 } else { u32::MAX });
            slot.push(code);
        }
        codes.push(code);
    }
    Some((codes, builder.finish()))
}

/// Dictionary-encode a string column unconditionally (subject only to
/// the [`DICT_MAX_CARDINALITY`] cap). Returns `None` for non-string
/// columns, columns that blow the cap, and already-encoded columns.
/// Does not consult [`enabled`] and does not touch the counters —
/// callers that represent real ingest decisions go through
/// [`dict_encode_auto`].
pub fn dict_encode(col: &Column) -> Option<Column> {
    let (values, validity) = match col {
        Column::Utf8(v, validity) => (v, validity.as_ref()),
        _ => return None,
    };
    let (codes, dict) = build_dict(values, validity, DICT_MAX_CARDINALITY)?;
    Some(Column::Dict(
        Categorical {
            codes,
            dict: Arc::new(dict),
        },
        validity.cloned(),
    ))
}

/// The ingest-side heuristic: dictionary-encode `col` if it is a string
/// column of at least [`DICT_MIN_ROWS`] rows whose cardinality stays
/// under both [`DICT_MAX_CARDINALITY`] and a quarter of the row count,
/// and whose encoded form is strictly smaller than the plain arena.
/// Records the encode (and bytes saved) in the global counters.
/// Returns `None` when the column should stay plain — including always
/// when `LAFP_NO_ENCODE=1`.
pub fn dict_encode_auto(col: &Column) -> Option<Column> {
    if !enabled() {
        return None;
    }
    let (values, validity) = match col {
        Column::Utf8(v, validity) => (v, validity.as_ref()),
        _ => return None,
    };
    let rows = values.len();
    if rows < DICT_MIN_ROWS {
        return None;
    }
    let cap = DICT_MAX_CARDINALITY.min(rows / 4);
    let (codes, dict) = build_dict(values, validity, cap)?;
    let plain_bytes = values.heap_bytes();
    let encoded_bytes = codes.len() * 4 + dict.heap_bytes();
    if encoded_bytes >= plain_bytes {
        return None;
    }
    global().record_dict((plain_bytes - encoded_bytes) as u64);
    Some(Column::Dict(
        Categorical {
            codes,
            dict: Arc::new(dict),
        },
        validity.cloned(),
    ))
}

/// Run-length-encode a column: one entry per maximal run of equal
/// values (null runs count as equal-null). Works for any scalar lane —
/// ints, floats, bools, datetimes, even dictionary codes. Returns
/// `None` for columns that are already encoded, for empty columns, and
/// for columns where RLE would not shrink the representation (more than
/// half the rows start a new run). Does not touch the counters; use
/// [`rle_encode_auto`] for ingest decisions.
pub fn rle_encode(col: &Column) -> Option<Column> {
    if matches!(col, Column::Dict(..) | Column::Rle(..)) {
        return None;
    }
    let rows = col.len();
    if rows == 0 || rows > u32::MAX as usize {
        return None;
    }
    // Find run boundaries by comparing adjacent rows logically (null
    // runs group together; for floats NaN is null so NaN runs group).
    let mut ends: Vec<u32> = Vec::new();
    let mut starts: Vec<usize> = vec![0];
    for i in 1..rows {
        let an = col.is_null_at(i - 1);
        let bn = col.is_null_at(i);
        let same = match (an, bn) {
            (true, true) => true,
            (false, false) => col.get(i - 1) == col.get(i),
            _ => false,
        };
        if !same {
            ends.push(i as u32);
            starts.push(i);
        }
    }
    ends.push(rows as u32);
    if starts.len() * 2 > rows {
        return None;
    }
    let values = col.take(&starts).ok()?;
    Some(Column::Rle(RleCol {
        values: Box::new(values),
        ends,
    }))
}

/// [`rle_encode`] behind the [`enabled`] gate, recording bytes saved in
/// the global counters when the encode happens.
pub fn rle_encode_auto(col: &Column) -> Option<Column> {
    if !enabled() {
        return None;
    }
    let encoded = rle_encode(col)?;
    let plain = crate::HeapSize::heap_size(col) as u64;
    let packed = crate::HeapSize::heap_size(&encoded) as u64;
    global().record_rle(plain.saturating_sub(packed));
    Some(encoded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    #[test]
    fn counters_accumulate_and_reset() {
        let stats = EncodingStats::default();
        stats.record_dict(100);
        stats.record_rle(50);
        stats.record_decode_fallback();
        assert_eq!(
            stats.snapshot(),
            EncodingSnapshot {
                dict_columns: 1,
                rle_columns: 1,
                decode_fallbacks: 1,
                bytes_saved: 150,
            }
        );
        stats.reset();
        assert_eq!(stats.snapshot(), EncodingSnapshot::default());
    }

    #[test]
    fn dict_encode_round_trips() {
        let vals: Vec<String> = (0..2000).map(|i| format!("city{}", i % 7)).collect();
        let col = Column::from_strings(&vals);
        let enc = dict_encode(&col).expect("encodes");
        match &enc {
            Column::Dict(c, v) => {
                assert_eq!(c.dict.len(), 7);
                assert_eq!(c.codes.len(), 2000);
                assert!(v.is_none());
            }
            other => panic!("expected Dict, got {other:?}"),
        }
        assert_eq!(enc.decode(), col);
    }

    #[test]
    fn dict_encode_auto_respects_thresholds() {
        // Too small.
        let small = Column::from_strings(["a", "b", "a"]);
        assert!(dict_encode_auto(&small).is_none());
        // High cardinality: every value distinct.
        let vals: Vec<String> = (0..2000).map(|i| format!("unique-{i}")).collect();
        assert!(dict_encode_auto(&Column::from_strings(&vals)).is_none());
        // Low cardinality and big enough: encodes.
        let vals: Vec<String> = (0..2000).map(|i| format!("city-{}", i % 5)).collect();
        let col = Column::from_strings(&vals);
        let enc = dict_encode_auto(&col).expect("auto-encodes");
        assert_eq!(enc.decode(), col);
    }

    #[test]
    fn dict_encode_handles_nulls_as_empty_sentinel() {
        let col = Column::from_opt_strings(vec![
            Some("x".to_string()),
            None,
            Some("x".to_string()),
            None,
            Some("y".to_string()),
        ]);
        let enc = dict_encode(&col).expect("encodes");
        assert!(enc.is_null_at(1) && enc.is_null_at(3));
        assert_eq!(enc.decode(), col);
    }

    #[test]
    fn rle_encode_round_trips_and_rejects_noise() {
        let clustered: Vec<i64> = (0..1000).map(|i| (i / 100) as i64).collect();
        let col = Column::from_i64(clustered);
        let enc = rle_encode(&col).expect("clustered data encodes");
        match &enc {
            Column::Rle(r) => assert_eq!(r.ends.len(), 10),
            other => panic!("expected Rle, got {other:?}"),
        }
        assert_eq!(enc.decode(), col);
        // Alternating values: every row a new run, no win.
        let noisy = Column::from_i64((0..100).map(|i| i % 2).collect());
        assert!(rle_encode(&noisy).is_none());
    }

    #[test]
    fn rle_encode_groups_null_runs() {
        let col = Column::from_opt_i64(vec![
            Some(1),
            Some(1),
            None,
            None,
            None,
            Some(2),
            Some(2),
            Some(2),
        ]);
        let enc = rle_encode(&col).expect("encodes");
        match &enc {
            Column::Rle(r) => assert_eq!(r.ends, vec![2, 5, 8]),
            other => panic!("expected Rle, got {other:?}"),
        }
        assert_eq!(enc.decode(), col);
    }

    #[test]
    fn no_encode_env_disables_auto() {
        // Serialized via the env-var guard in csv tests; here we only
        // check the pure predicate logic by restoring the prior value.
        let prior = std::env::var("LAFP_NO_ENCODE").ok();
        std::env::set_var("LAFP_NO_ENCODE", "1");
        assert!(!enabled());
        let vals: Vec<String> = (0..2000).map(|i| format!("c{}", i % 3)).collect();
        assert!(dict_encode_auto(&Column::from_strings(&vals)).is_none());
        match prior {
            Some(v) => std::env::set_var("LAFP_NO_ENCODE", v),
            None => std::env::remove_var("LAFP_NO_ENCODE"),
        }
        assert!(enabled() || std::env::var("LAFP_NO_ENCODE").is_ok());
    }
}
