//! Internal calibration helper: per-program success/peak at Large.
use lafp_bench::datagen::{ensure_datasets, Size};
use lafp_bench::programs::all;
use lafp_bench::runner::{run_cell, Config, RunKnobs};
fn main() {
    let dir = ensure_datasets(std::path::Path::new("target/lafp-data"), Size::Large).unwrap();
    for p in all() {
        let mut line = format!("{:<5}", p.name);
        for config in [Config::Pandas, Config::Modin, Config::Dask] {
            let r = run_cell(&p, config, &dir, &RunKnobs::default());
            line.push_str(&format!(
                " {}={}({:.0}MB)",
                config.label(),
                if r.ok { "ok " } else { r.error.as_deref().unwrap_or("?") },
                r.peak_memory as f64 / 1e6
            ));
        }
        println!("{line}");
    }
}
