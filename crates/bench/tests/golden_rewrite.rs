//! Golden (snapshot) tests for the static rewriter: every benchmark
//! program in `lafp_bench::programs::all()` is run through
//! `lafp_rewrite::analyze` and the emitted optimized PandaScript is
//! compared byte-for-byte against a checked-in snapshot.
//!
//! This pins the optimizer's observable output — column selection, lazy
//! print injection, forced computes, `pd.analyze()` stripping — without
//! executing any backend, so optimizer regressions surface as a readable
//! text diff rather than a downstream numeric mismatch.
//!
//! To regenerate after an intentional optimizer change:
//!
//! ```text
//! LAFP_UPDATE_SNAPSHOTS=1 cargo test -p lafp-bench --test golden_rewrite
//! ```

use lafp_bench::programs::all;
use lafp_rewrite::{analyze, RewriteOptions};
use std::path::PathBuf;

fn snapshot_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(format!("{name}.optimized.ps"))
}

/// The rewrite configuration the snapshots pin down. No `data_dir`: the
/// rewrite must not depend on generated datasets, so the header
/// intersection and metadata passes run in their dataset-absent mode.
fn options() -> RewriteOptions {
    RewriteOptions {
        data_dir: None,
        ..Default::default()
    }
}

#[test]
fn optimized_sources_match_snapshots() {
    let update = std::env::var_os("LAFP_UPDATE_SNAPSHOTS").is_some();
    let mut mismatches = Vec::new();
    for p in all() {
        let analyzed = analyze(p.source, &options())
            .unwrap_or_else(|e| panic!("{}: rewrite failed: {e:?}", p.name));
        let got = analyzed.optimized_source;
        let path = snapshot_path(p.name);
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &got).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: missing snapshot {} ({e}); run with LAFP_UPDATE_SNAPSHOTS=1",
                p.name,
                path.display()
            )
        });
        if got != want {
            mismatches.push(format!(
                "--- {name} ---\n=== expected ===\n{want}\n=== got ===\n{got}",
                name = p.name
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "optimized output drifted for {} program(s); \
         if intentional, regenerate with LAFP_UPDATE_SNAPSHOTS=1\n\n{}",
        mismatches.len(),
        mismatches.join("\n")
    );
}

#[test]
fn rewrite_is_deterministic() {
    // Two analyses of the same source must emit identical text — the
    // property that makes snapshot testing sound.
    for p in all() {
        let a = analyze(p.source, &options()).unwrap().optimized_source;
        let b = analyze(p.source, &options()).unwrap().optimized_source;
        assert_eq!(a, b, "{}: nondeterministic rewrite output", p.name);
    }
}

#[test]
fn every_program_flushes_lazy_prints() {
    // Structural invariant independent of exact snapshot bytes: with lazy
    // print enabled, every rewritten program ends by flushing.
    for p in all() {
        let analyzed = analyze(p.source, &options()).unwrap();
        assert!(
            analyzed.report.lazy_print,
            "{}: lazy print should be on by default",
            p.name
        );
        assert!(
            analyzed.optimized_source.contains("pd.flush()"),
            "{}: rewritten source must flush pending prints",
            p.name
        );
        assert!(
            !analyzed.optimized_source.contains("pd.analyze()"),
            "{}: bootstrap pd.analyze() call must be stripped",
            p.name
        );
    }
}
