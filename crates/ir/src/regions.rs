//! Region reconstruction: CFG → hierarchical program regions (paper §2.2,
//! following Hecht–Ullman-style structuring of reducible flow graphs), and
//! region → source emission, which closes the IR→Python loop.
//!
//! Regions:
//! * **basic-block region** — the simple statements of one block;
//! * **branch region** — a `Branch` terminator with its two arms, ending at
//!   the branch's immediate postdominator (the join block);
//! * **loop region** — a `LoopBranch` header with its body (back edge to
//!   the header), continuing at the loop exit;
//! * **sequential region** — concatenation of the above.

use crate::ast::{Ast, StmtId, StmtKind};
use crate::cfg::{BlockId, Cfg, Terminator};
use crate::codegen;

/// A node of the region tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Region {
    /// One simple statement.
    Stmt(StmtId),
    /// Two-way branch; `stmt` is the originating `If` (condition source).
    Branch {
        /// The `If` statement carrying the condition.
        stmt: StmtId,
        /// Then-region.
        then: Vec<Region>,
        /// Else-region.
        orelse: Vec<Region>,
    },
    /// Loop; `stmt` is the originating `For` (var + iterable source).
    Loop {
        /// The `For` statement carrying var/iterable.
        stmt: StmtId,
        /// Body region.
        body: Vec<Region>,
    },
}

/// Build the region tree of a CFG produced by [`crate::lower::lower`].
///
/// Works for reducible CFGs whose joins are the immediate postdominators of
/// their branches — which is every CFG our lowering emits. Returns `None`
/// if the graph does not structure (irreducible input).
pub fn build_regions(cfg: &Cfg) -> Option<Vec<Region>> {
    let ipdom = immediate_postdominators(cfg);
    let mut out = Vec::new();
    walk(cfg, &ipdom, cfg.entry, None, &mut out)?;
    Some(out)
}

/// Emit source from a region tree (the final IR→Python step).
pub fn emit_regions(ast: &Ast, regions: &[Region]) -> String {
    let mut out = String::new();
    emit_region_seq(ast, regions, 0, &mut out);
    out
}

fn emit_region_seq(ast: &Ast, regions: &[Region], indent: usize, out: &mut String) {
    if regions.is_empty() {
        out.push_str(&"    ".repeat(indent));
        out.push_str("pass\n");
        return;
    }
    for r in regions {
        match r {
            Region::Stmt(id) => codegen::emit_stmt(ast, *id, indent, out),
            Region::Branch { stmt, then, orelse } => {
                let pad = "    ".repeat(indent);
                if let StmtKind::If { cond, .. } = &ast.stmt(*stmt).kind {
                    out.push_str(&pad);
                    out.push_str("if ");
                    out.push_str(&codegen::emit_expr(cond));
                    out.push_str(":\n");
                    emit_region_seq(ast, then, indent + 1, out);
                    if !orelse.is_empty() {
                        out.push_str(&pad);
                        out.push_str("else:\n");
                        emit_region_seq(ast, orelse, indent + 1, out);
                    }
                }
            }
            Region::Loop { stmt, body } => {
                let pad = "    ".repeat(indent);
                if let StmtKind::For { var, iter, .. } = &ast.stmt(*stmt).kind {
                    out.push_str(&pad);
                    out.push_str("for ");
                    out.push_str(var);
                    out.push_str(" in ");
                    out.push_str(&codegen::emit_expr(iter));
                    out.push_str(":\n");
                    emit_region_seq(ast, body, indent + 1, out);
                }
            }
        }
    }
}

/// Structure blocks from `from` until `stop` (exclusive), appending regions.
fn walk(
    cfg: &Cfg,
    ipdom: &[Option<BlockId>],
    mut from: BlockId,
    stop: Option<BlockId>,
    out: &mut Vec<Region>,
) -> Option<()> {
    loop {
        if Some(from) == stop {
            return Some(());
        }
        let block = &cfg.blocks[from];
        for &s in &block.stmts {
            out.push(Region::Stmt(s));
        }
        match &block.terminator {
            Terminator::End => return Some(()),
            Terminator::Jump(t) => {
                if Some(*t) == stop {
                    return Some(());
                }
                from = *t;
            }
            Terminator::Branch {
                stmt,
                then_blk,
                else_blk,
            } => {
                let join = ipdom[from]?;
                let mut then = Vec::new();
                walk(cfg, ipdom, *then_blk, Some(join), &mut then)?;
                let mut orelse = Vec::new();
                walk(cfg, ipdom, *else_blk, Some(join), &mut orelse)?;
                out.push(Region::Branch {
                    stmt: *stmt,
                    then,
                    orelse,
                });
                if Some(join) == stop {
                    return Some(());
                }
                from = join;
            }
            Terminator::LoopBranch { stmt, body, exit } => {
                let mut body_regions = Vec::new();
                // The body runs until the back edge to this header.
                walk(cfg, ipdom, *body, Some(from), &mut body_regions)?;
                out.push(Region::Loop {
                    stmt: *stmt,
                    body: body_regions,
                });
                if Some(*exit) == stop {
                    return Some(());
                }
                from = *exit;
            }
        }
    }
}

/// Immediate postdominators via the iterative dataflow algorithm on the
/// reversed CFG. Exit blocks (`End` terminator) postdominate themselves.
fn immediate_postdominators(cfg: &Cfg) -> Vec<Option<BlockId>> {
    let n = cfg.blocks.len();
    // postdom sets as bitsets (graphs are tiny).
    let full: Vec<bool> = vec![true; n];
    let mut pdom: Vec<Vec<bool>> = vec![full; n];
    for b in 0..n {
        if matches!(cfg.blocks[b].terminator, Terminator::End) {
            let mut only = vec![false; n];
            only[b] = true;
            pdom[b] = only;
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..n).rev() {
            if matches!(cfg.blocks[b].terminator, Terminator::End) {
                continue;
            }
            let succs = cfg.successors(b);
            if succs.is_empty() {
                continue;
            }
            let mut meet = pdom[succs[0]].clone();
            for &s in &succs[1..] {
                for i in 0..n {
                    meet[i] = meet[i] && pdom[s][i];
                }
            }
            meet[b] = true;
            if meet != pdom[b] {
                pdom[b] = meet;
                changed = true;
            }
        }
    }
    // ipdom(b): the postdominator (≠ b) that is dominated by every other
    // postdominator of b — i.e. the "closest" one.
    (0..n)
        .map(|b| {
            let candidates: Vec<BlockId> =
                (0..n).filter(|&d| d != b && pdom[b][d]).collect();
            candidates
                .iter()
                .copied()
                .find(|&c| candidates.iter().all(|&o| pdom[c][o]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::emit_module;
    use crate::lower::lower;
    use crate::parser::parse;

    /// Region-based emission must agree with AST-based emission: the CFG
    /// and region reconstruction lose nothing.
    fn assert_region_roundtrip(src: &str) {
        let ast = parse(src).unwrap();
        let cfg = lower(&ast);
        let regions = build_regions(&cfg).expect("structured program");
        let via_regions = emit_regions(&ast, &regions);
        let via_ast = emit_module(&ast);
        assert_eq!(via_regions, via_ast, "source:\n{src}");
    }

    #[test]
    fn straight_line() {
        assert_region_roundtrip("x = 1\ny = x\nprint(y)\n");
    }

    #[test]
    fn single_if() {
        assert_region_roundtrip("if x > 0:\n    y = 1\nz = 2\n");
    }

    #[test]
    fn if_else_and_join_code() {
        assert_region_roundtrip(
            "\
a = 1
if x > 0:
    y = 1
else:
    y = 2
z = y
",
        );
    }

    #[test]
    fn elif_chain() {
        assert_region_roundtrip(
            "\
if x > 0:
    y = 1
elif x < 0:
    y = 2
else:
    y = 3
done = 1
",
        );
    }

    #[test]
    fn loops_and_nesting() {
        assert_region_roundtrip(
            "\
total = 0
for i in items:
    if i > 0:
        total = total + i
    else:
        total = total - i
print(total)
",
        );
    }

    #[test]
    fn loop_inside_branch() {
        assert_region_roundtrip(
            "\
if big:
    for f in files:
        df = pd.read_csv(f)
else:
    df = pd.read_csv('small.csv')
print(df)
",
        );
    }

    #[test]
    fn postdominators_of_diamond() {
        let ast = parse("if x > 0:\n    y = 1\nelse:\n    y = 2\nz = 3\n").unwrap();
        let cfg = lower(&ast);
        let ipdom = immediate_postdominators(&cfg);
        // The entry's immediate postdominator is the join block, which
        // contains the statement after the if.
        let join = ipdom[cfg.entry].expect("join exists");
        assert_eq!(cfg.blocks[join].stmts.len(), 1);
    }
}
