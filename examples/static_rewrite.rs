//! Show the JIT static analyzer's source-to-source output for every
//! benchmark program: column selection, lazy print, forced computes and
//! metadata category dtypes (paper §3).

use lafp_bench::datagen::{compute_all_metadata, ensure_datasets, Size};
use lafp_bench::programs;
use lafp::rewrite::{analyze, RewriteOptions};

fn main() {
    let dir = ensure_datasets(std::path::Path::new("target/lafp-data"), Size::Small)
        .expect("dataset generation");
    compute_all_metadata(&dir).expect("metadata scan");
    let only: Option<String> = std::env::args().nth(1);
    for p in programs::all() {
        if only.as_deref().is_some_and(|o| o != p.name) {
            continue;
        }
        let analyzed = analyze(
            p.source,
            &RewriteOptions {
                data_dir: Some(dir.clone()),
                ..Default::default()
            },
        )
        .expect("analysis");
        println!("==================== {} ====================", p.name);
        println!("{}", analyzed.optimized_source);
        println!(
            "[{:.2} ms; usecols: {:?}; forced computes: {}; categories: {:?}]\n",
            analyzed.report.duration.as_secs_f64() * 1e3,
            analyzed.report.usecols,
            analyzed.report.forced_computes.len(),
            analyzed.report.categories,
        );
    }
}
