//! The logical operators of the LaFP task graph and the per-operator facts
//! (`used_attrs` / `mod_attrs`, pushdown safety) the optimizer consumes.

use lafp_columnar::csv::CsvOptions;
use lafp_columnar::groupby::GroupBySpec;
use lafp_columnar::join::JoinKind;
use lafp_columnar::sort::SortOptions;
use lafp_columnar::{AggKind, DataFrame, Scalar};
use lafp_expr::Expr;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

/// One piece of a (possibly deferred f-string) print template.
///
/// The paper defers f-string dataframe slots by replacing the variable with
/// "the unique ID of the task graph node ... along with an escape sequence"
/// (§3.3). Here the escape sequence is structural: a [`PrintPiece::Value`]
/// holds an index into the print node's inputs, which are node ids.
#[derive(Debug, Clone, PartialEq)]
pub enum PrintPiece {
    /// Literal text.
    Text(String),
    /// The rendered value of the print node's n-th input.
    Value(usize),
}

/// A logical operator in the LaFP task graph.
#[derive(Debug, Clone)]
pub enum LogicalOp {
    /// Read a CSV dataset lazily.
    ReadCsv {
        /// Source path.
        path: PathBuf,
        /// Scan options (projection from static column selection, dtypes
        /// from the metastore, parse_dates).
        options: CsvOptions,
    },
    /// Wrap an already-materialized frame.
    FromFrame(Arc<DataFrame>),
    /// Row filter `df[pred]`.
    Filter(Expr),
    /// Computed column `df[name] = expr`.
    WithColumn(String, Expr),
    /// Projection `df[[cols]]`.
    Select(Vec<String>),
    /// `df.drop(columns=...)`.
    DropColumns(Vec<String>),
    /// `df.rename(columns={old: new})`.
    Rename(Vec<(String, String)>),
    /// Frame-wide `df.fillna(value)`.
    FillNa(Scalar),
    /// `df.drop_duplicates(subset)` (empty = all columns).
    DropDuplicates(Vec<String>),
    /// `df.groupby(keys)[value].agg()`.
    GroupByAgg(GroupBySpec),
    /// `left.merge(right, on, how)` — two inputs.
    Merge {
        /// Join keys.
        on: Vec<String>,
        /// Join kind.
        how: JoinKind,
    },
    /// `df.sort_values(...)`.
    Sort(SortOptions),
    /// `df.head(n)`.
    Head(usize),
    /// `df.tail(n)`.
    Tail(usize),
    /// `df.describe()`.
    Describe,
    /// Vertical concat — two inputs.
    Concat,
    /// Scalar reduction `df[col].agg()`.
    Reduce {
        /// Reduced column.
        column: String,
        /// Aggregate.
        agg: AggKind,
    },
    /// Lazy `len(df)`.
    Len,
    /// Lazy print (§3.3): renders `template` from its inputs' values.
    Print(Vec<PrintPiece>),
}

/// Result of evaluating a task-graph node.
#[derive(Debug, Clone)]
pub enum Value {
    /// A frame (shared so persisted results are cheap to hand out).
    Frame(Arc<DataFrame>),
    /// A scalar.
    Scalar(Scalar),
    /// Side-effect-only nodes (print).
    None,
}

impl Value {
    /// Borrow the frame, if this is one.
    pub fn as_frame(&self) -> Option<&Arc<DataFrame>> {
        match self {
            Value::Frame(f) => Some(f),
            _ => None,
        }
    }

    /// Borrow the scalar, if this is one.
    pub fn as_scalar(&self) -> Option<&Scalar> {
        match self {
            Value::Scalar(s) => Some(s),
            _ => None,
        }
    }
}

impl LogicalOp {
    /// Does this node produce a frame (vs a scalar or nothing)?
    pub fn is_frame_valued(&self) -> bool {
        !matches!(
            self,
            LogicalOp::Reduce { .. } | LogicalOp::Len | LogicalOp::Print(_)
        )
    }

    /// Attributes this operator reads from its input — the paper's
    /// `used_attrs(u)` (§3.2). `None` means "all/unknown".
    pub fn used_attrs(&self) -> Option<BTreeSet<String>> {
        match self {
            LogicalOp::Filter(e) => Some(e.used_columns()),
            LogicalOp::WithColumn(_, e) => Some(e.used_columns()),
            LogicalOp::Select(cols) => Some(cols.iter().cloned().collect()),
            LogicalOp::GroupByAgg(spec) => {
                let mut s: BTreeSet<String> = spec.keys.iter().cloned().collect();
                s.insert(spec.value.clone());
                Some(s)
            }
            LogicalOp::Reduce { column, .. } => Some([column.clone()].into_iter().collect()),
            LogicalOp::Sort(opts) => Some(opts.by.iter().cloned().collect()),
            LogicalOp::Merge { on, .. } => Some(on.iter().cloned().collect()),
            LogicalOp::DropDuplicates(subset) if !subset.is_empty() => {
                Some(subset.iter().cloned().collect())
            }
            _ => None,
        }
    }

    /// Attributes this operator modifies or computes — the paper's
    /// `mod_attrs(u)` (§3.2). `None` means "all/unknown" (conservative).
    pub fn mod_attrs(&self) -> Option<BTreeSet<String>> {
        match self {
            LogicalOp::WithColumn(name, _) => Some([name.clone()].into_iter().collect()),
            LogicalOp::Filter(_)
            | LogicalOp::Select(_)
            | LogicalOp::DropColumns(_)
            | LogicalOp::Sort(_)
            | LogicalOp::DropDuplicates(_)
            | LogicalOp::Head(_)
            | LogicalOp::Tail(_) => Some(BTreeSet::new()),
            // Rename handled specially (substitution), FillNa may modify
            // any column holding nulls, aggregates recompute everything.
            _ => None,
        }
    }

    /// Can a filter with `used` attributes be swapped below this operator
    /// without changing program semantics? Implements §3.2's conditions
    /// (1) `mod_attrs(u) ∩ used_attrs(f) = ∅` and (2) row-wise value
    /// stability, per operator:
    ///
    /// * `WithColumn` — pushable when the predicate doesn't read the
    ///   computed column.
    /// * `Select` / `DropColumns` — pushable when the predicate's columns
    ///   still exist below.
    /// * `Rename` — pushable with name substitution (see
    ///   [`LogicalOp::rename_substitution`]).
    /// * `Sort` — filters commute with reordering.
    /// * `DropDuplicates` — only when the predicate reads key columns
    ///   only (duplicate rows then agree on the predicate), or the subset
    ///   is all columns.
    /// * `Head`/`Tail` select rows positionally — never pushable.
    /// * `Merge`, `GroupByAgg`, `Concat`, `FillNa`, `Describe`, scans —
    ///   not pushable (row counts / values change, per the paper).
    pub fn filter_can_push_below(&self, used: &BTreeSet<String>) -> bool {
        match self {
            LogicalOp::WithColumn(name, _) => !used.contains(name),
            LogicalOp::Select(cols) => used.iter().all(|u| cols.contains(u)),
            LogicalOp::DropColumns(_) => true, // dropped cols can't be used above
            LogicalOp::Rename(_) => true,      // with substitution
            LogicalOp::Sort(_) => true,
            LogicalOp::DropDuplicates(subset) => {
                subset.is_empty() || used.iter().all(|u| subset.contains(u))
            }
            _ => false,
        }
    }

    /// For pushing a predicate below a `Rename`: maps post-rename names
    /// back to pre-rename names.
    pub fn rename_substitution(&self, col: &str) -> Option<String> {
        match self {
            LogicalOp::Rename(mapping) => mapping
                .iter()
                .find(|(_, new)| new == col)
                .map(|(old, _)| old.clone()),
            _ => None,
        }
    }

    /// Structural fingerprint for common-subexpression detection: two ops
    /// with equal fingerprints and identical inputs compute the same value.
    /// `FromFrame` hashes by pointer identity; `Print` is never merged
    /// (side effects) and fingerprints uniquely by a counter the graph
    /// provides, so this function is only called for the other ops.
    pub fn fingerprint(&self) -> u64 {
        let mix = |h: u64, v: u64| (h ^ v).wrapping_mul(0x100000001b3);
        let mix_str = |mut h: u64, s: &str| {
            for b in s.as_bytes() {
                h = mix(h, *b as u64);
            }
            mix(h, 0xFF)
        };
        let mut h: u64 = 0xcbf29ce484222325;
        match self {
            LogicalOp::ReadCsv { path, options } => {
                h = mix(h, 1);
                h = mix_str(h, &path.display().to_string());
                h = mix_str(h, &format!("{options:?}"));
            }
            LogicalOp::FromFrame(frame) => {
                h = mix(h, 2);
                h = mix(h, Arc::as_ptr(frame) as u64);
            }
            LogicalOp::Filter(e) => {
                h = mix(h, 3);
                h = mix(h, e.fingerprint());
            }
            LogicalOp::WithColumn(name, e) => {
                h = mix(h, 4);
                h = mix_str(h, name);
                h = mix(h, e.fingerprint());
            }
            LogicalOp::Select(cols) => {
                h = mix(h, 5);
                for c in cols {
                    h = mix_str(h, c);
                }
            }
            LogicalOp::DropColumns(cols) => {
                h = mix(h, 6);
                for c in cols {
                    h = mix_str(h, c);
                }
            }
            LogicalOp::Rename(mapping) => {
                h = mix(h, 7);
                for (a, b) in mapping {
                    h = mix_str(h, a);
                    h = mix_str(h, b);
                }
            }
            LogicalOp::FillNa(v) => {
                h = mix(h, 8);
                h = mix_str(h, &format!("{v:?}"));
            }
            LogicalOp::DropDuplicates(subset) => {
                h = mix(h, 9);
                for c in subset {
                    h = mix_str(h, c);
                }
            }
            LogicalOp::GroupByAgg(spec) => {
                h = mix(h, 10);
                h = mix_str(h, &format!("{spec:?}"));
            }
            LogicalOp::Merge { on, how } => {
                h = mix(h, 11);
                for c in on {
                    h = mix_str(h, c);
                }
                h = mix_str(h, how.name());
            }
            LogicalOp::Sort(opts) => {
                h = mix(h, 12);
                h = mix_str(h, &format!("{opts:?}"));
            }
            LogicalOp::Head(n) => {
                h = mix(h, 13);
                h = mix(h, *n as u64);
            }
            LogicalOp::Tail(n) => {
                h = mix(h, 14);
                h = mix(h, *n as u64);
            }
            LogicalOp::Describe => h = mix(h, 15),
            LogicalOp::Concat => h = mix(h, 16),
            LogicalOp::Reduce { column, agg } => {
                h = mix(h, 17);
                h = mix_str(h, column);
                h = mix_str(h, agg.name());
            }
            LogicalOp::Len => h = mix(h, 18),
            LogicalOp::Print(pieces) => {
                h = mix(h, 19);
                h = mix_str(h, &format!("{pieces:?}"));
            }
        }
        h
    }

    /// Short operator name for plan rendering (Figure-6-style output).
    pub fn label(&self) -> String {
        match self {
            LogicalOp::ReadCsv { path, options } => {
                let cols = options
                    .usecols
                    .as_ref()
                    .map(|c| format!(" usecols={c:?}"))
                    .unwrap_or_default();
                format!(
                    "read_csv {}{}",
                    path.file_name()
                        .map(|f| f.to_string_lossy().to_string())
                        .unwrap_or_else(|| path.display().to_string()),
                    cols
                )
            }
            LogicalOp::FromFrame(_) => "from_frame".into(),
            LogicalOp::Filter(e) => format!("filter {e}"),
            LogicalOp::WithColumn(name, e) => format!("set_item {name} = {e}"),
            LogicalOp::Select(cols) => format!("get_item {cols:?}"),
            LogicalOp::DropColumns(cols) => format!("drop {cols:?}"),
            LogicalOp::Rename(m) => format!("rename {m:?}"),
            LogicalOp::FillNa(v) => format!("fillna {v}"),
            LogicalOp::DropDuplicates(s) => format!("drop_duplicates {s:?}"),
            LogicalOp::GroupByAgg(spec) => format!(
                "groupby {:?} [{}] {}",
                spec.keys,
                spec.value,
                spec.agg.name()
            ),
            LogicalOp::Merge { on, how } => format!("merge on={on:?} how={}", how.name()),
            LogicalOp::Sort(opts) => format!("sort_values {:?}", opts.by),
            LogicalOp::Head(n) => format!("head {n}"),
            LogicalOp::Tail(n) => format!("tail {n}"),
            LogicalOp::Describe => "describe".into(),
            LogicalOp::Concat => "concat".into(),
            LogicalOp::Reduce { column, agg } => format!("{}({column})", agg.name()),
            LogicalOp::Len => "len".into(),
            LogicalOp::Print(_) => "print".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lafp_columnar::column::CmpOp;

    fn pred(col: &str) -> BTreeSet<String> {
        [col.to_string()].into_iter().collect()
    }

    #[test]
    fn with_column_pushdown_rules() {
        let op = LogicalOp::WithColumn(
            "day".into(),
            Expr::col("ts").dt(lafp_columnar::column::DtField::DayOfWeek),
        );
        assert!(op.filter_can_push_below(&pred("fare")));
        assert!(!op.filter_can_push_below(&pred("day")));
    }

    #[test]
    fn select_pushdown_requires_columns_below() {
        let op = LogicalOp::Select(vec!["a".into(), "b".into()]);
        assert!(op.filter_can_push_below(&pred("a")));
        assert!(!op.filter_can_push_below(&pred("z")));
    }

    #[test]
    fn sort_and_rename_pushable_merge_not() {
        assert!(LogicalOp::Sort(SortOptions::single("x", true))
            .filter_can_push_below(&pred("x")));
        assert!(LogicalOp::Rename(vec![("a".into(), "b".into())])
            .filter_can_push_below(&pred("b")));
        let merge = LogicalOp::Merge {
            on: vec!["k".into()],
            how: JoinKind::Inner,
        };
        assert!(!merge.filter_can_push_below(&pred("k")));
        assert!(!LogicalOp::Head(5).filter_can_push_below(&pred("x")));
        assert!(!LogicalOp::FillNa(Scalar::Int(0)).filter_can_push_below(&pred("x")));
    }

    #[test]
    fn dedup_pushdown_needs_key_only_predicates() {
        let op = LogicalOp::DropDuplicates(vec!["k".into()]);
        assert!(op.filter_can_push_below(&pred("k")));
        assert!(!op.filter_can_push_below(&pred("v")));
        // full-row dedup: always safe
        assert!(LogicalOp::DropDuplicates(vec![]).filter_can_push_below(&pred("v")));
    }

    #[test]
    fn rename_substitution_maps_new_to_old() {
        let op = LogicalOp::Rename(vec![("old".into(), "new".into())]);
        assert_eq!(op.rename_substitution("new"), Some("old".into()));
        assert_eq!(op.rename_substitution("other"), None);
    }

    #[test]
    fn fingerprints_distinguish_ops() {
        let a = LogicalOp::Filter(Expr::col("x").cmp(CmpOp::Gt, Expr::lit_int(0)));
        let b = LogicalOp::Filter(Expr::col("x").cmp(CmpOp::Gt, Expr::lit_int(0)));
        let c = LogicalOp::Filter(Expr::col("x").cmp(CmpOp::Ge, Expr::lit_int(0)));
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(LogicalOp::Len.fingerprint(), LogicalOp::Describe.fingerprint());
    }

    #[test]
    fn used_and_mod_attrs() {
        let op = LogicalOp::GroupByAgg(GroupBySpec {
            keys: vec!["day".into()],
            value: "fare".into(),
            agg: AggKind::Sum,
        });
        let used = op.used_attrs().unwrap();
        assert!(used.contains("day") && used.contains("fare"));
        assert!(op.mod_attrs().is_none(), "aggregates recompute everything");
        let wc = LogicalOp::WithColumn("d".into(), Expr::col("x"));
        assert_eq!(wc.mod_attrs().unwrap().len(), 1);
    }

    #[test]
    fn labels_are_compact() {
        let op = LogicalOp::Head(5);
        assert_eq!(op.label(), "head 5");
        assert!(!LogicalOp::Len.is_frame_valued());
        assert!(LogicalOp::Describe.is_frame_valued());
    }
}
