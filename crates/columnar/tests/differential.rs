//! Differential property tests: every vectorized kernel must produce
//! results identical to a naive `Scalar`-per-row reference implementation
//! (the seed-era algorithms), including null-handling edge cases. The
//! vectorization overhaul is only allowed to change the *cost* of a
//! kernel, never its result.

use lafp_columnar::column::{ArithOp, CmpOp, ColumnBuilder};
use lafp_columnar::groupby::{group_by, GroupBySpec};
use lafp_columnar::{AggKind, Bitmap, Column, DType, DataFrame, Scalar, Series};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Input builders (values + null mask, zipped to the shorter length)
// ---------------------------------------------------------------------------

fn col_i64(vals: &[i64], nulls: &[bool]) -> Column {
    let n = vals.len().min(nulls.len());
    Column::from_opt_i64((0..n).map(|i| (!nulls[i]).then(|| vals[i])).collect())
}

fn col_f64(vals: &[f64], nulls: &[bool]) -> Column {
    let n = vals.len().min(nulls.len());
    Column::from_opt_f64((0..n).map(|i| (!nulls[i]).then(|| vals[i])).collect())
}

fn col_str(vals: &[String], nulls: &[bool]) -> Column {
    let n = vals.len().min(nulls.len());
    Column::from_opt_strings((0..n).map(|i| (!nulls[i]).then(|| vals[i].clone())).collect())
}

/// Representation-agnostic equivalence: same length, dtype, and per-row
/// scalars (nulls equal nulls; NaN is null).
fn assert_col_equiv(actual: &Column, expected: &Column) {
    assert_eq!(actual.len(), expected.len(), "length");
    assert_eq!(actual.dtype(), expected.dtype(), "dtype");
    for i in 0..actual.len() {
        let (a, e) = (actual.get(i), expected.get(i));
        match (a.is_null(), e.is_null()) {
            (true, true) => {}
            (false, false) => assert_eq!(a, e, "row {i}"),
            _ => panic!("row {i}: null mismatch: {a:?} vs {e:?}"),
        }
    }
}

fn assert_frame_equiv(actual: &DataFrame, expected: &DataFrame) {
    assert_eq!(actual.num_columns(), expected.num_columns());
    for (a, e) in actual.series().iter().zip(expected.series()) {
        assert_eq!(a.name(), e.name());
        assert_col_equiv(a.column(), e.column());
    }
}

// ---------------------------------------------------------------------------
// Naive Scalar-per-row references (the seed-era algorithms)
// ---------------------------------------------------------------------------

fn arith_ref(left: &Column, op: ArithOp, right: &Column) -> Column {
    let len = left.len();
    let both_int = left.dtype() == DType::Int64 && right.dtype() == DType::Int64;
    if both_int && op != ArithOp::Div {
        let mut out = Vec::new();
        let mut validity = Bitmap::new(len, true);
        let mut has_null = false;
        for i in 0..len {
            let (a, b) = (left.get(i), right.get(i));
            match (a.as_i64(), b.as_i64()) {
                (Some(x), Some(y)) if !(op == ArithOp::Mod && y == 0) => out.push(match op {
                    ArithOp::Add => x.wrapping_add(y),
                    ArithOp::Sub => x.wrapping_sub(y),
                    ArithOp::Mul => x.wrapping_mul(y),
                    ArithOp::Mod => x.rem_euclid(y),
                    ArithOp::Div => unreachable!(),
                }),
                _ => {
                    out.push(0);
                    validity.set(i, false);
                    has_null = true;
                }
            }
        }
        return Column::Int64(out, has_null.then_some(validity));
    }
    let mut out = Vec::new();
    for i in 0..len {
        let (a, b) = (left.get(i), right.get(i));
        out.push(match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => match op {
                ArithOp::Add => x + y,
                ArithOp::Sub => x - y,
                ArithOp::Mul => x * y,
                ArithOp::Div => x / y,
                ArithOp::Mod => x.rem_euclid(y),
            },
            _ => f64::NAN,
        });
    }
    Column::Float64(out, None)
}

fn compare_ref(left: &Column, op: CmpOp, right: &Column) -> Bitmap {
    Bitmap::from_iter((0..left.len()).map(|i| {
        let (a, b) = (left.get(i), right.get(i));
        if a.is_null() || b.is_null() {
            op == CmpOp::Ne
        } else {
            let ord = a.cmp_values(&b);
            match op {
                CmpOp::Eq => ord.is_eq(),
                CmpOp::Ne => !ord.is_eq(),
                CmpOp::Lt => ord.is_lt(),
                CmpOp::Le => !ord.is_gt(),
                CmpOp::Gt => ord.is_gt(),
                CmpOp::Ge => !ord.is_lt(),
            }
        }
    }))
}

fn fillna_ref(col: &Column, fill: &Scalar) -> Column {
    let mut b = ColumnBuilder::new(col.dtype());
    for i in 0..col.len() {
        if col.is_null_at(i) {
            b.push_scalar(fill).unwrap();
        } else {
            b.push_scalar(&col.get(i)).unwrap();
        }
    }
    b.finish()
}

fn cast_ref(col: &Column, target: DType) -> Option<Column> {
    let mut b = ColumnBuilder::new(target);
    for i in 0..col.len() {
        match col.get(i) {
            Scalar::Null => b.push_null(),
            s => b.push_scalar(&s).ok()?,
        }
    }
    Some(b.finish())
}

fn slice_ref(col: &Column, offset: usize, len: usize) -> Column {
    let end = (offset + len).min(col.len());
    let idx: Vec<usize> = (offset.min(col.len())..end).collect();
    col.take(&idx).unwrap()
}

fn group_by_ref(frame: &DataFrame, spec: &GroupBySpec) -> DataFrame {
    use std::collections::HashMap;
    #[derive(Clone, Default)]
    struct State {
        sum: f64,
        int_sum: i64,
        count: u64,
        min: Option<Scalar>,
        max: Option<Scalar>,
        distinct: std::collections::HashSet<String>,
    }
    let canon = |key: &[Scalar]| {
        key.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("\u{1}")
    };
    let key_cols: Vec<&Series> = spec.keys.iter().map(|k| frame.column(k).unwrap()).collect();
    let value_col = frame.column(&spec.value).unwrap();
    let value_is_int =
        matches!(value_col.column().dtype(), DType::Int64 | DType::Bool);
    let mut groups: HashMap<String, State> = HashMap::new();
    let mut key_order: Vec<Vec<Scalar>> = Vec::new();
    for i in 0..frame.num_rows() {
        let key: Vec<Scalar> = key_cols.iter().map(|s| s.get(i)).collect();
        let state = match groups.entry(canon(&key)) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                key_order.push(key);
                e.insert(State::default())
            }
        };
        let v = value_col.get(i);
        if v.is_null() {
            continue;
        }
        state.count += 1;
        if let Some(x) = v.as_f64() {
            state.sum += x;
        }
        if let Some(x) = v.as_i64() {
            state.int_sum = state.int_sum.wrapping_add(x);
        }
        if state.min.as_ref().is_none_or(|m| v.cmp_values(m).is_lt()) {
            state.min = Some(v.clone());
        }
        if state.max.as_ref().is_none_or(|m| v.cmp_values(m).is_gt()) {
            state.max = Some(v.clone());
        }
        state.distinct.insert(v.to_string());
    }
    key_order.sort_by_cached_key(|k| canon(k));
    let mut key_builders: Vec<ColumnBuilder> = (0..spec.keys.len())
        .map(|k| {
            ColumnBuilder::new(
                key_order
                    .iter()
                    .find_map(|key| key[k].dtype())
                    .unwrap_or(DType::Utf8),
            )
        })
        .collect();
    let mut values = Vec::new();
    for key in &key_order {
        for (k, b) in key_builders.iter_mut().enumerate() {
            b.push_scalar(&key[k]).unwrap();
        }
        let s = &groups[&canon(key)];
        values.push(match spec.agg {
            AggKind::Sum if s.count == 0 => Scalar::Null,
            AggKind::Sum if value_is_int => Scalar::Int(s.int_sum),
            AggKind::Sum => Scalar::Float(s.sum),
            AggKind::Mean if s.count == 0 => Scalar::Null,
            AggKind::Mean => Scalar::Float(s.sum / s.count as f64),
            AggKind::Count => Scalar::Int(s.count as i64),
            AggKind::Min => s.min.clone().unwrap_or(Scalar::Null),
            AggKind::Max => s.max.clone().unwrap_or(Scalar::Null),
            AggKind::NUnique => Scalar::Int(s.distinct.len() as i64),
        });
    }
    let out_dtype = values
        .iter()
        .find_map(Scalar::dtype)
        .unwrap_or(DType::Float64);
    let mut vb = ColumnBuilder::new(out_dtype);
    for v in &values {
        vb.push_scalar(v).unwrap();
    }
    let mut series = Vec::new();
    for (k, b) in key_builders.into_iter().enumerate() {
        series.push(Series::new(spec.keys[k].clone(), b.finish()));
    }
    series.push(Series::new(spec.value.clone(), vb.finish()));
    DataFrame::new(series).unwrap()
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

const OPS: [ArithOp; 5] = [
    ArithOp::Add,
    ArithOp::Sub,
    ArithOp::Mul,
    ArithOp::Div,
    ArithOp::Mod,
];

const CMPS: [CmpOp; 6] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];

proptest! {
    #[test]
    fn arith_i64_matches_reference(
        a in prop::collection::vec(-40i64..40, 0..90),
        b in prop::collection::vec(-40i64..40, 0..90),
        na in prop::collection::vec(any::<bool>(), 0..90),
        nb in prop::collection::vec(any::<bool>(), 0..90),
    ) {
        let n = a.len().min(b.len()).min(na.len()).min(nb.len());
        let left = col_i64(&a[..n], &na[..n]);
        let right = col_i64(&b[..n], &nb[..n]);
        for op in OPS {
            assert_col_equiv(&left.arith(op, &right).unwrap(), &arith_ref(&left, op, &right));
        }
    }

    #[test]
    fn arith_f64_matches_reference(
        a in prop::collection::vec(-100.0f64..100.0, 0..90),
        b in prop::collection::vec(-100.0f64..100.0, 0..90),
        na in prop::collection::vec(any::<bool>(), 0..90),
        nb in prop::collection::vec(any::<bool>(), 0..90),
    ) {
        let n = a.len().min(b.len()).min(na.len()).min(nb.len());
        let left = col_f64(&a[..n], &na[..n]);
        let right = col_f64(&b[..n], &nb[..n]);
        for op in OPS {
            assert_col_equiv(&left.arith(op, &right).unwrap(), &arith_ref(&left, op, &right));
        }
    }

    #[test]
    fn arith_mixed_matches_reference(
        a in prop::collection::vec(-40i64..40, 1..90),
        b in prop::collection::vec(-100.0f64..100.0, 1..90),
        na in prop::collection::vec(any::<bool>(), 1..90),
        nb in prop::collection::vec(any::<bool>(), 1..90),
    ) {
        let n = a.len().min(b.len()).min(na.len()).min(nb.len());
        let left = col_i64(&a[..n], &na[..n]);
        let right = col_f64(&b[..n], &nb[..n]);
        for op in OPS {
            assert_col_equiv(&left.arith(op, &right).unwrap(), &arith_ref(&left, op, &right));
            assert_col_equiv(&right.arith(op, &left).unwrap(), &arith_ref(&right, op, &left));
        }
    }

    #[test]
    fn compare_matches_reference(
        a in prop::collection::vec(-20i64..20, 0..90),
        b in prop::collection::vec(-20i64..20, 0..90),
        f in prop::collection::vec(-20.0f64..20.0, 0..90),
        na in prop::collection::vec(any::<bool>(), 0..90),
        nb in prop::collection::vec(any::<bool>(), 0..90),
    ) {
        let n = a.len().min(b.len()).min(f.len()).min(na.len()).min(nb.len());
        let ints_a = col_i64(&a[..n], &na[..n]);
        let ints_b = col_i64(&b[..n], &nb[..n]);
        let floats = col_f64(&f[..n], &nb[..n]);
        for op in CMPS {
            assert_eq!(ints_a.compare(op, &ints_b).unwrap(), compare_ref(&ints_a, op, &ints_b));
            assert_eq!(ints_a.compare(op, &floats).unwrap(), compare_ref(&ints_a, op, &floats));
            assert_eq!(floats.compare(op, &ints_b).unwrap(), compare_ref(&floats, op, &ints_b));
        }
    }

    #[test]
    fn compare_strings_matches_reference(
        a in prop::collection::vec("[abc]{0,3}", 0..60),
        b in prop::collection::vec("[abc]{0,3}", 0..60),
        na in prop::collection::vec(any::<bool>(), 0..60),
        nb in prop::collection::vec(any::<bool>(), 0..60),
    ) {
        let n = a.len().min(b.len()).min(na.len()).min(nb.len());
        let left = col_str(&a[..n], &na[..n]);
        let right = col_str(&b[..n], &nb[..n]);
        for op in CMPS {
            assert_eq!(left.compare(op, &right).unwrap(), compare_ref(&left, op, &right));
        }
    }

    #[test]
    fn fillna_matches_reference(
        a in prop::collection::vec(-40i64..40, 0..90),
        f in prop::collection::vec(-40.0f64..40.0, 0..90),
        na in prop::collection::vec(any::<bool>(), 0..90),
        fill in -10i64..10,
    ) {
        let n = a.len().min(f.len()).min(na.len());
        let ints = col_i64(&a[..n], &na[..n]);
        let floats = col_f64(&f[..n], &na[..n]);
        assert_col_equiv(
            &ints.fillna(&Scalar::Int(fill)).unwrap(),
            &fillna_ref(&ints, &Scalar::Int(fill)),
        );
        assert_col_equiv(
            &floats.fillna(&Scalar::Float(fill as f64)).unwrap(),
            &fillna_ref(&floats, &Scalar::Float(fill as f64)),
        );
        // Cross-dtype fill coerces like the builder did.
        assert_col_equiv(
            &floats.fillna(&Scalar::Int(fill)).unwrap(),
            &fillna_ref(&floats, &Scalar::Int(fill)),
        );
        // Null fill keeps nulls.
        assert_col_equiv(
            &ints.fillna(&Scalar::Null).unwrap(),
            &fillna_ref(&ints, &Scalar::Null),
        );
    }

    #[test]
    fn cast_matches_reference(
        a in prop::collection::vec(-40i64..40, 0..90),
        f in prop::collection::vec(-40.0f64..40.0, 0..90),
        na in prop::collection::vec(any::<bool>(), 0..90),
    ) {
        let n = a.len().min(f.len()).min(na.len());
        let ints = col_i64(&a[..n], &na[..n]);
        let floats = col_f64(&f[..n], &na[..n]);
        for (col, target) in [
            (&ints, DType::Float64),
            (&ints, DType::Utf8),
            (&ints, DType::Datetime),
            (&floats, DType::Int64),
            (&floats, DType::Utf8),
        ] {
            let expected = cast_ref(col, target).unwrap();
            assert_col_equiv(&col.cast(target).unwrap(), &expected);
        }
        // String round-trip: Utf8 -> Int64 parse.
        let strs = ints.cast(DType::Utf8).unwrap();
        assert_col_equiv(
            &strs.cast(DType::Int64).unwrap(),
            &cast_ref(&strs, DType::Int64).unwrap(),
        );
    }

    #[test]
    fn slice_matches_reference(
        a in prop::collection::vec(-40i64..40, 0..90),
        s in prop::collection::vec("[xy]{0,2}", 0..90),
        na in prop::collection::vec(any::<bool>(), 0..90),
        offset in 0usize..100,
        len in 0usize..100,
    ) {
        let n = a.len().min(s.len()).min(na.len());
        let ints = col_i64(&a[..n], &na[..n]);
        let strs = col_str(&s[..n], &na[..n]);
        assert_col_equiv(&ints.slice(offset, len), &slice_ref(&ints, offset, len));
        assert_col_equiv(&strs.slice(offset, len), &slice_ref(&strs, offset, len));
    }

    #[test]
    fn groupby_matches_reference(
        keys in prop::collection::vec(0i64..6, 1..120),
        skeys in prop::collection::vec("[ab]{1,2}", 1..120),
        vals in prop::collection::vec(-30i64..30, 1..120),
        nk in prop::collection::vec(any::<bool>(), 1..120),
        nv in prop::collection::vec(any::<bool>(), 1..120),
    ) {
        let n = keys.len().min(skeys.len()).min(vals.len()).min(nk.len()).min(nv.len());
        let frame = DataFrame::new(vec![
            Series::new("k", col_i64(&keys[..n], &nk[..n])),
            Series::new("s", col_str(&skeys[..n], &nk[..n])),
            Series::new("v", col_i64(&vals[..n], &nv[..n])),
        ])
        .unwrap();
        for agg in [
            AggKind::Sum,
            AggKind::Mean,
            AggKind::Count,
            AggKind::Min,
            AggKind::Max,
            AggKind::NUnique,
        ] {
            for keyset in [vec!["k".to_string()], vec!["s".into(), "k".into()]] {
                let spec = GroupBySpec {
                    keys: keyset,
                    value: "v".into(),
                    agg,
                };
                assert_frame_equiv(&group_by(&frame, &spec).unwrap(), &group_by_ref(&frame, &spec));
            }
        }
    }

    #[test]
    fn groupby_streaming_and_merge_match_oneshot(
        keys in prop::collection::vec(0i64..5, 1..100),
        quarters in prop::collection::vec(-120i64..120, 1..100),
        nv in prop::collection::vec(any::<bool>(), 1..100),
        split in 0usize..100,
    ) {
        use lafp_columnar::groupby::GroupByAccumulator;
        // Dyadic values (multiples of 0.25): float addition over them is
        // exact at these magnitudes, so merge order cannot perturb sums
        // (plain reals would make merge-vs-oneshot equality too strict —
        // the seed accumulator was order-sensitive the same way).
        let vals: Vec<f64> = quarters.iter().map(|&q| q as f64 / 4.0).collect();
        let n = keys.len().min(vals.len()).min(nv.len());
        let frame = DataFrame::new(vec![
            Series::new("k", col_i64(&keys[..n], &[false].repeat(n))),
            Series::new("v", col_f64(&vals[..n], &nv[..n])),
        ])
        .unwrap();
        let split = split.min(n);
        for agg in [AggKind::Sum, AggKind::Mean, AggKind::Min, AggKind::NUnique] {
            let spec = GroupBySpec { keys: vec!["k".into()], value: "v".into(), agg };
            let whole = group_by(&frame, &spec).unwrap();
            // Streaming chunks.
            let mut acc = GroupByAccumulator::new(spec.clone());
            acc.update(&frame.slice(0, split)).unwrap();
            acc.update(&frame.slice(split, n - split)).unwrap();
            assert_frame_equiv(&acc.finish().unwrap(), &whole);
            // Parallel merge.
            let mut left = GroupByAccumulator::new(spec.clone());
            left.update(&frame.slice(0, split)).unwrap();
            let mut right = GroupByAccumulator::new(spec);
            right.update(&frame.slice(split, n - split)).unwrap();
            left.merge(&right);
            assert_frame_equiv(&left.finish().unwrap(), &whole);
        }
    }
}
