//! Figure/table generators: each function regenerates one artifact of §5
//! and returns it as printable text (the harness binary writes them out).

use crate::datagen::{compute_all_metadata, ensure_datasets, Size};
use crate::programs::{all, program};
use crate::runner::{run_cell, Config, RunKnobs, RunResult};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Results of a full sweep: (program, config, size) → result.
pub type Sweep = HashMap<(String, Config, Size), RunResult>;

/// Prepare data for all sizes; returns size → data dir.
pub fn prepare_data(root: &Path) -> std::io::Result<HashMap<Size, PathBuf>> {
    let mut dirs = HashMap::new();
    for size in Size::ALL {
        let dir = ensure_datasets(root, size)?;
        // The paper computes metadata as a background task, outside the
        // measured region.
        compute_all_metadata(&dir).map_err(std::io::Error::other)?;
        dirs.insert(size, dir);
    }
    Ok(dirs)
}

/// Run the full 10 × 6 × |sizes| sweep.
pub fn run_sweep(dirs: &HashMap<Size, PathBuf>, sizes: &[Size]) -> Sweep {
    let mut sweep = Sweep::new();
    for size in sizes {
        let dir = &dirs[size];
        for p in all() {
            for config in Config::ALL {
                let result = run_cell(&p, config, dir, &RunKnobs::default());
                sweep.insert((p.name.to_string(), config, *size), result);
            }
        }
    }
    sweep
}

/// Figure 12: number of programs successfully executed per platform/size.
pub fn figure12(sweep: &Sweep, sizes: &[Size]) -> String {
    let mut out = String::from(
        "Figure 12: Number of Programs Successfully Executed on Different Platforms\n\
         Size     Pandas LPandas Modin LModin Dask LDask\n",
    );
    for size in sizes {
        let mut row = format!("{:<8}", size.label());
        for config in Config::ALL {
            let n = all()
                .iter()
                .filter(|p| {
                    sweep
                        .get(&(p.name.to_string(), config, *size))
                        .is_some_and(|r| r.ok)
                })
                .count();
            write!(row, " {n:>6}").unwrap();
        }
        out.push_str(&row);
        out.push('\n');
    }
    out
}

/// Figure 13: absolute execution times on the small (1.4 GB) dataset.
pub fn figure13(sweep: &Sweep) -> String {
    let mut out = String::from(
        "Figure 13: Execution Time on Different Platforms - 1.4 GB (milliseconds)\n\
         prog   Pandas LPandas   Modin  LModin    Dask   LDask\n",
    );
    for p in all() {
        let mut row = format!("{:<5}", p.name);
        for config in Config::ALL {
            match sweep.get(&(p.name.to_string(), config, Size::Small)) {
                Some(r) if r.ok => write!(row, " {:>7.1}", r.wall.as_secs_f64() * 1e3).unwrap(),
                _ => write!(row, " {:>7}", "OOM").unwrap(),
            }
        }
        out.push_str(&row);
        out.push('\n');
    }
    out
}

/// Figures 14a–c: % reduction in execution time (LaFP vs baseline); failed
/// baselines count as infinite time → 100 % improvement, per the paper.
pub fn figure14(sweep: &Sweep, sizes: &[Size]) -> String {
    percent_figure(sweep, sizes, "Figure 14: %Reduction in Execution Time", |r| {
        r.wall.as_secs_f64()
    })
}

/// Figures 15a–c: % reduction in peak memory consumption.
pub fn figure15(sweep: &Sweep, sizes: &[Size]) -> String {
    percent_figure(
        sweep,
        sizes,
        "Figure 15: %Reduction in Memory Consumption",
        |r| r.peak_memory as f64,
    )
}

fn percent_figure(
    sweep: &Sweep,
    sizes: &[Size],
    title: &str,
    metric: impl Fn(&RunResult) -> f64,
) -> String {
    let mut out = String::new();
    for size in sizes {
        writeln!(out, "{title} (Dataset size: {})", size.label()).unwrap();
        writeln!(out, "prog   vs Pandas  vs Modin   vs Dask").unwrap();
        for p in all() {
            let mut row = format!("{:<5}", p.name);
            for lafp in [Config::LPandas, Config::LModin, Config::LDask] {
                let base = sweep.get(&(p.name.to_string(), lafp.baseline(), *size));
                let opt = sweep.get(&(p.name.to_string(), lafp, *size));
                let cell = match (base, opt) {
                    (Some(b), Some(o)) if b.ok && o.ok => {
                        let (bv, ov) = (metric(b), metric(o));
                        if bv > 0.0 {
                            format!("{:>8.1}%", 100.0 * (bv - ov) / bv)
                        } else {
                            format!("{:>9}", "-")
                        }
                    }
                    // Baseline failed, optimized ran: infinite improvement.
                    (Some(b), Some(o)) if !b.ok && o.ok => format!("{:>8.1}%", 100.0),
                    // Neither ran: missing data point.
                    _ => format!("{:>9}", "n/a"),
                };
                row.push_str(&cell);
            }
            out.push_str(&row);
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

/// §5.3/§5.4 'stu' caching ablation on the Dask backend at 12.6 GB:
/// speedup and memory ratio with and without common-reuse persistence.
pub fn stu_caching_ablation(dirs: &HashMap<Size, PathBuf>) -> String {
    let dir = &dirs[&Size::Large];
    let p = program("stu").expect("stu exists");
    let unlimited = RunKnobs {
        budget: Some(usize::MAX),
        ..Default::default()
    };
    let baseline = run_cell(&p, Config::Dask, dir, &unlimited);
    let cached = run_cell(&p, Config::LDask, dir, &unlimited);
    let uncached = run_cell(
        &p,
        Config::LDask,
        dir,
        &RunKnobs {
            disable_caching: true,
            budget: Some(usize::MAX),
            ..Default::default()
        },
    );
    let speedup = |r: &RunResult| baseline.wall.as_secs_f64() / r.wall.as_secs_f64();
    let memx = |r: &RunResult| r.peak_memory as f64 / baseline.peak_memory as f64;
    format!(
        "stu caching ablation (Dask backend, 12.6GB):\n\
         Dask baseline      : {:>8.1} ms, peak {:>6.1} MB\n\
         LDask w/  caching  : {:>8.1} ms ({:.1}x speedup), peak {:.2}x baseline\n\
         LDask w/o caching  : {:>8.1} ms ({:.1}x speedup), peak {:.2}x baseline\n",
        baseline.wall.as_secs_f64() * 1e3,
        baseline.peak_memory as f64 / 1e6,
        cached.wall.as_secs_f64() * 1e3,
        speedup(&cached),
        memx(&cached),
        uncached.wall.as_secs_f64() * 1e3,
        speedup(&uncached),
        memx(&uncached),
    )
}

/// §5.3 JIT static-analysis overhead per program.
pub fn analysis_overhead(dirs: &HashMap<Size, PathBuf>) -> String {
    let dir = &dirs[&Size::Small];
    let mut out = String::from("JIT static analysis + rewrite overhead (§5.3):\n");
    for p in all() {
        let opts = lafp_rewrite::RewriteOptions {
            data_dir: Some(dir.clone()),
            ..Default::default()
        };
        let analyzed = lafp_rewrite::analyze(p.source, &opts).expect("programs analyze");
        writeln!(
            out,
            "  {:<5} {:>8.2} ms (usecols: {}, forced computes: {}, categories: {})",
            p.name,
            analyzed.report.duration.as_secs_f64() * 1e3,
            analyzed.report.usecols.len(),
            analyzed.report.forced_computes.len(),
            analyzed.report.categories.len(),
        )
        .unwrap();
    }
    out
}

/// §5.2 regression: every configuration that completes must hash-match the
/// unoptimized Pandas result. Returns (report, all_passed).
pub fn regression(sweep: &Sweep, sizes: &[Size]) -> (String, bool) {
    let mut out = String::from("Regression (order-insensitive result hashes vs Pandas):\n");
    let mut all_ok = true;
    for size in sizes {
        for p in all() {
            let Some(base) = sweep.get(&(p.name.to_string(), Config::Pandas, *size)) else {
                continue;
            };
            if !base.ok {
                continue; // no reference at this size (paper: compare where possible)
            }
            for config in Config::ALL {
                let Some(r) = sweep.get(&(p.name.to_string(), config, *size)) else {
                    continue;
                };
                if r.ok && (r.output_hash != base.output_hash || r.outputs != base.outputs) {
                    writeln!(
                        out,
                        "  MISMATCH {} {} {}",
                        p.name,
                        config.label(),
                        size.label()
                    )
                    .unwrap();
                    all_ok = false;
                }
            }
        }
    }
    if all_ok {
        out.push_str("  all configurations match the Pandas reference\n");
    }
    (out, all_ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure12_formats_counts() {
        let root = std::env::temp_dir().join("lafp-exp-tests-data");
        let dir = ensure_datasets(&root, Size::Small).unwrap();
        let mut dirs = HashMap::new();
        dirs.insert(Size::Small, dir);
        // A miniature sweep: one program, all configs, Small only.
        let p = program("nyt").unwrap();
        let mut sweep = Sweep::new();
        for config in Config::ALL {
            let r = run_cell(
                &p,
                config,
                &dirs[&Size::Small],
                &RunKnobs {
                    budget: Some(usize::MAX),
                    use_metadata: false,
                    ..Default::default()
                },
            );
            sweep.insert(("nyt".to_string(), config, Size::Small), r);
        }
        let fig = figure12(&sweep, &[Size::Small]);
        assert!(fig.contains("1.4GB"));
        let fig13 = figure13(&sweep);
        assert!(fig13.contains("nyt"));
        let fig14 = figure14(&sweep, &[Size::Small]);
        assert!(fig14.contains("vs Pandas"));
        let (reg, ok) = regression(&sweep, &[Size::Small]);
        assert!(ok, "{reg}");
    }
}
