//! Differential property tests for encoded execution: every kernel must
//! produce results identical on an encoded column (`Column::Dict`,
//! `Column::Rle`) and on its decoded plain twin. Encodings are only
//! allowed to change the *cost* of a kernel, never its result.
//!
//! Edge regimes the ISSUE calls out get dedicated deterministic tests:
//! null-heavy columns, empty columns, single-run columns, and columns
//! whose runs straddle the 64 Ki morsel seam — each exercised through
//! the parallel kernels at 1, 2, and 8 threads. The whole suite also
//! passes under `LAFP_NO_ENCODE=1`: encodings are built explicitly here
//! (not through the ingest heuristics), so the escape hatch only turns
//! off the auto-detection and fast-path gates, never correctness.

use lafp_columnar::column::{ArithOp, CmpOp};
use lafp_columnar::encoding::dict_encode;
use lafp_columnar::groupby::{group_by, group_by_par};
use lafp_columnar::join::{merge, merge_par};
use lafp_columnar::sort::{nlargest, sort_values, sort_values_par};
use lafp_columnar::spill::{spill_frame, SpillDir};
use lafp_columnar::{
    AggKind, Bitmap, Column, DataFrame, GroupBySpec, JoinKind, Scalar, Series, SortOptions,
    WorkerPool,
};
use lafp_oracle::equiv::{assert_col_equiv, assert_frame_equiv};
use lafp_oracle::reference::force_rle;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Builders
// ---------------------------------------------------------------------------

/// A plain string column plus its dictionary-encoded twin.
fn dict_pair(vals: &[String], nulls: &[bool]) -> (Column, Column) {
    let n = vals.len().min(nulls.len());
    let plain = Column::from_opt_strings(
        (0..n)
            .map(|i| (!nulls[i]).then(|| vals[i].clone()))
            .collect(),
    );
    let enc = dict_encode(&plain).expect("string column under the cardinality cap");
    (plain, enc)
}

/// A plain i64 column plus its run-length-encoded twin. Runs are forced
/// (no shrink heuristic) so even run-hostile inputs get an RLE twin.
fn rle_pair(runs: &[(Option<i64>, usize)]) -> (Column, Column) {
    let mut opt: Vec<Option<i64>> = Vec::new();
    for &(v, len) in runs {
        for _ in 0..len {
            opt.push(v);
        }
    }
    let plain = Column::from_opt_i64(opt);
    let enc = force_rle(&plain);
    (plain, enc)
}

fn frame(cols: Vec<(&str, Column)>) -> DataFrame {
    DataFrame::new(
        cols.into_iter()
            .map(|(n, c)| Series::new(n.to_string(), c))
            .collect(),
    )
    .unwrap()
}

/// Run one logical frame through a kernel twice — once with the encoded
/// key/value column, once with its plain twin — and demand identical
/// results at every requested thread count (1 = sequential kernel).
fn groupby_both(
    encoded: &Column,
    plain: &Column,
    values: &Column,
    agg: AggKind,
    threads: &[usize],
    what: &str,
) {
    let fe = frame(vec![("k", encoded.clone()), ("v", values.clone())]);
    let fp = frame(vec![("k", plain.clone()), ("v", values.clone())]);
    let spec = GroupBySpec {
        keys: vec!["k".into()],
        value: "v".into(),
        agg,
    };
    let reference = group_by(&fp, &spec).unwrap();
    for &t in threads {
        let got = if t <= 1 {
            group_by(&fe, &spec).unwrap()
        } else {
            group_by_par(&fe, &spec, &WorkerPool::new(t)).unwrap()
        };
        assert_frame_equiv(&got, &reference, &format!("{what} groupby t={t}"));
    }
}

fn sort_both(encoded: &Column, plain: &Column, threads: &[usize], what: &str) {
    let tag = Column::from_opt_i64((0..encoded.len()).map(|i| Some(i as i64)).collect());
    let fe = frame(vec![("k", encoded.clone()), ("row", tag.clone())]);
    let fp = frame(vec![("k", plain.clone()), ("row", tag)]);
    for asc in [true, false] {
        let options = SortOptions {
            by: vec!["k".into()],
            ascending: vec![asc],
        };
        let reference = sort_values(&fp, &options).unwrap();
        for &t in threads {
            let got = if t <= 1 {
                sort_values(&fe, &options).unwrap()
            } else {
                sort_values_par(&fe, &options, &WorkerPool::new(t)).unwrap()
            };
            assert_frame_equiv(&got, &reference, &format!("{what} sort asc={asc} t={t}"));
        }
    }
}

/// Spill the frame and read it back; encoded columns must round-trip
/// through LAFPSPL1 bit-identically (structural equality on the same
/// variant checks codes, dictionary, run values, and run ends verbatim).
fn spill_round_trip(f: &DataFrame, what: &str) {
    let dir = SpillDir::in_temp();
    let file = spill_frame(&dir, f).unwrap();
    let frames = file.read_all().unwrap();
    assert_eq!(frames.len(), 1, "{what}: one spilled frame");
    for (a, e) in frames[0].series().iter().zip(f.series()) {
        assert_eq!(
            a.column(),
            e.column(),
            "{what}: column {} must round-trip bit-identically",
            e.name()
        );
    }
}

// ---------------------------------------------------------------------------
// Deterministic edge regimes at 1/2/8 threads
// ---------------------------------------------------------------------------

const THREADS: [usize; 3] = [1, 2, 8];

#[test]
fn empty_columns_behave_like_plain() {
    let (plain_s, dict) = dict_pair(&[], &[]);
    let (plain_i, rle) = rle_pair(&[]);
    assert_eq!(dict.len(), 0);
    assert_eq!(rle.len(), 0);
    assert_col_equiv(&dict.decode(), &plain_s, "empty dict decode");
    assert_col_equiv(&rle.decode(), &plain_i, "empty rle decode");
    assert_eq!(dict.sum(), plain_s.sum());
    assert_eq!(rle.sum(), plain_i.sum());
    assert_eq!(rle.nunique(), plain_i.nunique());
    let mask = rle.compare_scalar(CmpOp::Eq, &Scalar::Int(1)).unwrap();
    assert_eq!(mask.len(), 0);
    spill_round_trip(
        &frame(vec![("s", dict), ("i", rle)]),
        "empty encoded frame",
    );
}

#[test]
fn single_run_column_spanning_the_morsel_seam() {
    // One run of 70 000 identical rows: crosses the 64 Ki (65 536)
    // morsel boundary, so parallel kernels split the run across workers.
    const N: usize = 70_000;
    let (plain, rle) = rle_pair(&[(Some(42), N)]);
    match &rle {
        Column::Rle(r) => assert_eq!(r.num_runs(), 1),
        other => panic!("expected Rle, got {other:?}"),
    }
    assert_eq!(rle.sum(), Scalar::Int(42 * N as i64));
    assert_eq!(rle.sum(), plain.sum());
    let mask = rle.compare_scalar(CmpOp::Eq, &Scalar::Int(42)).unwrap();
    assert_eq!(mask.count_set(), N);

    let svals: Vec<String> = vec!["only".to_string(); N];
    let (plain_s, dict) = dict_pair(&svals, &vec![false; N]);
    let values = Column::from_opt_i64((0..N).map(|i| Some(i as i64 % 11)).collect());
    groupby_both(&dict, &plain_s, &values, AggKind::Sum, &THREADS, "single-run");
    groupby_both(&rle, &plain, &values, AggKind::Count, &THREADS, "single-run rle key");
    sort_both(&dict, &plain_s, &THREADS, "single-run dict");
    spill_round_trip(&frame(vec![("k", dict), ("r", rle)]), "single-run");
}

#[test]
fn null_heavy_columns_match_plain() {
    // ~80 % nulls, pseudo-random but deterministic.
    const N: usize = 66_000;
    let nulls: Vec<bool> = (0..N).map(|i| (i * 2654435761usize) % 10 < 8).collect();
    let svals: Vec<String> = (0..N).map(|i| format!("tag{}", i % 6)).collect();
    let (plain_s, dict) = dict_pair(&svals, &nulls);
    let runs: Vec<(Option<i64>, usize)> = (0..N / 500)
        .map(|i| {
            let v = (i % 7 != 0).then(|| (i % 13) as i64 - 6);
            (v, 500)
        })
        .collect();
    let (plain_i, rle) = rle_pair(&runs);

    assert_col_equiv(&dict.decode(), &plain_s, "null-heavy dict decode");
    assert_col_equiv(&rle.decode(), &plain_i, "null-heavy rle decode");
    assert_eq!(dict.nunique(), plain_s.nunique());
    assert_eq!(rle.nunique(), plain_i.nunique());
    assert_eq!(rle.sum(), plain_i.sum());
    assert_eq!(dict.min(), plain_s.min());
    assert_eq!(dict.max(), plain_s.max());

    // Filter through an encoded predicate, compare frame-level results.
    for (enc, plain, pivot, what) in [
        (&dict, &plain_s, Scalar::Str("tag3".into()), "dict"),
        (&rle, &plain_i, Scalar::Int(2), "rle"),
    ] {
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Ge] {
            let me = enc.compare_scalar(op, &pivot).unwrap();
            let mp = plain.compare_scalar(op, &pivot).unwrap();
            assert_eq!(me.count_set(), mp.count_set(), "{what} {op:?} popcount");
            assert_col_equiv(
                &enc.filter(&me).unwrap().decode(),
                &plain.filter(&mp).unwrap(),
                &format!("{what} filtered {op:?}"),
            );
        }
    }

    let values = Column::from_opt_i64(
        (0..N)
            .map(|i| (i % 9 != 0).then_some(i as i64 % 101))
            .collect(),
    );
    groupby_both(&dict, &plain_s, &values, AggKind::Sum, &THREADS, "null-heavy");
    groupby_both(&dict, &plain_s, &values, AggKind::Mean, &THREADS, "null-heavy");
    sort_both(&dict, &plain_s, &THREADS, "null-heavy dict");
    sort_both(&rle, &plain_i, &THREADS, "null-heavy rle");
    spill_round_trip(&frame(vec![("k", dict), ("r", rle)]), "null-heavy");
}

#[test]
fn runs_straddling_the_morsel_seam() {
    // Runs of 1000 rows never align with the 65 536-row morsel seam, so
    // every worker boundary cuts a run in half.
    const N: usize = 131_000;
    let runs: Vec<(Option<i64>, usize)> = (0..N / 1000)
        .map(|i| (Some((i % 5) as i64), 1000))
        .collect();
    let (plain, rle) = rle_pair(&runs);
    let svals: Vec<String> = (0..N).map(|i| format!("g{}", (i / 1000) % 5)).collect();
    let (plain_s, dict) = dict_pair(&svals, &vec![false; N]);
    let values = Column::from_opt_i64((0..N).map(|i| Some((i % 17) as i64)).collect());

    groupby_both(&dict, &plain_s, &values, AggKind::Sum, &THREADS, "seam dict");
    groupby_both(&dict, &plain_s, &values, AggKind::Min, &THREADS, "seam dict");
    groupby_both(&rle, &plain, &values, AggKind::Sum, &THREADS, "seam rle key");
    sort_both(&dict, &plain_s, &THREADS, "seam dict");

    // Join on the encoded key at each thread count; plain join is the
    // reference. Both sides dict-encoded shares the code fast path.
    let right_vals: Vec<String> = (0..5).map(|i| format!("g{i}")).collect();
    let (rplain, rdict) = dict_pair(&right_vals, &[false; 5]);
    let payload = Column::from_opt_i64((0..5).map(|i| Some(i * 100)).collect());
    let le = frame(vec![("k", dict.clone()), ("v", values.clone())]);
    let lp = frame(vec![("k", plain_s.clone()), ("v", values.clone())]);
    let re = frame(vec![("k", rdict), ("pay", payload.clone())]);
    let rp = frame(vec![("k", rplain), ("pay", payload)]);
    let on = vec!["k".to_string()];
    let reference = merge(&lp, &rp, &on, JoinKind::Inner).unwrap();
    for t in THREADS {
        let got = if t <= 1 {
            merge(&le, &re, &on, JoinKind::Inner).unwrap()
        } else {
            merge_par(&le, &re, &on, JoinKind::Inner, &WorkerPool::new(t)).unwrap()
        };
        assert_frame_equiv(&got, &reference, &format!("seam join t={t}"));
    }

    // Arithmetic over an RLE operand matches plain execution.
    let sum_enc = rle.arith(ArithOp::Add, &values).unwrap();
    let sum_plain = plain.arith(ArithOp::Add, &values).unwrap();
    assert_col_equiv(&sum_enc.decode(), &sum_plain, "seam rle arith");

    // top-n over a frame carrying encoded columns.
    let tn_e = nlargest(&le, 37, "v").unwrap();
    let tn_p = nlargest(&lp, 37, "v").unwrap();
    for (a, e) in tn_e.series().iter().zip(tn_p.series()) {
        assert_col_equiv(&a.column().decode(), &e.column().decode(), "seam top-n");
    }

    spill_round_trip(&frame(vec![("k", dict), ("r", rle)]), "seam");
}

// ---------------------------------------------------------------------------
// Randomized differentials
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dict_kernels_match_decoded(
        vals in prop::collection::vec("[a-e]{0,3}", 0..300),
        nulls in prop::collection::vec(any::<bool>(), 0..300),
        ints in prop::collection::vec(-50i64..50, 0..300),
        pivot in "[a-e]{0,3}",
    ) {
        let n = vals.len().min(nulls.len()).min(ints.len());
        let (plain, dict) = dict_pair(&vals[..n], &nulls[..n]);
        let values = Column::from_opt_i64(ints[..n].iter().map(|&v| Some(v)).collect());

        assert_col_equiv(&dict.decode(), &plain, "decode");
        prop_assert_eq!(dict.nunique(), plain.nunique());
        prop_assert_eq!(dict.min(), plain.min());
        prop_assert_eq!(dict.max(), plain.max());

        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Ge] {
            let me = dict.compare_scalar(op, &Scalar::Str(pivot.clone())).unwrap();
            let mp = plain.compare_scalar(op, &Scalar::Str(pivot.clone())).unwrap();
            prop_assert_eq!(me.count_set(), mp.count_set());
            assert_col_equiv(
                &dict.filter(&me).unwrap().decode(),
                &plain.filter(&mp).unwrap(),
                "filter",
            );
        }

        if n > 0 {
            groupby_both(&dict, &plain, &values, AggKind::Sum, &[1], "prop dict");
            groupby_both(&dict, &plain, &values, AggKind::NUnique, &[1], "prop dict");
            sort_both(&dict, &plain, &[1], "prop dict");
        }
        spill_round_trip(&frame(vec![("k", dict)]), "prop dict");
    }

    #[test]
    fn rle_kernels_match_decoded(
        runs in prop::collection::vec((prop::option::of(-9i64..9), 1usize..20), 0..40),
        pivot in -9i64..9,
    ) {
        let (plain, rle) = rle_pair(&runs);
        let n = plain.len();
        assert_col_equiv(&rle.decode(), &plain, "decode");
        prop_assert_eq!(rle.sum(), plain.sum());
        prop_assert_eq!(rle.nunique(), plain.nunique());
        prop_assert_eq!(rle.min(), plain.min());
        prop_assert_eq!(rle.max(), plain.max());

        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Ge] {
            let me = rle.compare_scalar(op, &Scalar::Int(pivot)).unwrap();
            let mp = plain.compare_scalar(op, &Scalar::Int(pivot)).unwrap();
            prop_assert_eq!(me.count_set(), mp.count_set());
            assert_col_equiv(
                &rle.filter(&me).unwrap().decode(),
                &plain.filter(&mp).unwrap(),
                "filter",
            );
        }

        if n > 0 {
            // Slices at awkward offsets keep run bookkeeping honest.
            let third = n / 3;
            assert_col_equiv(
                &rle.slice(third, n - third).decode(),
                &plain.slice(third, n - third),
                "slice",
            );
            let idx: Vec<usize> = (0..n).rev().step_by(2).collect();
            assert_col_equiv(
                &rle.take(&idx).unwrap().decode(),
                &plain.take(&idx).unwrap(),
                "take",
            );
            let values = Column::from_opt_i64((0..n).map(|i| Some(i as i64)).collect());
            groupby_both(&rle, &plain, &values, AggKind::Sum, &[1], "prop rle key");
            sort_both(&rle, &plain, &[1], "prop rle");
        }
        spill_round_trip(&frame(vec![("r", rle)]), "prop rle");
    }
}

/// `Column::filter` on a Dict column keeps the full dictionary, so the
/// survivors reference entries that no longer occur in any row —
/// including the would-be min (`"aa"`) and max (`"zz"`). Every
/// encoding-aware kernel must answer from per-row codes, never from the
/// raw dictionary; each is checked against the plain twin filtered with
/// the same mask.
#[test]
fn dict_unused_entries_after_filter_match_plain() {
    let raw = [
        "aa", "mm", "zz", "bb", "qq", "mm", "cc", "zz", "aa", "bb", "cc", "qq",
    ];
    let vals: Vec<String> = raw.iter().map(|s| s.to_string()).collect();
    let nulls: Vec<bool> = (0..raw.len()).map(|i| i == 5).collect();
    let (plain, dict) = dict_pair(&vals, &nulls);
    // Drop every aa/zz/qq row; bb/cc/mm rows and the null survive.
    let keep: Vec<bool> = raw
        .iter()
        .map(|s| !matches!(*s, "aa" | "zz" | "qq"))
        .collect();
    let mask = Bitmap::from_bools(&keep);
    let dict_f = dict.filter(&mask).unwrap();
    let plain_f = plain.filter(&mask).unwrap();
    // Precondition, or this test guards nothing: the filtered column is
    // still Dict and its dictionary still holds all six categories even
    // though only three remain reachable.
    match &dict_f {
        Column::Dict(cat, _) => assert!(cat.dict.len() >= 6, "full dictionary kept"),
        other => panic!("filter must preserve Dict encoding, got {:?}", other.dtype()),
    }
    assert_col_equiv(&dict_f.decode(), &plain_f, "filtered dict decode");

    // Scalar reductions: min/max must not report the unused extremes,
    // nunique must not count unused entries.
    assert_eq!(dict_f.min(), plain_f.min(), "min ignores unused entries");
    assert_eq!(dict_f.max(), plain_f.max(), "max ignores unused entries");
    assert_eq!(dict_f.nunique(), plain_f.nunique(), "nunique ignores unused entries");

    // Verdict-table compares against vanished, surviving, and novel
    // literals.
    for lit in ["aa", "qq", "zz", "bb", "mm", "nope"] {
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Ge] {
            let got = dict_f.compare_scalar(op, &Scalar::Str(lit.into())).unwrap();
            let want = plain_f.compare_scalar(op, &Scalar::Str(lit.into())).unwrap();
            assert_eq!(got, want, "compare_scalar {op:?} {lit:?}");
        }
    }

    // fillna with an unused-but-present category and with a novel one.
    for fill in ["qq", "brand-new"] {
        assert_col_equiv(
            &dict_f.fillna(&Scalar::Str(fill.into())).unwrap(),
            &plain_f.fillna(&Scalar::Str(fill.into())).unwrap(),
            &format!("fillna {fill:?} with unused entries"),
        );
    }

    // Sort and groupby-as-key walk per-row codes.
    sort_both(&dict_f, &plain_f, &THREADS, "filtered dict");
    let values = Column::from_opt_i64((0..dict_f.len()).map(|i| Some(i as i64 - 3)).collect());
    for agg in [AggKind::Sum, AggKind::Count, AggKind::NUnique] {
        groupby_both(&dict_f, &plain_f, &values, agg, &THREADS, "filtered dict key");
    }

    // Dict as the *value* column: per-group Min/Max/NUnique/Count over
    // a column whose dictionary has unused entries.
    let key = Column::from_opt_i64((0..dict_f.len()).map(|i| Some(i as i64 % 2)).collect());
    let fe = frame(vec![("k", key.clone()), ("v", dict_f.clone())]);
    let fp = frame(vec![("k", key), ("v", plain_f.clone())]);
    for agg in [AggKind::Min, AggKind::Max, AggKind::NUnique, AggKind::Count] {
        let spec = GroupBySpec {
            keys: vec!["k".into()],
            value: "v".into(),
            agg,
        };
        let reference = group_by(&fp, &spec).unwrap();
        for &t in &THREADS {
            let got = if t <= 1 {
                group_by(&fe, &spec).unwrap()
            } else {
                group_by_par(&fe, &spec, &WorkerPool::new(t)).unwrap()
            };
            assert_frame_equiv(&got, &reference, &format!("dict value {agg:?} t={t}"));
        }
    }

    // And the filtered column round-trips through the spill format with
    // its full dictionary intact.
    spill_round_trip(&frame(vec![("s", dict_f)]), "filtered dict");
}
