//! Hash group-by aggregation, including the partial-aggregate form used by
//! the out-of-core (Dask-like) backend to keep the working set small.

use crate::column::{Column, ColumnBuilder};
use crate::dtype::DType;
use crate::error::{ColumnarError, Result};
use crate::frame::DataFrame;
use crate::series::Series;
use crate::value::Scalar;
use std::collections::HashMap;

/// Aggregate functions supported by `groupby(...)[col].agg(...)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggKind {
    /// Sum of the value column.
    Sum,
    /// Arithmetic mean.
    Mean,
    /// Count of non-null values.
    Count,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Distinct count. (Not decomposable: the streaming form keeps a set.)
    NUnique,
}

impl AggKind {
    /// Parse the pandas method name.
    pub fn parse(name: &str) -> Option<AggKind> {
        match name {
            "sum" => Some(AggKind::Sum),
            "mean" => Some(AggKind::Mean),
            "count" | "size" => Some(AggKind::Count),
            "min" => Some(AggKind::Min),
            "max" => Some(AggKind::Max),
            "nunique" => Some(AggKind::NUnique),
            _ => None,
        }
    }

    /// Method name as written in programs.
    pub fn name(self) -> &'static str {
        match self {
            AggKind::Sum => "sum",
            AggKind::Mean => "mean",
            AggKind::Count => "count",
            AggKind::Min => "min",
            AggKind::Max => "max",
            AggKind::NUnique => "nunique",
        }
    }
}

/// A group-by request: grouping keys, value column, aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupBySpec {
    /// Key column names.
    pub keys: Vec<String>,
    /// The aggregated value column.
    pub value: String,
    /// Which aggregate to compute.
    pub agg: AggKind,
}

/// Running per-group state; merging two states gives the state of the
/// concatenated input, which is what makes streaming aggregation possible.
#[derive(Debug, Clone)]
pub struct AggState {
    sum: f64,
    int_sum: i64,
    count: u64,
    min: Option<Scalar>,
    max: Option<Scalar>,
    distinct: std::collections::HashSet<String>,
    value_is_int: bool,
}

impl AggState {
    fn new(value_is_int: bool) -> AggState {
        AggState {
            sum: 0.0,
            int_sum: 0,
            count: 0,
            min: None,
            max: None,
            distinct: std::collections::HashSet::new(),
            value_is_int,
        }
    }

    fn update(&mut self, v: &Scalar, agg: AggKind) {
        if v.is_null() {
            return;
        }
        self.count += 1;
        match agg {
            AggKind::Sum | AggKind::Mean => {
                if let Some(x) = v.as_f64() {
                    self.sum += x;
                }
                if let Some(x) = v.as_i64() {
                    self.int_sum = self.int_sum.wrapping_add(x);
                }
            }
            AggKind::Min => {
                if self.min.as_ref().is_none_or(|m| v.cmp_values(m).is_lt()) {
                    self.min = Some(v.clone());
                }
            }
            AggKind::Max => {
                if self.max.as_ref().is_none_or(|m| v.cmp_values(m).is_gt()) {
                    self.max = Some(v.clone());
                }
            }
            AggKind::NUnique => {
                self.distinct.insert(v.to_string());
            }
            AggKind::Count => {}
        }
    }

    /// Merge another partial state into this one.
    pub fn merge(&mut self, other: &AggState) {
        self.sum += other.sum;
        self.int_sum = self.int_sum.wrapping_add(other.int_sum);
        self.count += other.count;
        if let Some(m) = &other.min {
            if self.min.as_ref().is_none_or(|s| m.cmp_values(s).is_lt()) {
                self.min = Some(m.clone());
            }
        }
        if let Some(m) = &other.max {
            if self.max.as_ref().is_none_or(|s| m.cmp_values(s).is_gt()) {
                self.max = Some(m.clone());
            }
        }
        for d in &other.distinct {
            self.distinct.insert(d.clone());
        }
    }

    fn finish(&self, agg: AggKind) -> Scalar {
        match agg {
            AggKind::Sum => {
                if self.count == 0 {
                    Scalar::Null
                } else if self.value_is_int {
                    Scalar::Int(self.int_sum)
                } else {
                    Scalar::Float(self.sum)
                }
            }
            AggKind::Mean => {
                if self.count == 0 {
                    Scalar::Null
                } else {
                    Scalar::Float(self.sum / self.count as f64)
                }
            }
            AggKind::Count => Scalar::Int(self.count as i64),
            AggKind::Min => self.min.clone().unwrap_or(Scalar::Null),
            AggKind::Max => self.max.clone().unwrap_or(Scalar::Null),
            AggKind::NUnique => Scalar::Int(self.distinct.len() as i64),
        }
    }

    /// Approximate heap bytes held by this state (for the memory budget).
    pub fn heap_size(&self) -> usize {
        96 + self.distinct.iter().map(|s| s.capacity() + 48).sum::<usize>()
    }
}

/// Streaming group-by accumulator: feed chunks, then `finish`.
#[derive(Debug)]
pub struct GroupByAccumulator {
    spec: GroupBySpec,
    /// Keyed by the canonical string of the composite key; the scalar key
    /// values live in `key_order` for output reconstruction.
    groups: HashMap<String, AggState>,
    key_order: Vec<Vec<Scalar>>,
    value_is_int: bool,
}

impl GroupByAccumulator {
    /// Start an accumulation for `spec`.
    pub fn new(spec: GroupBySpec) -> GroupByAccumulator {
        GroupByAccumulator {
            spec,
            groups: HashMap::new(),
            key_order: Vec::new(),
            value_is_int: true,
        }
    }

    /// The spec this accumulator computes.
    pub fn spec(&self) -> &GroupBySpec {
        &self.spec
    }

    /// Consume one chunk of input rows.
    pub fn update(&mut self, chunk: &DataFrame) -> Result<()> {
        let key_cols: Vec<&Series> = self
            .spec
            .keys
            .iter()
            .map(|k| chunk.column(k))
            .collect::<Result<Vec<_>>>()?;
        let value_col = chunk.column(&self.spec.value)?;
        if value_col.dtype() != DType::Int64 && value_col.dtype() != DType::Bool {
            self.value_is_int = false;
        }
        let agg = self.spec.agg;
        let value_is_int = self.value_is_int;
        for i in 0..chunk.num_rows() {
            let key: Vec<Scalar> = key_cols.iter().map(|s| s.get(i)).collect();
            let canon = KeyWrap::canon(&key);
            let state = match self.groups.entry(canon) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    self.key_order.push(key);
                    e.insert(AggState::new(value_is_int))
                }
            };
            state.update(&value_col.get(i), agg);
        }
        Ok(())
    }

    /// Merge a sibling accumulator (same spec) — used by the parallel
    /// (Modin-like) backend to combine per-partition states.
    pub fn merge(&mut self, other: &GroupByAccumulator) {
        self.value_is_int = self.value_is_int && other.value_is_int;
        for key in &other.key_order {
            let canon = KeyWrap::canon(key);
            let theirs = &other.groups[&canon];
            match self.groups.get_mut(&canon) {
                Some(mine) => mine.merge(theirs),
                None => {
                    self.key_order.push(key.clone());
                    self.groups.insert(canon, theirs.clone());
                }
            }
        }
    }

    /// Approximate heap bytes (memory-budget accounting for streaming aggs).
    pub fn heap_size(&self) -> usize {
        self.groups
            .values()
            .map(AggState::heap_size)
            .sum::<usize>()
            + self.key_order.len() * 64
    }

    /// Produce the result frame: one row per group, sorted by key (pandas
    /// `groupby` sorts group keys by default).
    pub fn finish(mut self) -> Result<DataFrame> {
        self.key_order
            .sort_by(|a, b| KeyWrap::canon(a).cmp(&KeyWrap::canon(b)));
        let mut key_builders: Vec<ColumnBuilder> = Vec::new();
        let n_keys = self.spec.keys.len();
        // Infer key dtypes from the first group's scalars.
        for k in 0..n_keys {
            let dtype = self
                .key_order
                .iter()
                .find_map(|key| key[k].dtype())
                .unwrap_or(DType::Utf8);
            key_builders.push(ColumnBuilder::new(dtype));
        }
        let mut value_builder: Option<ColumnBuilder> = None;
        let mut values: Vec<Scalar> = Vec::with_capacity(self.key_order.len());
        for key in &self.key_order {
            for (k, b) in key_builders.iter_mut().enumerate() {
                b.push_scalar(&key[k])?;
            }
            let state = &self.groups[&KeyWrap::canon(key)];
            values.push(state.finish(self.spec.agg));
        }
        let out_dtype = values
            .iter()
            .find_map(Scalar::dtype)
            .unwrap_or(DType::Float64);
        let vb = value_builder.get_or_insert_with(|| ColumnBuilder::new(out_dtype));
        for v in &values {
            vb.push_scalar(v)?;
        }
        let mut series = Vec::with_capacity(n_keys + 1);
        for (k, b) in key_builders.into_iter().enumerate() {
            series.push(Series::new(self.spec.keys[k].clone(), b.finish()));
        }
        series.push(Series::new(
            self.spec.value.clone(),
            value_builder
                .map(ColumnBuilder::finish)
                .unwrap_or(Column::from_f64(vec![])),
        ));
        DataFrame::new(series)
    }
}

struct KeyWrap;

impl KeyWrap {
    /// Canonical string for a composite key (separator chosen to not occur
    /// in rendered scalars).
    fn canon(key: &[Scalar]) -> String {
        key.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("\u{1}")
    }
}

/// One-shot group-by over a whole frame.
pub fn group_by(frame: &DataFrame, spec: &GroupBySpec) -> Result<DataFrame> {
    if spec.keys.is_empty() {
        return Err(ColumnarError::InvalidArgument(
            "groupby requires at least one key".into(),
        ));
    }
    let mut acc = GroupByAccumulator::new(spec.clone());
    acc.update(frame)?;
    acc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::df;

    fn trips() -> DataFrame {
        df![
            ("day", Column::from_i64(vec![1, 0, 1, 0, 1])),
            (
                "passenger_count",
                Column::from_i64(vec![2, 1, 3, 4, 1])
            ),
            ("fare", Column::from_f64(vec![5.0, 6.0, 7.0, 8.0, 9.0])),
        ]
    }

    fn spec(agg: AggKind) -> GroupBySpec {
        GroupBySpec {
            keys: vec!["day".into()],
            value: "passenger_count".into(),
            agg,
        }
    }

    #[test]
    fn sum_by_key_sorted() {
        let out = group_by(&trips(), &spec(AggKind::Sum)).unwrap();
        assert_eq!(out.num_rows(), 2);
        // keys sorted ascending: day=0 then day=1
        assert_eq!(out.column("day").unwrap().get(0), Scalar::Int(0));
        assert_eq!(out.column("passenger_count").unwrap().get(0), Scalar::Int(5));
        assert_eq!(out.column("passenger_count").unwrap().get(1), Scalar::Int(6));
    }

    #[test]
    fn mean_count_min_max_nunique() {
        let out = group_by(&trips(), &spec(AggKind::Mean)).unwrap();
        assert_eq!(
            out.column("passenger_count").unwrap().get(1),
            Scalar::Float(2.0)
        );
        let out = group_by(&trips(), &spec(AggKind::Count)).unwrap();
        assert_eq!(out.column("passenger_count").unwrap().get(0), Scalar::Int(2));
        let out = group_by(&trips(), &spec(AggKind::Min)).unwrap();
        assert_eq!(out.column("passenger_count").unwrap().get(1), Scalar::Int(1));
        let out = group_by(&trips(), &spec(AggKind::Max)).unwrap();
        assert_eq!(out.column("passenger_count").unwrap().get(1), Scalar::Int(3));
        let out = group_by(&trips(), &spec(AggKind::NUnique)).unwrap();
        assert_eq!(out.column("passenger_count").unwrap().get(1), Scalar::Int(3));
    }

    #[test]
    fn float_values_sum_to_float() {
        let s = GroupBySpec {
            keys: vec!["day".into()],
            value: "fare".into(),
            agg: AggKind::Sum,
        };
        let out = group_by(&trips(), &s).unwrap();
        assert_eq!(out.column("fare").unwrap().get(0), Scalar::Float(14.0));
    }

    #[test]
    fn multi_key_groupby() {
        let df = df![
            ("a", Column::from_strings(vec!["x", "x", "y"])),
            ("b", Column::from_i64(vec![1, 1, 2])),
            ("v", Column::from_i64(vec![10, 20, 30])),
        ];
        let s = GroupBySpec {
            keys: vec!["a".into(), "b".into()],
            value: "v".into(),
            agg: AggKind::Sum,
        };
        let out = group_by(&df, &s).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.num_columns(), 3);
        assert_eq!(out.column("v").unwrap().get(0), Scalar::Int(30));
    }

    #[test]
    fn streaming_chunks_equal_oneshot() {
        let df = trips();
        let whole = group_by(&df, &spec(AggKind::Mean)).unwrap();
        let mut acc = GroupByAccumulator::new(spec(AggKind::Mean));
        acc.update(&df.slice(0, 2)).unwrap();
        acc.update(&df.slice(2, 3)).unwrap();
        let chunked = acc.finish().unwrap();
        assert_eq!(whole, chunked);
    }

    #[test]
    fn parallel_merge_equal_oneshot() {
        let df = trips();
        let whole = group_by(&df, &spec(AggKind::Sum)).unwrap();
        let mut left = GroupByAccumulator::new(spec(AggKind::Sum));
        left.update(&df.slice(0, 3)).unwrap();
        let mut right = GroupByAccumulator::new(spec(AggKind::Sum));
        right.update(&df.slice(3, 2)).unwrap();
        left.merge(&right);
        assert_eq!(whole, left.finish().unwrap());
    }

    #[test]
    fn nulls_skipped() {
        let df = df![
            ("k", Column::from_i64(vec![1, 1, 1])),
            ("v", Column::from_opt_i64(vec![Some(1), None, Some(3)])),
        ];
        let s = GroupBySpec {
            keys: vec!["k".into()],
            value: "v".into(),
            agg: AggKind::Count,
        };
        let out = group_by(&df, &s).unwrap();
        assert_eq!(out.column("v").unwrap().get(0), Scalar::Int(2));
    }

    #[test]
    fn empty_keys_rejected() {
        let s = GroupBySpec {
            keys: vec![],
            value: "v".into(),
            agg: AggKind::Sum,
        };
        assert!(group_by(&trips(), &s).is_err());
    }

    #[test]
    fn agg_kind_parse_roundtrip() {
        for agg in [
            AggKind::Sum,
            AggKind::Mean,
            AggKind::Count,
            AggKind::Min,
            AggKind::Max,
            AggKind::NUnique,
        ] {
            assert_eq!(AggKind::parse(agg.name()), Some(agg));
        }
        assert_eq!(AggKind::parse("median"), None);
    }
}
