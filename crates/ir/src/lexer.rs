//! Indentation-aware lexer for PandaScript.

use crate::token::{Token, TokenKind};
use crate::SyntaxError;

/// Tokenize a source string, producing INDENT/DEDENT structure tokens like
/// Python's tokenizer. Comments (`# ...`) and blank lines are skipped.
pub fn lex(source: &str) -> Result<Vec<Token>, SyntaxError> {
    let mut tokens = Vec::new();
    let mut indents: Vec<usize> = vec![0];
    for (line_idx, raw_line) in source.lines().enumerate() {
        let line_no = line_idx + 1;
        let without_comment = strip_comment(raw_line);
        let trimmed = without_comment.trim_end();
        if trimmed.trim().is_empty() {
            continue; // blank or comment-only line
        }
        let indent = leading_spaces(trimmed, line_no)?;
        let cur = *indents.last().expect("indent stack non-empty");
        if indent > cur {
            indents.push(indent);
            tokens.push(Token {
                kind: TokenKind::Indent,
                line: line_no,
            });
        } else {
            while indent < *indents.last().expect("indent stack non-empty") {
                indents.pop();
                tokens.push(Token {
                    kind: TokenKind::Dedent,
                    line: line_no,
                });
            }
            if indent != *indents.last().expect("indent stack non-empty") {
                return Err(SyntaxError {
                    line: line_no,
                    message: format!("inconsistent indentation ({indent} spaces)"),
                });
            }
        }
        lex_line(trimmed.trim_start(), line_no, &mut tokens)?;
        tokens.push(Token {
            kind: TokenKind::Newline,
            line: line_no,
        });
    }
    let last_line = source.lines().count();
    while indents.len() > 1 {
        indents.pop();
        tokens.push(Token {
            kind: TokenKind::Dedent,
            line: last_line,
        });
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line: last_line + 1,
    });
    Ok(tokens)
}

/// Remove a trailing comment, respecting string literals.
fn strip_comment(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str: Option<char> = None;
    while let Some(c) = chars.next() {
        match in_str {
            Some(quote) => {
                out.push(c);
                if c == '\\' {
                    if let Some(&next) = chars.peek() {
                        out.push(next);
                        chars.next();
                    }
                } else if c == quote {
                    in_str = None;
                }
            }
            None => {
                if c == '#' {
                    break;
                }
                if c == '\'' || c == '"' {
                    in_str = Some(c);
                }
                out.push(c);
            }
        }
    }
    out
}

fn leading_spaces(line: &str, line_no: usize) -> Result<usize, SyntaxError> {
    let mut n = 0;
    for c in line.chars() {
        match c {
            ' ' => n += 1,
            '\t' => {
                return Err(SyntaxError {
                    line: line_no,
                    message: "tabs are not allowed for indentation".into(),
                })
            }
            _ => break,
        }
    }
    Ok(n)
}

fn lex_line(text: &str, line: usize, out: &mut Vec<Token>) -> Result<(), SyntaxError> {
    let mut chars: Vec<char> = text.chars().collect();
    // Pad to simplify lookahead.
    chars.push('\0');
    let mut i = 0;
    let push = |out: &mut Vec<Token>, kind: TokenKind| out.push(Token { kind, line });
    while i < chars.len() - 1 {
        let c = chars[i];
        match c {
            ' ' => {
                i += 1;
            }
            '0'..='9' => {
                let start = i;
                while chars[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    push(out, TokenKind::Float(text.parse().map_err(|_| SyntaxError {
                        line,
                        message: format!("bad float literal {text}"),
                    })?));
                } else {
                    push(out, TokenKind::Int(text.parse().map_err(|_| SyntaxError {
                        line,
                        message: format!("bad integer literal {text}"),
                    })?));
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                // f-string prefix?
                if (c == 'f' || c == 'F') && (chars[i + 1] == '\'' || chars[i + 1] == '"') {
                    let (text, next) = lex_string(&chars, i + 1, line)?;
                    push(out, TokenKind::FStr(text));
                    i = next;
                    continue;
                }
                let start = i;
                while chars[i].is_ascii_alphanumeric() || chars[i] == '_' {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                push(
                    out,
                    match word.as_str() {
                        "import" => TokenKind::Import,
                        "from" => TokenKind::From,
                        "as" => TokenKind::As,
                        "if" => TokenKind::If,
                        "elif" => TokenKind::Elif,
                        "else" => TokenKind::Else,
                        "for" => TokenKind::For,
                        "in" => TokenKind::In,
                        "not" => TokenKind::Not,
                        "True" => TokenKind::True,
                        "False" => TokenKind::False,
                        "None" => TokenKind::NoneKw,
                        "def" => TokenKind::Def,
                        "return" => TokenKind::Return,
                        _ => TokenKind::Ident(word),
                    },
                );
            }
            '\'' | '"' => {
                let (text, next) = lex_string(&chars, i, line)?;
                push(out, TokenKind::Str(text));
                i = next;
            }
            '=' => {
                if chars[i + 1] == '=' {
                    push(out, TokenKind::Eq);
                    i += 2;
                } else {
                    push(out, TokenKind::Assign);
                    i += 1;
                }
            }
            '!' => {
                if chars[i + 1] == '=' {
                    push(out, TokenKind::Ne);
                    i += 2;
                } else {
                    return Err(SyntaxError {
                        line,
                        message: "unexpected '!'".into(),
                    });
                }
            }
            '<' => {
                if chars[i + 1] == '=' {
                    push(out, TokenKind::Le);
                    i += 2;
                } else {
                    push(out, TokenKind::Lt);
                    i += 1;
                }
            }
            '>' => {
                if chars[i + 1] == '=' {
                    push(out, TokenKind::Ge);
                    i += 2;
                } else {
                    push(out, TokenKind::Gt);
                    i += 1;
                }
            }
            '+' => {
                push(out, TokenKind::Plus);
                i += 1;
            }
            '-' => {
                push(out, TokenKind::Minus);
                i += 1;
            }
            '*' => {
                push(out, TokenKind::Star);
                i += 1;
            }
            '/' => {
                push(out, TokenKind::Slash);
                i += 1;
            }
            '%' => {
                push(out, TokenKind::Percent);
                i += 1;
            }
            '&' => {
                push(out, TokenKind::Amp);
                i += 1;
            }
            '|' => {
                push(out, TokenKind::Pipe);
                i += 1;
            }
            '~' => {
                push(out, TokenKind::Tilde);
                i += 1;
            }
            '(' => {
                push(out, TokenKind::LParen);
                i += 1;
            }
            ')' => {
                push(out, TokenKind::RParen);
                i += 1;
            }
            '[' => {
                push(out, TokenKind::LBracket);
                i += 1;
            }
            ']' => {
                push(out, TokenKind::RBracket);
                i += 1;
            }
            '{' => {
                push(out, TokenKind::LBrace);
                i += 1;
            }
            '}' => {
                push(out, TokenKind::RBrace);
                i += 1;
            }
            ',' => {
                push(out, TokenKind::Comma);
                i += 1;
            }
            ':' => {
                push(out, TokenKind::Colon);
                i += 1;
            }
            '.' => {
                push(out, TokenKind::Dot);
                i += 1;
            }
            other => {
                return Err(SyntaxError {
                    line,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(())
}

/// Lex a quoted string starting at `chars[start]`; returns (content, next).
fn lex_string(
    chars: &[char],
    start: usize,
    line: usize,
) -> Result<(String, usize), SyntaxError> {
    let quote = chars[start];
    let mut out = String::new();
    let mut i = start + 1;
    while i < chars.len() - 1 {
        let c = chars[i];
        if c == '\\' {
            let next = chars[i + 1];
            out.push(match next {
                'n' => '\n',
                't' => '\t',
                '\\' => '\\',
                '\'' => '\'',
                '"' => '"',
                other => other,
            });
            i += 2;
        } else if c == quote {
            return Ok((out, i + 1));
        } else {
            out.push(c);
            i += 1;
        }
    }
    Err(SyntaxError {
        line,
        message: "unterminated string literal".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_assignment() {
        let k = kinds("x = 1\n");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(1),
                TokenKind::Newline,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn operators_and_literals() {
        let k = kinds("y = df.fare >= 2.5\n");
        assert!(k.contains(&TokenKind::Ge));
        assert!(k.contains(&TokenKind::Float(2.5)));
        assert!(k.contains(&TokenKind::Dot));
    }

    #[test]
    fn strings_and_escapes() {
        let k = kinds("s = 'he said \\'hi\\''\n");
        assert!(k.contains(&TokenKind::Str("he said 'hi'".into())));
        let k = kinds("s = \"double\"\n");
        assert!(k.contains(&TokenKind::Str("double".into())));
    }

    #[test]
    fn fstrings_detected() {
        let k = kinds("print(f'avg: {x}')\n");
        assert!(k.iter().any(|t| matches!(t, TokenKind::FStr(s) if s == "avg: {x}")));
    }

    #[test]
    fn comments_stripped_but_not_in_strings() {
        let k = kinds("x = 1  # a comment\n");
        assert_eq!(k.len(), 5);
        let k = kinds("s = 'has # inside'\n");
        assert!(k.contains(&TokenKind::Str("has # inside".into())));
    }

    #[test]
    fn indentation_structure() {
        let src = "if x > 0:\n    y = 1\n    z = 2\nw = 3\n";
        let k = kinds(src);
        let indents = k.iter().filter(|t| **t == TokenKind::Indent).count();
        let dedents = k.iter().filter(|t| **t == TokenKind::Dedent).count();
        assert_eq!(indents, 1);
        assert_eq!(dedents, 1);
    }

    #[test]
    fn nested_blocks_dedent_fully_at_eof() {
        let src = "for i in data:\n    if i > 0:\n        x = i\n";
        let k = kinds(src);
        let dedents = k.iter().filter(|t| **t == TokenKind::Dedent).count();
        assert_eq!(dedents, 2);
    }

    #[test]
    fn rejects_tabs_and_bad_chars() {
        assert!(lex("\tx = 1\n").is_err());
        assert!(lex("x = 1 $\n").is_err());
        assert!(lex("s = 'unterminated\n").is_err());
        assert!(lex("x = 1 ! 2\n").is_err());
    }

    #[test]
    fn inconsistent_indent_rejected() {
        let src = "if x > 0:\n    y = 1\n  z = 2\n";
        assert!(lex(src).is_err());
    }

    #[test]
    fn keywords_recognized() {
        let k = kinds("from lazyfatpandas.func import print\n");
        assert_eq!(k[0], TokenKind::From);
        assert!(k.contains(&TokenKind::Import));
    }
}
