//! Run the same benchmark program on all six configurations (the paper's
//! Figure-13 view, one program) and print time, memory, and result hash.

use lafp_bench::datagen::{ensure_datasets, Size};
use lafp_bench::programs::program;
use lafp_bench::runner::{run_cell, Config, RunKnobs};

fn main() {
    let dir = ensure_datasets(std::path::Path::new("target/lafp-data"), Size::Small)
        .expect("dataset generation");
    let name = std::env::args().nth(1).unwrap_or_else(|| "nyt".into());
    let p = program(&name).unwrap_or_else(|| {
        eprintln!("unknown program {name:?}; use one of {:?}", lafp_bench::PROGRAM_NAMES);
        std::process::exit(2)
    });
    println!("program: {}\n", p.name);
    println!("{:<9} {:>9} {:>10} {:>18}", "config", "time(ms)", "peak(MB)", "result hash");
    for config in Config::ALL {
        let r = run_cell(&p, config, &dir, &RunKnobs::default());
        if r.ok {
            println!(
                "{:<9} {:>9.1} {:>10.2} {:>18x}",
                config.label(),
                r.wall.as_secs_f64() * 1e3,
                r.peak_memory as f64 / 1e6,
                r.output_hash
            );
        } else {
            println!("{:<9} {:>9} {:>10} {}", config.label(), "-", "-", r.error.unwrap_or_default());
        }
    }
}
