//! Error type shared by all columnar kernels.

use std::fmt;

/// Result alias for columnar operations.
pub type Result<T> = std::result::Result<T, ColumnarError>;

/// Errors raised by the columnar substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnarError {
    /// A referenced column does not exist in the frame.
    ColumnNotFound(String),
    /// A column with this name already exists where uniqueness is required.
    DuplicateColumn(String),
    /// Operation applied to a column of an unsupported dtype.
    TypeMismatch {
        /// Operation that was attempted.
        op: String,
        /// The dtype it was attempted on.
        dtype: String,
    },
    /// Two columns participating in one kernel have different lengths.
    LengthMismatch {
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
    /// A value could not be parsed as the requested dtype.
    ParseError {
        /// The offending raw text.
        value: String,
        /// The dtype we tried to parse it as.
        dtype: String,
        /// Line number (1-based, including header) if known.
        line: Option<usize>,
    },
    /// CSV structural problem (ragged row, missing header column, ...).
    Csv(String),
    /// Underlying I/O failure. Keeps the [`std::io::ErrorKind`] (it is
    /// `Copy`, so the error stays `Clone`) so recovery code can tell
    /// ENOSPC from a short read without string matching.
    Io {
        /// The kind of the underlying `std::io::Error`.
        kind: std::io::ErrorKind,
        /// Human-readable description.
        message: String,
    },
    /// The simulated memory budget was exhausted.
    OutOfMemory {
        /// Bytes the operation attempted to reserve.
        requested: usize,
        /// Bytes available under the budget at that moment.
        available: usize,
    },
    /// A worker or pipeline-stage thread panicked. The panic was caught
    /// at the pool / query boundary; the payload message is preserved.
    /// Only the owning query fails — the engine stays usable.
    WorkerPanic(String),
    /// The query was cancelled (caller-side [`cancel`] or deadline).
    ///
    /// [`cancel`]: crate::cancel::CancelToken::cancel
    Cancelled(String),
    /// Catch-all for invalid arguments.
    InvalidArgument(String),
}

impl ColumnarError {
    /// An [`Io`](ColumnarError::Io) error with no specific kind —
    /// the drop-in replacement for the old message-only `Io(String)`.
    pub fn io(message: impl Into<String>) -> ColumnarError {
        ColumnarError::Io {
            kind: std::io::ErrorKind::Other,
            message: message.into(),
        }
    }
}

impl fmt::Display for ColumnarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnarError::ColumnNotFound(name) => write!(f, "column not found: {name:?}"),
            ColumnarError::DuplicateColumn(name) => write!(f, "duplicate column: {name:?}"),
            ColumnarError::TypeMismatch { op, dtype } => {
                write!(f, "operation {op:?} not supported on dtype {dtype}")
            }
            ColumnarError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            ColumnarError::ParseError { value, dtype, line } => match line {
                Some(line) => write!(f, "cannot parse {value:?} as {dtype} (line {line})"),
                None => write!(f, "cannot parse {value:?} as {dtype}"),
            },
            ColumnarError::Csv(msg) => write!(f, "csv error: {msg}"),
            ColumnarError::Io { kind, message } => write!(f, "io error ({kind:?}): {message}"),
            ColumnarError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "simulated out of memory: requested {requested} bytes, {available} available"
            ),
            ColumnarError::WorkerPanic(msg) => write!(f, "worker panicked: {msg}"),
            ColumnarError::Cancelled(msg) => write!(f, "cancelled: {msg}"),
            ColumnarError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for ColumnarError {}

impl From<std::io::Error> for ColumnarError {
    fn from(err: std::io::Error) -> Self {
        ColumnarError::Io {
            kind: err.kind(),
            message: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = ColumnarError::ColumnNotFound("fare".into());
        assert!(err.to_string().contains("fare"));
        let err = ColumnarError::OutOfMemory {
            requested: 10,
            available: 4,
        };
        assert!(err.to_string().contains("10"));
        assert!(err.to_string().contains("4"));
    }

    #[test]
    fn io_error_converts_preserving_kind() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let err: ColumnarError = io.into();
        assert!(matches!(
            err,
            ColumnarError::Io {
                kind: std::io::ErrorKind::NotFound,
                ..
            }
        ));
        // The whole enum (including Io) must stay Clone + Eq for
        // differential tests that compare captured errors.
        assert_eq!(err.clone(), err);
    }

    #[test]
    fn new_variants_display() {
        let err = ColumnarError::WorkerPanic("boom".into());
        assert!(err.to_string().contains("boom"));
        let err = ColumnarError::Cancelled("deadline".into());
        assert!(err.to_string().contains("deadline"));
        let err = ColumnarError::io("disk gone");
        assert!(err.to_string().contains("disk gone"));
    }
}
