//! Differential tests for the morsel-parallel kernels: every `_par`
//! entry point (group-by, join, sort, CSV) must produce results
//! identical to its sequential kernel at every thread count — including
//! null keys, NaN-literal strings, normalized-key adversarial inputs
//! (long shared prefixes, extreme ints, -0.0/0.0), and degenerate
//! shapes (empty frames, more workers than morsels).
//!
//! Inputs are tiled above the kernels' sequential-fallback thresholds so
//! the parallel code paths genuinely run (workers, morsel claiming, run
//! merging) even on a single-core host.

use lafp_columnar::column::Column;
use lafp_columnar::csv::{read_csv, read_csv_par, CsvOptions};
use lafp_columnar::groupby::{group_by, group_by_par, GroupBySpec};
use lafp_columnar::join::{merge, merge_par, JoinKind};
use lafp_columnar::pool::{WorkerPool, PAR_MIN_ROWS};
use lafp_columnar::sort::{sort_values, sort_values_par, SortOptions};
use lafp_columnar::{AggKind, DType, DataFrame, Series};
use proptest::prelude::*;
use std::io::Write as _;
use std::path::PathBuf;

/// Rows used for the tiled inputs: just above the parallel threshold so
/// morsel scheduling actually engages.
const ROWS: usize = PAR_MIN_ROWS + 700;

const THREADS: [usize; 3] = [2, 3, 8];

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Representation-agnostic equivalence: same length, dtype, per-row
/// scalars (nulls equal nulls; NaN is null — `PartialEq` on frames would
/// reject NaN payloads).
fn assert_frame_equiv(actual: &DataFrame, expected: &DataFrame, what: &str) {
    assert_frame_close(actual, expected, what, 0.0);
}

/// Like [`assert_frame_equiv`] but floats compare within a relative
/// `tol`. Parallel group-by folds each morsel into its own partial
/// state before merging, so float `sum`/`mean` re-associate additions —
/// every other aggregate (and every other kernel) stays bit-exact, but
/// float accumulation order is inherent to partial aggregation (the
/// Modin-style partition merge has worked this way since PR 2).
fn assert_frame_close(actual: &DataFrame, expected: &DataFrame, what: &str, tol: f64) {
    assert_eq!(actual.num_columns(), expected.num_columns(), "{what}: columns");
    assert_eq!(actual.num_rows(), expected.num_rows(), "{what}: rows");
    for (a, e) in actual.series().iter().zip(expected.series()) {
        assert_eq!(a.name(), e.name(), "{what}: column name");
        assert_eq!(a.dtype(), e.dtype(), "{what}.{}: dtype", a.name());
        for i in 0..a.len() {
            let (x, y) = (a.get(i), e.get(i));
            let ok = match (&x, &y) {
                (lafp_columnar::Scalar::Float(fx), lafp_columnar::Scalar::Float(fy)) => {
                    fx == fy || (fx - fy).abs() <= tol * fx.abs().max(fy.abs())
                }
                _ => (x.is_null() && y.is_null()) || x == y,
            };
            assert!(ok, "{what}.{} row {i}: {x:?} vs {y:?}", a.name());
        }
    }
}

/// Tile `pattern` until it is `rows` long.
fn tile<T: Clone>(pattern: &[T], rows: usize) -> Vec<T> {
    assert!(!pattern.is_empty());
    pattern.iter().cloned().cycle().take(rows).collect()
}

fn temp_csv(name: &str, content: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("lafp-parallel-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}-{}.csv", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

/// A mixed frame with null keys, a duplicate-heavy string key, and
/// normalized-key adversarial content: shared 8-byte string prefixes,
/// int extremes next to nulls, -0.0 vs 0.0, NaN floats.
fn adversarial_frame(rows: usize) -> DataFrame {
    let key: Vec<Option<i64>> = tile(
        &[
            Some(3),
            None,
            Some(i64::MAX),
            Some(-5),
            Some(i64::MIN),
            Some(3),
            None,
            Some(42),
        ],
        rows,
    );
    let city: Vec<Option<String>> = tile(
        &[
            Some("prefix-shared-aaaa".to_string()),
            Some("prefix-shared-aaab".to_string()),
            Some("prefix-shared".to_string()),
            None,
            Some("NaN".to_string()),
            Some("z".to_string()),
            Some("prefix-shared-aaaa".to_string()),
            Some(String::new()),
        ],
        rows,
    );
    let fare: Vec<f64> = tile(
        &[1.5, -0.0, 0.0, f64::NAN, 7.25, -3.0, 0.0, 100.0],
        rows,
    );
    let tag: Vec<i64> = (0..rows as i64).collect();
    DataFrame::new(vec![
        Series::new("key", Column::from_opt_i64(key)),
        Series::new("city", Column::from_opt_strings(city)),
        Series::new("fare", Column::from_f64(fare)),
        Series::new("tag", Column::from_i64(tag)),
    ])
    .unwrap()
}

// ---------------------------------------------------------------------------
// Deterministic sweeps (all four kernels, every thread count)
// ---------------------------------------------------------------------------

#[test]
fn groupby_par_matches_sequential() {
    let df = adversarial_frame(ROWS);
    let specs = [
        GroupBySpec { keys: vec!["key".into()], value: "fare".into(), agg: AggKind::Sum },
        GroupBySpec { keys: vec!["city".into()], value: "fare".into(), agg: AggKind::Mean },
        GroupBySpec { keys: vec!["key".into(), "city".into()], value: "fare".into(), agg: AggKind::Min },
        GroupBySpec { keys: vec!["city".into()], value: "tag".into(), agg: AggKind::Max },
        GroupBySpec { keys: vec!["key".into()], value: "city".into(), agg: AggKind::NUnique },
        GroupBySpec { keys: vec!["city".into()], value: "key".into(), agg: AggKind::Count },
    ];
    for spec in &specs {
        let expected = group_by(&df, spec).unwrap();
        // Float sum/mean re-associate across morsels; everything else is
        // bit-exact (see assert_frame_close).
        let tol = if matches!(spec.agg, AggKind::Sum | AggKind::Mean) { 1e-12 } else { 0.0 };
        for t in THREADS {
            let got = group_by_par(&df, spec, &WorkerPool::new(t)).unwrap();
            assert_frame_close(&got, &expected, &format!("groupby {spec:?} t={t}"), tol);
        }
    }
}

#[test]
fn join_par_matches_sequential() {
    let left = adversarial_frame(ROWS);
    // Small build side (sequential build, parallel probe): dups, a null
    // key, a key with no left match, and missing keys for Left-join nulls.
    let right = DataFrame::new(vec![
        Series::new(
            "key",
            Column::from_opt_i64(vec![Some(3), Some(3), None, Some(i64::MIN), Some(77)]),
        ),
        Series::new(
            "label",
            Column::from_strings(vec!["three-a", "three-b", "null-key", "min", "lonely"]),
        ),
        Series::new("boost", Column::from_f64(vec![0.5, 1.5, 2.5, 3.5, 4.5])),
    ])
    .unwrap();
    for how in [JoinKind::Inner, JoinKind::Left] {
        let expected = merge(&left, &right, &["key".into()], how).unwrap();
        for t in THREADS {
            let got = merge_par(&left, &right, &["key".into()], how, &WorkerPool::new(t)).unwrap();
            assert_frame_equiv(&got, &expected, &format!("join {how:?} t={t}"));
        }
    }
    // Multi-key (string + int) with the "NaN" literal in play.
    let right2 = DataFrame::new(vec![
        Series::new("city", Column::from_strings(vec!["NaN", "prefix-shared-aaaa", "z"])),
        Series::new("key", Column::from_opt_i64(vec![None, Some(3), Some(-5)])),
        Series::new("w", Column::from_i64(vec![10, 20, 30])),
    ])
    .unwrap();
    let on = vec!["city".to_string(), "key".to_string()];
    let expected = merge(&left, &right2, &on, JoinKind::Left).unwrap();
    for t in THREADS {
        let got = merge_par(&left, &right2, &on, JoinKind::Left, &WorkerPool::new(t)).unwrap();
        assert_frame_equiv(&got, &expected, &format!("multikey join t={t}"));
    }
}

#[test]
fn join_par_large_build_side_partitions() {
    // Build side above PAR_MIN_ROWS: exercises the hash-partitioned
    // parallel build (per-worker partitions merged into one table).
    let left = adversarial_frame(ROWS);
    let right_rows = PAR_MIN_ROWS + 350;
    let rkey: Vec<Option<i64>> = (0..right_rows)
        .map(|i| {
            if i % 11 == 0 {
                None
            } else {
                Some((i % 97) as i64 - 5)
            }
        })
        .collect();
    let right = DataFrame::new(vec![
        Series::new("key", Column::from_opt_i64(rkey)),
        Series::new(
            "rv",
            Column::from_i64((0..right_rows as i64).collect()),
        ),
    ])
    .unwrap();
    for how in [JoinKind::Inner, JoinKind::Left] {
        let expected = merge(&left, &right, &["key".into()], how).unwrap();
        for t in THREADS {
            let got = merge_par(&left, &right, &["key".into()], how, &WorkerPool::new(t)).unwrap();
            assert_frame_equiv(&got, &expected, &format!("big-build join {how:?} t={t}"));
        }
    }
}

#[test]
fn sort_par_matches_sequential() {
    let df = adversarial_frame(ROWS);
    let option_sets = [
        SortOptions::single("fare", true),
        SortOptions::single("fare", false),
        SortOptions::single("city", true),
        SortOptions {
            by: vec!["city".into(), "fare".into()],
            ascending: vec![true, false],
        },
        SortOptions {
            by: vec!["key".into(), "city".into(), "fare".into()],
            ascending: vec![false, true, true],
        },
        // The `tag` tie-break column makes stability violations visible.
        SortOptions {
            by: vec!["key".into(), "tag".into()],
            ascending: vec![true, true],
        },
    ];
    for options in &option_sets {
        let expected = sort_values(&df, options).unwrap();
        for t in THREADS {
            let got = sort_values_par(&df, options, &WorkerPool::new(t)).unwrap();
            assert_frame_equiv(&got, &expected, &format!("sort {:?} t={t}", options.by));
        }
    }
}

#[test]
fn csv_par_matches_sequential() {
    // Mixed dtypes, quoted commas and quotes, empty (null) cells, CRLF
    // on some lines, and enough bytes to clear the parallel threshold.
    let mut content = String::from("id,fare,city,note,ok\n");
    for i in 0..(PAR_MIN_ROWS + 500) {
        let fare = if i % 37 == 0 { String::new() } else { format!("{:.2}", i as f64 * 0.13) };
        let line_end = if i % 5 == 0 { "\r\n" } else { "\n" };
        if i % 7 == 0 {
            content.push_str(&format!(
                "{i},{fare},\"City, {}\",\"say \"\"hi\"\" {}\",true{line_end}",
                i % 80,
                i % 13
            ));
        } else {
            content.push_str(&format!(
                "{i},{fare},City{},padding-note-{}-xxxxxxxx,false{line_end}",
                i % 80,
                i % 13
            ));
        }
    }
    let path = temp_csv("mixed", &content);
    for opts in [
        CsvOptions::new(),
        CsvOptions::new().with_usecols(vec!["city".into(), "id".into()]),
        CsvOptions::new()
            .with_dtype("id", DType::Float64)
            .with_dtype("city", DType::Categorical),
    ] {
        let expected = read_csv(&path, &opts).unwrap();
        for t in THREADS {
            let got = read_csv_par(&path, &opts, &WorkerPool::new(t)).unwrap();
            assert_frame_equiv(&got, &expected, &format!("csv t={t}"));
            // The parallel reader must agree bit-for-bit, including
            // representation (validity layout), not just scalar-wise.
            assert_eq!(got.schema(), expected.schema(), "csv schema t={t}");
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn csv_par_error_parity() {
    // A ragged row deep in the file: the parallel reader must report the
    // same line number the streaming reader does.
    let mut content = String::from("a,b\n");
    let bad_line = PAR_MIN_ROWS / 2;
    for i in 0..PAR_MIN_ROWS {
        if i == bad_line {
            content.push_str("only-one-field-padding-padding-padding\n");
        } else {
            content.push_str(&format!("{i},{}-padding-padding-padding-pad\n", i * 2));
        }
    }
    let path = temp_csv("ragged", &content);
    let seq = read_csv(&path, &CsvOptions::new()).unwrap_err().to_string();
    for t in THREADS {
        let par = read_csv_par(&path, &CsvOptions::new(), &WorkerPool::new(t))
            .unwrap_err()
            .to_string();
        assert_eq!(par, seq, "t={t}");
    }
    // Parse errors carry the same line number too.
    let opts = CsvOptions::new().with_dtype("a", DType::Int64);
    let mut content = String::from("a,b\n");
    for i in 0..PAR_MIN_ROWS {
        if i == bad_line {
            content.push_str("not-a-number,xxxxxxxxxxxxxxxxxxxxxxxxxxxxx\n");
        } else {
            content.push_str(&format!("{i},xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx\n"));
        }
    }
    let path2 = temp_csv("badnum", &content);
    let seq = read_csv(&path2, &opts).unwrap_err().to_string();
    for t in THREADS {
        let par = read_csv_par(&path2, &opts, &WorkerPool::new(t))
            .unwrap_err()
            .to_string();
        assert_eq!(par, seq, "t={t}");
    }
    // A parse error INSIDE the dtype-inference sample: the streaming
    // reader buffers those rows and parses them later, so it must
    // remember each sample row's own line number.
    let mut content = String::from("a,b\n");
    for i in 0..PAR_MIN_ROWS {
        if i == 3 {
            content.push_str("not-a-number,xxxxxxxxxxxxxxxxxxxxxxxxxxxxx\n");
        } else {
            content.push_str(&format!("{i},xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx\n"));
        }
    }
    let path3 = temp_csv("badsample", &content);
    let seq = read_csv(&path3, &opts).unwrap_err().to_string();
    assert!(seq.contains("line 5"), "sample-row error carries its own line: {seq}");
    for t in THREADS {
        let par = read_csv_par(&path3, &opts, &WorkerPool::new(t))
            .unwrap_err()
            .to_string();
        assert_eq!(par, seq, "t={t}");
    }
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&path2).ok();
    std::fs::remove_file(&path3).ok();
}

#[test]
fn degenerate_shapes_fall_back() {
    // Empty and tiny frames route through the sequential kernels at any
    // thread count (no morsels to claim) and must agree exactly.
    let empty = DataFrame::new(vec![
        Series::new("k", Column::from_i64(vec![])),
        Series::new("v", Column::from_f64(vec![])),
    ])
    .unwrap();
    let tiny = DataFrame::new(vec![
        Series::new("k", Column::from_i64(vec![2, 1])),
        Series::new("v", Column::from_f64(vec![0.5, 1.5])),
    ])
    .unwrap();
    let spec = GroupBySpec { keys: vec!["k".into()], value: "v".into(), agg: AggKind::Sum };
    let options = SortOptions::single("k", true);
    for df in [&empty, &tiny] {
        for t in THREADS {
            let pool = WorkerPool::new(t);
            assert_frame_equiv(
                &group_by_par(df, &spec, &pool).unwrap(),
                &group_by(df, &spec).unwrap(),
                "tiny groupby",
            );
            assert_frame_equiv(
                &sort_values_par(df, &options, &pool).unwrap(),
                &sort_values(df, &options).unwrap(),
                "tiny sort",
            );
            assert_frame_equiv(
                &merge_par(df, df, &["k".into()], JoinKind::Inner, &pool).unwrap(),
                &merge(df, df, &["k".into()], JoinKind::Inner).unwrap(),
                "tiny join",
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Randomized properties (tiled above the parallel threshold)
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn par_groupby_tiled_matches(
        keys in prop::collection::vec(-4i64..4, 4..24),
        nulls in prop::collection::vec(any::<bool>(), 4..24),
        vals in prop::collection::vec(-100.0f64..100.0, 4..24),
        threads in 2usize..9,
        agg_pick in 0usize..4,
    ) {
        let n = keys.len().min(nulls.len()).min(vals.len());
        let key: Vec<Option<i64>> =
            (0..n).map(|i| (!nulls[i]).then(|| keys[i])).collect();
        let df = DataFrame::new(vec![
            Series::new("k", Column::from_opt_i64(tile(&key, ROWS))),
            Series::new("v", Column::from_f64(tile(&vals[..n], ROWS))),
        ]).unwrap();
        let agg = [AggKind::Sum, AggKind::Mean, AggKind::Min, AggKind::NUnique][agg_pick];
        let spec = GroupBySpec { keys: vec!["k".into()], value: "v".into(), agg };
        let expected = group_by(&df, &spec).unwrap();
        let got = group_by_par(&df, &spec, &WorkerPool::new(threads)).unwrap();
        let tol = if matches!(agg, AggKind::Sum | AggKind::Mean) { 1e-12 } else { 0.0 };
        assert_frame_close(&got, &expected, "tiled groupby", tol);
    }

    #[test]
    fn par_join_tiled_matches(
        lk in prop::collection::vec(-6i64..6, 4..24),
        lnull in prop::collection::vec(any::<bool>(), 4..24),
        rk in prop::collection::vec(-6i64..6, 1..12),
        rnull in prop::collection::vec(any::<bool>(), 1..12),
        threads in 2usize..9,
        left_join in any::<bool>(),
    ) {
        let ln = lk.len().min(lnull.len());
        let rn = rk.len().min(rnull.len());
        let lkey: Vec<Option<i64>> = (0..ln).map(|i| (!lnull[i]).then(|| lk[i])).collect();
        let rkey: Vec<Option<i64>> = (0..rn).map(|i| (!rnull[i]).then(|| rk[i])).collect();
        let left = DataFrame::new(vec![
            Series::new("k", Column::from_opt_i64(tile(&lkey, ROWS))),
            Series::new("tag", Column::from_i64((0..ROWS as i64).collect())),
        ]).unwrap();
        let right = DataFrame::new(vec![
            Series::new("k", Column::from_opt_i64(rkey)),
            Series::new("w", Column::from_i64((0..rn as i64).collect())),
        ]).unwrap();
        let how = if left_join { JoinKind::Left } else { JoinKind::Inner };
        let expected = merge(&left, &right, &["k".into()], how).unwrap();
        let got = merge_par(&left, &right, &["k".into()], how, &WorkerPool::new(threads)).unwrap();
        assert_frame_equiv(&got, &expected, "tiled join");
    }

    #[test]
    fn par_sort_tiled_matches(
        strs in prop::collection::vec("[ab]{0,12}", 4..20),
        snull in prop::collection::vec(any::<bool>(), 4..20),
        nums in prop::collection::vec(-50i64..50, 4..20),
        threads in 2usize..9,
        asc1 in any::<bool>(),
        asc2 in any::<bool>(),
    ) {
        let n = strs.len().min(snull.len()).min(nums.len());
        let svals: Vec<Option<String>> =
            (0..n).map(|i| (!snull[i]).then(|| strs[i].clone())).collect();
        let df = DataFrame::new(vec![
            Series::new("s", Column::from_opt_strings(tile(&svals, ROWS))),
            Series::new("n", Column::from_i64(tile(&nums[..n], ROWS))),
            Series::new("tag", Column::from_i64((0..ROWS as i64).collect())),
        ]).unwrap();
        let options = SortOptions {
            by: vec!["s".into(), "n".into()],
            ascending: vec![asc1, asc2],
        };
        let expected = sort_values(&df, &options).unwrap();
        let got = sort_values_par(&df, &options, &WorkerPool::new(threads)).unwrap();
        assert_frame_equiv(&got, &expected, "tiled sort");
    }
}
