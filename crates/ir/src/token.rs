//! Tokens of PandaScript.

/// A lexical token with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or non-reserved name.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Plain string literal (quotes removed, escapes resolved).
    Str(String),
    /// f-string literal: raw inner text, to be split by the parser.
    FStr(String),
    /// Keywords.
    Import,
    From,
    As,
    If,
    Elif,
    Else,
    For,
    In,
    Not,
    True,
    False,
    NoneKw,
    Def,
    Return,
    /// Punctuation / operators.
    Assign,      // =
    Eq,          // ==
    Ne,          // !=
    Lt,          // <
    Le,          // <=
    Gt,          // >
    Ge,          // >=
    Plus,        // +
    Minus,       // -
    Star,        // *
    Slash,       // /
    Percent,     // %
    Amp,         // &
    Pipe,        // |
    Tilde,       // ~
    LParen,      // (
    RParen,      // )
    LBracket,    // [
    RBracket,    // ]
    LBrace,      // {
    RBrace,      // }
    Comma,       // ,
    Colon,       // :
    Dot,         // .
    /// Structure.
    Newline,
    Indent,
    Dedent,
    Eof,
}

impl TokenKind {
    /// Render for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier {s:?}"),
            TokenKind::Int(v) => format!("integer {v}"),
            TokenKind::Float(v) => format!("float {v}"),
            TokenKind::Str(s) => format!("string {s:?}"),
            TokenKind::FStr(_) => "f-string".into(),
            TokenKind::Newline => "newline".into(),
            TokenKind::Indent => "indent".into(),
            TokenKind::Dedent => "dedent".into(),
            TokenKind::Eof => "end of file".into(),
            other => format!("{other:?}").to_lowercase(),
        }
    }
}
