//! `df.describe()` and `df.info()` — the informative APIs that the paper's
//! live-attribute analysis special-cases (§3.1): their output does not feed
//! the program result, so LAA ignores their column usage.

use crate::column::{Column, ColumnBuilder};
use crate::dtype::DType;
use crate::error::Result;
use crate::frame::DataFrame;
use crate::series::Series;
use crate::value::Scalar;

/// Summary statistics over the numeric columns, mirroring pandas
/// `describe()`: count, mean, std, min, 25%, 50%, 75%, max.
pub fn describe(frame: &DataFrame) -> Result<DataFrame> {
    let numeric: Vec<&Series> = frame
        .series()
        .iter()
        .filter(|s| s.dtype().is_numeric())
        .collect();
    let stats = ["count", "mean", "std", "min", "25%", "50%", "75%", "max"];
    let mut out: Vec<Series> = Vec::with_capacity(numeric.len() + 1);
    out.push(Series::new(
        "statistic",
        Column::from_strings(stats.to_vec()),
    ));
    for s in numeric {
        let mut values: Vec<f64> = (0..s.len())
            .filter(|&i| !s.column().is_null_at(i))
            .filter_map(|i| s.get(i).as_f64())
            .collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut b = ColumnBuilder::new(DType::Float64);
        b.push_scalar(&Scalar::Float(values.len() as f64))?;
        for stat in [
            s.column().mean(),
            s.column().std(),
            quantile(&values, 0.0),
            quantile(&values, 0.25),
            quantile(&values, 0.5),
            quantile(&values, 0.75),
            quantile(&values, 1.0),
        ] {
            b.push_scalar(&stat)?;
        }
        out.push(Series::new(s.name(), b.finish()));
    }
    DataFrame::new(out)
}

/// Linear-interpolated quantile over pre-sorted values (pandas default).
fn quantile(sorted: &[f64], q: f64) -> Scalar {
    if sorted.is_empty() {
        return Scalar::Null;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Scalar::Float(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// A compact `df.info()`-style description: per-column name, non-null
/// count, dtype — returned as a string (info prints, it doesn't return).
pub fn info_string(frame: &DataFrame) -> String {
    let mut out = format!(
        "RangeIndex: {} entries\nData columns (total {} columns):\n",
        frame.num_rows(),
        frame.num_columns()
    );
    for s in frame.series() {
        out.push_str(&format!(
            " {:<24} {:>8} non-null  {}\n",
            s.name(),
            s.column().count_valid(),
            s.dtype()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::df;

    fn sample() -> DataFrame {
        df![
            ("x", Column::from_f64(vec![1.0, 2.0, 3.0, 4.0])),
            ("n", Column::from_i64(vec![10, 20, 30, 40])),
            ("name", Column::from_strings(vec!["a", "b", "c", "d"])),
        ]
    }

    #[test]
    fn describe_covers_numeric_columns_only() {
        let d = describe(&sample()).unwrap();
        assert_eq!(d.column_names(), vec!["statistic", "x", "n"]);
        assert_eq!(d.num_rows(), 8);
    }

    #[test]
    fn describe_stats_correct() {
        let d = describe(&sample()).unwrap();
        let x = d.column("x").unwrap();
        assert_eq!(x.get(0), Scalar::Float(4.0)); // count
        assert_eq!(x.get(1), Scalar::Float(2.5)); // mean
        assert_eq!(x.get(3), Scalar::Float(1.0)); // min
        assert_eq!(x.get(4), Scalar::Float(1.75)); // 25%
        assert_eq!(x.get(5), Scalar::Float(2.5)); // 50%
        assert_eq!(x.get(6), Scalar::Float(3.25)); // 75%
        assert_eq!(x.get(7), Scalar::Float(4.0)); // max
    }

    #[test]
    fn quantile_interpolates() {
        let v = vec![1.0, 2.0, 10.0];
        assert_eq!(quantile(&v, 0.5), Scalar::Float(2.0));
        assert_eq!(quantile(&v, 0.75), Scalar::Float(6.0));
        assert_eq!(quantile(&[], 0.5), Scalar::Null);
    }

    #[test]
    fn info_lists_columns() {
        let text = info_string(&sample());
        assert!(text.contains("4 entries"));
        assert!(text.contains("name"));
        assert!(text.contains("object"));
    }
}
