//! Fault-registry integration tests: deterministic replay, pool panic
//! isolation, pipeline stage injection, CSV read injection, and
//! cooperative cancellation.
//!
//! These live in an integration binary (own process) because they
//! install plans into the **process-global** registry — inside the lib
//! test binary an armed plan could leak faults into unrelated tests
//! running on sibling threads. Within this binary every test serializes
//! on [`LOCK`].

use lafp_columnar::csv::{read_csv, read_csv_par, CsvOptions};
use lafp_columnar::faults::{self, FaultPlan, FaultSite};
use lafp_columnar::pool::{pipeline, StageChannel, WorkerPool};
use lafp_columnar::{CancelToken, ColumnarError};
use std::path::PathBuf;
use std::sync::{Mutex, PoisonError};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn temp_csv(rows: usize) -> PathBuf {
    let dir = std::env::temp_dir().join("lafp-fault-injection");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!(
        "t-{}.csv",
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    let mut text = String::from("a,b\n");
    for i in 0..rows {
        text.push_str(&format!("{i},{}\n", i * 2));
    }
    std::fs::write(&path, text).unwrap();
    path
}

#[test]
fn same_seed_fires_identical_draw_sequence() {
    let _l = lock();
    let run = || -> Vec<bool> {
        faults::stats().reset();
        let _g = faults::install(FaultPlan::new(42).with(FaultSite::SpillWrite, 0.3));
        (0..256)
            .map(|_| faults::fire(FaultSite::SpillWrite).is_some())
            .collect()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "seeded draws must replay bit-identically");
    assert!(a.iter().any(|&f| f), "p=0.3 over 256 draws fires");
    assert!(!a.iter().all(|&f| f));
}

#[test]
fn different_seeds_differ() {
    let _l = lock();
    let run = |seed| -> Vec<bool> {
        faults::stats().reset();
        let _g = faults::install(FaultPlan::new(seed).with(FaultSite::SpillRead, 0.5));
        (0..256)
            .map(|_| faults::fire(FaultSite::SpillRead).is_some())
            .collect()
    };
    assert_ne!(run(1), run(2));
}

#[test]
fn injected_worker_panic_fails_query_not_pool() {
    let _l = lock();
    let pool = WorkerPool::new(4);
    let before = faults::stats().snapshot().panics_isolated;
    {
        let _g = faults::install(FaultPlan::new(7).with(FaultSite::MorselExecute, 1.0));
        let err = pool
            .try_map((0..64).collect::<Vec<i64>>(), |_, x| Ok(x + 1))
            .unwrap_err();
        assert!(
            matches!(err, ColumnarError::WorkerPanic(ref m) if m.contains("injected")),
            "got {err:?}"
        );
    }
    assert!(faults::stats().snapshot().panics_isolated > before);
    // The registry is disarmed again; the same pool value works.
    let out = pool
        .try_map((0..64).collect::<Vec<i64>>(), |_, x| Ok(x + 1))
        .unwrap();
    assert_eq!(out.len(), 64);
    assert_eq!(out[63], 64);
}

#[test]
fn low_probability_panic_still_isolated_at_cap_one() {
    // Sequential pool (no worker threads): the driver-path catch_unwind
    // inside try_map must isolate the injected panic too.
    let _l = lock();
    let pool = WorkerPool::new(1);
    let _g = faults::install(FaultPlan::new(3).with(FaultSite::MorselExecute, 1.0));
    let err = pool
        .try_map(vec![1, 2, 3], |_, x: i32| Ok(x))
        .unwrap_err();
    assert!(matches!(err, ColumnarError::WorkerPanic(_)), "got {err:?}");
}

#[test]
fn injected_stage_panic_unwinds_pipeline() {
    let _l = lock();
    let _g = faults::install(FaultPlan::new(9).with(FaultSite::PipelineStage, 1.0));
    // cap 1 is the deadlock-prone shape: a blocked producer must be
    // released by the panicking peer's hang-up.
    for cap in [1usize, 8] {
        let r: lafp_columnar::Result<((), usize)> = pipeline(
            cap,
            |tx: &StageChannel<usize>| {
                for i in 0..100 {
                    if !tx.send(i) {
                        break;
                    }
                }
                tx.close();
            },
            |rx: &StageChannel<usize>| {
                let mut n = 0;
                while rx.recv().is_some() {
                    n += 1;
                }
                n
            },
        );
        let err = r.unwrap_err();
        assert!(matches!(err, ColumnarError::WorkerPanic(_)), "cap={cap}: {err:?}");
    }
}

#[test]
fn csv_read_injection_surfaces_io_error_with_path() {
    let _l = lock();
    let path = temp_csv(100);
    let pool = WorkerPool::new(4);
    {
        let _g = faults::install(FaultPlan::new(5).with(FaultSite::CsvRead, 1.0));
        let err = read_csv(&path, &CsvOptions::new()).unwrap_err();
        match err {
            ColumnarError::Io { message, .. } => {
                assert!(message.contains("injected"), "{message}");
                assert!(
                    message.contains(path.file_name().unwrap().to_str().unwrap()),
                    "error should name the file: {message}"
                );
            }
            other => panic!("expected Io, got {other:?}"),
        }
        assert!(read_csv_par(&path, &CsvOptions::new(), &pool).is_err());
    }
    // Disarmed: the same file reads fine.
    let df = read_csv(&path, &CsvOptions::new()).unwrap();
    assert_eq!(df.num_rows(), 100);
}

#[test]
fn cancelled_token_stops_pool_between_claims() {
    let _l = lock();
    let token = CancelToken::new();
    token.cancel();
    let pool = WorkerPool::new(4).with_cancel(token);
    let err = pool
        .try_map((0..32).collect::<Vec<i64>>(), |_, x| Ok(x))
        .unwrap_err();
    assert!(matches!(err, ColumnarError::Cancelled(_)), "got {err:?}");
}
