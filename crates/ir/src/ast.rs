//! The PandaScript AST, stored in an arena so statements have stable ids
//! that the CFG, the analyses and the rewriter can all reference.

/// Index of a statement in the [`Ast`] arena.
pub type StmtId = usize;

/// A parsed module: an arena of statements plus the top-level order.
#[derive(Debug, Clone, Default)]
pub struct Ast {
    /// All statements (including nested ones), indexed by [`StmtId`].
    pub stmts: Vec<StmtNode>,
    /// Top-level statement ids in program order.
    pub module: Vec<StmtId>,
}

impl Ast {
    /// Add a statement to the arena (not to the module body).
    pub fn alloc(&mut self, kind: StmtKind, line: usize) -> StmtId {
        self.stmts.push(StmtNode { kind, line });
        self.stmts.len() - 1
    }

    /// Borrow a statement node.
    pub fn stmt(&self, id: StmtId) -> &StmtNode {
        &self.stmts[id]
    }

    /// Mutably borrow a statement node.
    pub fn stmt_mut(&mut self, id: StmtId) -> &mut StmtNode {
        &mut self.stmts[id]
    }

    /// Iterate over every statement id in the arena.
    pub fn all_ids(&self) -> impl Iterator<Item = StmtId> {
        0..self.stmts.len()
    }
}

/// One statement with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct StmtNode {
    /// The statement.
    pub kind: StmtKind,
    /// 1-based source line (0 for synthesized statements).
    pub line: usize,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `import module.path as alias`.
    Import {
        /// Dotted module path.
        module: String,
        /// Optional alias.
        alias: Option<String>,
    },
    /// `from module.path import name, ...`.
    FromImport {
        /// Dotted module path.
        module: String,
        /// Imported names.
        names: Vec<String>,
    },
    /// A bare expression statement (calls like `pd.analyze()`).
    Expr(Expr),
    /// `target = value`.
    Assign {
        /// Assignment target.
        target: Target,
        /// Right-hand side.
        value: Expr,
    },
    /// `if cond: then... [else: orelse...]` (elif chains nest in orelse).
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch statement ids.
        then: Vec<StmtId>,
        /// Else-branch statement ids (possibly empty).
        orelse: Vec<StmtId>,
    },
    /// `for var in iter: body...`.
    For {
        /// Loop variable.
        var: String,
        /// Iterated expression.
        iter: Expr,
        /// Body statement ids.
        body: Vec<StmtId>,
    },
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// `name = ...`.
    Name(String),
    /// `obj["key"] = ...` / `obj[expr] = ...` (column stores).
    Subscript {
        /// The subscripted object (a variable name in our programs).
        obj: String,
        /// The subscript key.
        key: Expr,
    },
}

/// One piece of an f-string.
#[derive(Debug, Clone, PartialEq)]
pub enum FPiece {
    /// Literal text.
    Text(String),
    /// An interpolated `{expression}`.
    Expr(Expr),
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Variable reference.
    Name(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `None`.
    NoneLit,
    /// f-string.
    FString(Vec<FPiece>),
    /// List display `[a, b, c]`.
    List(Vec<Expr>),
    /// Dict display `{"a": 1}`.
    Dict(Vec<(Expr, Expr)>),
    /// Attribute access `value.attr`.
    Attribute {
        /// Receiver.
        value: Box<Expr>,
        /// Attribute name.
        attr: String,
    },
    /// Subscription `value[index]`.
    Subscript {
        /// Receiver.
        value: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Call `func(args..., kw=..)`.
    Call {
        /// Callee expression.
        func: Box<Expr>,
        /// Positional arguments.
        args: Vec<Expr>,
        /// Keyword arguments.
        kwargs: Vec<(String, Expr)>,
    },
    /// Binary operation (`+ - * / % & |`).
    BinOp {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinOpKind,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Comparison (`== != < <= > >=`).
    Compare {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: CmpOpKind,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation (`~x`, `-x`, `not x`).
    Unary {
        /// Operator.
        op: UnaryOpKind,
        /// Operand.
        operand: Box<Expr>,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOpKind {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `&` (boolean-mask AND in pandas land)
    And,
    /// `|` (boolean-mask OR)
    Or,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOpKind {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOpKind {
    /// `~` (mask negation)
    Invert,
    /// `-`
    Neg,
    /// `not`
    Not,
}

impl Expr {
    /// Walk this expression tree, calling `f` on every node (pre-order).
    pub fn walk<'a>(&'a self, f: &mut dyn FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::FString(pieces) => {
                for p in pieces {
                    if let FPiece::Expr(e) = p {
                        e.walk(f);
                    }
                }
            }
            Expr::List(items) => {
                for e in items {
                    e.walk(f);
                }
            }
            Expr::Dict(items) => {
                for (k, v) in items {
                    k.walk(f);
                    v.walk(f);
                }
            }
            Expr::Attribute { value, .. } => value.walk(f),
            Expr::Subscript { value, index } => {
                value.walk(f);
                index.walk(f);
            }
            Expr::Call { func, args, kwargs } => {
                func.walk(f);
                for a in args {
                    a.walk(f);
                }
                for (_, v) in kwargs {
                    v.walk(f);
                }
            }
            Expr::BinOp { left, right, .. } | Expr::Compare { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Unary { operand, .. } => operand.walk(f),
            _ => {}
        }
    }

    /// All variable names read by this expression.
    pub fn names_used(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Name(n) = e {
                out.push(n.clone());
            }
        });
        out
    }

    /// If this expression is a plain string literal, its value.
    pub fn as_str_lit(&self) -> Option<&str> {
        match self {
            Expr::Str(s) => Some(s),
            _ => None,
        }
    }

    /// If this is a list of string literals, their values.
    pub fn as_str_list(&self) -> Option<Vec<String>> {
        match self {
            Expr::List(items) => items
                .iter()
                .map(|e| e.as_str_lit().map(str::to_string))
                .collect(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_allocation() {
        let mut ast = Ast::default();
        let id = ast.alloc(StmtKind::Expr(Expr::Int(1)), 3);
        assert_eq!(ast.stmt(id).line, 3);
        ast.stmt_mut(id).kind = StmtKind::Expr(Expr::Int(2));
        assert_eq!(ast.stmt(id).kind, StmtKind::Expr(Expr::Int(2)));
    }

    #[test]
    fn walk_visits_nested_nodes() {
        let e = Expr::Call {
            func: Box::new(Expr::Attribute {
                value: Box::new(Expr::Name("df".into())),
                attr: "head".into(),
            }),
            args: vec![Expr::Int(5)],
            kwargs: vec![("usecols".into(), Expr::List(vec![Expr::Str("a".into())]))],
        };
        // Call + Attribute + Name + Int + List + Str = 6 nodes.
        let mut count = 0;
        e.walk(&mut |_| count += 1);
        assert_eq!(count, 6);
        assert_eq!(e.names_used(), vec!["df".to_string()]);
    }

    #[test]
    fn string_list_extraction() {
        let e = Expr::List(vec![Expr::Str("a".into()), Expr::Str("b".into())]);
        assert_eq!(e.as_str_list(), Some(vec!["a".into(), "b".into()]));
        let mixed = Expr::List(vec![Expr::Str("a".into()), Expr::Int(1)]);
        assert_eq!(mixed.as_str_list(), None);
    }
}
